#!/usr/bin/env bash
# Streaming staleness baseline: runs bench_stream (ingest -> per-window
# fine-tune -> zero-downtime publish over a synthetic event stream) and
# pins its JSON report as BENCH_stream.json at the repo root:
#
#   {
#     "staleness_us": {"p50": ..., "p95": ..., "max": ...},   per-fact
#         arrival -> publish latency (the window the fact waited in plus
#         its window's fine-tune + publish cost),
#     "finetune_publish_ms_per_window": ...,
#     "topk_effect": {"rank_before": R, "rank_after": R', ...}  the
#         acceptance experiment: a fact ingested in the final window must
#         measurably improve its own (s, r, t) query's rank after one
#         fine-tune window (bench_stream exits non-zero otherwise).
#   }
#
# The committed BENCH_stream.json is the pinned baseline for
# docs/STREAMING.md's staleness model. Absolute numbers are
# machine-dependent; the structural facts (rank_after < rank_before,
# publishes == windows) are what the pin guards.
#
# Usage: scripts/bench_stream.sh [build-dir]     (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
BIN="${BUILD}/bench/bench_stream"
OUT="${ROOT}/BENCH_stream.json"

if [ ! -x "${BIN}" ]; then
  echo "bench_stream.sh: ${BIN} not built — run:" >&2
  echo "  cmake -B ${BUILD} -S ${ROOT} && cmake --build ${BUILD} -j --target bench_stream" >&2
  exit 1
fi

echo "bench_stream.sh: streaming staleness pass"
"${BIN}" > "${OUT}"
echo "bench_stream.sh: wrote ${OUT}"
