#!/usr/bin/env bash
# Sharded-serving baseline: runs the serve_cluster demo (router + two
# replica processes over AF_UNIX sockets, zipfian load, one coordinated
# hot-swap mid-run) and pins its JSON summary as BENCH_serve.json at the
# repo root:
#
#   {
#     "shards": 2, "clients": 4, "completed": N, "ok": N,
#     "unavailable": 0, "other_errors": 0, "dropped": 0,
#     "swap_epoch": 1,          every replica answered from the swapped
#         snapshot at the same epoch — old-or-new, never mixed,
#     "qps": ..., "p50_ms": ..., "p99_ms": ...   end-to-end through the
#         router and the binary wire protocol.
#   }
#
# Absolute qps/latency numbers are machine-dependent; the structural
# facts the pin guards are dropped == 0, other_errors == 0 and
# swap_epoch == 1 under concurrent load (serve_cluster itself exits
# non-zero when --expect-zero-drop is violated, so a bad run never
# overwrites the pin).
#
# Usage: scripts/bench_serve.sh [build-dir]     (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
BIN="${BUILD}/examples/serve_cluster"
OUT="${ROOT}/BENCH_serve.json"

if [ ! -x "${BIN}" ]; then
  echo "bench_serve.sh: ${BIN} not built — run:" >&2
  echo "  cmake -B ${BUILD} -S ${ROOT} && cmake --build ${BUILD} -j --target serve_cluster" >&2
  exit 1
fi

DIR="$(mktemp -d "${TMPDIR:-/tmp}/retia-bench-serve.XXXXXX")"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "${pid}" 2>/dev/null || true; done
  rm -rf "${DIR}"
}
trap cleanup EXIT

echo "bench_serve.sh: preparing snapshots"
"${BIN}" prepare "${DIR}" >/dev/null

echo "bench_serve.sh: starting 2 replicas"
"${BIN}" replica "${DIR}" "${DIR}/r0.sock" >"${DIR}/r0.log" 2>&1 &
PIDS+=($!)
"${BIN}" replica "${DIR}" "${DIR}/r1.sock" >"${DIR}/r1.log" 2>&1 &
PIDS+=($!)

echo "bench_serve.sh: zipfian load with mid-run hot-swap"
timeout 300 "${BIN}" load "${DIR}" "${DIR}/r0.sock,${DIR}/r1.sock" \
  --queries 8000 --clients 4 --swap-after 2000 \
  --expect-zero-drop --shutdown >"${DIR}/summary.json"
cp "${DIR}/summary.json" "${OUT}"
echo "bench_serve.sh: wrote ${OUT}"
