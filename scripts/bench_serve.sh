#!/usr/bin/env bash
# Sharded-serving baseline: runs the serve_cluster demo (router + two
# replica processes over AF_UNIX sockets, zipfian load, one coordinated
# hot-swap mid-run), then an unbatched-vs-batched comparison against the
# same warm replicas, and pins the combined JSON as BENCH_serve.json at
# the repo root:
#
#   {
#     "shards": 2, "clients": 4, "completed": N, "ok": N,
#     "unavailable": 0, "other_errors": 0, "dropped": 0,
#     "swap_epoch": 1,          every replica answered from the swapped
#         snapshot at the same epoch — old-or-new, never mixed,
#     "qps": ..., "p50_ms": ..., "p99_ms": ...,  end-to-end through the
#         router and the binary wire protocol,
#     "host": {"num_cpus_effective": ...},   so the gate in check.sh can
#         interpret the numbers against the machine that produced them,
#     "batch": {"batch_size": 8, "qps_unbatched": ..., "qps_batched": ...,
#               "speedup": ...}   RouteBatch + QueryBatch/ResultBatch
#         coalesced frames vs one round-trip per query, measured against
#         the SAME warm replicas (both runs ~fully cache-hit, so the
#         comparison isolates exactly the wire-path overhead batching
#         removes).
#   }
#
# Absolute qps/latency numbers are machine-dependent; the structural
# facts the pin guards are dropped == 0, other_errors == 0 and
# swap_epoch == 1 under concurrent load (serve_cluster itself exits
# non-zero when --expect-zero-drop is violated, so a bad run never
# overwrites the pin), plus batch.speedup >= 1.5 at batch >= 8 (this
# script refuses to pin a comparison below the floor).
#
# Usage: scripts/bench_serve.sh [build-dir]     (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
BIN="${BUILD}/examples/serve_cluster"
OUT="${ROOT}/BENCH_serve.json"

if [ ! -x "${BIN}" ]; then
  echo "bench_serve.sh: ${BIN} not built — run:" >&2
  echo "  cmake -B ${BUILD} -S ${ROOT} && cmake --build ${BUILD} -j --target serve_cluster" >&2
  exit 1
fi

DIR="$(mktemp -d "${TMPDIR:-/tmp}/retia-bench-serve.XXXXXX")"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "${pid}" 2>/dev/null || true; done
  rm -rf "${DIR}"
}
trap cleanup EXIT

echo "bench_serve.sh: preparing snapshots"
"${BIN}" prepare "${DIR}" >/dev/null

echo "bench_serve.sh: starting 2 replicas"
"${BIN}" replica "${DIR}" "${DIR}/r0.sock" >"${DIR}/r0.log" 2>&1 &
PIDS+=($!)
"${BIN}" replica "${DIR}" "${DIR}/r1.sock" >"${DIR}/r1.log" 2>&1 &
PIDS+=($!)
SOCKETS="${DIR}/r0.sock,${DIR}/r1.sock"

echo "bench_serve.sh: zipfian load with mid-run hot-swap"
timeout 300 "${BIN}" load "${DIR}" "${SOCKETS}" \
  --queries 8000 --clients 4 --swap-after 2000 \
  --expect-zero-drop >"${DIR}/summary.json"

# Batched-vs-unbatched comparison, same (now fully warm) replicas: one
# wire round-trip per query vs one coalesced QueryBatch frame per 8.
echo "bench_serve.sh: unbatched comparison load"
timeout 300 "${BIN}" load "${DIR}" "${SOCKETS}" \
  --queries 8000 --clients 4 >"${DIR}/unbatched.json"
echo "bench_serve.sh: batched comparison load (--batch 8)"
timeout 300 "${BIN}" load "${DIR}" "${SOCKETS}" \
  --queries 8000 --clients 4 --batch 8 --shutdown >"${DIR}/batched.json"

python3 - "${DIR}/summary.json" "${DIR}/unbatched.json" \
  "${DIR}/batched.json" "$(nproc)" "${OUT}" <<'PY'
import json
import sys

summary_path, unbatched_path, batched_path, ncpus, out_path = sys.argv[1:6]
with open(summary_path) as f:
    doc = json.load(f)
with open(unbatched_path) as f:
    unbatched = json.load(f)
with open(batched_path) as f:
    batched = json.load(f)

for name, run in (("unbatched", unbatched), ("batched", batched)):
    if run["ok"] != run["completed"] or run["completed"] <= 0:
        sys.exit(f"bench_serve.sh: {name} comparison run was not clean: "
                 f"ok={run['ok']} completed={run['completed']}")

speedup = batched["qps"] / unbatched["qps"]
doc["host"] = {"num_cpus_effective": int(ncpus)}
doc["batch"] = {
    "batch_size": batched["wire_batch"],
    "qps_unbatched": round(unbatched["qps"], 1),
    "qps_batched": round(batched["qps"], 1),
    "speedup": round(speedup, 2),
}
if speedup < 1.5:
    sys.exit(f"bench_serve.sh: batched speedup {speedup:.2f}x is below the "
             "1.5x floor — refusing to pin (noisy host or regression)")

with open(out_path, "w") as f:
    json.dump(doc, f)
    f.write("\n")
print(f"bench_serve.sh: batch={batched['wire_batch']} "
      f"qps {unbatched['qps']:.0f} -> {batched['qps']:.0f} "
      f"({speedup:.2f}x)")
PY
echo "bench_serve.sh: wrote ${OUT}"
