#!/usr/bin/env bash
# TSan smoke check for the deterministic-parallelism contract.
#
# Builds the concurrency-sensitive test binaries (par_test, serve_test) in
# Release with -fsanitize=thread into build-tsan/ and runs the par- and
# serve-labelled ctest suites under halt_on_error. Zero TSan reports is a
# hard requirement: the par::ThreadPool sharding and the ServeEngine drain
# ticks must be data-race-free, not just bit-identical.
#
# Usage: scripts/check.sh [build-dir]        (default: <repo>/build-tsan)
# Also registered as the ctest test `tsan_smoke` when the tree is
# configured with -DRETIA_SMOKE_TSAN=ON.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DRETIA_SANITIZE=thread \
  -DRETIA_SMOKE_TSAN=OFF

# Only the concurrency suites: building the whole tree under TSan is slow
# and the other suites exercise no cross-thread behaviour.
cmake --build "${BUILD}" -j "${JOBS}" --target par_test serve_test

# halt_on_error: the first race fails the run instead of scrolling past.
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:${TSAN_OPTIONS}}" \
  ctest --test-dir "${BUILD}" -L "par|serve" --output-on-failure

echo "check.sh: par|serve suites clean under ThreadSanitizer"
