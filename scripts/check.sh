#!/usr/bin/env bash
# Concurrency + observability checks.
#
# 1. Docs/metrics lint: every metric or span name used at a RETIA_OBS_*
#    call site must be catalogued in docs/OBSERVABILITY.md (grep-based,
#    runs before any compile so it fails fast).
# 2. TSan smoke: builds the concurrency-sensitive test binaries (par_test,
#    serve_test, obs_test, obs_disabled_test) in Release with
#    -fsanitize=thread into build-tsan/ and runs the par/serve/obs-labelled
#    ctest suites under halt_on_error. Zero TSan reports is a hard
#    requirement: the par::ThreadPool sharding, the ServeEngine drain
#    ticks, and the obs hot paths (relaxed-atomic metrics, per-thread
#    trace rings) must be data-race-free, not just bit-identical.
#
# Usage: scripts/check.sh [build-dir]        (default: <repo>/build-tsan)
# Also registered as the ctest test `tsan_smoke` when the tree is
# configured with -DRETIA_SMOKE_TSAN=ON.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# ---------------------------------------------------------------------------
# Docs/metrics lint. Pull every string literal passed to a RETIA_OBS_*
# macro in the instrumented trees (comment lines skipped so usage examples
# in headers don't count) and require each name to appear in the
# catalogue.
CATALOGUE="${ROOT}/docs/OBSERVABILITY.md"
[ -f "${CATALOGUE}" ] || { echo "lint: ${CATALOGUE} missing" >&2; exit 1; }

missing=0
for name in $(grep -rh --include='*.cc' --include='*.h' \
    -E 'RETIA_OBS_(TIMED_SCOPE|TRACE_SPAN|COUNTER_ADD|GAUGE_SET|HIST_RECORD)\("' \
    "${ROOT}/src" "${ROOT}/bench" "${ROOT}/examples" 2>/dev/null \
    | grep -vE '^[[:space:]]*//' \
    | grep -oE '"[a-z0-9_.]+"' | tr -d '"' | sort -u); do
  if ! grep -qF "\`${name}\`" "${CATALOGUE}"; then
    echo "lint: metric '${name}' is used in the tree but not catalogued" \
         "in docs/OBSERVABILITY.md" >&2
    missing=1
  fi
done
[ "${missing}" -eq 0 ] || exit 1
echo "check.sh: every registered metric name is catalogued in docs/OBSERVABILITY.md"

# ---------------------------------------------------------------------------
# TSan smoke.
cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DRETIA_SANITIZE=thread \
  -DRETIA_SMOKE_TSAN=OFF

# Only the concurrency suites: building the whole tree under TSan is slow
# and the other suites exercise no cross-thread behaviour.
cmake --build "${BUILD}" -j "${JOBS}" \
  --target par_test serve_test obs_test obs_disabled_test

# halt_on_error: the first race fails the run instead of scrolling past.
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:${TSAN_OPTIONS}}" \
  ctest --test-dir "${BUILD}" -L "par|serve|obs" --output-on-failure

echo "check.sh: par|serve|obs suites clean under ThreadSanitizer"
