#!/usr/bin/env bash
# Concurrency, observability, and crash-safety checks.
#
# 1. Docs/metrics lint: every metric or span name used at a RETIA_OBS_*
#    call site must be catalogued in docs/OBSERVABILITY.md, and every
#    RETIA_* environment variable read anywhere in the tree must have a
#    row in the README env table (grep-based, runs before any compile so
#    it fails fast).
# 2. TSan smoke: builds the concurrency-sensitive test binaries (par_test,
#    par_task_graph_test, serve_test, serve_router_test, serve_batch_test,
#    stream_test, obs_test, obs_disabled_test, quant_test) in Release with -fsanitize=thread into
#    build-tsan/ and runs the par/serve/obs/stream/quant-labelled ctest
#    suites under halt_on_error. Zero TSan reports is a hard requirement:
#    the par::ThreadPool sharding, the TaskGraph inter-op scheduler
#    (randomized DAGs, nested submission, concurrent failures), the
#    ServeEngine drain ticks, per-timestamp once-semantics state entries
#    and snapshot hot-swap epoch pinning, the obs hot paths
#    (relaxed-atomic metrics, per-thread trace rings), and the GemmNTQuant
#    thread sweep must be data-race-free, not just bit-identical.
# 3. ASan ckpt+stream+par+quant suites: builds ckpt_test, stream_test,
#    par_test, par_task_graph_test, quant_test, and the ckpt_smoke /
#    stream_demo examples with -fsanitize=address into build-asan/ and
#    runs the ckpt-, stream-, par-, and quant-labelled ctest suites. The
#    artifact parser is fed corrupt and truncated bytes on purpose
#    (including the quantized q8/f16 sections), the task-graph stress
#    tests throw through runner teardown, and the quant harness walks
#    randomized shapes that straddle every vector-strip boundary, so all
#    of it runs under ASan to prove the bounds checks and lifetimes hold.
# 3b. Bench-gate cross-check: validates the committed BENCH_kernels.json
#    thread-sweep and quant blocks against their own host record — a
#    multi-core pin must have the thread-sweep gate enforced with > 1x
#    4-thread speedups on the inter-op benches; a vector-backend pin must
#    have the quant decode gate enforced at >= 2x with the snapshot ratio
#    >= 2x regardless; a single-core / scalar pin must say so instead of
#    pretending (scripts/bench_kernels.sh writes both blocks). Also
#    validates BENCH_serve.json structurally: the pinned serving run must
#    be a clean zero-drop pass over >= 2 replica processes with all
#    replicas agreeing on the post-hot-swap epoch, carry its host record
#    (num_cpus_effective), and include a batch block whose batched-vs-
#    unbatched comparison at batch >= 8 clears the 1.5x speedup floor
#    (scripts/bench_serve.sh re-pins all of it).
# 4. Kill-and-resume smokes: (a) trains the synthetic ckpt_smoke dataset
#    to completion, repeats the run with per-epoch state saves and a
#    RETIA_FAIL_CRASH_AFTER_RENAME SIGKILL mid-training (rc 137), resumes
#    from the surviving artifact, and requires the resumed parameters to
#    be byte-identical (cmp) to the uninterrupted run; (b) the same drill
#    against the streaming pipeline (stream_demo), with the SIGKILL landing
#    between a window's fine-tune checkpoint and its snapshot publish.
# 5. SIMD backend matrix: builds the full tree in Release into build-simd/
#    and runs the tier-1 ctest suite twice — once under the natively
#    dispatched backend (avx2/sse2/neon, whatever the host supports) and
#    once forced to the scalar reference via RETIA_SIMD=scalar. Both runs
#    must be green: the scalar run proves the legacy-bit-exact fallback
#    still carries the whole pipeline, the native run proves the vector
#    kernels hold every invariant the tests pin.
# 5b. Multi-process serving smoke: the serve_cluster demo runs a router
#    process against two replica processes over AF_UNIX sockets speaking
#    the versioned binary wire protocol. A coordinated hot-swap mid-load
#    must drop zero requests; a SIGKILLed replica must degrade only its
#    consistent-hash arc to shard_unavailable without hanging the router
#    (docs/SERVING_TOPOLOGY.md).
# 6. UBSan smoke over the vector kernels: builds simd_test and
#    tensor_property_test with -fsanitize=undefined (no-recover) into
#    build-ubsan/ and runs them. The exp bit tricks (int add on the
#    exponent field, shift-by-23, bitcasts) and the unaligned vector
#    loads are exactly the code UBSan exists for.
#
# Usage: scripts/check.sh [build-dir]        (default: <repo>/build-tsan)
# Also registered as the ctest test `tsan_smoke` when the tree is
# configured with -DRETIA_SMOKE_TSAN=ON.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build-tsan}"
BUILD_ASAN="${ROOT}/build-asan"
JOBS="$(nproc 2>/dev/null || echo 2)"

# ---------------------------------------------------------------------------
# Docs/metrics lint. Pull every string literal passed to a RETIA_OBS_*
# macro in the instrumented trees (comment lines skipped so usage examples
# in headers don't count) and require each name to appear in the
# catalogue.
CATALOGUE="${ROOT}/docs/OBSERVABILITY.md"
[ -f "${CATALOGUE}" ] || { echo "lint: ${CATALOGUE} missing" >&2; exit 1; }

missing=0
for name in $(grep -rh --include='*.cc' --include='*.h' \
    -E 'RETIA_OBS_(TIMED_SCOPE|TRACE_SPAN|COUNTER_ADD|GAUGE_SET|HIST_RECORD)\("' \
    "${ROOT}/src" "${ROOT}/bench" "${ROOT}/examples" 2>/dev/null \
    | grep -vE '^[[:space:]]*//' \
    | grep -oE '"[a-z0-9_.]+"' | tr -d '"' | sort -u); do
  if ! grep -qF "\`${name}\`" "${CATALOGUE}"; then
    echo "lint: metric '${name}' is used in the tree but not catalogued" \
         "in docs/OBSERVABILITY.md" >&2
    missing=1
  fi
done
[ "${missing}" -eq 0 ] || exit 1
echo "check.sh: every registered metric name is catalogued in docs/OBSERVABILITY.md"

# Env-var lint: every RETIA_* environment variable the tree reads (string
# literals in .cc/.h under src/, bench/, examples/ — all env access goes
# through util::Env on those literals) must have a row in the README env
# table. RETIA_OBS_* are macro names, not env vars, and are excluded.
ENV_README="${ROOT}/README.md"
missing=0
for var in $(grep -rh --include='*.cc' --include='*.h' -oE '"RETIA_[A-Z_]+"' \
    "${ROOT}/src" "${ROOT}/bench" "${ROOT}/examples" 2>/dev/null \
    | tr -d '"' | grep -vE '^RETIA_OBS_' | sort -u); do
  if ! grep -qE "^\| \`${var}(=[^\`]*)?\` \|" "${ENV_README}"; then
    echo "lint: env var '${var}' is read in the tree but has no row in the" \
         "README.md environment table" >&2
    missing=1
  fi
done
[ "${missing}" -eq 0 ] || exit 1
echo "check.sh: every RETIA_* env var read by the tree is documented in README.md"

# ---------------------------------------------------------------------------
# TSan smoke.
cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DRETIA_SANITIZE=thread \
  -DRETIA_SMOKE_TSAN=OFF

# Only the concurrency suites: building the whole tree under TSan is slow
# and the other suites exercise no cross-thread behaviour.
cmake --build "${BUILD}" -j "${JOBS}" \
  --target par_test par_task_graph_test serve_test serve_router_test \
           serve_batch_test stream_test obs_test obs_disabled_test quant_test

# halt_on_error: the first race fails the run instead of scrolling past.
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:${TSAN_OPTIONS}}" \
  ctest --test-dir "${BUILD}" -L "par|serve|obs|stream|quant" --output-on-failure

echo "check.sh: par|serve|obs|stream|quant suites clean under ThreadSanitizer"

# ---------------------------------------------------------------------------
# ASan ckpt suite. The corruption-matrix tests deliberately hand the
# artifact parser flipped, truncated, and trailing bytes; AddressSanitizer
# turns any missed bounds check into a hard failure instead of a lucky read.
cmake -B "${BUILD_ASAN}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DRETIA_SANITIZE=address \
  -DRETIA_SMOKE_TSAN=OFF

cmake --build "${BUILD_ASAN}" -j "${JOBS}" \
  --target ckpt_test stream_test par_test par_task_graph_test quant_test \
           ckpt_smoke stream_demo

ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+:${ASAN_OPTIONS}}" \
  ctest --test-dir "${BUILD_ASAN}" -L "ckpt|stream|par|quant" --output-on-failure

echo "check.sh: ckpt, stream, par, and quant suites clean under AddressSanitizer"

# ---------------------------------------------------------------------------
# Bench-gate cross-check: the committed thread-sweep gate must be
# internally consistent with the host it was pinned on.
python3 - "${ROOT}/BENCH_kernels.json" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

host = doc.get("host", {})
sweep = doc.get("thread_sweep")
if sweep is None:
    sys.exit(f"check.sh: {path} has no thread_sweep block — re-pin with "
             "scripts/bench_kernels.sh")
if "num_cpus_effective" not in host:
    sys.exit(f"check.sh: {path} host block lacks num_cpus_effective")

cpus = sweep.get("effective_cpus")
enforced = sweep.get("gate_enforced")
speedups = sweep.get("speedups_at_4t", {})
REQUIRED = ["BM_InterOpTimestepSweep/4", "BM_ScatterAddThreadSweep/4"]

if cpus is None or enforced is None or not sweep.get("reason"):
    sys.exit("check.sh: thread_sweep block is missing effective_cpus, "
             "gate_enforced, or reason")
if cpus >= 4:
    if not enforced:
        sys.exit(f"check.sh: pinned on a {cpus}-CPU host but the "
                 "thread-sweep gate is not enforced — re-pin")
    missing = [n for n in REQUIRED if n not in speedups]
    if missing:
        sys.exit(f"check.sh: enforced gate lacks inter-op rows: {missing}")
    slow = {n: s for n, s in speedups.items() if s <= 1.0}
    if slow:
        sys.exit(f"check.sh: enforced gate pinned with <= 1x 4-thread "
                 f"speedups: {slow}")
    print(f"check.sh: thread-sweep gate enforced ({cpus} CPUs, "
          f"{speedups})")
else:
    if enforced:
        sys.exit(f"check.sh: gate claims enforcement on a {cpus}-CPU "
                 "host — bench_kernels.sh would never pin that")
    print(f"check.sh: thread-sweep gate correctly recorded as not "
          f"enforced ({cpus} effective CPU(s))")

# The quant block's gates are single-threaded, so they are enforced (or
# honestly recorded as not, on scalar-dispatch hosts) regardless of CPU
# count — see docs/QUANTIZATION.md.
quant = doc.get("quant")
if quant is None:
    sys.exit(f"check.sh: {path} has no quant block — re-pin with "
             "scripts/bench_kernels.sh")
q_enforced = quant.get("gate_enforced")
if q_enforced is None or not quant.get("reason"):
    sys.exit("check.sh: quant block is missing gate_enforced or reason")
ratio = quant.get("snapshot_ratio")
if ratio is None or ratio < 2.0:
    sys.exit(f"check.sh: quantized snapshot ratio {ratio} is absent or "
             "below the 2x memory gate (deterministic — enforced on every "
             "host)")
if q_enforced:
    decode = quant.get("decode_speedup_int8_vs_f32", {}).get("30000")
    if decode is None or decode < 2.0:
        sys.exit(f"check.sh: enforced quant gate pinned with int8 decode "
                 f"speedup {decode} below 2x at N=30000")
    print(f"check.sh: quant gates enforced (decode {decode}x, snapshot "
          f"{ratio}x)")
else:
    print(f"check.sh: quant decode gate honestly not enforced "
          f"(scalar dispatch); snapshot ratio {ratio}x still gated")
PY

# Serving bench gate: the committed BENCH_serve.json must record a run in
# which every request the load generator issued came back ok through the
# router + wire protocol — across a mid-run coordinated hot-swap — and
# every replica ended the run on the same post-swap epoch. Absolute
# qps/latency are machine-dependent and not gated; the zero-drop and
# epoch-agreement structure is deterministic (scripts/bench_serve.sh).
python3 - "${ROOT}/BENCH_serve.json" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

for key in ("shards", "completed", "ok", "unavailable", "other_errors",
            "dropped", "swap_epoch", "qps", "p50_ms", "p99_ms"):
    if key not in doc:
        sys.exit(f"check.sh: {path} lacks '{key}' — re-pin with "
                 "scripts/bench_serve.sh")
if doc["shards"] < 2:
    sys.exit(f"check.sh: serving pin ran with {doc['shards']} shard(s) — "
             "the bench must exercise the multi-replica path")
if doc["dropped"] != 0 or doc["other_errors"] != 0 or doc["unavailable"] != 0:
    sys.exit(f"check.sh: serving pin is not a clean zero-drop run: "
             f"dropped={doc['dropped']} unavailable={doc['unavailable']} "
             f"other_errors={doc['other_errors']}")
if doc["ok"] != doc["completed"] or doc["completed"] <= 0:
    sys.exit(f"check.sh: serving pin ok={doc['ok']} != "
             f"completed={doc['completed']}")
if doc["swap_epoch"] != 1:
    sys.exit(f"check.sh: serving pin swap_epoch={doc['swap_epoch']} — the "
             "bench performs exactly one coordinated hot-swap, so every "
             "replica must agree on epoch 1")
if not (0 < doc["p50_ms"] <= doc["p99_ms"]) or doc["qps"] <= 0:
    sys.exit(f"check.sh: serving pin latencies are incoherent: "
             f"p50={doc['p50_ms']} p99={doc['p99_ms']} qps={doc['qps']}")
host = doc.get("host", {})
if "num_cpus_effective" not in host:
    sys.exit(f"check.sh: {path} host block lacks num_cpus_effective — "
             "re-pin with scripts/bench_serve.sh")
batch = doc.get("batch")
if batch is None:
    sys.exit(f"check.sh: {path} lacks the 'batch' block — re-pin with "
             "scripts/bench_serve.sh")
for key in ("batch_size", "qps_unbatched", "qps_batched", "speedup"):
    if key not in batch:
        sys.exit(f"check.sh: {path} batch block lacks '{key}'")
if batch["batch_size"] < 8:
    sys.exit(f"check.sh: batched pin ran at batch={batch['batch_size']} — "
             "the comparison must use batch >= 8")
if batch["speedup"] < 1.5:
    sys.exit(f"check.sh: batched serve speedup {batch['speedup']:.2f}x is "
             "below the 1.5x floor — the coalesced wire path regressed")
print(f"check.sh: serving pin structurally sound ({doc['shards']} shards, "
      f"{doc['completed']} requests, zero drops across the hot-swap; "
      f"batch={batch['batch_size']} speedup {batch['speedup']:.2f}x)")
PY

# ---------------------------------------------------------------------------
# Kill-and-resume smoke, on the ASan binary so the crash path is
# sanitized too. `straight` trains 4 epochs without checkpoints and dumps
# the final parameter bytes; `crashy` repeats the run with per-epoch state
# saves until retia::fail delivers SIGKILL right after the 3rd atomic
# rename (i.e. after epoch 2's save hits disk); `resume` reloads the
# surviving artifact, finishes the remaining epoch, and dumps its bytes.
# The two dumps must be identical — resume-exactness is cmp, not "close".
SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/retia_ckpt_smoke.XXXXXX")"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
SMOKE_BIN="${BUILD_ASAN}/examples/ckpt_smoke"

"${SMOKE_BIN}" straight "${SMOKE_DIR}"

rc=0
RETIA_FAIL_CRASH_AFTER_RENAME=3 "${SMOKE_BIN}" crashy "${SMOKE_DIR}" || rc=$?
if [ "${rc}" -ne 137 ]; then
  echo "check.sh: expected the crashy run to die with SIGKILL (rc 137)," \
       "got rc ${rc}" >&2
  exit 1
fi

"${SMOKE_BIN}" resume "${SMOKE_DIR}"

cmp "${SMOKE_DIR}/params_straight.bin" "${SMOKE_DIR}/params_resumed.bin"
echo "check.sh: resumed parameters byte-identical to the uninterrupted run"

# ---------------------------------------------------------------------------
# Streaming kill-and-resume smoke, same protocol against the online
# pipeline. With a snapshot prefix configured, each fine-tune window
# performs two atomic renames — the trainer checkpoint, then the serve
# snapshot — so RETIA_FAIL_CRASH_AFTER_RENAME=5 SIGKILLs the crashy run
# exactly between window 3's fine-tune checkpoint and its publish: the
# hardest crash point, where training state and serving state disagree.
# `resume` restores the checkpoint, republishes, replays the stream, and
# its parameter dump must be byte-identical to the uninterrupted run.
STREAM_DIR="$(mktemp -d "${TMPDIR:-/tmp}/retia_stream_smoke.XXXXXX")"
trap 'rm -rf "${SMOKE_DIR}" "${STREAM_DIR}"' EXIT
STREAM_BIN="${BUILD_ASAN}/examples/stream_demo"

"${STREAM_BIN}" straight "${STREAM_DIR}"

rc=0
RETIA_FAIL_CRASH_AFTER_RENAME=5 "${STREAM_BIN}" crashy "${STREAM_DIR}" || rc=$?
if [ "${rc}" -ne 137 ]; then
  echo "check.sh: expected the crashy stream run to die with SIGKILL" \
       "(rc 137), got rc ${rc}" >&2
  exit 1
fi

"${STREAM_BIN}" resume "${STREAM_DIR}"

cmp "${STREAM_DIR}/params_straight.bin" "${STREAM_DIR}/params_resumed.bin"
echo "check.sh: resumed stream parameters byte-identical to the uninterrupted run"

# ---------------------------------------------------------------------------
# SIMD backend matrix: the tier-1 suite under the native backend and again
# forced to the scalar reference. One Release tree, two ctest passes — the
# dispatch decision is runtime (RETIA_SIMD), not compile-time.
BUILD_SIMD="${ROOT}/build-simd"
cmake -B "${BUILD_SIMD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DRETIA_SMOKE_TSAN=OFF

cmake --build "${BUILD_SIMD}" -j "${JOBS}"

ctest --test-dir "${BUILD_SIMD}" --output-on-failure -j "${JOBS}"
echo "check.sh: tier-1 suite green under the native simd backend"

RETIA_SIMD=scalar \
  ctest --test-dir "${BUILD_SIMD}" --output-on-failure -j "${JOBS}"
echo "check.sh: tier-1 suite green under RETIA_SIMD=scalar"

# ---------------------------------------------------------------------------
# Multi-process serving smoke (examples/serve_cluster from the Release
# tree): a router process drives zipfian load through the binary wire
# protocol against two real replica processes on AF_UNIX sockets.
# Round 1: a coordinated hot-swap lands mid-load and every request must
# still come back ok (zero drops) with all replicas agreeing on the
# post-swap epoch. Round 2 (fresh replicas): one replica is SIGKILLed
# mid-load and only its arc may degrade — to kShardUnavailable, promptly
# (no hang; the whole round runs under `timeout`), while the surviving
# shard keeps serving with zero other errors. serve_cluster itself
# enforces both invariants via --expect-zero-drop / --expect-unavailable.
SERVE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/retia_serve_smoke.XXXXXX")"
SERVE_PIDS=""
trap 'kill -9 ${SERVE_PIDS} 2>/dev/null || true; \
      rm -rf "${SMOKE_DIR}" "${STREAM_DIR}" "${SERVE_DIR}"' EXIT
CLUSTER_BIN="${BUILD_SIMD}/examples/serve_cluster"

"${CLUSTER_BIN}" prepare "${SERVE_DIR}" >/dev/null

"${CLUSTER_BIN}" replica "${SERVE_DIR}" "${SERVE_DIR}/r0.sock" \
  >"${SERVE_DIR}/r0.log" 2>&1 &
ROUND1_A=$!
"${CLUSTER_BIN}" replica "${SERVE_DIR}" "${SERVE_DIR}/r1.sock" \
  >"${SERVE_DIR}/r1.log" 2>&1 &
ROUND1_B=$!
SERVE_PIDS="${ROUND1_A} ${ROUND1_B}"

timeout 300 "${CLUSTER_BIN}" load "${SERVE_DIR}" \
  "${SERVE_DIR}/r0.sock,${SERVE_DIR}/r1.sock" \
  --queries 2000 --clients 4 --swap-after 500 \
  --expect-zero-drop --shutdown >"${SERVE_DIR}/swap.json" 2>&1
echo "check.sh: hot-swap under load dropped zero requests across 2 replicas"

# Round-1 replicas unlink their socket path as they exit; wait for them
# so the rebinding round-2 replicas cannot lose a freshly-bound socket.
wait "${ROUND1_A}" "${ROUND1_B}" || true

"${CLUSTER_BIN}" replica "${SERVE_DIR}" "${SERVE_DIR}/r0.sock" \
  >"${SERVE_DIR}/r0b.log" 2>&1 &
SERVE_PIDS="${SERVE_PIDS} $!"
"${CLUSTER_BIN}" replica "${SERVE_DIR}" "${SERVE_DIR}/r1.sock" \
  >"${SERVE_DIR}/r1b.log" 2>&1 &
VICTIM=$!
SERVE_PIDS="${SERVE_PIDS} ${VICTIM}"

timeout 300 "${CLUSTER_BIN}" load "${SERVE_DIR}" \
  "${SERVE_DIR}/r0.sock,${SERVE_DIR}/r1.sock" \
  --queries 2000 --clients 4 --timeout-ms 2000 \
  --kill-after 300 --kill-pid "${VICTIM}" \
  --expect-unavailable --shutdown >"${SERVE_DIR}/kill.json" 2>&1
echo "check.sh: SIGKILLed replica degraded to shard_unavailable without" \
     "hanging the router; surviving shard kept serving"

# ---------------------------------------------------------------------------
# UBSan smoke over the vector kernels. -fno-sanitize-recover=all (set by
# the RETIA_SANITIZE=undefined branch in CMakeLists.txt) makes the first
# report fatal, so a green run means zero findings.
BUILD_UBSAN="${ROOT}/build-ubsan"
cmake -B "${BUILD_UBSAN}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DRETIA_SANITIZE=undefined \
  -DRETIA_SMOKE_TSAN=OFF

cmake --build "${BUILD_UBSAN}" -j "${JOBS}" \
  --target simd_test tensor_property_test

UBSAN_OPTIONS="print_stacktrace=1${UBSAN_OPTIONS:+:${UBSAN_OPTIONS}}" \
  ctest --test-dir "${BUILD_UBSAN}" -L simd --output-on-failure
UBSAN_OPTIONS="print_stacktrace=1${UBSAN_OPTIONS:+:${UBSAN_OPTIONS}}" \
  "${BUILD_UBSAN}/tests/tensor_property_test"

echo "check.sh: simd kernels clean under UndefinedBehaviorSanitizer"
