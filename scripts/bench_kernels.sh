#!/usr/bin/env bash
# Kernel-bench baseline: runs bench_micro_kernels twice — forced to the
# scalar reference backend and under native dispatch (avx2/sse2/neon,
# whatever the host supports) — and distills both google-benchmark JSON
# dumps into BENCH_kernels.json at the repo root:
#
#   {
#     "host": {...},                      # incl. num_cpus_effective (nproc)
#     "scalar":  { "<bench>": {ns, gflops, gbps, threads}, ... },
#     "native":  { "<bench>": {..., backend}, ... },
#     "speedup_native_vs_scalar": { "<bench>": x.xx, ... },
#     "thread_sweep": { effective_cpus, gate_enforced, reason,
#                       "speedups_at_4t": { "<bench>/4": x.xx, ... } }
#   }
#
# The committed BENCH_kernels.json is the pinned baseline the perf
# acceptance gates read (docs/PERFORMANCE.md): tensor.gemm at d=128 must
# hold >= 2x single-thread native-vs-scalar, no hot kernel may regress
# below 1.0x without a written justification, and the inter-op benches
# (BM_InterOpTimestepSweep, BM_ScatterAddThreadSweep) must show > 1x
# speedup at 4 threads.
#
# The thread-sweep gate is only meaningful when the host actually has the
# cores: google-benchmark's context.num_cpus can disagree with the cgroup
# quota, so the script records `nproc` as num_cpus_effective and REFUSES
# to enforce — or overwrite a previously enforced — thread-sweep gate when
# the effective count is below 4 (a 4-thread sweep on a 1-core host
# measures oversubscription, not scaling). Bit-identity across thread
# counts is still verified on every host: the sweep fixtures abort on any
# mismatch regardless of core count.
#
# Usage: scripts/bench_kernels.sh [build-dir]     (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
BIN="${BUILD}/bench/bench_micro_kernels"
OUT="${ROOT}/BENCH_kernels.json"

if [ ! -x "${BIN}" ]; then
  echo "bench_kernels.sh: ${BIN} not built — run:" >&2
  echo "  cmake -B ${BUILD} -S ${ROOT} && cmake --build ${BUILD} -j --target bench_micro_kernels" >&2
  exit 1
fi

TMP="$(mktemp -d "${TMPDIR:-/tmp}/retia_bench_kernels.XXXXXX")"
trap 'rm -rf "${TMP}"' EXIT

# The thread-sweep fixtures verify bit-identity internally; the graph
# fixtures (hypergraph construction, rgcn layers) are not kernel-bound
# and only add minutes, so the baseline keeps to the kernel rows.
FILTER='BM_(MatMul|MatMulOneHot|MatMulTransposeB|GatherScatter|Softmax|ElementwiseAdd|Adam|GemmThreadSweep|SoftmaxCrossEntropyThreadSweep|ScatterAddThreadSweep|InterOpTimestepSweep)'

echo "bench_kernels.sh: scalar pass"
RETIA_SIMD=scalar "${BIN}" \
  --benchmark_filter="${FILTER}" \
  --benchmark_format=json \
  --benchmark_out="${TMP}/scalar.json" \
  --benchmark_out_format=json > /dev/null

echo "bench_kernels.sh: native pass"
"${BIN}" \
  --benchmark_filter="${FILTER}" \
  --benchmark_format=json \
  --benchmark_out="${TMP}/native.json" \
  --benchmark_out_format=json > /dev/null

EFFECTIVE_CPUS="$(nproc)"

python3 - "${TMP}/scalar.json" "${TMP}/native.json" "${OUT}" \
    "${EFFECTIVE_CPUS}" <<'PY'
import json
import os
import sys

scalar_path, native_path, out_path = sys.argv[1:4]
effective_cpus = int(sys.argv[4])


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        row = {
            "ns_per_iter": round(b["real_time"], 1),
            "backend": b.get("label", ""),
        }
        if "flops" in b:
            row["gflops"] = round(b["flops"] / 1e9, 2)
        if "bytes_per_second" in b:
            row["gbps"] = round(b["bytes_per_second"] / 1e9, 2)
        if "threads" in b:
            row["threads"] = int(b["threads"])
        if "speedup_vs_1t" in b:
            row["speedup_vs_1t"] = round(b["speedup_vs_1t"], 2)
        rows[b["name"]] = row
    ctx = doc.get("context", {})
    host = {
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "build_type": ctx.get("library_build_type"),
    }
    return host, rows


host, scalar = load(scalar_path)
_, native = load(native_path)
host["num_cpus_effective"] = effective_cpus

speedup = {}
for name, srow in scalar.items():
    nrow = native.get(name)
    if nrow and nrow["ns_per_iter"] > 0:
        speedup[name] = round(srow["ns_per_iter"] / nrow["ns_per_iter"], 2)

# --- Inter-op thread-sweep gate -------------------------------------------
# > 1x at 4 threads on the inter-op benches, enforced only on hosts that
# actually have >= 4 effective cores. On smaller hosts the measured
# "speedup" is oversubscription noise, so the gate is recorded as not
# enforced — and a previously enforced gate pinned on a multi-core host is
# preserved verbatim rather than clobbered by meaningless numbers.
INTEROP_BENCHES = ["BM_InterOpTimestepSweep/4", "BM_ScatterAddThreadSweep/4"]
sweep_speedups = {}
for name in INTEROP_BENCHES:
    row = native.get(name, {})
    if "speedup_vs_1t" in row:
        sweep_speedups[name] = row["speedup_vs_1t"]

thread_sweep = {
    "effective_cpus": effective_cpus,
    "speedups_at_4t": sweep_speedups,
}
if effective_cpus >= 4:
    thread_sweep["gate_enforced"] = True
    thread_sweep["reason"] = (
        f"host has {effective_cpus} effective CPUs; > 1x at 4 threads "
        "enforced on the inter-op benches")
    missing = [n for n in INTEROP_BENCHES if n not in sweep_speedups]
    if missing:
        sys.exit(f"bench_kernels.sh: inter-op benches missing from the "
                 f"native run: {missing}")
    slow_sweep = {n: s for n, s in sweep_speedups.items() if s <= 1.0}
    if slow_sweep:
        sys.exit(f"bench_kernels.sh: inter-op benches below the > 1x "
                 f"4-thread gate: {slow_sweep}")
    print(f"bench_kernels.sh: inter-op 4-thread speedups {sweep_speedups} "
          f"(gate: > 1x)")
else:
    thread_sweep["gate_enforced"] = False
    thread_sweep["reason"] = (
        f"host reports {effective_cpus} effective CPU(s) (nproc); a "
        "4-thread sweep here measures oversubscription, not scaling — "
        "gate not enforced (bit-identity still verified in-process)")
    if os.path.exists(out_path):
        try:
            with open(out_path) as f:
                previous = json.load(f).get("thread_sweep", {})
        except (OSError, ValueError):
            previous = {}
        if previous.get("gate_enforced"):
            print("bench_kernels.sh: single-core host — preserving the "
                  "previously enforced thread-sweep gate "
                  f"(pinned at {previous.get('effective_cpus')} CPUs)")
            thread_sweep = previous
        else:
            print("bench_kernels.sh: single-core host — thread-sweep gate "
                  "recorded as not enforced")
    else:
        print("bench_kernels.sh: single-core host — thread-sweep gate "
              "recorded as not enforced")

result = {
    "host": host,
    "scalar": scalar,
    "native": native,
    "speedup_native_vs_scalar": speedup,
    "thread_sweep": thread_sweep,
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")

gate = speedup.get("BM_MatMul/128")
backend = native.get("BM_MatMul/128", {}).get("backend", "?")
if backend == "scalar":
    print("bench_kernels.sh: native dispatch resolved to scalar "
          "(no vector ISA on this host) — speedup gate skipped")
elif gate is None:
    sys.exit("bench_kernels.sh: BM_MatMul/128 missing from the run")
elif gate < 2.0:
    sys.exit(f"bench_kernels.sh: gemm d=128 native-vs-scalar speedup "
             f"{gate}x is below the 2x acceptance gate")
else:
    print(f"bench_kernels.sh: gemm d=128 {backend} speedup {gate}x "
          f"(gate: >= 2x)")

slow = {n: s for n, s in speedup.items() if s < 0.95}
if slow:
    sys.exit(f"bench_kernels.sh: kernels regress under the native "
             f"backend: {slow}")
print(f"bench_kernels.sh: wrote {out_path} ({len(speedup)} kernels, "
      f"no native regressions)")
PY
