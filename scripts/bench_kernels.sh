#!/usr/bin/env bash
# Kernel-bench baseline: runs bench_micro_kernels twice — forced to the
# scalar reference backend and under native dispatch (avx2/sse2/neon,
# whatever the host supports) — and distills both google-benchmark JSON
# dumps into BENCH_kernels.json at the repo root:
#
#   {
#     "host": {...},                      # incl. num_cpus_effective (nproc)
#     "scalar":  { "<bench>": {ns, gflops, gbps, threads}, ... },
#     "native":  { "<bench>": {..., backend}, ... },
#     "speedup_native_vs_scalar": { "<bench>": x.xx, ... },
#     "thread_sweep": { effective_cpus, gate_enforced, reason,
#                       "speedups_at_4t": { "<bench>/4": x.xx, ... } },
#     "quant":  { decode_speedup_int8_vs_f32, f32_bytes, quant_bytes,
#                 snapshot_ratio, gate_enforced, reason }
#   }
#
# The committed BENCH_kernels.json is the pinned baseline the perf
# acceptance gates read (docs/PERFORMANCE.md): tensor.gemm at d=128 must
# hold >= 2x single-thread native-vs-scalar, no hot kernel may regress
# below 1.0x without a written justification, and the inter-op benches
# (BM_InterOpTimestepSweep, BM_ScatterAddThreadSweep) must show > 1x
# speedup at 4 threads.
#
# The thread-sweep gate is only meaningful when the host actually has the
# cores: google-benchmark's context.num_cpus can disagree with the cgroup
# quota, so the script records `nproc` as num_cpus_effective and REFUSES
# to enforce — or overwrite a previously enforced — thread-sweep gate when
# the effective count is below 4 (a 4-thread sweep on a 1-core host
# measures oversubscription, not scaling). Bit-identity across thread
# counts is still verified on every host: the sweep fixtures abort on any
# mismatch regardless of core count.
#
# Usage: scripts/bench_kernels.sh [build-dir]     (default: <repo>/build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
BIN="${BUILD}/bench/bench_micro_kernels"
OUT="${ROOT}/BENCH_kernels.json"

if [ ! -x "${BIN}" ]; then
  echo "bench_kernels.sh: ${BIN} not built — run:" >&2
  echo "  cmake -B ${BUILD} -S ${ROOT} && cmake --build ${BUILD} -j --target bench_micro_kernels" >&2
  exit 1
fi

TMP="$(mktemp -d "${TMPDIR:-/tmp}/retia_bench_kernels.XXXXXX")"
trap 'rm -rf "${TMP}"' EXIT

# The thread-sweep fixtures verify bit-identity internally; the graph
# fixtures (hypergraph construction, rgcn layers) are not kernel-bound
# and only add minutes, so the baseline keeps to the kernel rows.
FILTER='BM_(MatMul|MatMulOneHot|MatMulTransposeB|GatherScatter|Softmax|ElementwiseAdd|Adam|QuantizeRowsI8|DecodeF32|DecodeQuantized|F16RoundTrip|QuantizedSnapshotBytes|GemmThreadSweep|SoftmaxCrossEntropyThreadSweep|ScatterAddThreadSweep|InterOpTimestepSweep)'

echo "bench_kernels.sh: scalar pass"
RETIA_SIMD=scalar "${BIN}" \
  --benchmark_filter="${FILTER}" \
  --benchmark_format=json \
  --benchmark_out="${TMP}/scalar.json" \
  --benchmark_out_format=json > /dev/null

echo "bench_kernels.sh: native pass"
"${BIN}" \
  --benchmark_filter="${FILTER}" \
  --benchmark_format=json \
  --benchmark_out="${TMP}/native.json" \
  --benchmark_out_format=json > /dev/null

EFFECTIVE_CPUS="$(nproc)"

python3 - "${TMP}/scalar.json" "${TMP}/native.json" "${OUT}" \
    "${EFFECTIVE_CPUS}" "${BIN}" <<'PY'
import json
import os
import re
import subprocess
import sys

scalar_path, native_path, out_path = sys.argv[1:4]
effective_cpus = int(sys.argv[4])
bench_bin = sys.argv[5]


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        # Per-benchmark options (->MinTime etc.) are appended to the name
        # as "key:value" path segments; strip them so lookups stay stable.
        name = "/".join(p for p in b["name"].split("/") if ":" not in p)
        row = {
            "ns_per_iter": round(b["real_time"], 1),
            "backend": b.get("label", ""),
        }
        if "flops" in b:
            row["gflops"] = round(b["flops"] / 1e9, 2)
        if "bytes_per_second" in b:
            row["gbps"] = round(b["bytes_per_second"] / 1e9, 2)
        if "threads" in b:
            row["threads"] = int(b["threads"])
        if "speedup_vs_1t" in b:
            row["speedup_vs_1t"] = round(b["speedup_vs_1t"], 2)
        # Snapshot-size counters from BM_QuantizedSnapshotBytes.
        for key in ("f32_bytes", "quant_bytes", "snapshot_ratio"):
            if key in b:
                row[key] = round(b[key], 2)
        rows[name] = row
    ctx = doc.get("context", {})
    host = {
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "build_type": ctx.get("library_build_type"),
    }
    return host, rows


host, scalar = load(scalar_path)
_, native = load(native_path)
host["num_cpus_effective"] = effective_cpus

speedup = {}
for name, srow in scalar.items():
    nrow = native.get(name)
    if nrow and nrow["ns_per_iter"] > 0:
        speedup[name] = round(srow["ns_per_iter"] / nrow["ns_per_iter"], 2)

# --- Inter-op thread-sweep gate -------------------------------------------
# > 1x at 4 threads on the inter-op benches, enforced only on hosts that
# actually have >= 4 effective cores. On smaller hosts the measured
# "speedup" is oversubscription noise, so the gate is recorded as not
# enforced — and a previously enforced gate pinned on a multi-core host is
# preserved verbatim rather than clobbered by meaningless numbers.
INTEROP_BENCHES = ["BM_InterOpTimestepSweep/4", "BM_ScatterAddThreadSweep/4"]
sweep_speedups = {}
for name in INTEROP_BENCHES:
    row = native.get(name, {})
    if "speedup_vs_1t" in row:
        sweep_speedups[name] = row["speedup_vs_1t"]

thread_sweep = {
    "effective_cpus": effective_cpus,
    "speedups_at_4t": sweep_speedups,
}
if effective_cpus >= 4:
    thread_sweep["gate_enforced"] = True
    thread_sweep["reason"] = (
        f"host has {effective_cpus} effective CPUs; > 1x at 4 threads "
        "enforced on the inter-op benches")
    missing = [n for n in INTEROP_BENCHES if n not in sweep_speedups]
    if missing:
        sys.exit(f"bench_kernels.sh: inter-op benches missing from the "
                 f"native run: {missing}")
    slow_sweep = {n: s for n, s in sweep_speedups.items() if s <= 1.0}
    if slow_sweep:
        sys.exit(f"bench_kernels.sh: inter-op benches below the > 1x "
                 f"4-thread gate: {slow_sweep}")
    print(f"bench_kernels.sh: inter-op 4-thread speedups {sweep_speedups} "
          f"(gate: > 1x)")
else:
    thread_sweep["gate_enforced"] = False
    thread_sweep["reason"] = (
        f"host reports {effective_cpus} effective CPU(s) (nproc); a "
        "4-thread sweep here measures oversubscription, not scaling — "
        "gate not enforced (bit-identity still verified in-process)")
    if os.path.exists(out_path):
        try:
            with open(out_path) as f:
                previous = json.load(f).get("thread_sweep", {})
        except (OSError, ValueError):
            previous = {}
        if previous.get("gate_enforced"):
            print("bench_kernels.sh: single-core host — preserving the "
                  "previously enforced thread-sweep gate "
                  f"(pinned at {previous.get('effective_cpus')} CPUs)")
            thread_sweep = previous
        else:
            print("bench_kernels.sh: single-core host — thread-sweep gate "
                  "recorded as not enforced")
    else:
        print("bench_kernels.sh: single-core host — thread-sweep gate "
              "recorded as not enforced")

# --- Quantized-inference gates (docs/QUANTIZATION.md) ---------------------
# Two acceptance gates ride the native pass:
#   * serve-decode throughput: BM_DecodeQuantized must be >= 2x BM_DecodeF32
#     at the serve-scale candidate count (N=30000). Single-threaded by
#     construction, so a 1-core host CAN enforce it — but a host whose
#     native dispatch is scalar has no vector int8 kernel to measure, so
#     there the gate is recorded honestly as not enforced (mirroring the
#     thread-sweep block) rather than failed.
#   * snapshot memory: the quantized artifact must be >= 2x smaller than
#     the f32 artifact for the same model. Deterministic byte counts, so
#     always enforced.
QUANT_DECODE_PAIR = ("BM_DecodeF32/30000", "BM_DecodeQuantized/30000")
quant = {"decode_speedup_int8_vs_f32": {}}
for nname in ["BM_DecodeQuantized/4096", "BM_DecodeQuantized/30000"]:
    fname = nname.replace("DecodeQuantized", "DecodeF32")
    frow, qrow = native.get(fname), native.get(nname)
    if frow and qrow and qrow["ns_per_iter"] > 0:
        quant["decode_speedup_int8_vs_f32"][nname.split("/")[1]] = round(
            frow["ns_per_iter"] / qrow["ns_per_iter"], 2)

snap = native.get("BM_QuantizedSnapshotBytes", {})
for key in ("f32_bytes", "quant_bytes", "snapshot_ratio"):
    if key in snap:
        quant[key] = round(snap[key], 2)

quant_backend = native.get(QUANT_DECODE_PAIR[1], {}).get("backend", "?")
decode_speedup = quant["decode_speedup_int8_vs_f32"].get("30000")
if quant_backend == "scalar":
    quant["gate_enforced"] = False
    quant["reason"] = (
        "native dispatch resolved to scalar (no vector int8 kernel on "
        "this host) — decode-throughput gate not enforced; tolerance "
        "harness still verifies the scalar path bit-exactly")
    print("bench_kernels.sh: quant decode gate skipped (scalar dispatch)")
else:
    quant["gate_enforced"] = True
    quant["reason"] = (
        f"single-threaded decode pair on backend '{quant_backend}'; "
        ">= 2x int8-vs-f32 at N=30000 and >= 2x snapshot bytes enforced")
    if decode_speedup is None:
        sys.exit("bench_kernels.sh: quant decode benches missing from the "
                 "native run")
    if decode_speedup < 2.0:
        sys.exit(f"bench_kernels.sh: int8 decode speedup {decode_speedup}x "
                 f"at N=30000 is below the 2x acceptance gate")
    print(f"bench_kernels.sh: int8 decode speedup {decode_speedup}x at "
          f"N=30000 (gate: >= 2x)")

ratio = quant.get("snapshot_ratio")
if ratio is None:
    sys.exit("bench_kernels.sh: BM_QuantizedSnapshotBytes missing from the "
             "native run")
if ratio < 2.0:
    sys.exit(f"bench_kernels.sh: quantized snapshot only {ratio}x smaller "
             f"than f32 — below the 2x memory gate")
print(f"bench_kernels.sh: quantized snapshot {ratio}x smaller (gate: >= 2x)")

result = {
    "host": host,
    "scalar": scalar,
    "native": native,
    "speedup_native_vs_scalar": speedup,
    "thread_sweep": thread_sweep,
    "quant": quant,
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")

gate = speedup.get("BM_MatMul/128")
backend = native.get("BM_MatMul/128", {}).get("backend", "?")
if backend == "scalar":
    print("bench_kernels.sh: native dispatch resolved to scalar "
          "(no vector ISA on this host) — speedup gate skipped")
elif gate is None:
    sys.exit("bench_kernels.sh: BM_MatMul/128 missing from the run")
elif gate < 2.0:
    sys.exit(f"bench_kernels.sh: gemm d=128 native-vs-scalar speedup "
             f"{gate}x is below the 2x acceptance gate")
else:
    print(f"bench_kernels.sh: gemm d=128 {backend} speedup {gate}x "
          f"(gate: >= 2x)")

# BM_QuantizedSnapshotBytes times an fsync-heavy artifact write, so its
# native/scalar ratio is I/O noise, not a kernel comparison. The 1M-element
# f16 round trip streams ~6 MB per iteration — bandwidth-bound on both
# backends, measured ratio oscillates 0.94-1.03 — so only the in-cache
# 65536-element size is held to the no-regression bar.
NOISE_BOUND = ("BM_QuantizedSnapshotBytes", "BM_F16RoundTrip/1048576")
slow = {n: s for n, s in speedup.items()
        if s < 0.95 and not n.startswith(NOISE_BOUND)}
if slow:
    # One-shot timing on a contended host carries ~15% noise, so a flagged
    # regression must reproduce in a clean re-measure of just those rows
    # before it fails the pin. The re-measured ratio also replaces the
    # noisy one in the written JSON.
    print(f"bench_kernels.sh: re-measuring sub-0.95 rows to separate "
          f"regression from timing noise: {slow}")

    def remeasure(names, scalar_backend):
        filt = "^(" + "|".join(re.escape(n) for n in names) + ")$"
        env = dict(os.environ)
        if scalar_backend:
            env["RETIA_SIMD"] = "scalar"
        else:
            env.pop("RETIA_SIMD", None)
        out = subprocess.run(
            [bench_bin, f"--benchmark_filter={filt}",
             "--benchmark_format=json"],
            env=env, capture_output=True, text=True, check=True).stdout
        times = {}
        for b in json.loads(out).get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            name = "/".join(p for p in b["name"].split("/")
                            if ":" not in p)
            times[name] = b["real_time"]
        return times

    names = sorted(slow)
    s_times = remeasure(names, scalar_backend=True)
    n_times = remeasure(names, scalar_backend=False)
    still_slow = {}
    for n in names:
        if n not in s_times or n not in n_times or n_times[n] <= 0:
            still_slow[n] = slow[n]
            continue
        ratio = round(s_times[n] / n_times[n], 2)
        speedup[n] = ratio
        if ratio < 0.95:
            still_slow[n] = ratio
    if still_slow:
        sys.exit(f"bench_kernels.sh: kernels regress under the native "
                 f"backend (reproduced on re-measure): {still_slow}")
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print("bench_kernels.sh: flagged rows re-measured clean — "
          "noise, not regression")
print(f"bench_kernels.sh: wrote {out_path} ({len(speedup)} kernels, "
      f"no native regressions)")
PY
