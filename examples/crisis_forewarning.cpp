// Crisis forewarning: the ICEWS-style use case motivating the paper's
// introduction. An analyst watches a stream of daily geopolitical events
// (country A "threatens" / "negotiates with" / "sanctions" country B, ...)
// and wants tomorrow's most likely events — both which actor a given
// country will target (entity forecasting) and *how* two countries will
// interact (relation forecasting).
//
// This example builds an ICEWS-like synthetic event stream with named
// actors and interaction types, trains RETIA, and prints a daily briefing
// for the first test day: top-3 forecast targets for several standing
// queries and the forecast interaction type for known tense pairs.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/retia.h"
#include "graph/graph_cache.h"
#include "tensor/tensor.h"
#include "tkg/synthetic.h"
#include "train/trainer.h"

namespace {

// Human-readable labels for a small geopolitical world. Entities beyond
// the named ones are "Org-<i>" actors (NGOs, parties, militias ...).
std::string ActorName(int64_t id) {
  static const char* kCountries[] = {
      "Arcadia", "Borduria", "Carpathia", "Drakmar",  "Elbonia",
      "Floria",  "Glubbdub", "Hyrkania",  "Illyria",  "Jotunheim",
      "Kyrat",   "Latveria", "Molvania",  "Novistrana", "Orsinia"};
  if (id < 15) return kCountries[id];
  return "Org-" + std::to_string(id);
}

std::string InteractionName(int64_t id) {
  static const char* kTypes[] = {
      "consults-with",    "makes-statement-about", "negotiates-with",
      "signs-agreement",  "provides-aid-to",       "threatens",
      "imposes-sanctions","protests-against",      "mobilizes-against",
      "fights"};
  if (id < 10) return kTypes[id];
  return "interaction-" + std::to_string(id);
}

}  // namespace

int main() {
  using namespace retia;

  // Daily event stream: many actors, low repetition, lots of novel events —
  // the ICEWS regime where extrapolation is hard and structure matters.
  tkg::SyntheticConfig config;
  config.name = "crisis-stream";
  config.num_entities = 150;
  config.num_relations = 10;
  config.num_timestamps = 60;
  config.facts_per_timestamp = 35;
  config.num_schemas = 300;
  config.min_period = 2;
  config.max_period = 14;
  config.repeat_prob = 0.5;
  config.noise_frac = 0.35;
  config.granularity = "24 hours";
  config.seed = 2026;
  tkg::TkgDataset events = tkg::GenerateSynthetic(config);
  std::cout << "event stream: " << events.train().size()
            << " historical events over "
            << events.train_times().size() << " days\n";

  core::RetiaConfig model_config;
  model_config.num_entities = events.num_entities();
  model_config.num_relations = events.num_relations();
  model_config.dim = 24;
  model_config.history_len = 4;
  core::RetiaModel model(model_config);

  graph::GraphCache cache(&events);
  train::TrainConfig tc;
  tc.max_epochs = 8;
  tc.patience = 3;
  train::Trainer trainer(&model, &cache, tc);
  std::cout << "training RETIA on the historical stream...\n";
  trainer.TrainGeneral();

  // Briefing for the first test day.
  const int64_t day = events.test_times().front();
  const std::vector<int64_t> history =
      cache.HistoryBefore(day, model_config.history_len);
  model.SetTraining(false);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, history);

  std::cout << "\n=== Daily briefing for day " << day << " ===\n";
  // Standing queries: who will the most active countries threaten or
  // negotiate with tomorrow?
  std::vector<std::pair<int64_t, int64_t>> queries;
  std::vector<std::string> descriptions;
  for (int64_t actor : {0, 1, 2}) {
    for (int64_t interaction : {2, 5}) {  // negotiates-with, threatens
      queries.emplace_back(actor, interaction);
      descriptions.push_back(ActorName(actor) + " --" +
                             InteractionName(interaction) + "--> ?");
    }
  }
  tensor::Tensor probs = model.ScoreObjects(states, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    // Top-3 candidates.
    std::vector<int64_t> order(events.num_entities());
    for (size_t j = 0; j < order.size(); ++j) order[j] = j;
    const float* row = probs.Data() + i * events.num_entities();
    std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                      [&](int64_t a, int64_t b) { return row[a] > row[b]; });
    std::cout << descriptions[i] << "  top-3: ";
    for (int j = 0; j < 3; ++j) {
      std::cout << ActorName(order[j]) << " ";
    }
    std::cout << "\n";
  }

  // Interaction-type forecast (relation forecasting) for watched pairs.
  std::vector<std::pair<int64_t, int64_t>> pairs = {{0, 1}, {2, 3}, {4, 5}};
  tensor::Tensor rel_probs = model.ScoreRelations(states, pairs);
  std::cout << "\nwatched pairs:\n";
  for (size_t i = 0; i < pairs.size(); ++i) {
    const float* row = rel_probs.Data() + i * events.num_relations();
    int64_t best = 0;
    for (int64_t r = 1; r < events.num_relations(); ++r) {
      if (row[r] > row[best]) best = r;
    }
    std::cout << "  " << ActorName(pairs[i].first) << " -- "
              << ActorName(pairs[i].second)
              << ": most likely interaction = " << InteractionName(best)
              << "\n";
  }

  // How good are these forecasts overall? Evaluate the whole test horizon
  // with online continuous updates (the deployment mode: each day's events
  // are folded in before forecasting the next day).
  eval::EvalResult result =
      trainer.Evaluate(events.test_times(), /*online=*/true);
  std::cout << "\nforecast quality over the test horizon: entity MRR "
            << result.entity.Mrr() << ", relation MRR "
            << result.relation.Mrr() << "\n";
  return 0;
}
