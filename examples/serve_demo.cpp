// Serving demo: train RETIA on a YAGO-like synthetic TKG, freeze it into a
// snapshot (one crash-safe retia::ckpt artifact), then serve TopK entity
// and relation queries from 8 concurrent client threads through
// retia::serve's batched, cached engine.
//
// Build and run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/serve_demo

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/result.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "tkg/synthetic.h"
#include "train/trainer.h"
#include "util/env.h"
#include "util/timer.h"

int main() {
  using namespace retia;

  // 1. Train a compact model on the YAGO-like profile (scaled down for a
  //    fast demo run).
  tkg::SyntheticConfig data_config = tkg::SyntheticConfig::YagoLike();
  data_config.num_entities = 120;
  data_config.facts_per_timestamp = 40;
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(data_config);

  core::RetiaConfig model_config;
  model_config.num_entities = dataset.num_entities();
  model_config.num_relations = dataset.num_relations();
  model_config.dim = 24;
  model_config.history_len = 3;
  core::RetiaModel model(model_config);

  graph::GraphCache train_cache(&dataset);
  train::TrainConfig train_config;
  train_config.max_epochs = 6;
  train_config.verbose = true;
  train::Trainer trainer(&model, &train_cache, train_config);
  util::Timer timer;
  trainer.TrainGeneral();
  std::cout << "training took " << util::FormatDuration(timer.Seconds())
            << "\n";

  // 2. Freeze: write the <prefix>.ckpt artifact, then rebuild the model
  //    from disk exactly as a standalone serving process would. Both calls
  //    report failures as ckpt::Result — a serving process refuses a bad
  //    snapshot instead of aborting.
  const std::string prefix =
      util::Env::StringOr("TMPDIR", "/tmp") + "/retia_serve_demo";
  if (ckpt::Result saved =
          serve::SaveModelSnapshot(model, prefix, dataset.name());
      !saved.ok()) {
    std::cerr << "failed to save snapshot: " << saved.ToString() << "\n";
    return 1;
  }
  std::string snapshot_dataset;
  std::unique_ptr<core::RetiaModel> frozen;
  if (ckpt::Result loaded =
          serve::LoadModelSnapshot(prefix, &frozen, &snapshot_dataset);
      !loaded.ok()) {
    std::cerr << "failed to load snapshot: " << loaded.ToString() << "\n";
    return 1;
  }
  std::cout << "snapshot " << prefix << ".ckpt (dataset '"
            << snapshot_dataset << "', " << frozen->NumParameters()
            << " parameters)\n";

  // 3. Serve the first test timestamp: its history is everything observed
  //    before it, exactly the extrapolation protocol.
  graph::GraphCache serve_cache(&dataset);
  serve::ServeConfig serve_config;
  serve_config.num_threads = 4;
  serve_config.max_batch = 32;
  serve_config.max_k = 10;
  serve::ServeEngine engine(frozen.get(), &serve_cache, serve_config);
  const int64_t t = dataset.test_times().front();
  engine.Warmup(t);
  engine.ResetStats();

  // 8 client threads issue a mixed entity/relation workload with repeats,
  // so a share of the traffic is answered by the prediction cache.
  constexpr int kClients = 8;
  constexpr int64_t kQueriesPerClient = 400;
  timer.Reset();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int64_t n = dataset.num_entities();
      const int64_t m = dataset.num_relations();
      for (int64_t i = 0; i < kQueriesPerClient; ++i) {
        // Skewed ids: low ids repeat often and hit the cache.
        const int64_t s = (i * (c + 3)) % (i % 4 == 0 ? 8 : n);
        if (i % 5 == 4) {
          engine.TopKRelation(s, (s + 7) % n, t, 5);
        } else {
          engine.TopK(s, (i * 13) % (2 * m), t, 5);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  std::cout << kClients << " clients x " << kQueriesPerClient
            << " queries in " << util::FormatDuration(timer.Seconds()) << "\n";

  // 4. One sample answer plus the engine's stats as JSON.
  const serve::TopKResult sample = engine.TopK(0, 0, t, 5);
  std::cout << "TopK(s=0, r=0, t=" << t << ") ->";
  for (const serve::ScoredCandidate& c : sample.candidates) {
    std::cout << " " << c.id << ":" << c.score;
  }
  std::cout << (sample.cache_hit ? " (cache hit)" : " (decoded)") << "\n";
  std::cout << "stats: " << engine.Stats().ToJson() << std::endl;
  return 0;
}
