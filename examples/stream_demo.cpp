// Online-ingestion demo and crash/resume smoke driver for retia::stream.
//
// Demo mode (no arguments): streams a few timesteps of synthetic events
// into a StreamPipeline — ingest, fine-tune, zero-downtime publish — and
// shows a query whose answer changes once its fact has flowed through one
// fine-tune window. Knobs (all via util::Env, see README):
//
//   RETIA_STREAM_WINDOW   sealed timesteps per fine-tune window   (1)
//   RETIA_STREAM_STEPS    gradient steps per timestep             (8)
//   RETIA_STREAM_LR       online learning rate                    (0.1)
//   RETIA_STREAM_POLICY   unseen entities: reject|grow            (grow)
//
// Smoke modes, used by scripts/check.sh to prove bit-exact resume of the
// streaming pipeline against a real SIGKILL (same protocol as ckpt_smoke):
//
//   stream_demo straight <dir>  stream 4 windows uninterrupted, dump the
//                               final parameters to
//                               <dir>/params_straight.bin
//   stream_demo crashy <dir>    same stream, checkpointing each window to
//                               <dir>/stream.ckpt and publishing serve
//                               snapshots to <dir>/stream_snap.ckpt; the
//                               caller arms RETIA_FAIL_CRASH_AFTER_RENAME
//                               so the process SIGKILLs between a window's
//                               fine-tune checkpoint and its publish
//   stream_demo resume <dir>    Resume() from <dir>/stream.ckpt, replay
//                               the stream, dump
//                               <dir>/params_resumed.bin
//
// The two .bin dumps must be byte-identical (`cmp` in check.sh).

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/result.h"
#include "core/retia.h"
#include "serve/engine.h"
#include "stream/ingest.h"
#include "stream/pipeline.h"
#include "tkg/synthetic.h"
#include "util/env.h"
#include "util/rng.h"

namespace {

using namespace retia;

std::unique_ptr<tkg::TkgDataset> MakeLiveDataset() {
  tkg::SyntheticConfig config;
  config.name = "stream-demo";
  config.num_entities = 60;
  config.num_relations = 8;
  config.num_timestamps = 16;
  config.facts_per_timestamp = 15;
  config.num_schemas = 60;
  return std::make_unique<tkg::TkgDataset>(tkg::GenerateSynthetic(config));
}

std::unique_ptr<core::RetiaModel> MakeModel(const tkg::TkgDataset& d) {
  core::RetiaConfig config;
  config.num_entities = d.num_entities();
  config.num_relations = d.num_relations();
  config.dim = 16;
  config.history_len = 2;
  // Dropout makes fine-tuning consume the model RNG, so the smoke also
  // proves the RNG stream round-trips through the stream checkpoint.
  config.dropout = 0.2f;
  return std::make_unique<core::RetiaModel>(config);
}

// Deterministic event bucket for stream timestep `t`: mostly in-vocabulary
// facts, plus (under the grow policy) one fact introducing entity id
// `base_entities + step` so vocabulary growth is exercised.
std::vector<tkg::Quadruple> EventsAt(int64_t t, int64_t step,
                                     int64_t base_entities,
                                     int64_t num_relations, bool grow) {
  util::Rng rng(static_cast<uint64_t>(900 + step));
  std::vector<tkg::Quadruple> events;
  for (int64_t i = 0; i < 8; ++i) {
    events.push_back({rng.UniformInt(0, base_entities - 1),
                      rng.UniformInt(0, num_relations - 1),
                      rng.UniformInt(0, base_entities - 1), t});
  }
  if (grow) {
    events.push_back({base_entities + step, rng.UniformInt(0, num_relations - 1),
                      rng.UniformInt(0, base_entities - 1), t});
  }
  return events;
}

bool DumpParams(const core::RetiaModel& model, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  for (const tensor::Tensor& p :
       const_cast<core::RetiaModel&>(model).Parameters()) {
    const std::vector<float>& data = p.impl().data;
    if (std::fwrite(data.data(), sizeof(float), data.size(), f) !=
        data.size()) {
      std::fclose(f);
      return false;
    }
  }
  return std::fclose(f) == 0;
}

int RunSmoke(const std::string& mode, const std::string& dir) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  const int64_t base_entities = live->num_entities();
  const int64_t num_relations = live->num_relations();
  const int64_t t0 = live->max_time();
  std::unique_ptr<core::RetiaModel> model = MakeModel(*live);

  stream::StreamPipelineConfig config;
  config.window = 1;
  config.ingest.unseen_policy = stream::UnseenPolicy::kGrowEntities;
  config.trainer.steps_per_time = 2;
  config.trainer.lr = 0.01f;
  if (mode == "crashy" || mode == "resume") {
    config.trainer.checkpoint_path = dir + "/stream.ckpt";
    config.snapshot_prefix = dir + "/stream_snap";
  }
  stream::StreamPipeline pipeline(std::move(model), std::move(live), config);

  if (mode == "resume") {
    const ckpt::Result resumed = pipeline.Resume();
    if (!resumed.ok()) {
      std::cerr << "resume failed: " << resumed.ToString() << "\n";
      return 1;
    }
    std::cout << "resumed through t=" << pipeline.trainer().last_trained_time()
              << " after " << pipeline.Status().updates << " updates\n";
  }

  // The same 4-window stream in every mode; replayed windows that the
  // resumed checkpoint already covers are appended for history only.
  constexpr int64_t kWindows = 4;
  for (int64_t step = 1; step <= kWindows; ++step) {
    const int64_t t = t0 + step;
    pipeline.OfferBatch(
        EventsAt(t, step, base_entities, num_relations, /*grow=*/true));
    pipeline.AdvanceTo(t + 1);
    std::cout << "window " << step << ": frontier=" << pipeline.Status().frontier
              << " updates=" << pipeline.Status().updates
              << " publishes=" << pipeline.Status().publishes << "\n";
  }

  if (mode == "crashy") return 0;  // (only reached when the crash is disarmed)
  const std::string dump = dir + (mode == "straight" ? "/params_straight.bin"
                                                     : "/params_resumed.bin");
  if (!DumpParams(pipeline.trainer().model(), dump)) {
    std::cerr << "failed to write " << dump << "\n";
    return 1;
  }
  std::cout << "wrote " << dump << "\n";
  return 0;
}

int RunDemo() {
  const int64_t window = util::Env::PositiveIntOr("RETIA_STREAM_WINDOW", 1);
  const int64_t steps = util::Env::PositiveIntOr("RETIA_STREAM_STEPS", 8);
  const double lr = util::Env::FloatOr("RETIA_STREAM_LR", 0.1);
  const std::string policy =
      util::Env::StringOr("RETIA_STREAM_POLICY", "grow");

  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  const int64_t base_entities = live->num_entities();
  const int64_t num_relations = live->num_relations();
  const int64_t t0 = live->max_time();
  std::unique_ptr<core::RetiaModel> model = MakeModel(*live);

  stream::StreamPipelineConfig config;
  config.window = window;
  config.ingest.unseen_policy = policy == "reject"
                                    ? stream::UnseenPolicy::kReject
                                    : stream::UnseenPolicy::kGrowEntities;
  config.trainer.steps_per_time = steps;
  config.trainer.lr = static_cast<float>(lr);
  stream::StreamPipeline pipeline(std::move(model), std::move(live), config);

  // A fresh fact the base model has never seen, repeated within its
  // timestep: the demo's "breaking news". It arrives in the newest
  // window, so its fine-tune update is the last one before the query.
  const int64_t s = 3, r = 2, o = 17;
  const int64_t t_news = t0 + 3;
  const int64_t k = 5;
  std::cout << "before ingest, top-" << k << " objects for (s=" << s
            << ", r=" << r << "):";
  for (const serve::ScoredCandidate& c :
       pipeline.engine().TopK(s, r, t_news + 1, k).candidates) {
    std::cout << " " << c.id;
  }
  std::cout << "\n";

  // Stream a few timesteps; the news fact arrives 20 times at t_news.
  for (int64_t step = 1; step <= 3; ++step) {
    const int64_t t = t0 + step;
    if (t == t_news) {
      pipeline.OfferBatch(std::vector<tkg::Quadruple>(
          20, tkg::Quadruple{s, r, o, t_news}));
    }
    pipeline.OfferBatch(EventsAt(t, step, base_entities, num_relations,
                                 policy != "reject"));
    pipeline.AdvanceTo(t + 1);
  }
  pipeline.FlushAndPublish();

  std::cout << "after " << pipeline.Status().publishes
            << " publishes, top-" << k << " objects for (s=" << s
            << ", r=" << r << "):";
  for (const serve::ScoredCandidate& c :
       pipeline.engine().TopK(s, r, t_news + 1, k).candidates) {
    std::cout << " " << c.id;
  }
  std::cout << "\n";

  const stream::StreamStatus status = pipeline.Status();
  std::cout << "ingest: offered=" << status.ingest.offered
            << " accepted=" << status.ingest.accepted
            << " grown_entities=" << status.ingest.grown_entities
            << " sealed_buckets=" << status.ingest.sealed_buckets << "\n"
            << "train: updates=" << status.updates
            << " last_trained_t=" << status.last_trained_time << "\n";
  if (!pipeline.staleness_us().empty()) {
    int64_t max_us = 0;
    for (int64_t us : pipeline.staleness_us()) max_us = std::max(max_us, us);
    std::cout << "staleness: " << pipeline.staleness_us().size()
              << " facts, max " << max_us << " us\n";
  }
  std::cout << "serve: " << pipeline.engine().Stats().ToJson() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return RunDemo();
  if (argc != 3) {
    std::cerr << "usage: stream_demo [straight|crashy|resume <dir>]\n";
    return 2;
  }
  const std::string mode = argv[1];
  if (mode != "straight" && mode != "crashy" && mode != "resume") {
    std::cerr << "unknown mode '" << mode << "'\n";
    return 2;
  }
  return RunSmoke(mode, argv[2]);
}
