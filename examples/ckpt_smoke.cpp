// Crash/resume smoke driver for retia::ckpt, used by scripts/check.sh to
// prove resume-exact training end to end against a real SIGKILL:
//
//   ckpt_smoke straight <dir>   train 4 epochs uninterrupted, dump the
//                               final parameter bytes to
//                               <dir>/params_straight.bin
//   ckpt_smoke crashy <dir>     same run, saving the training state to
//                               <dir>/state.ckpt after every epoch; the
//                               caller arms RETIA_FAIL_CRASH_AFTER_RENAME
//                               so the process is SIGKILLed mid-run
//   ckpt_smoke resume <dir>     resume from <dir>/state.ckpt, finish the
//                               run, dump <dir>/params_resumed.bin
//
// The two .bin dumps must be byte-identical (`cmp` in check.sh): the
// dropout RNG stream, Adam moments and best-validation snapshot all
// round-trip through the artifact.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ckpt/result.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "tkg/synthetic.h"
#include "train/trainer.h"

namespace {

retia::tkg::TkgDataset MakeDataset() {
  retia::tkg::SyntheticConfig config;
  config.name = "ckpt-smoke";
  config.num_entities = 60;
  config.num_relations = 8;
  config.num_timestamps = 20;
  config.facts_per_timestamp = 15;
  config.num_schemas = 60;
  return retia::tkg::GenerateSynthetic(config);
}

retia::core::RetiaConfig MakeModelConfig(const retia::tkg::TkgDataset& d) {
  retia::core::RetiaConfig config;
  config.num_entities = d.num_entities();
  config.num_relations = d.num_relations();
  config.dim = 16;
  config.history_len = 2;
  // Dropout makes training consume the model RNG, so this smoke also
  // proves the RNG stream round-trips through the artifact.
  config.dropout = 0.2f;
  return config;
}

bool DumpParams(const retia::core::RetiaModel& model,
                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  for (const retia::tensor::Tensor& p :
       const_cast<retia::core::RetiaModel&>(model).Parameters()) {
    const std::vector<float>& data = p.impl().data;
    if (std::fwrite(data.data(), sizeof(float), data.size(), f) !=
        data.size()) {
      std::fclose(f);
      return false;
    }
  }
  return std::fclose(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace retia;
  if (argc != 3) {
    std::cerr << "usage: ckpt_smoke straight|crashy|resume <dir>\n";
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  const std::string state_path = dir + "/state.ckpt";

  const tkg::TkgDataset dataset = MakeDataset();
  core::RetiaModel model(MakeModelConfig(dataset));
  graph::GraphCache cache(&dataset);

  train::TrainConfig tc;
  tc.max_epochs = 4;
  tc.patience = 99;
  tc.verbose = true;
  if (mode == "crashy" || mode == "resume") tc.checkpoint_path = state_path;
  train::Trainer trainer(&model, &cache, tc);

  if (mode == "resume") {
    ckpt::Result resumed = trainer.ResumeState(state_path);
    if (!resumed.ok()) {
      std::cerr << "resume failed: " << resumed.ToString() << "\n";
      return 1;
    }
    std::cout << "resumed at epoch " << trainer.next_epoch() << "\n";
  } else if (mode != "straight" && mode != "crashy") {
    std::cerr << "unknown mode '" << mode << "'\n";
    return 2;
  }

  trainer.TrainGeneral();

  const std::string dump =
      dir + (mode == "straight" ? "/params_straight.bin"
                                : "/params_resumed.bin");
  if (mode != "crashy" && !DumpParams(model, dump)) {
    std::cerr << "failed to write " << dump << "\n";
    return 1;
  }
  if (mode != "crashy") std::cout << "wrote " << dump << "\n";
  return 0;
}
