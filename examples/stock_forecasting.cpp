// Stock forecasting: the second use case the paper's introduction cites.
// Market events form a TKG: (fund, increases-stake-in, company, day),
// (company, announces-partnership-with, company, day), (analyst,
// upgrades, company, day) ... Forecasting the next day's interactions
// (who buys what, who partners with whom) is TKG extrapolation.
//
// This example also demonstrates the *custom dataset* path: instead of the
// built-in generator it assembles quadruples programmatically (as a user
// would from their own event feed), saves them in the benchmark TSV format,
// reloads them, and splits by time — the exact pipeline for real data.

#include <iostream>
#include <vector>

#include "core/retia.h"
#include "graph/graph_cache.h"
#include "tkg/dataset.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace {

// A tiny structured market simulator (stand-in for a real event feed).
// Sector structure creates the graph regularities RETIA exploits: funds
// rotate within their sector, partnerships cluster inside sectors, and
// analyst coverage follows fund activity one day later.
std::vector<retia::tkg::Quadruple> SimulateMarketEvents(
    int64_t days, int64_t* num_entities, int64_t* num_relations) {
  constexpr int64_t kFunds = 20;      // ids 0..19
  constexpr int64_t kCompanies = 60;  // ids 20..79
  constexpr int64_t kAnalysts = 10;   // ids 80..89
  constexpr int64_t kSectors = 6;
  *num_entities = kFunds + kCompanies + kAnalysts;
  // Relations: 0 increases-stake, 1 decreases-stake, 2 partners-with,
  // 3 upgrades, 4 downgrades.
  *num_relations = 5;
  retia::util::Rng rng(888);
  std::vector<retia::tkg::Quadruple> events;
  auto company_in_sector = [&](int64_t sector) {
    return 20 + sector * (kCompanies / kSectors) +
           rng.UniformInt(0, kCompanies / kSectors - 1);
  };
  std::vector<int64_t> fund_sector(kFunds);
  for (int64_t f = 0; f < kFunds; ++f) fund_sector[f] = f % kSectors;
  std::vector<retia::tkg::Quadruple> yesterday_buys;
  for (int64_t day = 0; day < days; ++day) {
    std::vector<retia::tkg::Quadruple> today;
    // Funds trade inside their sector, with periodic rebalancing.
    for (int64_t f = 0; f < kFunds; ++f) {
      if ((day + f) % 3 != 0) continue;
      const int64_t company = company_in_sector(fund_sector[f]);
      const int64_t rel = rng.Bernoulli(0.7) ? 0 : 1;
      today.push_back({f, rel, company, day});
    }
    // Partnerships cluster within sectors and recur weekly.
    for (int64_t s = 0; s < kSectors; ++s) {
      if ((day + s) % 7 < 5) continue;
      int64_t a = company_in_sector(s);
      int64_t b = company_in_sector(s);
      if (a != b) today.push_back({a, 2, b, day});
    }
    // Analysts react to yesterday's stake increases.
    for (const auto& buy : yesterday_buys) {
      if (buy.relation != 0 || !rng.Bernoulli(0.6)) continue;
      const int64_t analyst = 80 + rng.UniformInt(0, kAnalysts - 1);
      today.push_back({analyst, 3, buy.object, day});
    }
    // A little market noise.
    for (int i = 0; i < 4; ++i) {
      const int64_t analyst = 80 + rng.UniformInt(0, kAnalysts - 1);
      const int64_t company = 20 + rng.UniformInt(0, kCompanies - 1);
      today.push_back({analyst, rng.Bernoulli(0.5) ? 3 : 4, company, day});
    }
    yesterday_buys = today;
    events.insert(events.end(), today.begin(), today.end());
  }
  return events;
}

}  // namespace

int main() {
  using namespace retia;

  // 1. Assemble events as a user would from their own feed.
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  std::vector<tkg::Quadruple> events =
      SimulateMarketEvents(80, &num_entities, &num_relations);
  std::cout << "simulated " << events.size() << " market events\n";

  // 2. Round-trip through the benchmark TSV format (the path real data
  //    takes into this library).
  const std::string path = "/tmp/retia_market_events.tsv";
  tkg::SaveQuadrupleFile(path, events);
  std::vector<tkg::Quadruple> loaded = tkg::LoadQuadrupleFile(path);
  std::cout << "reloaded " << loaded.size() << " events from " << path
            << "\n";

  // 3. 80/10/10 split by time and dataset assembly.
  std::vector<tkg::Quadruple> train, valid, test;
  tkg::SplitByTime(loaded, tkg::SplitProportions{}, &train, &valid, &test);
  tkg::TkgDataset market("market", num_entities, num_relations, train, valid,
                         test, "24 hours");

  // 4. Train RETIA and evaluate with online continuous updates.
  core::RetiaConfig config;
  config.num_entities = market.num_entities();
  config.num_relations = market.num_relations();
  config.dim = 24;
  config.history_len = 4;  // analyst reactions lag one day; weekly cycles
  core::RetiaModel model(config);
  graph::GraphCache cache(&market);
  train::TrainConfig tc;
  tc.max_epochs = 10;
  tc.patience = 3;
  train::Trainer trainer(&model, &cache, tc);
  std::cout << "training...\n";
  trainer.TrainGeneral();
  eval::EvalResult result =
      trainer.Evaluate(market.test_times(), /*online=*/true);
  std::cout << "next-day forecasting quality: entity MRR "
            << result.entity.Mrr() << " (Hits@3 " << result.entity.Hits3()
            << "), interaction-type MRR " << result.relation.Mrr() << "\n";

  // 5. Concrete forecast: which companies will fund 0 increase its stake
  //    in on the first test day?
  const int64_t day = market.test_times().front();
  model.SetTraining(false);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(day, 4));
  tensor::Tensor probs = model.ScoreObjects(states, {{0, 0}});
  int64_t best = 0;
  for (int64_t j = 1; j < market.num_entities(); ++j) {
    if (probs.At(0, j) > probs.At(0, best)) best = j;
  }
  std::cout << "fund 0 most likely to increase stake in company " << best
            << " on day " << day << "\n";
  return 0;
}
