// Quickstart: train RETIA on a small synthetic temporal knowledge graph and
// forecast future entities and relations.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdint>
#include <iostream>

#include "core/retia.h"
#include "graph/graph_cache.h"
#include "tkg/synthetic.h"
#include "train/trainer.h"
#include "util/timer.h"

int main() {
  using namespace retia;

  // 1. Data: a compact TKG with recurring event schemas. Swap in
  //    tkg::LoadQuadrupleFile(...) + tkg::SplitByTime(...) for real data.
  tkg::SyntheticConfig data_config;
  data_config.name = "quickstart";
  data_config.num_entities = 120;
  data_config.num_relations = 12;
  data_config.num_timestamps = 40;
  data_config.facts_per_timestamp = 30;
  data_config.num_schemas = 160;
  data_config.max_period = 4;
  data_config.repeat_prob = 0.85;
  data_config.noise_frac = 0.1;
  tkg::TkgDataset dataset = tkg::GenerateSynthetic(data_config);
  std::cout << "dataset: " << dataset.name() << " with "
            << dataset.train().size() << " train / " << dataset.valid().size()
            << " valid / " << dataset.test().size() << " test facts\n";

  // 2. Model: RETIA with its default twin-interact configuration.
  core::RetiaConfig config;
  config.num_entities = dataset.num_entities();
  config.num_relations = dataset.num_relations();
  config.dim = 24;
  config.history_len = 3;
  core::RetiaModel model(config);
  std::cout << "model parameters: " << model.NumParameters() << "\n";

  // 3. General training with early stopping on the validation split.
  graph::GraphCache cache(&dataset);
  train::TrainConfig train_config;
  train_config.max_epochs = 12;
  train_config.verbose = true;
  train::Trainer trainer(&model, &cache, train_config);
  util::Timer timer;
  trainer.TrainGeneral();
  std::cout << "general training took " << util::FormatDuration(timer.Seconds())
            << "\n";

  // 4. Test evaluation with online continuous training (the paper's
  //    time-variability strategy).
  timer.Reset();
  eval::EvalResult result =
      trainer.Evaluate(dataset.test_times(), /*online=*/true);
  std::cout << "test entity   MRR " << result.entity.Mrr() << "  Hits@1 "
            << result.entity.Hits1() << "  Hits@3 " << result.entity.Hits3()
            << "  Hits@10 " << result.entity.Hits10() << "\n";
  std::cout << "test relation MRR " << result.relation.Mrr() << "\n";
  std::cout << "evaluation took " << util::FormatDuration(timer.Seconds())
            << "\n";
  return 0;
}
