// Command-line trainer: runs RETIA on a dataset in the standard benchmark
// TSV format (one fact per line: "subject\trelation\tobject\ttimestamp",
// integer ids). This is the path for using this library on the original
// ICEWS/YAGO/WIKI dumps or any custom TKG export.
//
// Usage:
//   train_from_tsv <quadruples.tsv> [options]
//     --granularity N     divide raw timestamps by N (e.g. 24 for hourly
//                         ICEWS dumps sliced into days)        [default 1]
//     --dim N             embedding dimensionality             [default 32]
//     --history N         history length k                     [default 3]
//     --epochs N          max general-training epochs          [default 15]
//     --patience N        early-stopping patience              [default 5]
//     --offline           skip online continuous training
//     --filtered          report time-aware filtered metrics too
//     --save PATH         write a parameter checkpoint after training
//     --load PATH         start from a parameter checkpoint (skips
//                         training if --epochs 0)
//     --resume PATH       crash-safe training: save the full training
//                         state (parameters, Adam, RNG, epoch cursor) to
//                         PATH after every epoch, and continue from it
//                         when PATH already exists. A killed run resumed
//                         this way reaches bit-identical parameters. The
//                         RETIA_RESUME environment variable is an
//                         equivalent spelling (the flag wins).
//
// With no argument, a demonstration dataset is generated, saved to
// /tmp/retia_demo.tsv and used, so the binary is runnable standalone.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>

#include "ckpt/result.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "nn/checkpoint.h"
#include "tkg/synthetic.h"
#include "train/trainer.h"
#include "util/env.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace retia;

  std::string data_path;
  int64_t granularity = 1;
  core::RetiaConfig config;
  config.dim = 32;
  config.history_len = 3;
  train::TrainConfig tc;
  tc.max_epochs = 15;
  tc.patience = 5;
  tc.verbose = true;
  bool online = true;
  bool filtered = false;
  std::string save_path;
  std::string load_path;
  std::string resume_path = util::Env::StringOr("RETIA_RESUME", "");

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--granularity") granularity = std::stoll(next());
    else if (arg == "--dim") config.dim = std::stoll(next());
    else if (arg == "--history") config.history_len = std::stoll(next());
    else if (arg == "--epochs") tc.max_epochs = std::stoll(next());
    else if (arg == "--patience") tc.patience = std::stoll(next());
    else if (arg == "--offline") online = false;
    else if (arg == "--filtered") filtered = true;
    else if (arg == "--save") save_path = next();
    else if (arg == "--load") load_path = next();
    else if (arg == "--resume") resume_path = next();
    else if (arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return 1;
    } else {
      data_path = arg;
    }
  }

  if (data_path.empty()) {
    std::cout << "no dataset given; generating a demo TKG at "
                 "/tmp/retia_demo.tsv\n";
    tkg::SyntheticConfig demo;
    demo.name = "demo";
    demo.num_entities = 120;
    demo.num_relations = 12;
    demo.num_timestamps = 40;
    demo.facts_per_timestamp = 30;
    demo.num_schemas = 160;
    demo.max_period = 4;
    tkg::TkgDataset d = tkg::GenerateSynthetic(demo);
    std::vector<tkg::Quadruple> all = d.train();
    all.insert(all.end(), d.valid().begin(), d.valid().end());
    all.insert(all.end(), d.test().begin(), d.test().end());
    tkg::SaveQuadrupleFile("/tmp/retia_demo.tsv", all);
    data_path = "/tmp/retia_demo.tsv";
  }

  // Load, derive vocabulary sizes, split 80/10/10 by time.
  std::vector<tkg::Quadruple> quads =
      tkg::LoadQuadrupleFile(data_path, granularity);
  if (quads.empty()) {
    std::cerr << "no quadruples in " << data_path << "\n";
    return 1;
  }
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  for (const tkg::Quadruple& q : quads) {
    num_entities = std::max({num_entities, q.subject + 1, q.object + 1});
    num_relations = std::max(num_relations, q.relation + 1);
  }
  std::vector<tkg::Quadruple> train_q, valid_q, test_q;
  tkg::SplitByTime(quads, tkg::SplitProportions{}, &train_q, &valid_q,
                   &test_q);
  tkg::TkgDataset dataset(data_path, num_entities, num_relations, train_q,
                          valid_q, test_q);
  tkg::DatasetStats stats = dataset.Stats();
  std::cout << "dataset: " << stats.num_entities << " entities, "
            << stats.num_relations << " relations, " << stats.num_train
            << "/" << stats.num_valid << "/" << stats.num_test
            << " train/valid/test facts over " << stats.num_timestamps
            << " timestamps\n";

  config.num_entities = num_entities;
  config.num_relations = num_relations;
  core::RetiaModel model(config);
  std::cout << "RETIA with " << model.NumParameters() << " parameters (d="
            << config.dim << ", k=" << config.history_len << ")\n";
  if (!load_path.empty()) {
    nn::LoadCheckpoint(&model, load_path);
    std::cout << "loaded checkpoint " << load_path << "\n";
  }

  graph::GraphCache cache(&dataset);
  tc.checkpoint_path = resume_path;
  train::Trainer trainer(&model, &cache, tc);
  if (!resume_path.empty()) {
    ckpt::Result resumed = trainer.ResumeState(resume_path);
    if (resumed.ok()) {
      std::cout << "resumed training state from " << resume_path
                << " (next epoch " << trainer.next_epoch() << ")\n";
    } else if (resumed.code() == ckpt::ErrorCode::kIoError) {
      std::cout << "no training state at " << resume_path
                << "; starting fresh\n";
    } else {
      std::cerr << "cannot resume from " << resume_path << ": "
                << resumed.ToString() << "\n";
      return 1;
    }
  }
  if (tc.max_epochs > 0) {
    util::Timer timer;
    trainer.TrainGeneral();
    std::cout << "general training: " << util::FormatDuration(timer.Seconds())
              << "\n";
  }
  if (!save_path.empty()) {
    nn::SaveCheckpoint(model, save_path);
    std::cout << "saved checkpoint to " << save_path << "\n";
  }

  eval::EvalResult raw = trainer.Evaluate(dataset.test_times(), online);
  std::cout << (online ? "online" : "offline") << " raw metrics: entity MRR "
            << raw.entity.Mrr() << " H@1 " << raw.entity.Hits1() << " H@3 "
            << raw.entity.Hits3() << " H@10 " << raw.entity.Hits10()
            << " | relation MRR " << raw.relation.Mrr() << "\n";
  if (filtered) {
    eval::EvalOptions options;
    options.time_aware_filter = true;
    eval::EvalResult f =
        trainer.Evaluate(dataset.test_times(), /*online=*/false, options);
    std::cout << "time-aware filtered: entity MRR " << f.entity.Mrr()
              << " H@10 " << f.entity.Hits10() << " | relation MRR "
              << f.relation.Mrr() << "\n";
  }
  return 0;
}
