// Multi-process sharded serving demo (docs/SERVING_TOPOLOGY.md): a
// router process consistent-hashes zipfian query traffic across model
// replicas it reaches over the serve::wire binary protocol on AF_UNIX
// sockets. The same binary plays every role:
//
//   serve_cluster prepare <dir>
//       Builds the deterministic cluster dataset and two frozen model
//       snapshots (<dir>/snap_a, <dir>/snap_b — epoch 0 and the hot-swap
//       target). Random-init weights: serving latency and the swap/drop
//       invariants are weight-agnostic, so the demo skips training.
//   serve_cluster replica <dir> <socket>
//       One replica process: loads snap_a, serves it on <socket>, and
//       answers swap requests by reloading whichever prefix the router
//       pushes. Prints READY when the socket is listening; exits on a
//       shutdown frame.
//   serve_cluster load <dir> <socket,socket,...> [flags]
//       The router + load generator: zipfian subjects over N clients,
//       optional coordinated hot-swap (--swap-after) or replica SIGKILL
//       (--kill-after/--kill-pid) mid-load, and a one-line JSON summary
//       on stdout. --expect-zero-drop / --expect-unavailable turn the
//       summary's invariants into the exit code, which is what
//       scripts/check.sh's multi-process smoke and scripts/bench_serve.sh
//       gate on.
//
// Example (two shards, coordinated hot-swap under load):
//   ./serve_cluster prepare /tmp/cluster
//   ./serve_cluster replica /tmp/cluster /tmp/cluster/r0.sock &
//   ./serve_cluster replica /tmp/cluster /tmp/cluster/r1.sock &
//   ./serve_cluster load /tmp/cluster /tmp/cluster/r0.sock,/tmp/cluster/r1.sock
//       --queries 2000 --swap-after 500 --expect-zero-drop --shutdown

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/result.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "serve/engine.h"
#include "serve/query.h"
#include "serve/replica.h"
#include "serve/router.h"
#include "serve/snapshot.h"
#include "tkg/synthetic.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace retia;

// Every process regenerates the same dataset from this config, so the
// replicas and the router agree on the id space without shipping data.
tkg::SyntheticConfig ClusterDataConfig() {
  tkg::SyntheticConfig config;
  config.name = "serve-cluster";
  config.num_entities = 200;
  config.num_relations = 8;
  config.num_timestamps = 24;
  config.facts_per_timestamp = 60;
  config.num_schemas = 120;
  config.max_period = 6;
  config.seed = 29;
  return config;
}

core::RetiaConfig ClusterModelConfig(const tkg::TkgDataset& dataset,
                                     int64_t seed) {
  core::RetiaConfig config;
  config.num_entities = dataset.num_entities();
  config.num_relations = dataset.num_relations();
  config.dim = 16;
  config.history_len = 2;
  config.conv_kernels = 4;
  config.seed = seed;
  return config;
}

serve::SnapshotLoader MakeLoader(const tkg::TkgDataset* dataset) {
  return [dataset](const std::string& prefix)
             -> serve::Result<serve::EngineSnapshot> {
    std::unique_ptr<core::RetiaModel> model;
    const ckpt::Result loaded = serve::LoadModelSnapshot(prefix, &model);
    if (!loaded.ok()) {
      return serve::Result<serve::EngineSnapshot>::Error(
          serve::StatusCode::kInternal, loaded.ToString());
    }
    serve::EngineSnapshot snapshot;
    snapshot.dataset = std::make_unique<tkg::TkgDataset>(*dataset);
    snapshot.graph_cache =
        std::make_unique<graph::GraphCache>(snapshot.dataset.get());
    snapshot.model = std::move(model);
    return snapshot;
  };
}

int Prepare(const std::string& dir) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(ClusterDataConfig());
  core::RetiaModel model_a(ClusterModelConfig(dataset, /*seed=*/3));
  core::RetiaModel model_b(ClusterModelConfig(dataset, /*seed=*/99));
  for (const auto& [model, name] :
       {std::pair<const core::RetiaModel*, const char*>{&model_a, "snap_a"},
        {&model_b, "snap_b"}}) {
    const ckpt::Result saved =
        serve::SaveModelSnapshot(*model, dir + "/" + name, dataset.name());
    if (!saved.ok()) {
      std::cerr << "prepare: " << saved.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "prepared " << dir << "/snap_a and snap_b ("
            << dataset.num_entities() << " entities)\n";
  return 0;
}

int Replica(const std::string& dir, const std::string& socket_path) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(ClusterDataConfig());
  serve::SnapshotLoader loader = MakeLoader(&dataset);
  serve::Result<serve::EngineSnapshot> initial = loader(dir + "/snap_a");
  if (!initial.ok()) {
    std::cerr << "replica: " << initial.ToString() << "\n";
    return 1;
  }
  serve::ServeConfig config = serve::ServeConfig::FromEnv();
  serve::ServeEngine engine(initial.take(), config);
  serve::ReplicaServer server(&engine, loader, socket_path);
  serve::Result<bool> started = server.Start();
  if (!started.ok()) {
    std::cerr << "replica: " << started.ToString() << "\n";
    return 1;
  }
  std::cout << "READY " << socket_path << std::endl;  // flushed: parent waits
  server.WaitForShutdown();
  server.Stop();
  std::cout << "replica " << socket_path
            << " exiting, stats: " << engine.Stats().ToJson() << "\n";
  return 0;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

struct LoadFlags {
  int64_t queries = 2000;
  int64_t clients = 4;
  int64_t k = 5;
  // Client-side batch: each client assembles this many queries and ships
  // them through Router::RouteBatch (1 = the per-query Route path).
  int64_t batch = 1;
  double alpha = 1.1;
  int64_t timeout_ms = 5000;
  int64_t swap_after = -1;   // completed-query threshold for SwapAll
  int64_t kill_after = -1;   // completed-query threshold for SIGKILL
  int64_t kill_pid = -1;     // replica process to SIGKILL
  bool expect_zero_drop = false;
  bool expect_unavailable = false;
  bool shutdown = false;  // send shutdown frames to replicas when done
};

int Load(const std::string& dir, const std::string& sockets_csv,
         const LoadFlags& flags) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(ClusterDataConfig());
  const std::vector<std::string> sockets = SplitCsv(sockets_csv);
  if (sockets.empty()) {
    std::cerr << "load: no replica sockets given\n";
    return 2;
  }
  serve::RouterConfig router_config = serve::RouterConfig::FromEnv();
  router_config.timeout_ms = flags.timeout_ms;

  std::vector<std::unique_ptr<serve::ReplicaChannel>> channels;
  std::vector<serve::SocketChannel*> raw_channels;
  for (const std::string& path : sockets) {
    auto channel = std::make_unique<serve::SocketChannel>(path, router_config);
    raw_channels.push_back(channel.get());
    channels.push_back(std::move(channel));
  }
  serve::Router router(std::move(channels), router_config);

  // Wait for every replica to answer a ping (they print READY before we
  // run, but the socket may still be a hair behind on a loaded machine).
  for (size_t shard = 0; shard < raw_channels.size(); ++shard) {
    bool up = false;
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (raw_channels[shard]->Ping().ok()) {
        up = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!up) {
      std::cerr << "load: replica " << sockets[shard] << " never came up\n";
      return 2;
    }
  }

  const int64_t t = dataset.test_times().front();
  const int64_t per_client = flags.queries / flags.clients;
  std::mutex mu;
  std::vector<double> latencies_ms;
  int64_t ok = 0, unavailable = 0, other = 0, cache_hits = 0;
  std::atomic<int64_t> completed{0};

  // Mid-load actions armed on the completed-query counter.
  std::atomic<bool> swap_fired{false}, kill_fired{false};
  int64_t swap_epoch = -1;
  std::string swap_error;

  util::Timer wall;
  std::vector<std::thread> clients;
  for (int64_t c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(static_cast<uint64_t>(1000 + c));
      for (int64_t i = 0; i < per_client;) {
        // Assemble up to `batch` queries and ship them in one RouteBatch
        // (one coalesced wire frame per shard group); batch == 1 keeps
        // the historical per-query Route path.
        const int64_t group = std::min(flags.batch, per_client - i);
        std::vector<serve::Query> queries;
        queries.reserve(group);
        for (int64_t b = 0; b < group; ++b) {
          const int64_t s = rng.Zipf(dataset.num_entities(), flags.alpha);
          const int64_t r =
              rng.UniformInt(0, 2 * dataset.num_relations() - 1);
          queries.push_back(serve::Query::Entity(s, r, t, flags.k));
        }
        util::Timer timer;
        std::vector<serve::Result<serve::QueryResult>> results;
        if (flags.batch > 1) {
          results = router.RouteBatch(queries);
        } else {
          results.push_back(router.Route(queries.front()));
        }
        // Every query in the group experienced the group's latency.
        const double ms = timer.Millis();
        std::lock_guard<std::mutex> lock(mu);
        for (const serve::Result<serve::QueryResult>& result : results) {
          latencies_ms.push_back(ms);
          if (result.ok()) {
            ++ok;
            if (result.value().cache_hit) ++cache_hits;
          } else if (result.code() == serve::StatusCode::kShardUnavailable) {
            ++unavailable;
          } else {
            ++other;
            if (other == 1) {
              std::cerr << "load: unexpected error: " << result.ToString()
                        << "\n";
            }
          }
        }
        completed.fetch_add(group, std::memory_order_relaxed);
        i += group;
      }
    });
  }

  // Coordinator: fires the swap and/or the kill once the load crosses the
  // configured thresholds, while the clients keep hammering the router.
  std::thread coordinator([&] {
    bool want_swap = flags.swap_after >= 0;
    bool want_kill = flags.kill_after >= 0 && flags.kill_pid > 0;
    while (want_swap || want_kill) {
      const int64_t done = completed.load(std::memory_order_relaxed);
      if (done >= flags.queries) break;
      if (want_swap && done >= flags.swap_after && !swap_fired.exchange(true)) {
        serve::Result<int64_t> swapped = router.SwapAll(dir + "/snap_b");
        if (swapped.ok()) {
          swap_epoch = swapped.value();
        } else {
          swap_error = swapped.ToString();
        }
        want_swap = false;
      }
      if (want_kill && done >= flags.kill_after && !kill_fired.exchange(true)) {
        ::kill(static_cast<pid_t>(flags.kill_pid), SIGKILL);
        want_kill = false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  for (std::thread& client : clients) client.join();
  coordinator.join();
  const double wall_seconds = wall.Seconds();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto quantile = [&](double q) {
    if (latencies_ms.empty()) return 0.0;
    return latencies_ms[static_cast<size_t>(q * (latencies_ms.size() - 1))];
  };
  const int64_t total = ok + unavailable + other;
  std::ostringstream json;
  json << "{\"shards\":" << router.num_shards()
       << ",\"clients\":" << flags.clients << ",\"completed\":" << total
       << ",\"ok\":" << ok << ",\"unavailable\":" << unavailable
       << ",\"other_errors\":" << other << ",\"cache_hits\":" << cache_hits
       << ",\"dropped\":" << (flags.clients * per_client - total)
       << ",\"swap_epoch\":" << swap_epoch
       << ",\"wire_batch\":" << flags.batch
       << ",\"zipf_alpha\":" << flags.alpha
       << ",\"wall_seconds\":" << wall_seconds
       << ",\"qps\":" << (wall_seconds > 0 ? total / wall_seconds : 0.0)
       << ",\"p50_ms\":" << quantile(0.50) << ",\"p99_ms\":" << quantile(0.99)
       << "}";
  std::cout << json.str() << std::endl;
  std::cerr << "router stats: " << router.StatsJson() << "\n";

  if (flags.shutdown) {
    for (serve::SocketChannel* channel : raw_channels) channel->Shutdown();
  }

  if (!swap_error.empty()) {
    std::cerr << "load: hot-swap failed: " << swap_error << "\n";
    return 1;
  }
  if (flags.swap_after >= 0 && swap_epoch < 1) {
    std::cerr << "load: swap never completed (epoch " << swap_epoch << ")\n";
    return 1;
  }
  if (flags.expect_zero_drop && (ok != total || total != flags.queries)) {
    std::cerr << "load: zero-drop violated: ok=" << ok << " total=" << total
              << " expected=" << flags.queries << "\n";
    return 1;
  }
  if (flags.expect_unavailable) {
    // A killed replica's arc must degrade to kShardUnavailable — visibly,
    // without hanging the router and without any *other* failure mode.
    if (unavailable == 0) {
      std::cerr << "load: expected kShardUnavailable responses, saw none\n";
      return 1;
    }
    if (ok == 0 || other != 0) {
      std::cerr << "load: surviving shards misbehaved: ok=" << ok
                << " other_errors=" << other << "\n";
      return 1;
    }
  } else if (other != 0) {
    std::cerr << "load: " << other << " unexpected errors\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: serve_cluster prepare <dir>\n"
              << "       serve_cluster replica <dir> <socket>\n"
              << "       serve_cluster load <dir> <socket,...> [--queries N]"
              << " [--clients C] [--k K] [--batch B] [--alpha A]"
              << " [--timeout-ms T]\n"
              << "           [--swap-after N] [--kill-after N --kill-pid P]\n"
              << "           [--expect-zero-drop] [--expect-unavailable]"
              << " [--shutdown]\n";
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  if (mode == "prepare") return Prepare(dir);
  if (mode == "replica") {
    if (argc < 4) {
      std::cerr << "replica: missing socket path\n";
      return 2;
    }
    return Replica(dir, argv[3]);
  }
  if (mode == "load") {
    if (argc < 4) {
      std::cerr << "load: missing socket list\n";
      return 2;
    }
    LoadFlags flags;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> int64_t {
        if (i + 1 >= argc) {
          std::cerr << "load: " << arg << " needs a value\n";
          std::exit(2);
        }
        return std::strtoll(argv[++i], nullptr, 10);
      };
      if (arg == "--queries") flags.queries = next();
      else if (arg == "--clients") flags.clients = next();
      else if (arg == "--k") flags.k = next();
      else if (arg == "--batch") flags.batch = next();
      else if (arg == "--alpha") {
        if (i + 1 >= argc) {
          std::cerr << "load: --alpha needs a value\n";
          return 2;
        }
        flags.alpha = std::strtod(argv[++i], nullptr);
      }
      else if (arg == "--timeout-ms") flags.timeout_ms = next();
      else if (arg == "--swap-after") flags.swap_after = next();
      else if (arg == "--kill-after") flags.kill_after = next();
      else if (arg == "--kill-pid") flags.kill_pid = next();
      else if (arg == "--expect-zero-drop") flags.expect_zero_drop = true;
      else if (arg == "--expect-unavailable") flags.expect_unavailable = true;
      else if (arg == "--shutdown") flags.shutdown = true;
      else {
        std::cerr << "load: unknown flag " << arg << "\n";
        return 2;
      }
    }
    return Load(dir, argv[3], flags);
  }
  std::cerr << "unknown mode '" << mode << "'\n";
  return 2;
}
