// Ablation playground: demonstrates the configuration surface of the
// RetiaModel — the switches behind the paper's ablation studies — and
// compares the variants on one dataset in a single run.
//
// Every variant is trained with the same budget; the printout mirrors the
// structure of Table VI / Fig. 5 / Figs. 6-7 at toy scale.

#include <iostream>
#include <vector>

#include "core/retia.h"
#include "graph/graph_cache.h"
#include "tkg/synthetic.h"
#include "train/trainer.h"
#include "util/table_printer.h"

int main() {
  using namespace retia;

  tkg::SyntheticConfig data;
  data.name = "playground";
  data.num_entities = 120;
  data.num_relations = 12;
  data.num_timestamps = 40;
  data.facts_per_timestamp = 30;
  data.num_schemas = 160;
  data.max_period = 4;
  data.repeat_prob = 0.85;
  data.noise_frac = 0.15;
  tkg::TkgDataset dataset = tkg::GenerateSynthetic(data);
  graph::GraphCache cache(&dataset);

  struct Variant {
    std::string label;
    std::function<void(core::RetiaConfig*)> apply;
  };
  const std::vector<Variant> variants = {
      {"full RETIA", [](core::RetiaConfig*) {}},
      {"wo. EAM (Table VI)",
       [](core::RetiaConfig* c) { c->use_eam = false; }},
      {"wo. RAM (Table VI)",
       [](core::RetiaConfig* c) { c->use_ram = false; }},
      {"wo. TIM (Table IX)",
       [](core::RetiaConfig* c) { c->use_tim = false; }},
      {"hyper: none (Fig. 5)",
       [](core::RetiaConfig* c) { c->hyper_mode = core::HyperMode::kNone; }},
      {"relation: MP+LSTM, no Agg (Figs. 6-7, RE-GCN level)",
       [](core::RetiaConfig* c) {
         c->relation_mode = core::RelationMode::kMpLstm;
       }},
  };

  util::TablePrinter table(
      {"Variant", "Entity MRR", "Relation MRR", "params"});
  for (const Variant& v : variants) {
    core::RetiaConfig config;
    config.num_entities = dataset.num_entities();
    config.num_relations = dataset.num_relations();
    config.dim = 16;
    config.history_len = 3;
    config.conv_kernels = 4;
    v.apply(&config);
    core::RetiaModel model(config);
    train::TrainConfig tc;
    tc.max_epochs = 6;
    tc.patience = 6;
    train::Trainer trainer(&model, &cache, tc);
    trainer.TrainGeneral();
    eval::EvalResult r = trainer.Evaluate(dataset.test_times(), true);
    table.AddRow({v.label, util::TablePrinter::Num(r.entity.Mrr()),
                  util::TablePrinter::Num(r.relation.Mrr()),
                  std::to_string(model.NumParameters())});
    std::cout << "finished: " << v.label << "\n";
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\nExpected shape (cf. Table VI/IX): 'wo. EAM' collapses the\n"
               "entity task, 'wo. RAM' collapses the relation task, and the\n"
               "full model is the best overall.\n";
  return 0;
}
