// Cross-build bit-reproducibility probe. Runs a deterministic battery over
// every kernel this PR rewired (GEMMs forward+backward, elementwise,
// softmax family, gather/scatter, Adam, ClipGradNorm) and prints an
// FNV-1a hash of the raw result bytes per section. Built against the seed
// tree and the current tree (RETIA_SIMD=scalar), matching output proves
// the scalar backend reproduces the historical results bit-exactly.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

using retia::tensor::Tensor;

namespace {

uint64_t g_hash = 1469598103934665603ull;

void HashBytes(const void* p, size_t bytes) {
  const unsigned char* c = static_cast<const unsigned char*>(p);
  for (size_t i = 0; i < bytes; ++i) {
    g_hash ^= c[i];
    g_hash *= 1099511628211ull;
  }
}

void HashFloats(const std::vector<float>& v) {
  HashBytes(v.data(), v.size() * sizeof(float));
}

void Section(const char* name) {
  std::printf("%-12s %016llx\n", name, static_cast<unsigned long long>(g_hash));
}

uint64_t g_state = 0x9e3779b97f4a7c15ull;

float NextFloat() {
  g_state = g_state * 6364136223846793005ull + 1442695040888963407ull;
  const uint32_t bits = static_cast<uint32_t>(g_state >> 33);
  return static_cast<float>(bits) / 4294967295.0f * 2.0f - 1.0f;
}

Tensor RandTensor(std::vector<int64_t> shape, bool requires_grad) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  std::vector<float> data(static_cast<size_t>(n));
  for (float& x : data) x = NextFloat();
  return Tensor::FromVector(std::move(shape), std::move(data), requires_grad);
}

}  // namespace

int main() {
  // GEMM NN + NT forward/backward at shapes covering tails and sharding.
  struct Shape {
    int64_t m, k, n;
  };
  for (const Shape sh :
       {Shape{1, 1, 1}, Shape{3, 5, 7}, Shape{17, 33, 9}, Shape{64, 128, 50},
        Shape{200, 64, 77}}) {
    const int64_t m = sh.m, k = sh.k, n = sh.n;
    Tensor a = RandTensor({m, k}, true);
    Tensor b = RandTensor({k, n}, true);
    Tensor c = retia::tensor::MatMul(a, b);
    retia::tensor::Sum(c).Backward();
    HashFloats(c.impl().data);
    HashFloats(a.Grad());
    HashFloats(b.Grad());

    Tensor bt = RandTensor({n, k}, true);
    Tensor d = retia::tensor::MatMulTransposeB(a, bt);
    a.ZeroGrad();
    retia::tensor::Sum(d).Backward();
    HashFloats(d.impl().data);
    HashFloats(a.Grad());
    HashFloats(bt.Grad());
  }
  Section("gemm");

  // One-hot-like A (exercises the historical zero-skip path).
  {
    const int64_t m = 40, k = 64, n = 32;
    std::vector<float> hot(m * k, 0.0f);
    for (int64_t i = 0; i < m; ++i) hot[i * k + (i * 7) % k] = NextFloat();
    Tensor a = Tensor::FromVector({m, k}, std::move(hot), true);
    Tensor b = RandTensor({k, n}, true);
    Tensor c = retia::tensor::MatMul(a, b);
    retia::tensor::Sum(c).Backward();
    HashFloats(c.impl().data);
    HashFloats(a.Grad());
    HashFloats(b.Grad());
  }
  Section("gemm_onehot");

  // Elementwise + broadcast.
  {
    Tensor a = RandTensor({13, 37}, true);
    Tensor b = RandTensor({13, 37}, true);
    Tensor bias = RandTensor({37}, true);
    Tensor out = retia::tensor::AddRowBroadcast(
        retia::tensor::Mul(retia::tensor::Add(a, b), retia::tensor::Sub(a, b)),
        bias);
    out = retia::tensor::Scale(out, 0.37f);
    retia::tensor::Sum(out).Backward();
    HashFloats(out.impl().data);
    HashFloats(a.Grad());
    HashFloats(b.Grad());
    HashFloats(bias.Grad());
  }
  Section("elementwise");

  // Softmax family.
  for (int64_t n : {1, 5, 16, 33, 400}) {
    Tensor x = RandTensor({9, n}, true);
    Tensor y = retia::tensor::Softmax(x);
    retia::tensor::Sum(retia::tensor::Mul(y, y)).Backward();
    HashFloats(y.impl().data);
    HashFloats(x.Grad());

    Tensor x2 = RandTensor({7, n}, true);
    Tensor y2 = retia::tensor::LogSoftmax(x2);
    retia::tensor::Sum(retia::tensor::Mul(y2, y2)).Backward();
    HashFloats(y2.impl().data);
    HashFloats(x2.Grad());

    Tensor x3 = RandTensor({11, n}, true);
    std::vector<int64_t> targets(11);
    for (int64_t i = 0; i < 11; ++i) targets[i] = (i * 3) % n;
    Tensor loss = retia::tensor::CrossEntropyLogits(x3, targets);
    loss.Backward();
    HashFloats(loss.impl().data);
    HashFloats(x3.Grad());
  }
  Section("softmax");

  // Gather / scatter-add (duplicate indices).
  {
    Tensor table = RandTensor({50, 24}, true);
    std::vector<int64_t> idx = {0, 3, 3, 17, 49, 3, 21, 0, 8, 8, 8, 45};
    Tensor g = retia::tensor::GatherRows(table, idx);
    retia::tensor::Sum(retia::tensor::Mul(g, g)).Backward();
    HashFloats(g.impl().data);
    HashFloats(table.Grad());

    Tensor src = RandTensor({12, 24}, true);
    Tensor sc = retia::tensor::ScatterAddRows(src, idx, 50);
    retia::tensor::Sum(retia::tensor::Mul(sc, sc)).Backward();
    HashFloats(sc.impl().data);
    HashFloats(src.Grad());
  }
  Section("scatter");

  // Adam + ClipGradNorm over several steps.
  {
    std::vector<Tensor> params = {RandTensor({60, 33}, true),
                                  RandTensor({1000}, true)};
    retia::nn::Adam::Options opts;
    opts.lr = 0.01f;
    opts.weight_decay = 0.001f;
    retia::nn::Adam adam(params, opts);
    for (int step = 0; step < 5; ++step) {
      adam.ZeroGrad();
      Tensor loss = retia::tensor::Sum(retia::tensor::Mul(params[0], params[0]));
      loss = retia::tensor::Add(
          loss, retia::tensor::Sum(retia::tensor::Mul(params[1], params[1])));
      loss.Backward();
      const float norm = retia::nn::ClipGradNorm(params, 0.5f);
      HashBytes(&norm, sizeof(norm));
      adam.Step();
      HashFloats(params[0].impl().data);
      HashFloats(params[1].impl().data);
    }
  }
  Section("adam");

  std::printf("final        %016llx\n", static_cast<unsigned long long>(g_hash));
  return 0;
}
