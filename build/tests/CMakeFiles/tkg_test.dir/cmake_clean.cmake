file(REMOVE_RECURSE
  "CMakeFiles/tkg_test.dir/tkg_test.cc.o"
  "CMakeFiles/tkg_test.dir/tkg_test.cc.o.d"
  "tkg_test"
  "tkg_test.pdb"
  "tkg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tkg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
