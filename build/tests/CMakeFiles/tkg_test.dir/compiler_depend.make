# Empty compiler generated dependencies file for tkg_test.
# This may be replaced when dependencies are built.
