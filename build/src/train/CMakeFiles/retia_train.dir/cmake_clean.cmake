file(REMOVE_RECURSE
  "CMakeFiles/retia_train.dir/trainer.cc.o"
  "CMakeFiles/retia_train.dir/trainer.cc.o.d"
  "libretia_train.a"
  "libretia_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retia_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
