# Empty dependencies file for retia_train.
# This may be replaced when dependencies are built.
