file(REMOVE_RECURSE
  "libretia_train.a"
)
