file(REMOVE_RECURSE
  "CMakeFiles/retia_tensor.dir/ops_basic.cc.o"
  "CMakeFiles/retia_tensor.dir/ops_basic.cc.o.d"
  "CMakeFiles/retia_tensor.dir/ops_conv.cc.o"
  "CMakeFiles/retia_tensor.dir/ops_conv.cc.o.d"
  "CMakeFiles/retia_tensor.dir/ops_index.cc.o"
  "CMakeFiles/retia_tensor.dir/ops_index.cc.o.d"
  "CMakeFiles/retia_tensor.dir/ops_matmul.cc.o"
  "CMakeFiles/retia_tensor.dir/ops_matmul.cc.o.d"
  "CMakeFiles/retia_tensor.dir/ops_norm.cc.o"
  "CMakeFiles/retia_tensor.dir/ops_norm.cc.o.d"
  "CMakeFiles/retia_tensor.dir/ops_pairwise.cc.o"
  "CMakeFiles/retia_tensor.dir/ops_pairwise.cc.o.d"
  "CMakeFiles/retia_tensor.dir/ops_softmax.cc.o"
  "CMakeFiles/retia_tensor.dir/ops_softmax.cc.o.d"
  "CMakeFiles/retia_tensor.dir/tensor.cc.o"
  "CMakeFiles/retia_tensor.dir/tensor.cc.o.d"
  "libretia_tensor.a"
  "libretia_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retia_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
