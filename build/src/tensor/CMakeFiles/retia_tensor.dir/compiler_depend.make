# Empty compiler generated dependencies file for retia_tensor.
# This may be replaced when dependencies are built.
