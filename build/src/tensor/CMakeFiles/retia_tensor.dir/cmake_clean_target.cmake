file(REMOVE_RECURSE
  "libretia_tensor.a"
)
