file(REMOVE_RECURSE
  "CMakeFiles/retia_nn.dir/checkpoint.cc.o"
  "CMakeFiles/retia_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/retia_nn.dir/init.cc.o"
  "CMakeFiles/retia_nn.dir/init.cc.o.d"
  "CMakeFiles/retia_nn.dir/linear.cc.o"
  "CMakeFiles/retia_nn.dir/linear.cc.o.d"
  "CMakeFiles/retia_nn.dir/module.cc.o"
  "CMakeFiles/retia_nn.dir/module.cc.o.d"
  "CMakeFiles/retia_nn.dir/optimizer.cc.o"
  "CMakeFiles/retia_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/retia_nn.dir/rnn_cells.cc.o"
  "CMakeFiles/retia_nn.dir/rnn_cells.cc.o.d"
  "libretia_nn.a"
  "libretia_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retia_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
