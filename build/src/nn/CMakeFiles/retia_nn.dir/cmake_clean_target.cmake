file(REMOVE_RECURSE
  "libretia_nn.a"
)
