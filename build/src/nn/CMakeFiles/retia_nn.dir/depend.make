# Empty dependencies file for retia_nn.
# This may be replaced when dependencies are built.
