file(REMOVE_RECURSE
  "libretia_util.a"
)
