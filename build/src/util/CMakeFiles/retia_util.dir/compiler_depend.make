# Empty compiler generated dependencies file for retia_util.
# This may be replaced when dependencies are built.
