file(REMOVE_RECURSE
  "CMakeFiles/retia_util.dir/rng.cc.o"
  "CMakeFiles/retia_util.dir/rng.cc.o.d"
  "CMakeFiles/retia_util.dir/table_printer.cc.o"
  "CMakeFiles/retia_util.dir/table_printer.cc.o.d"
  "CMakeFiles/retia_util.dir/timer.cc.o"
  "CMakeFiles/retia_util.dir/timer.cc.o.d"
  "libretia_util.a"
  "libretia_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retia_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
