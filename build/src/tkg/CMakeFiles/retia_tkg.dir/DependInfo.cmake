
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tkg/analysis.cc" "src/tkg/CMakeFiles/retia_tkg.dir/analysis.cc.o" "gcc" "src/tkg/CMakeFiles/retia_tkg.dir/analysis.cc.o.d"
  "/root/repo/src/tkg/dataset.cc" "src/tkg/CMakeFiles/retia_tkg.dir/dataset.cc.o" "gcc" "src/tkg/CMakeFiles/retia_tkg.dir/dataset.cc.o.d"
  "/root/repo/src/tkg/synthetic.cc" "src/tkg/CMakeFiles/retia_tkg.dir/synthetic.cc.o" "gcc" "src/tkg/CMakeFiles/retia_tkg.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/retia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
