file(REMOVE_RECURSE
  "libretia_tkg.a"
)
