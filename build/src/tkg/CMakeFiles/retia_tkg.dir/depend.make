# Empty dependencies file for retia_tkg.
# This may be replaced when dependencies are built.
