file(REMOVE_RECURSE
  "CMakeFiles/retia_tkg.dir/analysis.cc.o"
  "CMakeFiles/retia_tkg.dir/analysis.cc.o.d"
  "CMakeFiles/retia_tkg.dir/dataset.cc.o"
  "CMakeFiles/retia_tkg.dir/dataset.cc.o.d"
  "CMakeFiles/retia_tkg.dir/synthetic.cc.o"
  "CMakeFiles/retia_tkg.dir/synthetic.cc.o.d"
  "libretia_tkg.a"
  "libretia_tkg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retia_tkg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
