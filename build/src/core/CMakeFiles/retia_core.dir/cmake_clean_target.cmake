file(REMOVE_RECURSE
  "libretia_core.a"
)
