# Empty compiler generated dependencies file for retia_core.
# This may be replaced when dependencies are built.
