file(REMOVE_RECURSE
  "CMakeFiles/retia_core.dir/decoder.cc.o"
  "CMakeFiles/retia_core.dir/decoder.cc.o.d"
  "CMakeFiles/retia_core.dir/retia.cc.o"
  "CMakeFiles/retia_core.dir/retia.cc.o.d"
  "CMakeFiles/retia_core.dir/rgcn.cc.o"
  "CMakeFiles/retia_core.dir/rgcn.cc.o.d"
  "libretia_core.a"
  "libretia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
