file(REMOVE_RECURSE
  "libretia_baselines.a"
)
