file(REMOVE_RECURSE
  "CMakeFiles/retia_baselines.dir/cygnet.cc.o"
  "CMakeFiles/retia_baselines.dir/cygnet.cc.o.d"
  "CMakeFiles/retia_baselines.dir/regcn.cc.o"
  "CMakeFiles/retia_baselines.dir/regcn.cc.o.d"
  "CMakeFiles/retia_baselines.dir/renet.cc.o"
  "CMakeFiles/retia_baselines.dir/renet.cc.o.d"
  "CMakeFiles/retia_baselines.dir/static_models.cc.o"
  "CMakeFiles/retia_baselines.dir/static_models.cc.o.d"
  "CMakeFiles/retia_baselines.dir/tirgn.cc.o"
  "CMakeFiles/retia_baselines.dir/tirgn.cc.o.d"
  "CMakeFiles/retia_baselines.dir/ttranse.cc.o"
  "CMakeFiles/retia_baselines.dir/ttranse.cc.o.d"
  "libretia_baselines.a"
  "libretia_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retia_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
