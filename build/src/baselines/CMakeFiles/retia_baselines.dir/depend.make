# Empty dependencies file for retia_baselines.
# This may be replaced when dependencies are built.
