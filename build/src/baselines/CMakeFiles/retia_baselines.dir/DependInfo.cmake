
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cygnet.cc" "src/baselines/CMakeFiles/retia_baselines.dir/cygnet.cc.o" "gcc" "src/baselines/CMakeFiles/retia_baselines.dir/cygnet.cc.o.d"
  "/root/repo/src/baselines/regcn.cc" "src/baselines/CMakeFiles/retia_baselines.dir/regcn.cc.o" "gcc" "src/baselines/CMakeFiles/retia_baselines.dir/regcn.cc.o.d"
  "/root/repo/src/baselines/renet.cc" "src/baselines/CMakeFiles/retia_baselines.dir/renet.cc.o" "gcc" "src/baselines/CMakeFiles/retia_baselines.dir/renet.cc.o.d"
  "/root/repo/src/baselines/static_models.cc" "src/baselines/CMakeFiles/retia_baselines.dir/static_models.cc.o" "gcc" "src/baselines/CMakeFiles/retia_baselines.dir/static_models.cc.o.d"
  "/root/repo/src/baselines/tirgn.cc" "src/baselines/CMakeFiles/retia_baselines.dir/tirgn.cc.o" "gcc" "src/baselines/CMakeFiles/retia_baselines.dir/tirgn.cc.o.d"
  "/root/repo/src/baselines/ttranse.cc" "src/baselines/CMakeFiles/retia_baselines.dir/ttranse.cc.o" "gcc" "src/baselines/CMakeFiles/retia_baselines.dir/ttranse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/retia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/retia_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/retia_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/tkg/CMakeFiles/retia_tkg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/retia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/retia_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
