file(REMOVE_RECURSE
  "libretia_graph.a"
)
