# Empty compiler generated dependencies file for retia_graph.
# This may be replaced when dependencies are built.
