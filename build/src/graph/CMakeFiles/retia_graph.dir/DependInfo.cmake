
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_cache.cc" "src/graph/CMakeFiles/retia_graph.dir/graph_cache.cc.o" "gcc" "src/graph/CMakeFiles/retia_graph.dir/graph_cache.cc.o.d"
  "/root/repo/src/graph/hypergraph.cc" "src/graph/CMakeFiles/retia_graph.dir/hypergraph.cc.o" "gcc" "src/graph/CMakeFiles/retia_graph.dir/hypergraph.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/graph/CMakeFiles/retia_graph.dir/subgraph.cc.o" "gcc" "src/graph/CMakeFiles/retia_graph.dir/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tkg/CMakeFiles/retia_tkg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/retia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
