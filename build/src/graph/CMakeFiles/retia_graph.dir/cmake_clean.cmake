file(REMOVE_RECURSE
  "CMakeFiles/retia_graph.dir/graph_cache.cc.o"
  "CMakeFiles/retia_graph.dir/graph_cache.cc.o.d"
  "CMakeFiles/retia_graph.dir/hypergraph.cc.o"
  "CMakeFiles/retia_graph.dir/hypergraph.cc.o.d"
  "CMakeFiles/retia_graph.dir/subgraph.cc.o"
  "CMakeFiles/retia_graph.dir/subgraph.cc.o.d"
  "libretia_graph.a"
  "libretia_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retia_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
