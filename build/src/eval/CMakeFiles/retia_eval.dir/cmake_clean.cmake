file(REMOVE_RECURSE
  "CMakeFiles/retia_eval.dir/evaluator.cc.o"
  "CMakeFiles/retia_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/retia_eval.dir/metrics.cc.o"
  "CMakeFiles/retia_eval.dir/metrics.cc.o.d"
  "libretia_eval.a"
  "libretia_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retia_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
