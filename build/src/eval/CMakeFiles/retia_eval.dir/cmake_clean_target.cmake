file(REMOVE_RECURSE
  "libretia_eval.a"
)
