# Empty compiler generated dependencies file for retia_eval.
# This may be replaced when dependencies are built.
