# Empty compiler generated dependencies file for ablation_playground.
# This may be replaced when dependencies are built.
