file(REMOVE_RECURSE
  "CMakeFiles/ablation_playground.dir/ablation_playground.cpp.o"
  "CMakeFiles/ablation_playground.dir/ablation_playground.cpp.o.d"
  "ablation_playground"
  "ablation_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
