file(REMOVE_RECURSE
  "CMakeFiles/train_from_tsv.dir/train_from_tsv.cpp.o"
  "CMakeFiles/train_from_tsv.dir/train_from_tsv.cpp.o.d"
  "train_from_tsv"
  "train_from_tsv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_from_tsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
