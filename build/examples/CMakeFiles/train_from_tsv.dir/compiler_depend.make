# Empty compiler generated dependencies file for train_from_tsv.
# This may be replaced when dependencies are built.
