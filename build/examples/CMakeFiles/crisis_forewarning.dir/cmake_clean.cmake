file(REMOVE_RECURSE
  "CMakeFiles/crisis_forewarning.dir/crisis_forewarning.cpp.o"
  "CMakeFiles/crisis_forewarning.dir/crisis_forewarning.cpp.o.d"
  "crisis_forewarning"
  "crisis_forewarning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisis_forewarning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
