# Empty compiler generated dependencies file for crisis_forewarning.
# This may be replaced when dependencies are built.
