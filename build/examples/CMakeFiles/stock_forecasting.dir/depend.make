# Empty dependencies file for stock_forecasting.
# This may be replaced when dependencies are built.
