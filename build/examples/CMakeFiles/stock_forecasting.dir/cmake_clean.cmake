file(REMOVE_RECURSE
  "CMakeFiles/stock_forecasting.dir/stock_forecasting.cpp.o"
  "CMakeFiles/stock_forecasting.dir/stock_forecasting.cpp.o.d"
  "stock_forecasting"
  "stock_forecasting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_forecasting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
