file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_entity_icews.dir/bench_table3_entity_icews.cc.o"
  "CMakeFiles/bench_table3_entity_icews.dir/bench_table3_entity_icews.cc.o.d"
  "bench_table3_entity_icews"
  "bench_table3_entity_icews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_entity_icews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
