# Empty compiler generated dependencies file for bench_table3_entity_icews.
# This may be replaced when dependencies are built.
