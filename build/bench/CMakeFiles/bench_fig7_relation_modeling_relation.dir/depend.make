# Empty dependencies file for bench_fig7_relation_modeling_relation.
# This may be replaced when dependencies are built.
