file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_relation_modeling_relation.dir/bench_fig7_relation_modeling_relation.cc.o"
  "CMakeFiles/bench_fig7_relation_modeling_relation.dir/bench_fig7_relation_modeling_relation.cc.o.d"
  "bench_fig7_relation_modeling_relation"
  "bench_fig7_relation_modeling_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_relation_modeling_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
