# Empty compiler generated dependencies file for bench_table4_entity_yago_wiki.
# This may be replaced when dependencies are built.
