file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_entity_yago_wiki.dir/bench_table4_entity_yago_wiki.cc.o"
  "CMakeFiles/bench_table4_entity_yago_wiki.dir/bench_table4_entity_yago_wiki.cc.o.d"
  "bench_table4_entity_yago_wiki"
  "bench_table4_entity_yago_wiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_entity_yago_wiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
