file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_relation_modeling_entity.dir/bench_fig6_relation_modeling_entity.cc.o"
  "CMakeFiles/bench_fig6_relation_modeling_entity.dir/bench_fig6_relation_modeling_entity.cc.o.d"
  "bench_fig6_relation_modeling_entity"
  "bench_fig6_relation_modeling_entity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_relation_modeling_entity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
