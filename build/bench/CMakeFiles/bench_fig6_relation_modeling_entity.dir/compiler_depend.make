# Empty compiler generated dependencies file for bench_fig6_relation_modeling_entity.
# This may be replaced when dependencies are built.
