file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_tim_forecast.dir/bench_table9_tim_forecast.cc.o"
  "CMakeFiles/bench_table9_tim_forecast.dir/bench_table9_tim_forecast.cc.o.d"
  "bench_table9_tim_forecast"
  "bench_table9_tim_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_tim_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
