# Empty compiler generated dependencies file for bench_table9_tim_forecast.
# This may be replaced when dependencies are built.
