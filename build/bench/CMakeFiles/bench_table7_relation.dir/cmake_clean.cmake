file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_relation.dir/bench_table7_relation.cc.o"
  "CMakeFiles/bench_table7_relation.dir/bench_table7_relation.cc.o.d"
  "bench_table7_relation"
  "bench_table7_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
