file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_static_constraint.dir/bench_ablation_static_constraint.cc.o"
  "CMakeFiles/bench_ablation_static_constraint.dir/bench_ablation_static_constraint.cc.o.d"
  "bench_ablation_static_constraint"
  "bench_ablation_static_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_static_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
