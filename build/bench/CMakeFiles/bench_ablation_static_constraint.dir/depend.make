# Empty dependencies file for bench_ablation_static_constraint.
# This may be replaced when dependencies are built.
