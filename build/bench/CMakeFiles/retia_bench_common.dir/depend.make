# Empty dependencies file for retia_bench_common.
# This may be replaced when dependencies are built.
