file(REMOVE_RECURSE
  "CMakeFiles/retia_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/retia_bench_common.dir/bench_common.cc.o.d"
  "libretia_bench_common.a"
  "libretia_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retia_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
