file(REMOVE_RECURSE
  "libretia_bench_common.a"
)
