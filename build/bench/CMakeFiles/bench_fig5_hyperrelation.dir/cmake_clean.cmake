file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_hyperrelation.dir/bench_fig5_hyperrelation.cc.o"
  "CMakeFiles/bench_fig5_hyperrelation.dir/bench_fig5_hyperrelation.cc.o.d"
  "bench_fig5_hyperrelation"
  "bench_fig5_hyperrelation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_hyperrelation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
