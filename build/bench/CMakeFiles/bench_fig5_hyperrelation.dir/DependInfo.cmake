
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_hyperrelation.cc" "bench/CMakeFiles/bench_fig5_hyperrelation.dir/bench_fig5_hyperrelation.cc.o" "gcc" "bench/CMakeFiles/bench_fig5_hyperrelation.dir/bench_fig5_hyperrelation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/retia_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/retia_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/retia_train.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/retia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/retia_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/retia_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/retia_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/retia_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/tkg/CMakeFiles/retia_tkg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/retia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
