# Empty compiler generated dependencies file for bench_fig5_hyperrelation.
# This may be replaced when dependencies are built.
