file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_tim_loss_icews14.dir/bench_fig4_tim_loss_icews14.cc.o"
  "CMakeFiles/bench_fig4_tim_loss_icews14.dir/bench_fig4_tim_loss_icews14.cc.o.d"
  "bench_fig4_tim_loss_icews14"
  "bench_fig4_tim_loss_icews14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tim_loss_icews14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
