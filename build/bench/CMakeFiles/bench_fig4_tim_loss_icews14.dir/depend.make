# Empty dependencies file for bench_fig4_tim_loss_icews14.
# This may be replaced when dependencies are built.
