# Empty dependencies file for bench_fig3_tim_loss_yago.
# This may be replaced when dependencies are built.
