file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_tim_loss_yago.dir/bench_fig3_tim_loss_yago.cc.o"
  "CMakeFiles/bench_fig3_tim_loss_yago.dir/bench_fig3_tim_loss_yago.cc.o.d"
  "bench_fig3_tim_loss_yago"
  "bench_fig3_tim_loss_yago.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_tim_loss_yago.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
