// AVX2 + FMA backend (8-wide). This file is compiled with -mavx2 -mfma
// (see src/simd/CMakeLists.txt); dispatch.cc only calls GetAvx2Table()
// after __builtin_cpu_supports confirms both features, and the accessor
// itself performs no vector work.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "simd/tables.h"

namespace retia::simd {
namespace {

struct Avx2Traits {
  using Vec = __m256;
  using DVec = __m256d;
  static constexpr int kWidth = 8;
  static constexpr bool kFused = true;

  static Vec Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, Vec v) { _mm256_storeu_ps(p, v); }
  static Vec Set1(float x) { return _mm256_set1_ps(x); }
  static Vec Zero() { return _mm256_setzero_ps(); }
  static Vec Add(Vec a, Vec b) { return _mm256_add_ps(a, b); }
  static Vec Sub(Vec a, Vec b) { return _mm256_sub_ps(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm256_mul_ps(a, b); }
  static Vec Div(Vec a, Vec b) { return _mm256_div_ps(a, b); }
  static Vec Madd(Vec a, Vec b, Vec c) { return _mm256_fmadd_ps(a, b, c); }
  static Vec Max(Vec a, Vec b) { return _mm256_max_ps(a, b); }
  static Vec Min(Vec a, Vec b) { return _mm256_min_ps(a, b); }
  static Vec Sqrt(Vec a) { return _mm256_sqrt_ps(a); }
  static Vec RoundNearest(Vec v) {
    return _mm256_round_ps(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  static Vec PowTwo(Vec nf) {
    __m256i n = _mm256_cvtps_epi32(nf);
    n = _mm256_add_epi32(n, _mm256_set1_epi32(127));
    n = _mm256_slli_epi32(n, 23);
    return _mm256_castsi256_ps(n);
  }

  static DVec DZero() { return _mm256_setzero_pd(); }
  static DVec DAdd(DVec a, DVec b) { return _mm256_add_pd(a, b); }
  static DVec DMul(DVec a, DVec b) { return _mm256_mul_pd(a, b); }
  static DVec WidenLo(Vec v) {
    return _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  }
  static DVec WidenHi(Vec v) {
    return _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
  }

  static float ReduceAdd(Vec v) {
    __m128 h = _mm_add_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    h = _mm_add_ps(h, _mm_movehl_ps(h, h));
    h = _mm_add_ss(h, _mm_shuffle_ps(h, h, 0x55));
    return _mm_cvtss_f32(h);
  }
  static double DReduceAdd(DVec v) {
    __m128d h = _mm_add_pd(_mm256_castpd256_pd128(v),
                           _mm256_extractf128_pd(v, 1));
    h = _mm_add_sd(h, _mm_unpackhi_pd(h, h));
    return _mm_cvtsd_f64(h);
  }
  static float ReduceMax(Vec v) {
    __m128 h = _mm_max_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    h = _mm_max_ps(h, _mm_movehl_ps(h, h));
    h = _mm_max_ss(h, _mm_shuffle_ps(h, h, 0x55));
    return _mm_cvtss_f32(h);
  }
};

#include "simd/kernels_quant-inl.h"
#include "simd/kernels_generic-inl.h"

// Vectorized int8 NT GEMM: 16 bytes per side sign-extended with
// _mm256_cvtepi8_epi16, then _mm256_madd_epi16 gives 8 exact i32
// pair-sums per step (the u8xs8 maddubs trick is deliberately NOT used:
// its i16 pair-sums can saturate at 2*255*127 > 32767). All integer
// arithmetic is exact and the scale epilogue keeps the reference
// rounding order, so this is bit-identical to GemmNTI8K.
void GemmNTI8Avx2(const int8_t* a, const float* sa, const int8_t* b,
                  const float* sb, float* out, int64_t i0, int64_t i1,
                  int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* ai = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* bj = b + j * k;
      __m256i acc = _mm256_setzero_si256();
      int64_t p = 0;
      for (; p + 16 <= k; p += 16) {
        const __m256i av = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(ai + p)));
        const __m256i bv = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bj + p)));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
      }
      __m128i h = _mm_add_epi32(_mm256_castsi256_si128(acc),
                                _mm256_extracti128_si256(acc, 1));
      h = _mm_add_epi32(h, _mm_srli_si128(h, 8));
      h = _mm_add_epi32(h, _mm_srli_si128(h, 4));
      int32_t sum = _mm_cvtsi128_si32(h);
      for (; p < k; ++p) {
        sum += static_cast<int32_t>(ai[p]) * static_cast<int32_t>(bj[p]);
      }
      const float m = sa[i] * sb[j];
      out[i * n + j] = static_cast<float>(sum) * m;
    }
  }
}

}  // namespace

const KernelTable* GetAvx2Table() {
  static const KernelTable table = [] {
    KernelTable t = *MakeGenericTable<Avx2Traits>("avx2");
    t.gemm_nt_i8 = GemmNTI8Avx2;
#if defined(RETIA_HAVE_AVXVNNI)
    // vpdpbusd micro-kernel (kernels_avx2vnni.cc): exact i32 accumulate,
    // so still bit-identical — picked only when the CPU actually has it.
    if (__builtin_cpu_supports("avxvnni")) t.gemm_nt_i8 = GemmNTI8Avx2Vnni;
#endif
    return t;
  }();
  return &table;
}

}  // namespace retia::simd

#endif  // x86-64
