#ifndef RETIA_SIMD_TABLES_H_
#define RETIA_SIMD_TABLES_H_

#include "simd/simd.h"

// Internal: per-backend table accessors, each defined in its own
// translation unit so the SIMD ones can be compiled with their ISA flags.
// dispatch.cc only calls an accessor after confirming the CPU supports the
// ISA (the accessors themselves must therefore stay trivial).

namespace retia::simd {

const KernelTable* GetScalarTable();

#if defined(__x86_64__) || defined(_M_X64)
const KernelTable* GetSse2Table();
const KernelTable* GetAvx2Table();

// AVX-VNNI override for the int8 GEMM micro-kernel (vpdpbusd, exact i32
// accumulate via the +128 offset trick — bit-identical to the scalar
// reference). Defined in kernels_avx2vnni.cc, which only exists when the
// compiler supports -mavxvnni (RETIA_HAVE_AVXVNNI); GetAvx2Table installs
// it after __builtin_cpu_supports("avxvnni") confirms the CPU can run it.
#if defined(RETIA_HAVE_AVXVNNI)
void GemmNTI8Avx2Vnni(const int8_t* a, const float* sa, const int8_t* b,
                      const float* sb, float* out, int64_t i0, int64_t i1,
                      int64_t k, int64_t n);
#endif
#endif

#if defined(__aarch64__)
const KernelTable* GetNeonTable();
#endif

}  // namespace retia::simd

#endif  // RETIA_SIMD_TABLES_H_
