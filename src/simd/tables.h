#ifndef RETIA_SIMD_TABLES_H_
#define RETIA_SIMD_TABLES_H_

#include "simd/simd.h"

// Internal: per-backend table accessors, each defined in its own
// translation unit so the SIMD ones can be compiled with their ISA flags.
// dispatch.cc only calls an accessor after confirming the CPU supports the
// ISA (the accessors themselves must therefore stay trivial).

namespace retia::simd {

const KernelTable* GetScalarTable();

#if defined(__x86_64__) || defined(_M_X64)
const KernelTable* GetSse2Table();
const KernelTable* GetAvx2Table();
#endif

#if defined(__aarch64__)
const KernelTable* GetNeonTable();
#endif

}  // namespace retia::simd

#endif  // RETIA_SIMD_TABLES_H_
