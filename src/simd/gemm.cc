// Whole-matrix GEMM drivers: fixed row sharding over par::DefaultPool()
// (tile-aligned so shard boundaries stay off the micro-kernels' 1-row
// remainder path), B panel packing for backends that want it, and a
// density probe that routes one-hot-like A matrices to the zero-skipping
// sparse kernel (RETIA's relation/entity one-hot selector matmuls).

#include <cstring>
#include <vector>

#include "par/parallel_for.h"
#include "simd/simd.h"

namespace retia::simd {
namespace {

// Row-block height of the register-blocked micro-kernels.
constexpr int64_t kRowTile = 4;

// The sparse probe is only worth its O(mk) scan when the dense kernel
// would do substantially more work than the scan itself.
constexpr int64_t kSparseProbeMinCols = 16;
constexpr int64_t kSparseProbeMinDepth = 16;

// One-hot-like: at most 1 nonzero per 8 elements. The zero-skip saves
// roughly the density factor in flops, so 1/8 leaves a wide margin over
// the dense kernel's better instruction-level parallelism (the
// BM_MatMulOneHot / BM_MatMul pair in bench_micro_kernels tracks this).
bool IsOneHotLike(const float* a, int64_t m, int64_t k, int64_t n) {
  if (n < kSparseProbeMinCols || k < kSparseProbeMinDepth) return false;
  const int64_t total = m * k;
  const int64_t budget = total / 8;
  int64_t nonzero = 0;
  for (int64_t i = 0; i < total; ++i) {
    if (a[i] != 0.0f && ++nonzero > budget) return false;
  }
  return true;
}

// Packs the n/S full column strips of B[k,n] into contiguous panels:
// strip s stores B[p][s*S + c] at bp[(s*k + p)*S + c], so the NN and TN
// inner loops read two consecutive vectors per k step instead of striding
// by n. Column remainders (n % S) are read from B directly by the scalar
// tail loops and are not packed.
void PackB(const float* b, int64_t k, int64_t n, int64_t strip,
           std::vector<float>* packed) {
  const int64_t nstrips = n / strip;
  packed->resize(static_cast<size_t>(nstrips * k * strip));
  float* dst = packed->data();
  for (int64_t s = 0; s < nstrips; ++s) {
    const float* src = b + s * strip;
    for (int64_t p = 0; p < k; ++p) {
      std::memcpy(dst, src + p * n, static_cast<size_t>(strip) * sizeof(float));
      dst += strip;
    }
  }
}

}  // namespace

void GemmNN(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const KernelTable& t = Kernels();
  if (IsOneHotLike(a, m, k, n)) {
    par::ParallelForTiled(
        m, kRowTile, par::GrainRows(k * n / 8),
        [&](int64_t i0, int64_t i1) { t.gemm_nn_sparse(a, b, out, i0, i1, k, n); });
    return;
  }
  std::vector<float> packed;
  const float* bp = b;
  if (t.needs_packed_b && n >= t.gemm_strip) {
    PackB(b, k, n, t.gemm_strip, &packed);
    bp = packed.data();
  }
  par::ParallelForTiled(
      m, kRowTile, par::GrainRows(k * n),
      [&](int64_t i0, int64_t i1) { t.gemm_nn(a, b, bp, out, i0, i1, k, n); });
}

void GemmNT(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const KernelTable& t = Kernels();
  par::ParallelForTiled(
      m, kRowTile, par::GrainRows(k * n),
      [&](int64_t i0, int64_t i1) { t.gemm_nt(a, b, out, i0, i1, k, n); });
}

void GemmTN(const float* a, const float* g, float* out, int64_t m, int64_t k,
            int64_t n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const KernelTable& t = Kernels();
  par::ParallelForTiled(
      k, kRowTile, par::GrainRows(m * n),
      [&](int64_t p0, int64_t p1) { t.gemm_tn(a, g, out, m, p0, p1, k, n); });
}

void GemmNTQuant(const int8_t* a, const float* sa, const int8_t* b,
                 const float* sb, float* out, int64_t m, int64_t k,
                 int64_t n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const KernelTable& t = Kernels();
  // Grain uses k*n/4: int8 NT does ~4x less memory traffic per output
  // element than the f32 kernel the GrainRows heuristic was tuned on.
  par::ParallelForTiled(
      m, kRowTile, par::GrainRows(k * n / 4),
      [&](int64_t i0, int64_t i1) {
        t.gemm_nt_i8(a, sa, b, sb, out, i0, i1, k, n);
      });
}

}  // namespace retia::simd
