// Generic SIMD kernel bodies, parameterized on a vector-traits type and
// instantiated once per backend translation unit (kernels_avx2.cc,
// kernels_sse2.cc, kernels_neon.cc) so each instantiation is compiled with
// that backend's ISA flags. Include this inside an anonymous namespace in
// `namespace retia::simd` (after <algorithm>, <cmath>, <cstdint>,
// <cstring>, and simd/kernels_quant-inl.h, whose shared reference kernels
// the table below installs); the traits types live in anonymous namespaces
// too, so the
// template instantiations are TU-local and never collide across backends.
//
// Traits interface (V):
//   using Vec;                     // register of kWidth floats
//   using DVec;                    // register of kWidth/2 doubles
//   static constexpr int kWidth;   // floats per Vec
//   static constexpr bool kFused;  // Madd is a fused multiply-add
//   Vec  Load(const float*);       // unaligned
//   void Store(float*, Vec);       // unaligned
//   Vec  Set1(float); Vec Zero();
//   Vec  Add(Vec, Vec); Vec Sub(Vec, Vec); Vec Mul(Vec, Vec); Vec Div(Vec, Vec);
//   Vec  Madd(Vec a, Vec b, Vec c);   // a*b + c
//   Vec  Max(Vec, Vec); Vec Min(Vec, Vec); Vec Sqrt(Vec);
//   Vec  RoundNearest(Vec);           // round-to-nearest-even, float-valued
//   Vec  PowTwo(Vec n);               // 2^int(n) for integral n in [-126,127]
//   DVec DZero(); DVec DAdd(DVec, DVec); DVec DMul(DVec, DVec);
//   DVec WidenLo(Vec); DVec WidenHi(Vec);   // f32 -> f64, low/high half
//   float  ReduceAdd(Vec);            // fixed pairwise lane tree
//   double DReduceAdd(DVec);          // fixed pairwise lane tree
//   float  ReduceMax(Vec);
//
// Determinism: every reduction folds lanes with the traits' fixed tree and
// appends the scalar tail in index order; every GEMM output element
// receives its contributions in increasing k (or m) index order, so
// results are invariant to row sharding. Scalar tails use std::fma when
// kFused so a value computed in a tail is bit-identical to the same value
// computed in a vector lane.

template <typename V>
struct Gen {
  using Vec = typename V::Vec;
  using DVec = typename V::DVec;
  static constexpr int64_t W = V::kWidth;
  static constexpr int64_t S = 2 * W;  // GEMM column-strip width

  static float MaddS(float a, float b, float c) {
    if constexpr (V::kFused) {
      return std::fma(a, b, c);
    } else {
      return a * b + c;
    }
  }

  // ---- Elementwise ---------------------------------------------------------

  static void AddK(const float* a, const float* b, float* y, int64_t n) {
    int64_t i = 0;
    for (; i + W <= n; i += W)
      V::Store(y + i, V::Add(V::Load(a + i), V::Load(b + i)));
    for (; i < n; ++i) y[i] = a[i] + b[i];
  }

  static void SubK(const float* a, const float* b, float* y, int64_t n) {
    int64_t i = 0;
    for (; i + W <= n; i += W)
      V::Store(y + i, V::Sub(V::Load(a + i), V::Load(b + i)));
    for (; i < n; ++i) y[i] = a[i] - b[i];
  }

  static void MulK(const float* a, const float* b, float* y, int64_t n) {
    int64_t i = 0;
    for (; i + W <= n; i += W)
      V::Store(y + i, V::Mul(V::Load(a + i), V::Load(b + i)));
    for (; i < n; ++i) y[i] = a[i] * b[i];
  }

  static void ScaleK(const float* a, float s, float* y, int64_t n) {
    const Vec sv = V::Set1(s);
    int64_t i = 0;
    for (; i + W <= n; i += W) V::Store(y + i, V::Mul(V::Load(a + i), sv));
    for (; i < n; ++i) y[i] = a[i] * s;
  }

  static void AddScalarK(const float* a, float c, float* y, int64_t n) {
    const Vec cv = V::Set1(c);
    int64_t i = 0;
    for (; i + W <= n; i += W) V::Store(y + i, V::Add(V::Load(a + i), cv));
    for (; i < n; ++i) y[i] = a[i] + c;
  }

  // Unfused on purpose (mul then add, like the scalar reference) so axpy
  // stays bit-exact across every backend; the GEMM kernels use the fused
  // FusedAxpy below instead.
  static void AxpyK(float alpha, const float* x, float* y, int64_t n) {
    const Vec av = V::Set1(alpha);
    int64_t i = 0;
    for (; i + W <= n; i += W)
      V::Store(y + i, V::Add(V::Mul(av, V::Load(x + i)), V::Load(y + i)));
    for (; i < n; ++i) y[i] += alpha * x[i];
  }

  static void AccumulateK(const float* x, float* y, int64_t n) {
    int64_t i = 0;
    for (; i + W <= n; i += W)
      V::Store(y + i, V::Add(V::Load(y + i), V::Load(x + i)));
    for (; i < n; ++i) y[i] += x[i];
  }

  // ---- Reductions ----------------------------------------------------------

  static float ReduceMaxK(const float* x, int64_t n) {
    // Max is order-insensitive for non-NaN data, so this equals the serial
    // scan bit-for-bit.
    if (n < W) {
      float mx = x[0];
      for (int64_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
      return mx;
    }
    Vec m = V::Load(x);
    int64_t i = W;
    for (; i + W <= n; i += W) m = V::Max(m, V::Load(x + i));
    float mx = V::ReduceMax(m);
    for (; i < n; ++i) mx = std::max(mx, x[i]);
    return mx;
  }

  static double DotF64K(const float* a, const float* b, int64_t n) {
    // Mirrors the scalar reference's precision (float product, double
    // accumulation); only the lane-tree fold order differs.
    DVec lo = V::DZero(), hi = V::DZero();
    int64_t i = 0;
    for (; i + W <= n; i += W) {
      const Vec p = V::Mul(V::Load(a + i), V::Load(b + i));
      lo = V::DAdd(lo, V::WidenLo(p));
      hi = V::DAdd(hi, V::WidenHi(p));
    }
    double acc = V::DReduceAdd(lo) + V::DReduceAdd(hi);
    for (; i < n; ++i) acc += a[i] * b[i];
    return acc;
  }

  static double SumSquaresF64K(const float* x, int64_t n) {
    // Squares in double (exact for float inputs), like the scalar
    // reference; only the accumulation order differs.
    DVec lo = V::DZero(), hi = V::DZero();
    int64_t i = 0;
    for (; i + W <= n; i += W) {
      const Vec v = V::Load(x + i);
      const DVec l = V::WidenLo(v);
      const DVec h = V::WidenHi(v);
      lo = V::DAdd(lo, V::DMul(l, l));
      hi = V::DAdd(hi, V::DMul(h, h));
    }
    double acc = V::DReduceAdd(lo) + V::DReduceAdd(hi);
    for (; i < n; ++i) acc += static_cast<double>(x[i]) * x[i];
    return acc;
  }

  // ---- Vector exp (Cephes-style polynomial, ~2 ulp) ------------------------

  static Vec ExpV(Vec x) {
    x = V::Min(x, V::Set1(88.3762626647950f));
    x = V::Max(x, V::Set1(-87.3365478515625f));
    // n = round(x / ln 2); r = x - n*ln2 via two-part Cody-Waite.
    const Vec nf = V::RoundNearest(V::Mul(x, V::Set1(1.44269504088896341f)));
    Vec r = V::Madd(nf, V::Set1(-0.693359375f), x);
    r = V::Madd(nf, V::Set1(2.12194440e-4f), r);
    Vec p = V::Set1(1.9875691500e-4f);
    p = V::Madd(p, r, V::Set1(1.3981999507e-3f));
    p = V::Madd(p, r, V::Set1(8.3334519073e-3f));
    p = V::Madd(p, r, V::Set1(4.1665795894e-2f));
    p = V::Madd(p, r, V::Set1(1.6666665459e-1f));
    p = V::Madd(p, r, V::Set1(5.0000001201e-1f));
    const Vec r2 = V::Mul(r, r);
    const Vec e = V::Madd(r2, p, V::Add(r, V::Set1(1.0f)));
    return V::Mul(e, V::PowTwo(nf));
  }

  static void ExpStoreSumK(const float* x, float shift, float* y, double* sum,
                           int64_t n) {
    const Vec sh = V::Set1(shift);
    DVec lo = V::DZero(), hi = V::DZero();
    int64_t i = 0;
    for (; i + W <= n; i += W) {
      const Vec e = ExpV(V::Sub(V::Load(x + i), sh));
      V::Store(y + i, e);
      lo = V::DAdd(lo, V::WidenLo(e));
      hi = V::DAdd(hi, V::WidenHi(e));
    }
    double acc = V::DReduceAdd(lo) + V::DReduceAdd(hi);
    for (; i < n; ++i) {
      y[i] = std::exp(x[i] - shift);
      acc += y[i];
    }
    *sum = acc;
  }

  static double ExpSumK(const float* x, float shift, int64_t n) {
    const Vec sh = V::Set1(shift);
    DVec lo = V::DZero(), hi = V::DZero();
    int64_t i = 0;
    for (; i + W <= n; i += W) {
      const Vec e = ExpV(V::Sub(V::Load(x + i), sh));
      lo = V::DAdd(lo, V::WidenLo(e));
      hi = V::DAdd(hi, V::WidenHi(e));
    }
    double acc = V::DReduceAdd(lo) + V::DReduceAdd(hi);
    for (; i < n; ++i) acc += std::exp(x[i] - shift);
    return acc;
  }

  static void ExpShiftStoreK(const float* x, double shift, float* y,
                             int64_t n) {
    // The shift is applied at float precision here (the scalar reference
    // subtracts in double); tolerance-bound, like the polynomial exp.
    const Vec sh = V::Set1(static_cast<float>(shift));
    int64_t i = 0;
    for (; i + W <= n; i += W)
      V::Store(y + i, ExpV(V::Sub(V::Load(x + i), sh)));
    for (; i < n; ++i) y[i] = static_cast<float>(std::exp(x[i] - shift));
  }

  // ---- GEMM micro-kernels --------------------------------------------------
  //
  // Register-blocked 4xS tiles: 4 output rows x one S-wide column strip
  // held in 8 vector accumulators, with the k (resp. m) loop innermost so
  // each output element accumulates in index order. Column remainders
  // (n % S) fall back to scalar MaddS loops; row remainders to a 1-row
  // variant of the same tile. Under a fused Madd both remainders compute
  // the exact same value the full tile would, so tiling and sharding
  // never change results.

  // NN: packed-panel layout from simd::detail::PackB — strip s holds
  // B[p][s*S + c] at bp[(s*k + p)*S + c] for the n/S full strips.
  static void GemmNNK(const float* a, const float* b, const float* bp,
                      float* out, int64_t i0, int64_t i1, int64_t k,
                      int64_t n) {
    const int64_t nstrips = n / S;
    const int64_t nfull = nstrips * S;
    int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* arow[4] = {a + i * k, a + (i + 1) * k, a + (i + 2) * k,
                              a + (i + 3) * k};
      for (int64_t s = 0; s < nstrips; ++s) {
        const float* panel = bp + s * k * S;
        Vec c00 = V::Zero(), c01 = V::Zero(), c10 = V::Zero(),
            c11 = V::Zero(), c20 = V::Zero(), c21 = V::Zero(),
            c30 = V::Zero(), c31 = V::Zero();
        for (int64_t p = 0; p < k; ++p) {
          const Vec b0 = V::Load(panel + p * S);
          const Vec b1 = V::Load(panel + p * S + W);
          Vec av = V::Set1(arow[0][p]);
          c00 = V::Madd(av, b0, c00);
          c01 = V::Madd(av, b1, c01);
          av = V::Set1(arow[1][p]);
          c10 = V::Madd(av, b0, c10);
          c11 = V::Madd(av, b1, c11);
          av = V::Set1(arow[2][p]);
          c20 = V::Madd(av, b0, c20);
          c21 = V::Madd(av, b1, c21);
          av = V::Set1(arow[3][p]);
          c30 = V::Madd(av, b0, c30);
          c31 = V::Madd(av, b1, c31);
        }
        float* o = out + i * n + s * S;
        V::Store(o, c00);
        V::Store(o + W, c01);
        V::Store(o + n, c10);
        V::Store(o + n + W, c11);
        V::Store(o + 2 * n, c20);
        V::Store(o + 2 * n + W, c21);
        V::Store(o + 3 * n, c30);
        V::Store(o + 3 * n + W, c31);
      }
      for (int64_t j = nfull; j < n; ++j) {
        for (int r = 0; r < 4; ++r) {
          float acc = 0.0f;
          for (int64_t p = 0; p < k; ++p)
            acc = MaddS(arow[r][p], b[p * n + j], acc);
          out[(i + r) * n + j] = acc;
        }
      }
    }
    for (; i < i1; ++i) {
      const float* arow = a + i * k;
      for (int64_t s = 0; s < nstrips; ++s) {
        const float* panel = bp + s * k * S;
        Vec c0 = V::Zero(), c1 = V::Zero();
        for (int64_t p = 0; p < k; ++p) {
          const Vec av = V::Set1(arow[p]);
          c0 = V::Madd(av, V::Load(panel + p * S), c0);
          c1 = V::Madd(av, V::Load(panel + p * S + W), c1);
        }
        V::Store(out + i * n + s * S, c0);
        V::Store(out + i * n + s * S + W, c1);
      }
      for (int64_t j = nfull; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p)
          acc = MaddS(arow[p], b[p * n + j], acc);
        out[i * n + j] = acc;
      }
    }
  }

  // y += alpha * x with the backend's Madd; matches the lanes the dense NN
  // kernel would have produced for the same (finite) data.
  static void FusedAxpy(float alpha, const float* x, float* y, int64_t n) {
    const Vec av = V::Set1(alpha);
    int64_t j = 0;
    for (; j + W <= n; j += W)
      V::Store(y + j, V::Madd(av, V::Load(x + j), V::Load(y + j)));
    for (; j < n; ++j) y[j] = MaddS(alpha, x[j], y[j]);
  }

  static void GemmNNSparseK(const float* a, const float* b, float* out,
                            int64_t i0, int64_t i1, int64_t k, int64_t n) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* orow = out + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        FusedAxpy(av, b + p * n, orow, n);
      }
    }
  }

  // One dot product, k in W-lane chunks (lane l holds the p = l mod W
  // partial), folded with the traits' fixed tree, scalar tail appended in
  // index order.
  static float Dot1(const float* x, const float* y, int64_t k) {
    Vec acc = V::Zero();
    int64_t p = 0;
    for (; p + W <= k; p += W)
      acc = V::Madd(V::Load(x + p), V::Load(y + p), acc);
    float s = V::ReduceAdd(acc);
    for (; p < k; ++p) s = MaddS(x[p], y[p], s);
    return s;
  }

  static void GemmNTK(const float* a, const float* b, float* out, int64_t i0,
                      int64_t i1, int64_t k, int64_t n) {
    const int64_t kfull = k / W * W;
    int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* arow[4] = {a + i * k, a + (i + 1) * k, a + (i + 2) * k,
                              a + (i + 3) * k};
      int64_t j = 0;
      for (; j + 2 <= n; j += 2) {
        const float* b0 = b + j * k;
        const float* b1 = b + (j + 1) * k;
        Vec c00 = V::Zero(), c01 = V::Zero(), c10 = V::Zero(),
            c11 = V::Zero(), c20 = V::Zero(), c21 = V::Zero(),
            c30 = V::Zero(), c31 = V::Zero();
        for (int64_t p = 0; p < kfull; p += W) {
          const Vec vb0 = V::Load(b0 + p);
          const Vec vb1 = V::Load(b1 + p);
          Vec va = V::Load(arow[0] + p);
          c00 = V::Madd(va, vb0, c00);
          c01 = V::Madd(va, vb1, c01);
          va = V::Load(arow[1] + p);
          c10 = V::Madd(va, vb0, c10);
          c11 = V::Madd(va, vb1, c11);
          va = V::Load(arow[2] + p);
          c20 = V::Madd(va, vb0, c20);
          c21 = V::Madd(va, vb1, c21);
          va = V::Load(arow[3] + p);
          c30 = V::Madd(va, vb0, c30);
          c31 = V::Madd(va, vb1, c31);
        }
        float s[4][2] = {{V::ReduceAdd(c00), V::ReduceAdd(c01)},
                         {V::ReduceAdd(c10), V::ReduceAdd(c11)},
                         {V::ReduceAdd(c20), V::ReduceAdd(c21)},
                         {V::ReduceAdd(c30), V::ReduceAdd(c31)}};
        for (int64_t p = kfull; p < k; ++p) {
          for (int r = 0; r < 4; ++r) {
            s[r][0] = MaddS(arow[r][p], b0[p], s[r][0]);
            s[r][1] = MaddS(arow[r][p], b1[p], s[r][1]);
          }
        }
        for (int r = 0; r < 4; ++r) {
          out[(i + r) * n + j] = s[r][0];
          out[(i + r) * n + j + 1] = s[r][1];
        }
      }
      for (; j < n; ++j) {
        for (int r = 0; r < 4; ++r)
          out[(i + r) * n + j] = Dot1(arow[r], b + j * k, k);
      }
    }
    for (; i < i1; ++i) {
      for (int64_t j = 0; j < n; ++j)
        out[i * n + j] = Dot1(a + i * k, b + j * k, k);
    }
  }

  static void GemmTNK(const float* a, const float* g, float* out, int64_t m,
                      int64_t p0, int64_t p1, int64_t k, int64_t n) {
    const int64_t nstrips = n / S;
    const int64_t nfull = nstrips * S;
    int64_t p = p0;
    for (; p + 4 <= p1; p += 4) {
      for (int64_t s = 0; s < nstrips; ++s) {
        const int64_t j0 = s * S;
        Vec c00 = V::Zero(), c01 = V::Zero(), c10 = V::Zero(),
            c11 = V::Zero(), c20 = V::Zero(), c21 = V::Zero(),
            c30 = V::Zero(), c31 = V::Zero();
        for (int64_t i = 0; i < m; ++i) {
          const Vec g0 = V::Load(g + i * n + j0);
          const Vec g1 = V::Load(g + i * n + j0 + W);
          const float* ai = a + i * k + p;
          Vec av = V::Set1(ai[0]);
          c00 = V::Madd(av, g0, c00);
          c01 = V::Madd(av, g1, c01);
          av = V::Set1(ai[1]);
          c10 = V::Madd(av, g0, c10);
          c11 = V::Madd(av, g1, c11);
          av = V::Set1(ai[2]);
          c20 = V::Madd(av, g0, c20);
          c21 = V::Madd(av, g1, c21);
          av = V::Set1(ai[3]);
          c30 = V::Madd(av, g0, c30);
          c31 = V::Madd(av, g1, c31);
        }
        float* o = out + p * n + j0;
        V::Store(o, c00);
        V::Store(o + W, c01);
        V::Store(o + n, c10);
        V::Store(o + n + W, c11);
        V::Store(o + 2 * n, c20);
        V::Store(o + 2 * n + W, c21);
        V::Store(o + 3 * n, c30);
        V::Store(o + 3 * n + W, c31);
      }
      for (int64_t j = nfull; j < n; ++j) {
        for (int r = 0; r < 4; ++r) {
          float acc = 0.0f;
          for (int64_t i = 0; i < m; ++i)
            acc = MaddS(a[i * k + p + r], g[i * n + j], acc);
          out[(p + r) * n + j] = acc;
        }
      }
    }
    for (; p < p1; ++p) {
      for (int64_t s = 0; s < nstrips; ++s) {
        const int64_t j0 = s * S;
        Vec c0 = V::Zero(), c1 = V::Zero();
        for (int64_t i = 0; i < m; ++i) {
          const Vec av = V::Set1(a[i * k + p]);
          c0 = V::Madd(av, V::Load(g + i * n + j0), c0);
          c1 = V::Madd(av, V::Load(g + i * n + j0 + W), c1);
        }
        V::Store(out + p * n + j0, c0);
        V::Store(out + p * n + j0 + W, c1);
      }
      for (int64_t j = nfull; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t i = 0; i < m; ++i)
          acc = MaddS(a[i * k + p], g[i * n + j], acc);
        out[p * n + j] = acc;
      }
    }
  }

  // ---- Optimizer -----------------------------------------------------------

  static void AdamK(float* w, const float* g, float* m, float* v, int64_t n,
                    float lr, float beta1, float beta2, float eps,
                    float weight_decay, float bc1, float bc2) {
    const Vec vb1 = V::Set1(beta1), vb1c = V::Set1(1.0f - beta1);
    const Vec vb2 = V::Set1(beta2), vb2c = V::Set1(1.0f - beta2);
    const Vec vwd = V::Set1(weight_decay);
    const Vec vlr = V::Set1(lr), veps = V::Set1(eps);
    const Vec vbc1 = V::Set1(bc1), vbc2 = V::Set1(bc2);
    int64_t j = 0;
    for (; j + W <= n; j += W) {
      Vec gj = V::Load(g + j);
      const Vec wj = V::Load(w + j);
      if (weight_decay != 0.0f) gj = V::Madd(vwd, wj, gj);
      const Vec mj = V::Madd(vb1, V::Load(m + j), V::Mul(vb1c, gj));
      const Vec vj = V::Madd(vb2, V::Load(v + j), V::Mul(vb2c, V::Mul(gj, gj)));
      V::Store(m + j, mj);
      V::Store(v + j, vj);
      const Vec mhat = V::Div(mj, vbc1);
      const Vec vhat = V::Div(vj, vbc2);
      const Vec step = V::Div(V::Mul(vlr, mhat), V::Add(V::Sqrt(vhat), veps));
      V::Store(w + j, V::Sub(wj, step));
    }
    for (; j < n; ++j) {
      float gj = g[j];
      if (weight_decay != 0.0f) gj = MaddS(weight_decay, w[j], gj);
      m[j] = MaddS(beta1, m[j], (1.0f - beta1) * gj);
      v[j] = MaddS(beta2, v[j], (1.0f - beta2) * gj * gj);
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }

  // ---- Top-k selection -----------------------------------------------------

  // Same sorted-insertion selection as the scalar reference, plus a vector
  // prefilter: once the buffer holds k entries, whole W-wide blocks whose
  // vector max is not strictly above the current k-th best score are
  // skipped without per-element work. The threshold only grows during the
  // scan, and a tie with the incumbent k-th best can never displace it
  // (later index loses the tie-break), so the skip is exact and the result
  // is bit-identical to the scalar kernel. Pure selection — no float
  // arithmetic — for non-NaN scores (reduce_max contract).
  static int64_t TopKSelectF32K(const float* scores, int64_t n, int64_t k,
                                int64_t* idx) {
    const int64_t take = std::min(k, n);
    if (take <= 0) return 0;
    int64_t filled = 0;
    const auto insert = [&](int64_t i, float s) {
      if (filled == take) {
        if (!(s > scores[idx[take - 1]])) return;
        --filled;
      }
      int64_t j = filled;
      for (; j > 0 && s > scores[idx[j - 1]]; --j) idx[j] = idx[j - 1];
      idx[j] = i;
      ++filled;
    };
    int64_t i = 0;
    for (; i + W <= n; i += W) {
      if (filled == take) {
        const float tau = scores[idx[take - 1]];
        if (!(V::ReduceMax(V::Load(scores + i)) > tau)) continue;
      }
      for (int64_t j = i; j < i + W; ++j) insert(j, scores[j]);
    }
    for (; i < n; ++i) insert(i, scores[i]);
    return filled;
  }
};

// Fills a KernelTable with the Gen<V> kernels. The table is a function
// local so each backend TU owns exactly one instance.
template <typename V>
const KernelTable* MakeGenericTable(const char* name) {
  static const KernelTable table = {
      name,
      V::kWidth,
      /*gemm_strip=*/2 * V::kWidth,
      /*needs_packed_b=*/true,
      &Gen<V>::AddK,
      &Gen<V>::SubK,
      &Gen<V>::MulK,
      &Gen<V>::ScaleK,
      &Gen<V>::AddScalarK,
      &Gen<V>::AxpyK,
      &Gen<V>::AccumulateK,
      &Gen<V>::ReduceMaxK,
      &Gen<V>::DotF64K,
      &Gen<V>::SumSquaresF64K,
      &Gen<V>::ExpStoreSumK,
      &Gen<V>::ExpSumK,
      &Gen<V>::ExpShiftStoreK,
      &Gen<V>::GemmNNK,
      &Gen<V>::GemmNNSparseK,
      &Gen<V>::GemmNTK,
      &Gen<V>::GemmTNK,
      &Gen<V>::AdamK,
      // Quantized family: the shared references from kernels_quant-inl.h
      // (bit-exact across backends by construction). Backends with a
      // vectorized int8 GEMM override gemm_nt_i8 after copying this table.
      QuantizeRowsI8K,
      GemmNTI8K,
      F32ToF16K,
      F16ToF32K,
      &Gen<V>::TopKSelectF32K,
  };
  return &table;
}
