// SSE2 backend (4-wide). SSE2 is part of the x86-64 baseline, so this
// file needs no extra compile flags and the table is always supported on
// x86-64. No FMA: Madd lowers to mul + add (kFused = false), so scalar
// tails use plain a*b + c and match the vector lanes exactly.

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "simd/tables.h"

namespace retia::simd {
namespace {

struct Sse2Traits {
  using Vec = __m128;
  using DVec = __m128d;
  static constexpr int kWidth = 4;
  static constexpr bool kFused = false;

  static Vec Load(const float* p) { return _mm_loadu_ps(p); }
  static void Store(float* p, Vec v) { _mm_storeu_ps(p, v); }
  static Vec Set1(float x) { return _mm_set1_ps(x); }
  static Vec Zero() { return _mm_setzero_ps(); }
  static Vec Add(Vec a, Vec b) { return _mm_add_ps(a, b); }
  static Vec Sub(Vec a, Vec b) { return _mm_sub_ps(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm_mul_ps(a, b); }
  static Vec Div(Vec a, Vec b) { return _mm_div_ps(a, b); }
  static Vec Madd(Vec a, Vec b, Vec c) {
    return _mm_add_ps(_mm_mul_ps(a, b), c);
  }
  static Vec Max(Vec a, Vec b) { return _mm_max_ps(a, b); }
  static Vec Min(Vec a, Vec b) { return _mm_min_ps(a, b); }
  static Vec Sqrt(Vec a) { return _mm_sqrt_ps(a); }
  // cvtps_epi32 rounds per MXCSR, which retia never changes from its
  // power-on default of round-to-nearest-even.
  static Vec RoundNearest(Vec v) {
    return _mm_cvtepi32_ps(_mm_cvtps_epi32(v));
  }
  static Vec PowTwo(Vec nf) {
    __m128i n = _mm_cvtps_epi32(nf);
    n = _mm_add_epi32(n, _mm_set1_epi32(127));
    n = _mm_slli_epi32(n, 23);
    return _mm_castsi128_ps(n);
  }

  static DVec DZero() { return _mm_setzero_pd(); }
  static DVec DAdd(DVec a, DVec b) { return _mm_add_pd(a, b); }
  static DVec DMul(DVec a, DVec b) { return _mm_mul_pd(a, b); }
  static DVec WidenLo(Vec v) { return _mm_cvtps_pd(v); }
  static DVec WidenHi(Vec v) {
    return _mm_cvtps_pd(_mm_movehl_ps(v, v));
  }

  static float ReduceAdd(Vec v) {
    __m128 h = _mm_add_ps(v, _mm_movehl_ps(v, v));
    h = _mm_add_ss(h, _mm_shuffle_ps(h, h, 0x55));
    return _mm_cvtss_f32(h);
  }
  static double DReduceAdd(DVec v) {
    const __m128d h = _mm_add_sd(v, _mm_unpackhi_pd(v, v));
    return _mm_cvtsd_f64(h);
  }
  static float ReduceMax(Vec v) {
    __m128 h = _mm_max_ps(v, _mm_movehl_ps(v, v));
    h = _mm_max_ss(h, _mm_shuffle_ps(h, h, 0x55));
    return _mm_cvtss_f32(h);
  }
};

#include "simd/kernels_quant-inl.h"
#include "simd/kernels_generic-inl.h"

// Vectorized int8 NT GEMM. Sign-extends 8 bytes per side to 8x i16
// (compare-against-zero + unpacklo; SSE2 has no cvtepi8_epi16), then
// _mm_madd_epi16 produces 4 exact i32 pair-sums per step. i16*i16
// products and their pairwise sums fit i32 without saturation
// (|a*b| <= 127^2), the i32 accumulation is exact for k < 2^17, and the
// scale epilogue keeps the reference rounding order, so this is
// bit-identical to GemmNTI8K.
void GemmNTI8Sse2(const int8_t* a, const float* sa, const int8_t* b,
                  const float* sb, float* out, int64_t i0, int64_t i1,
                  int64_t k, int64_t n) {
  const __m128i zero = _mm_setzero_si128();
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* ai = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* bj = b + j * k;
      __m128i acc = zero;
      int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        __m128i av = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(ai + p));
        __m128i bv = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(bj + p));
        av = _mm_unpacklo_epi8(av, _mm_cmpgt_epi8(zero, av));
        bv = _mm_unpacklo_epi8(bv, _mm_cmpgt_epi8(zero, bv));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(av, bv));
      }
      __m128i h = _mm_add_epi32(acc, _mm_srli_si128(acc, 8));
      h = _mm_add_epi32(h, _mm_srli_si128(h, 4));
      int32_t sum = _mm_cvtsi128_si32(h);
      for (; p < k; ++p) {
        sum += static_cast<int32_t>(ai[p]) * static_cast<int32_t>(bj[p]);
      }
      const float m = sa[i] * sb[j];
      out[i * n + j] = static_cast<float>(sum) * m;
    }
  }
}

}  // namespace

const KernelTable* GetSse2Table() {
  static const KernelTable table = [] {
    KernelTable t = *MakeGenericTable<Sse2Traits>("sse2");
    t.gemm_nt_i8 = GemmNTI8Sse2;
    return t;
  }();
  return &table;
}

}  // namespace retia::simd

#endif  // x86-64
