#ifndef RETIA_SIMD_SIMD_H_
#define RETIA_SIMD_SIMD_H_

#include <cstdint>

namespace retia::simd {

// Portable fixed-width vectorization layer for the hot-path kernels.
//
// Every kernel exists in one scalar reference implementation plus SIMD
// backends (SSE2/AVX2 on x86-64, NEON on aarch64) selected at runtime by
// CPU detection, overridable with RETIA_SIMD (see ParseBackend). The
// scalar backend reproduces the pre-SIMD serial kernels bit-exactly; the
// SIMD backends obey the determinism contract below.
//
// DETERMINISM CONTRACT (extends par/parallel_for.h):
//  * For a fixed build and backend, every kernel is a pure function of its
//    inputs: results are bit-identical across thread counts and across
//    which shard runs where. Reductions fold their vector lanes in a fixed
//    lane-tree order (pairwise within 128-bit halves, then across halves,
//    then the scalar tail in index order), never in arrival order.
//  * Bit-exact across ALL backends: elementwise add/sub/mul/scale/axpy/
//    accumulate (one correctly-rounded op per element), reduce_max
//    (max is order-insensitive for non-NaN data), and the whole quantized
//    family quantize_rows_i8 / gemm_nt_i8 / f32_to_f16 / f16_to_f32
//    (int32 accumulation is exact; see the section comment below).
//  * Tolerance-bound against the scalar reference (documented in
//    docs/PERFORMANCE.md, enforced by tests/simd_test.cc and the
//    tensor_property_test backend sweep): the GEMM kernels (FMA keeps the
//    double-rounded products of the scalar path from being reproduced),
//    the f64 lane-tree reductions (dot_f64, sum_squares_f64), the
//    polynomial vector exp used by the softmax family, and adam_update.
struct KernelTable {
  const char* name;     // "scalar", "sse2", "avx2", "neon"
  int vector_width;     // floats per vector register (1 for scalar)
  int gemm_strip;       // GEMM column-strip width (2 * vector_width)
  bool needs_packed_b;  // GemmNN packs B into strip panels for this table

  // ---- Elementwise (y may alias a and/or b) -------------------------------
  void (*add)(const float* a, const float* b, float* y, int64_t n);
  void (*sub)(const float* a, const float* b, float* y, int64_t n);
  void (*mul)(const float* a, const float* b, float* y, int64_t n);
  // y = s * a.
  void (*scale)(const float* a, float s, float* y, int64_t n);
  // y = a + c.
  void (*add_scalar)(const float* a, float c, float* y, int64_t n);
  // y += alpha * x.
  void (*axpy)(float alpha, const float* x, float* y, int64_t n);
  // y += x.
  void (*accumulate)(const float* x, float* y, int64_t n);

  // ---- Reductions (fixed lane-tree fold order) ----------------------------
  // Max element; n must be >= 1.
  float (*reduce_max)(const float* x, int64_t n);
  // sum_i double(a[i] * b[i]): float product, double accumulation.
  double (*dot_f64)(const float* a, const float* b, int64_t n);
  // sum_i double(x[i]) * double(x[i]).
  double (*sum_squares_f64)(const float* x, int64_t n);

  // ---- Softmax building blocks -------------------------------------------
  // y[i] = exp(x[i] - shift); *sum = lane-tree double sum of the y values.
  void (*exp_store_sum)(const float* x, float shift, float* y, double* sum,
                        int64_t n);
  // Like exp_store_sum without materializing y.
  double (*exp_sum)(const float* x, float shift, int64_t n);
  // y[i] = float(exp(x[i] - shift)) with the shift applied at the
  // backend's precision (double in the scalar reference).
  void (*exp_shift_store)(const float* x, double shift, float* y, int64_t n);

  // ---- GEMM micro-kernels -------------------------------------------------
  // All operate on a row range of the OUTPUT and fully overwrite it
  // (compute-and-store; no dependence on prior output contents), except
  // gemm_nn_sparse which accumulates into a zero-initialized output. Every
  // output element always receives its k (resp. m) contributions in
  // increasing index order, so results never depend on sharding.
  //
  // NN: out[i,j] = sum_p A[i,p] B[p,j] for i in [i0,i1). `bp` is the
  // packed-panel form of B produced by PackB when needs_packed_b is set
  // (otherwise null and the kernel reads the row-major `b` directly).
  void (*gemm_nn)(const float* a, const float* b, const float* bp, float* out,
                  int64_t i0, int64_t i1, int64_t k, int64_t n);
  // NN over a mostly-zero A: skips zero A elements (exact no-ops under
  // both plain and fused multiply-add), accumulating into a
  // zero-initialized out. Bit-identical to gemm_nn for finite inputs.
  void (*gemm_nn_sparse)(const float* a, const float* b, float* out,
                         int64_t i0, int64_t i1, int64_t k, int64_t n);
  // NT: out[i,j] = sum_p A[i,p] B[j,p] for i in [i0,i1); B is [n,k].
  void (*gemm_nt)(const float* a, const float* b, float* out, int64_t i0,
                  int64_t i1, int64_t k, int64_t n);
  // TN: out[p,j] = sum_i A[i,p] G[i,j] for p in [p0,p1); A is [m,k],
  // G is [m,n], out is [k,n].
  void (*gemm_tn)(const float* a, const float* g, float* out, int64_t m,
                  int64_t p0, int64_t p1, int64_t k, int64_t n);

  // ---- Optimizer ----------------------------------------------------------
  // One Adam step over w[0..n): m = b1*m + (1-b1)*g'; v = b2*v + (1-b2)*g'^2;
  // w -= lr * (m/bc1) / (sqrt(v/bc2) + eps), g' = g + weight_decay * w.
  void (*adam_update)(float* w, const float* g, float* m, float* v, int64_t n,
                      float lr, float beta1, float beta2, float eps,
                      float weight_decay, float bc1, float bc2);

  // ---- Quantized inference (docs/QUANTIZATION.md) -------------------------
  // All four kernels are BIT-EXACT across backends: quantize clamps in f32
  // to [-127, 127] before a round-to-nearest-even convert (identical to the
  // SSE2/AVX2 min/max + cvtps_epi32 sequence under the default MXCSR), the
  // int8 GEMM accumulates in exact order-insensitive int32 arithmetic with
  // a fixed scale-epilogue rounding order, and the f16 converts are pure
  // bit manipulation. Only gemm_nt_i8 has vectorized overrides; the other
  // three share one reference implementation in every table.
  //
  // Per-row symmetric quantization of A[rows,cols]: scales[i] = amax_i/127,
  // q[i,c] = rne(clamp(a[i,c] * 127/amax_i, -127, 127)); all-zero (or
  // non-finite-free zero-amax) rows store scale 0 and all-zero codes.
  void (*quantize_rows_i8)(const float* a, int8_t* q, float* scales,
                           int64_t rows, int64_t cols);
  // NT GEMM over quantized rows: out[i,j] = float(sum_p Ai8[i,p]*Bi8[j,p])
  // * (sa[i]*sb[j]) for i in [i0,i1); Bi8 is [n,k]. The int32 dot is exact
  // for k <= 2^16 on every implementation (plain s8 x s8 needs only
  // |acc| <= k * 127^2, but the AVX-VNNI override's +128 offset form
  // accumulates |(a+128) * b| <= k * 255 * 127, which caps k at 2^16);
  // the epilogue multiplies the two scales first, then the converted sum,
  // in that fixed order.
  void (*gemm_nt_i8)(const int8_t* a, const float* sa, const int8_t* b,
                     const float* sb, float* out, int64_t i0, int64_t i1,
                     int64_t k, int64_t n);
  // IEEE binary16 converts with round-to-nearest-even (software bit
  // manipulation on every backend; overflow -> inf, NaN payload -> qNaN).
  void (*f32_to_f16)(const float* x, uint16_t* y, int64_t n);
  void (*f16_to_f32)(const uint16_t* x, float* y, int64_t n);

  // ---- Top-k selection ----------------------------------------------------
  // Writes the indices of the min(k, n) largest scores into idx[], best
  // first, and returns that count. The order is the unique total order
  // "higher score wins, ties broken by the lower index" — exactly the
  // contract of eval::TopKIndices — so every correct implementation is
  // BIT-IDENTICAL across backends (pure selection, no float arithmetic).
  // Implementations keep a sorted k-candidate buffer and only admit
  // elements strictly above the current k-th best score (exact, because a
  // later index can never displace an equal-scored incumbent); the SIMD
  // backends prefilter whole vector blocks against that threshold with a
  // vector max. Non-NaN scores only (same contract as reduce_max).
  int64_t (*topk_select_f32)(const float* scores, int64_t n, int64_t k,
                             int64_t* idx);
};

// Backends in preference order (higher enum value wins when supported).
enum class Backend { kScalar = 0, kSse2 = 1, kNeon = 2, kAvx2 = 3 };

// Stable lower-case name ("scalar", "sse2", "neon", "avx2").
const char* BackendName(Backend backend);

// Best backend for the running CPU (compile-time ISA availability plus
// runtime CPU detection; kScalar is always available).
Backend BestSupportedBackend();

// True when `backend` is compiled into this binary and the CPU can run it.
bool BackendSupported(Backend backend);

// Parses a RETIA_SIMD value: off|scalar -> kScalar, native -> best
// supported, or an explicit backend name. Returns false (leaving *out
// untouched) for null/empty/unknown values.
bool ParseBackend(const char* value, Backend* out);

// The active backend: RETIA_SIMD override when set and supported (an
// unsupported or malformed value warns once and falls back), otherwise
// BestSupportedBackend(). Resolved once per process.
Backend ActiveBackend();

// Kernel table of the active backend.
const KernelTable& Kernels();

// Kernel table for an explicit backend, or null when unsupported.
const KernelTable* TableFor(Backend backend);

// Test hook: forces `backend` until destruction (CHECK-fails when
// unsupported). Swap only while no kernels run concurrently — installs a
// process-wide table, so worker threads mid-kernel would mix backends
// (individual kernels stay correct; bit-reproducibility claims would not).
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  const KernelTable* previous_;
};

// ---- Whole-matrix GEMM drivers --------------------------------------------
// Shard the output rows over par::DefaultPool() (fixed problem-size-derived
// shards, see par/parallel_for.h), pack B when the active backend wants
// packed panels, and route one-hot-like A matrices (density <= 1/8,
// decided by an O(mk) scan) to the zero-skipping sparse kernel. All three
// fully overwrite `out` except the sparse path, which requires `out`
// zero-initialized — callers pass freshly allocated buffers.

// out[m,n] = A[m,k] * B[k,n].
void GemmNN(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n);
// out[m,n] = A[m,k] * B[n,k]^T.
void GemmNT(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n);
// out[k,n] = A[m,k]^T * G[m,n].
void GemmTN(const float* a, const float* g, float* out, int64_t m, int64_t k,
            int64_t n);
// Quantized NT driver: out[m,n] = dequant(A8[m,k] * B8[n,k]^T) using the
// active backend's gemm_nt_i8 micro-kernel, sharded like GemmNT. Bit-exact
// across backends and thread counts (int32 dot + fixed scale epilogue).
void GemmNTQuant(const int8_t* a, const float* sa, const int8_t* b,
                 const float* sb, float* out, int64_t m, int64_t k, int64_t n);

// Partial top-k selection via the active backend's topk_select_f32 (see the
// KernelTable entry for the exact contract). Single-threaded — callers run
// it once per score row, typically already inside a sharded loop.
int64_t TopKSelectF32(const float* scores, int64_t n, int64_t k, int64_t* idx);

}  // namespace retia::simd

#endif  // RETIA_SIMD_SIMD_H_
