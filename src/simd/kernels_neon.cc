// NEON backend (4-wide) for aarch64, where Advanced SIMD is part of the
// baseline — always compiled in and always supported, no extra flags or
// runtime detection needed. vfmaq_f32 is a true fused multiply-add, so
// like AVX2 this backend sets kFused and its scalar tails use std::fma.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "simd/tables.h"

namespace retia::simd {
namespace {

struct NeonTraits {
  using Vec = float32x4_t;
  using DVec = float64x2_t;
  static constexpr int kWidth = 4;
  static constexpr bool kFused = true;

  static Vec Load(const float* p) { return vld1q_f32(p); }
  static void Store(float* p, Vec v) { vst1q_f32(p, v); }
  static Vec Set1(float x) { return vdupq_n_f32(x); }
  static Vec Zero() { return vdupq_n_f32(0.0f); }
  static Vec Add(Vec a, Vec b) { return vaddq_f32(a, b); }
  static Vec Sub(Vec a, Vec b) { return vsubq_f32(a, b); }
  static Vec Mul(Vec a, Vec b) { return vmulq_f32(a, b); }
  static Vec Div(Vec a, Vec b) { return vdivq_f32(a, b); }
  static Vec Madd(Vec a, Vec b, Vec c) { return vfmaq_f32(c, a, b); }
  static Vec Max(Vec a, Vec b) { return vmaxq_f32(a, b); }
  static Vec Min(Vec a, Vec b) { return vminq_f32(a, b); }
  static Vec Sqrt(Vec a) { return vsqrtq_f32(a); }
  static Vec RoundNearest(Vec v) { return vrndnq_f32(v); }
  static Vec PowTwo(Vec nf) {
    int32x4_t n = vcvtnq_s32_f32(nf);
    n = vaddq_s32(n, vdupq_n_s32(127));
    n = vshlq_n_s32(n, 23);
    return vreinterpretq_f32_s32(n);
  }

  static DVec DZero() { return vdupq_n_f64(0.0); }
  static DVec DAdd(DVec a, DVec b) { return vaddq_f64(a, b); }
  static DVec DMul(DVec a, DVec b) { return vmulq_f64(a, b); }
  static DVec WidenLo(Vec v) { return vcvt_f64_f32(vget_low_f32(v)); }
  static DVec WidenHi(Vec v) { return vcvt_high_f64_f32(v); }

  static float ReduceAdd(Vec v) {
    // (l0+l2) + (l1+l3): pairwise within halves, then across — the same
    // tree shape as the x86 backends.
    float32x2_t h = vadd_f32(vget_low_f32(v), vget_high_f32(v));
    h = vpadd_f32(h, h);
    return vget_lane_f32(h, 0);
  }
  static double DReduceAdd(DVec v) {
    return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
  }
  static float ReduceMax(Vec v) {
    float32x2_t h = vmax_f32(vget_low_f32(v), vget_high_f32(v));
    h = vpmax_f32(h, h);
    return vget_lane_f32(h, 0);
  }
};

#include "simd/kernels_quant-inl.h"
#include "simd/kernels_generic-inl.h"

}  // namespace

const KernelTable* GetNeonTable() {
  return MakeGenericTable<NeonTraits>("neon");
}

}  // namespace retia::simd

#endif  // aarch64
