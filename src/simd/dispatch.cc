#include <atomic>
#include <cstdio>
#include <cstring>

#include "simd/simd.h"
#include "simd/tables.h"
#include "util/check.h"
#include "util/env.h"

namespace retia::simd {
namespace {

bool NameEquals(const char* a, const char* b) {
  return std::strcmp(a, b) == 0;
}

// Resolves RETIA_SIMD against the CPU once, on first use. Malformed or
// unsupported values warn to stderr and fall back to auto-detection, like
// the other RETIA_* knobs (util::Env never aborts on junk).
const KernelTable* ResolveDefaultTable() {
  Backend backend = BestSupportedBackend();
  const char* value = util::Env::Raw("RETIA_SIMD");
  if (value != nullptr && value[0] != '\0') {
    Backend requested;
    if (!ParseBackend(value, &requested)) {
      std::fprintf(stderr,
                   "[retia] warning: RETIA_SIMD='%s' is not one of "
                   "off|scalar|native|sse2|avx2|neon; using '%s'\n",
                   value, BackendName(backend));
    } else if (!BackendSupported(requested)) {
      std::fprintf(stderr,
                   "[retia] warning: RETIA_SIMD='%s' is not supported by "
                   "this build/CPU; using '%s'\n",
                   value, BackendName(backend));
    } else {
      backend = requested;
    }
  }
  return TableFor(backend);
}

const KernelTable* DefaultTable() {
  static const KernelTable* table = ResolveDefaultTable();
  return table;
}

// ScopedBackend override; null means "use the resolved default". Atomic
// so TSan-clean when render/worker threads read it while a test in the
// main thread owns the only ScopedBackend (swaps while kernels run are
// documented as unsupported in simd.h).
std::atomic<const KernelTable*> g_override{nullptr};

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kNeon:
      return "neon";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const KernelTable* TableFor(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return GetScalarTable();
#if defined(__x86_64__) || defined(_M_X64)
    case Backend::kSse2:
      // Part of the x86-64 baseline.
      return GetSse2Table();
    case Backend::kAvx2:
      return (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
                 ? GetAvx2Table()
                 : nullptr;
#endif
#if defined(__aarch64__)
    case Backend::kNeon:
      // Advanced SIMD is part of the aarch64 baseline.
      return GetNeonTable();
#endif
    default:
      return nullptr;
  }
}

bool BackendSupported(Backend backend) { return TableFor(backend) != nullptr; }

Backend BestSupportedBackend() {
  for (Backend b : {Backend::kAvx2, Backend::kNeon, Backend::kSse2}) {
    if (BackendSupported(b)) return b;
  }
  return Backend::kScalar;
}

bool ParseBackend(const char* value, Backend* out) {
  if (value == nullptr || value[0] == '\0') return false;
  if (NameEquals(value, "off") || NameEquals(value, "scalar")) {
    *out = Backend::kScalar;
    return true;
  }
  if (NameEquals(value, "native")) {
    *out = BestSupportedBackend();
    return true;
  }
  for (Backend b : {Backend::kSse2, Backend::kNeon, Backend::kAvx2}) {
    if (NameEquals(value, BackendName(b))) {
      *out = b;
      return true;
    }
  }
  return false;
}

const KernelTable& Kernels() {
  const KernelTable* override = g_override.load(std::memory_order_acquire);
  return override != nullptr ? *override : *DefaultTable();
}

Backend ActiveBackend() {
  Backend backend = Backend::kScalar;
  ParseBackend(Kernels().name, &backend);
  return backend;
}

ScopedBackend::ScopedBackend(Backend backend) {
  const KernelTable* table = TableFor(backend);
  RETIA_CHECK_MSG(table != nullptr, "ScopedBackend: backend '"
                                        << BackendName(backend)
                                        << "' not supported on this CPU");
  previous_ = g_override.exchange(table, std::memory_order_acq_rel);
}

ScopedBackend::~ScopedBackend() {
  g_override.store(previous_, std::memory_order_release);
}

int64_t TopKSelectF32(const float* scores, int64_t n, int64_t k, int64_t* idx) {
  return Kernels().topk_select_f32(scores, n, k, idx);
}

}  // namespace retia::simd
