// AVX-VNNI int8 GEMM micro-kernel. vpdpbusd computes an exact u8 x s8
// dot-product-accumulate into i32 lanes (no i16 intermediate, so none of
// the maddubs saturation that rules that instruction out — see
// kernels_avx2.cc). Signed x signed is recovered with the +128 offset
// trick: XOR 0x80 biases a into u8 (a + 128), and
//   sum((a + 128) * b) = sum(a * b) + 128 * sum(b),
// so subtracting 128 * rowsum(b) — itself computed exactly with a
// vpdpbusd against an all-ones u8 vector over the same region — yields
// the exact signed i32 dot. Every step is exact integer arithmetic, and
// the float epilogue applies the same operations per output (scale
// product, i32 -> f32 RNE convert, multiply) as the scalar reference, so
// the kernel is bit-identical to it. Exactness bound:
// |sum((a+128)*b)| <= k * 255 * 127, within i32 for the k <= 2^16
// contract in simd.h.
//
// Layout of one (j, i-tile) step: four query rows share each candidate
// load and run four independent accumulator chains (vpdpbusd is
// throughput-2/cycle but ~5-cycle latency, so a single chain is
// latency-bound); the k-tail past the 32-byte strips is finished with
// 8-byte vpdpbusd sub-steps (vpdpbusd ignores the zero-filled upper
// lanes), leaving at most 7 scalar multiplies per row.
//
// This TU is compiled with -mavxvnni only when the compiler supports it;
// GetAvx2Table installs the kernel only after
// __builtin_cpu_supports("avxvnni") confirms the CPU does too.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstdint>

#include "simd/tables.h"

namespace retia::simd {

namespace {

inline int32_t HAddI32(__m256i v) {
  __m128i h = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  h = _mm_add_epi32(h, _mm_srli_si128(h, 8));
  h = _mm_add_epi32(h, _mm_srli_si128(h, 4));
  return _mm_cvtsi128_si32(h);
}

inline int32_t HAddI32(__m128i h) {
  h = _mm_add_epi32(h, _mm_srli_si128(h, 8));
  h = _mm_add_epi32(h, _mm_srli_si128(h, 4));
  return _mm_cvtsi128_si32(h);
}

// One row's biased dot over [0, kv32) in 32-byte strips plus
// [kv32, kv8) in 8-byte sub-steps; caller subtracts 128 * bsum over the
// same region and finishes [kv8, k) scalar (unbiased).
inline __m128i BiasedDot(const int8_t* ai, const int8_t* bj, int64_t kv32,
                         int64_t kv8, __m256i bias256, __m128i bias128) {
  __m256i acc = _mm256_setzero_si256();
  int64_t q = 0;
  for (; q < kv32; q += 32) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ai + q));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bj + q));
    acc = _mm256_dpbusd_avx_epi32(acc, _mm256_xor_si256(av, bias256), bv);
  }
  __m128i tail = _mm_setzero_si128();
  for (; q < kv8; q += 8) {
    const __m128i av =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ai + q));
    const __m128i bv =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bj + q));
    // XOR turns the zero-filled upper 8 bytes into 128s, but bv's upper
    // bytes are zero, so those lanes contribute 128 * 0 = 0.
    tail = _mm_dpbusd_avx_epi32(tail, _mm_xor_si128(av, bias128), bv);
  }
  return _mm_add_epi32(_mm_add_epi32(_mm256_castsi256_si128(acc),
                                     _mm256_extracti128_si256(acc, 1)),
                       tail);
}

}  // namespace

void GemmNTI8Avx2Vnni(const int8_t* a, const float* sa, const int8_t* b,
                      const float* sb, float* out, int64_t i0, int64_t i1,
                      int64_t k, int64_t n) {
  const __m256i kBias256 = _mm256_set1_epi8(static_cast<char>(0x80));
  const __m128i kBias128 = _mm_set1_epi8(static_cast<char>(0x80));
  const __m256i kOnes256 = _mm256_set1_epi8(1);
  const __m128i kOnes128 = _mm_set1_epi8(1);
  const int64_t kv32 = k & ~int64_t{31};
  const int64_t kv8 = k & ~int64_t{7};
  // j outer so each candidate row's offset correction (128 * sum over the
  // biased region) is computed once and shared by every query row in the
  // [i0, i1) tile.
  for (int64_t j = 0; j < n; ++j) {
    const int8_t* bj = b + j * k;
    __m256i bs256 = _mm256_setzero_si256();
    int64_t q = 0;
    for (; q < kv32; q += 32) {
      bs256 = _mm256_dpbusd_avx_epi32(
          bs256, kOnes256,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bj + q)));
    }
    __m128i bs128 = _mm_setzero_si128();
    for (; q < kv8; q += 8) {
      bs128 = _mm_dpbusd_avx_epi32(
          bs128, kOnes128,
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bj + q)));
    }
    const int32_t bsum = HAddI32(bs256) + HAddI32(bs128);
    const __m128i correction = _mm_set1_epi32(128 * bsum);

    int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const int8_t* a0 = a + (i + 0) * k;
      const int8_t* a1 = a + (i + 1) * k;
      const int8_t* a2 = a + (i + 2) * k;
      const int8_t* a3 = a + (i + 3) * k;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (q = 0; q < kv32; q += 32) {
        const __m256i bv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bj + q));
        acc0 = _mm256_dpbusd_avx_epi32(
            acc0,
            _mm256_xor_si256(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(a0 + q)),
                             kBias256),
            bv);
        acc1 = _mm256_dpbusd_avx_epi32(
            acc1,
            _mm256_xor_si256(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(a1 + q)),
                             kBias256),
            bv);
        acc2 = _mm256_dpbusd_avx_epi32(
            acc2,
            _mm256_xor_si256(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(a2 + q)),
                             kBias256),
            bv);
        acc3 = _mm256_dpbusd_avx_epi32(
            acc3,
            _mm256_xor_si256(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(a3 + q)),
                             kBias256),
            bv);
      }
      __m128i t0 = _mm_setzero_si128();
      __m128i t1 = _mm_setzero_si128();
      __m128i t2 = _mm_setzero_si128();
      __m128i t3 = _mm_setzero_si128();
      for (q = kv32; q < kv8; q += 8) {
        const __m128i bv =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bj + q));
        t0 = _mm_dpbusd_avx_epi32(
            t0,
            _mm_xor_si128(
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a0 + q)),
                kBias128),
            bv);
        t1 = _mm_dpbusd_avx_epi32(
            t1,
            _mm_xor_si128(
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a1 + q)),
                kBias128),
            bv);
        t2 = _mm_dpbusd_avx_epi32(
            t2,
            _mm_xor_si128(
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a2 + q)),
                kBias128),
            bv);
        t3 = _mm_dpbusd_avx_epi32(
            t3,
            _mm_xor_si128(
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a3 + q)),
                kBias128),
            bv);
      }
      __m128i r0 = _mm_add_epi32(
          _mm_add_epi32(_mm256_castsi256_si128(acc0),
                        _mm256_extracti128_si256(acc0, 1)),
          t0);
      __m128i r1 = _mm_add_epi32(
          _mm_add_epi32(_mm256_castsi256_si128(acc1),
                        _mm256_extracti128_si256(acc1, 1)),
          t1);
      __m128i r2 = _mm_add_epi32(
          _mm_add_epi32(_mm256_castsi256_si128(acc2),
                        _mm256_extracti128_si256(acc2, 1)),
          t2);
      __m128i r3 = _mm_add_epi32(
          _mm_add_epi32(_mm256_castsi256_si128(acc3),
                        _mm256_extracti128_si256(acc3, 1)),
          t3);
      // Cross-row horizontal reduce: sums = [sum r0, sum r1, sum r2,
      // sum r3], then one vector bias subtract.
      __m128i sums = _mm_hadd_epi32(_mm_hadd_epi32(r0, r1),
                                    _mm_hadd_epi32(r2, r3));
      sums = _mm_sub_epi32(sums, correction);
      if (kv8 < k) {
        alignas(16) int32_t s[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(s), sums);
        for (q = kv8; q < k; ++q) {
          const int32_t bq = static_cast<int32_t>(bj[q]);
          s[0] += static_cast<int32_t>(a0[q]) * bq;
          s[1] += static_cast<int32_t>(a1[q]) * bq;
          s[2] += static_cast<int32_t>(a2[q]) * bq;
          s[3] += static_cast<int32_t>(a3[q]) * bq;
        }
        sums = _mm_load_si128(reinterpret_cast<const __m128i*>(s));
      }
      // Vector epilogue, same per-lane operations (and therefore the same
      // roundings) as the scalar reference: m = sa[i] * sb[j];
      // out = float(sum) * m.
      const __m128 scales =
          _mm_mul_ps(_mm_loadu_ps(sa + i), _mm_set1_ps(sb[j]));
      alignas(16) float o[4];
      _mm_store_ps(o, _mm_mul_ps(_mm_cvtepi32_ps(sums), scales));
      out[(i + 0) * n + j] = o[0];
      out[(i + 1) * n + j] = o[1];
      out[(i + 2) * n + j] = o[2];
      out[(i + 3) * n + j] = o[3];
    }
    for (; i < i1; ++i) {
      const int8_t* ai = a + i * k;
      int32_t sum =
          HAddI32(BiasedDot(ai, bj, kv32, kv8, kBias256, kBias128)) -
          128 * bsum;
      for (q = kv8; q < k; ++q) {
        sum += static_cast<int32_t>(ai[q]) * static_cast<int32_t>(bj[q]);
      }
      const float m = sa[i] * sb[j];
      out[i * n + j] = static_cast<float>(sum) * m;
    }
  }
}

}  // namespace retia::simd

#endif  // x86-64
