// Scalar reference backend. These are the pre-SIMD serial kernels, kept
// bit-exact: RETIA_SIMD=scalar must reproduce the historical results of
// the plain loops in src/tensor and src/nn for finite inputs, so every
// loop below preserves the original per-element operation order and
// float/double mixing (float products accumulated into double, float
// accumulators for the NT dot, std::exp on float vs double arguments).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "simd/tables.h"

namespace retia::simd {
namespace {

#include "simd/kernels_quant-inl.h"

void AddK(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

void SubK(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] - b[i];
}

void MulK(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] * b[i];
}

void ScaleK(const float* a, float s, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] * s;
}

void AddScalarK(const float* a, float c, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] + c;
}

void AxpyK(float alpha, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AccumulateK(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

float ReduceMaxK(const float* x, int64_t n) {
  float mx = x[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, x[i]);
  return mx;
}

double DotF64K(const float* a, const float* b, int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double SumSquaresF64K(const float* x, int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += static_cast<double>(x[i]) * x[i];
  return acc;
}

void ExpStoreSumK(const float* x, float shift, float* y, double* sum,
                  int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    y[i] = std::exp(x[i] - shift);
    acc += y[i];
  }
  *sum = acc;
}

double ExpSumK(const float* x, float shift, int64_t n) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += std::exp(x[i] - shift);
  return acc;
}

void ExpShiftStoreK(const float* x, double shift, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i)
    y[i] = static_cast<float>(std::exp(x[i] - shift));
}

// Dense ikj GEMM (the historical kernel minus its `av == 0` skip; adding
// exact-zero products cannot change a finite accumulation, so this stays
// bit-exact — the skip lives on in GemmNNSparseK).
void GemmNNK(const float* a, const float* b, const float* /*bp_unused*/,
             float* out, int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (int64_t j = 0; j < n; ++j) orow[j] = 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

// The historical zero-skipping kernel, for one-hot-like A. Accumulates
// into a zero-initialized out.
void GemmNNSparseK(const float* a, const float* b, float* out, int64_t i0,
                   int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmNTK(const float* a, const float* b, float* out, int64_t i0,
             int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
}

// `i` stays the outer loop so every out[p,j] accumulates its m
// contributions in the serial order (see ops_matmul.cc history).
void GemmTNK(const float* a, const float* g, float* out, int64_t m, int64_t p0,
             int64_t p1, int64_t k, int64_t n) {
  for (int64_t p = p0; p < p1; ++p) {
    float* orow = out + p * n;
    for (int64_t j = 0; j < n; ++j) orow[j] = 0.0f;
  }
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* grow = g + i * n;
    for (int64_t p = p0; p < p1; ++p) {
      const float av = arow[p];
      float* orow = out + p * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * grow[j];
    }
  }
}

void AdamK(float* w, const float* g, float* m, float* v, int64_t n, float lr,
           float beta1, float beta2, float eps, float weight_decay, float bc1,
           float bc2) {
  for (int64_t j = 0; j < n; ++j) {
    float gj = g[j];
    if (weight_decay != 0.0f) gj += weight_decay * w[j];
    m[j] = beta1 * m[j] + (1.0f - beta1) * gj;
    v[j] = beta2 * v[j] + (1.0f - beta2) * gj * gj;
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

// Partial top-k selection: sorted insertion buffer plus a strict
// score-threshold filter. Scanning in increasing index order means an
// element that only TIES the current k-th best can never belong in the
// result (its index is larger, so it loses the tie-break), so admitting
// only scores strictly above the worst kept score is exact. The output is
// the unique "higher score wins, ties to the lower index" total order —
// identical to std::partial_sort with that comparator, and therefore
// bit-identical on every backend.
int64_t TopKSelectF32K(const float* scores, int64_t n, int64_t k,
                       int64_t* idx) {
  const int64_t take = std::min(k, n);
  if (take <= 0) return 0;
  int64_t filled = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float s = scores[i];
    if (filled == take) {
      if (!(s > scores[idx[take - 1]])) continue;
      --filled;
    }
    int64_t j = filled;
    for (; j > 0 && s > scores[idx[j - 1]]; --j) idx[j] = idx[j - 1];
    idx[j] = i;
    ++filled;
  }
  return filled;
}

const KernelTable kScalarTable = {
    /*name=*/"scalar",
    /*vector_width=*/1,
    /*gemm_strip=*/1,
    /*needs_packed_b=*/false,
    AddK,
    SubK,
    MulK,
    ScaleK,
    AddScalarK,
    AxpyK,
    AccumulateK,
    ReduceMaxK,
    DotF64K,
    SumSquaresF64K,
    ExpStoreSumK,
    ExpSumK,
    ExpShiftStoreK,
    GemmNNK,
    GemmNNSparseK,
    GemmNTK,
    GemmTNK,
    AdamK,
    QuantizeRowsI8K,
    GemmNTI8K,
    F32ToF16K,
    F16ToF32K,
    TopKSelectF32K,
};

}  // namespace

const KernelTable* GetScalarTable() { return &kScalarTable; }

}  // namespace retia::simd
