// Shared quantized-kernel reference implementations, included inside the
// anonymous namespace of every backend TU (like kernels_generic-inl.h).
// All four are part of the bit-exact-across-backends family declared in
// simd.h: every table installs these references verbatim, and only
// gemm_nt_i8 is overridden with per-ISA vector code (kernels_sse2.cc /
// kernels_avx2.cc) whose int32 arithmetic is exact and whose scale
// epilogue keeps the reference rounding order, so the override is
// bit-identical by construction. No include guard on purpose: each TU
// includes this exactly once into its own anonymous namespace.

inline int8_t QuantOneRne(float v, float inv) {
  // Clamp in f32 BEFORE the round-to-nearest-even convert: this is exactly
  // the min/max + cvtps_epi32 sequence a SIMD implementation would use
  // under the default MXCSR rounding mode, so vector and scalar agree
  // bit-for-bit (including the v == +-127.5-after-scale ties).
  const float c = std::min(std::max(v * inv, -127.0f), 127.0f);
  return static_cast<int8_t>(std::lrintf(c));
}

void QuantizeRowsI8K(const float* a, int8_t* q, float* scales, int64_t rows,
                     int64_t cols) {
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = a + i * cols;
    float amax = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      const float m = std::fabs(row[c]);
      if (m > amax) amax = m;
    }
    int8_t* qr = q + i * cols;
    if (amax == 0.0f) {
      scales[i] = 0.0f;
      std::memset(qr, 0, static_cast<size_t>(cols));
      continue;
    }
    scales[i] = amax / 127.0f;
    const float inv = 127.0f / amax;
    for (int64_t c = 0; c < cols; ++c) qr[c] = QuantOneRne(row[c], inv);
  }
}

void GemmNTI8K(const int8_t* a, const float* sa, const int8_t* b,
               const float* sb, float* out, int64_t i0, int64_t i1, int64_t k,
               int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* ai = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* bj = b + j * k;
      int32_t acc = 0;  // exact for k < 2^17: |acc| <= k * 127^2 < 2^31
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(ai[p]) * static_cast<int32_t>(bj[p]);
      }
      // Fixed epilogue order (scales first): vector overrides must match.
      const float m = sa[i] * sb[j];
      out[i * n + j] = static_cast<float>(acc) * m;
    }
  }
}

inline uint16_t F16FromF32(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  x &= 0x7fffffffu;
  if (x >= 0x7f800000u) {  // inf or NaN
    if (x > 0x7f800000u) return static_cast<uint16_t>(sign | 0x7e00u);  // qNaN
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (x >= 0x47800000u) return static_cast<uint16_t>(sign | 0x7c00u);  // ovf
  if (x < 0x38800000u) {  // f16 subnormal (or zero)
    const uint32_t shift = 113u - (x >> 23);
    // shift > 12 means |f| < 2^-25 — below half the smallest f16 subnormal,
    // so it rounds to signed zero. (Also keeps shift + 13 <= 25, so the
    // 32-bit shifts below are always in range; the tie at exactly 2^-25 is
    // shift == 11 and goes through the RNE path.)
    if (shift > 12u) return sign;
    const uint32_t mant = (x & 0x7fffffu) | 0x800000u;
    uint16_t half = static_cast<uint16_t>(mant >> (shift + 13u));
    // Round to nearest even on the (shift + 13) dropped bits.
    const uint32_t mask = (1u << (shift + 13u)) - 1u;
    const uint32_t rem = mant & mask;
    const uint32_t mid = 1u << (shift + 12u);
    if (rem > mid || (rem == mid && (half & 1u))) ++half;
    return static_cast<uint16_t>(sign | half);
  }
  // Normal range: rebias exponent, round the 13 dropped mantissa bits to
  // nearest even. The increment may carry into the exponent field, which
  // correctly rounds up to the next binade (or to infinity from 65504+).
  uint16_t half = static_cast<uint16_t>((((x >> 23) - 112u) << 10) |
                                        ((x >> 13) & 0x3ffu));
  const uint32_t rem = x & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<uint16_t>(sign | half);
}

inline float F32FromF16(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x3ffu;
  uint32_t x;
  if (exp == 0u) {
    if (mant == 0u) {
      x = sign;  // signed zero
    } else {     // f16 subnormal: normalize into an f32 normal
      int e = -1;
      do {
        ++e;
        mant <<= 1;
      } while (!(mant & 0x400u));
      x = sign | ((113u - static_cast<uint32_t>(e) - 1u) << 23) |
          ((mant & 0x3ffu) << 13);
    }
  } else if (exp == 31u) {
    x = sign | 0x7f800000u | (mant << 13);  // inf / NaN (payload preserved)
  } else {
    x = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

void F32ToF16K(const float* x, uint16_t* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = F16FromF32(x[i]);
}

void F16ToF32K(const uint16_t* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = F32FromF16(x[i]);
}
