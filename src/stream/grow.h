#ifndef RETIA_STREAM_GROW_H_
#define RETIA_STREAM_GROW_H_

// Model lifecycle helpers for the streaming path: deep-copying a live
// RetiaModel into a frozen publishable snapshot, and growing its entity
// vocabulary when the ingest policy admits unseen entities.

#include <cstdint>
#include <memory>

#include "core/retia.h"

namespace retia::stream {

// Deep copy: a new RetiaModel with the same config and bit-identical
// parameters (round-tripped through ckpt::EncodeParams, the same encoding
// checkpoints use), returned in eval mode and ready for the frozen serving
// entry points. The static-constraint entity-type table is copied too.
// The clone's RNG is freshly seeded — irrelevant for serving, which is
// rng-free.
std::unique_ptr<core::RetiaModel> CloneModel(const core::RetiaModel& model);

// Grows the entity vocabulary to `new_num_entities` (>= the current count)
// by rebuilding the model with a larger E_0 table: rows [0, old_n) are
// copied bit-exactly from `model`, rows [old_n, new_num_entities) keep the
// grown model's own Xavier-uniform initialization (drawn from its seeded
// RNG — the documented unseen-entity init, docs/STREAMING.md). Every
// entity-count-independent parameter is copied bit-exactly.
//
// Preconditions (CHECK-enforced): the model must use the trainable entity
// channel (config.use_eam) and must not carry a static-constraint type
// table — both hold frozen per-entity state that cannot be grown
// meaningfully online; such models must reject unseen entities instead.
std::unique_ptr<core::RetiaModel> GrowEntityVocab(
    const core::RetiaModel& model, int64_t new_num_entities);

}  // namespace retia::stream

#endif  // RETIA_STREAM_GROW_H_
