#include "stream/online_trainer.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "ckpt/artifact.h"
#include "ckpt/bytes.h"
#include "obs/obs.h"
#include "stream/grow.h"
#include "util/check.h"

namespace retia::stream {

namespace {
// Extra RETIACKPT2 section riding in the trainer artifact: the stream
// fine-tune cursor (see docs/STREAMING.md).
constexpr char kSectionStreamCursor[] = "stream.cursor";
}  // namespace

OnlineTrainer::OnlineTrainer(std::unique_ptr<core::RetiaModel> model,
                             tkg::TkgDataset* live,
                             const OnlineTrainerConfig& config)
    : config_(config), live_(live), model_(std::move(model)) {
  RETIA_CHECK(live_ != nullptr);
  RETIA_CHECK(model_ != nullptr);
  RETIA_CHECK_EQ(model_->config().num_entities, live_->num_entities());
  RETIA_CHECK_EQ(model_->config().num_relations, live_->num_relations());
  model_->SetTraining(true);
  last_trained_time_ = live_->max_time();
  cache_ = std::make_unique<graph::GraphCache>(live_);
  RebuildTrainer();
}

void OnlineTrainer::RebuildTrainer() {
  train::TrainConfig tc;
  tc.lr = config_.lr;
  tc.grad_clip = config_.grad_clip;
  tc.online_steps = config_.steps_per_time;
  tc.online_lr = config_.lr;
  trainer_ = std::make_unique<train::Trainer>(model_.get(), cache_.get(), tc);
}

bool OnlineTrainer::SyncVocab() {
  const int64_t live_n = live_->num_entities();
  if (live_n <= model_->config().num_entities) return false;
  model_ = GrowEntityVocab(*model_, live_n);
  model_->SetTraining(true);
  // Vocabulary growth invalidates cached subgraphs and resets Adam (the
  // trainer is rebuilt against the grown parameter list).
  cache_ = std::make_unique<graph::GraphCache>(live_);
  RebuildTrainer();
  RETIA_OBS_COUNTER_ADD("stream.vocab_growths", 1);
  return true;
}

int64_t OnlineTrainer::FineTuneThrough(int64_t through) {
  RETIA_OBS_TIMED_SCOPE("stream.finetune.us");
  const std::vector<int64_t>& all_times = live_->all_times();
  std::vector<int64_t> todo;
  for (int64_t t : all_times) {
    if (t > last_trained_time_ && t <= through) todo.push_back(t);
  }
  const int64_t applied = trainer_->FineTuneOnTimes(todo);
  updates_ += applied;
  last_trained_time_ = std::max(last_trained_time_, through);
  if (!config_.checkpoint_path.empty()) {
    const ckpt::Result saved = SaveCheckpoint();
    RETIA_CHECK_MSG(saved.ok(),
                    "stream checkpoint failed: " << saved.ToString());
  }
  return applied;
}

std::unique_ptr<core::RetiaModel> OnlineTrainer::PublishClone() const {
  return CloneModel(*model_);
}

ckpt::Result OnlineTrainer::SaveCheckpoint() const {
  ckpt::ByteWriter w;
  w.I64(last_trained_time_);
  w.I64(model_->config().num_entities);
  w.I64(model_->config().num_relations);
  w.I64(updates_);
  return trainer_->SaveState(config_.checkpoint_path,
                             {{kSectionStreamCursor, w.Take()}});
}

ckpt::Result OnlineTrainer::Resume() {
  if (config_.checkpoint_path.empty()) {
    return ckpt::Result::Error(ckpt::ErrorCode::kIoError,
                               "OnlineTrainer::Resume without a configured "
                               "checkpoint_path");
  }
  ckpt::ArtifactReader reader;
  RETIA_CKPT_RETURN_IF_ERROR(
      ckpt::ArtifactReader::Open(config_.checkpoint_path, &reader));
  std::string_view payload;
  RETIA_CKPT_RETURN_IF_ERROR(reader.Section(kSectionStreamCursor, &payload));
  ckpt::ByteReader r(payload, kSectionStreamCursor);
  int64_t last_trained = 0, num_entities = 0, num_relations = 0, updates = 0;
  RETIA_CKPT_RETURN_IF_ERROR(r.I64(&last_trained));
  RETIA_CKPT_RETURN_IF_ERROR(r.I64(&num_entities));
  RETIA_CKPT_RETURN_IF_ERROR(r.I64(&num_relations));
  RETIA_CKPT_RETURN_IF_ERROR(r.I64(&updates));
  RETIA_CKPT_RETURN_IF_ERROR(r.ExpectEnd());
  if (num_relations != model_->config().num_relations) {
    return ckpt::Result::Error(
        ckpt::ErrorCode::kSchemaMismatch,
        "stream.cursor records " + std::to_string(num_relations) +
            " relations, model has " +
            std::to_string(model_->config().num_relations));
  }
  if (num_entities < model_->config().num_entities) {
    return ckpt::Result::Error(
        ckpt::ErrorCode::kSchemaMismatch,
        "stream.cursor records " + std::to_string(num_entities) +
            " entities, model already has " +
            std::to_string(model_->config().num_entities));
  }
  // Rebuild the world the checkpoint was taken in: dataset and model grown
  // to the recorded vocabulary (the replayed stream may not have repeated
  // the growth yet), then the full trainer state restored bit-exactly.
  if (live_->num_entities() < num_entities) {
    live_->GrowVocab(num_entities, live_->num_relations());
  }
  if (num_entities > model_->config().num_entities) {
    model_ = GrowEntityVocab(*model_, num_entities);
    model_->SetTraining(true);
    cache_ = std::make_unique<graph::GraphCache>(live_);
    RebuildTrainer();
  }
  RETIA_CKPT_RETURN_IF_ERROR(trainer_->ResumeState(config_.checkpoint_path));
  last_trained_time_ = last_trained;
  updates_ = updates;
  return ckpt::Result::Ok();
}

}  // namespace retia::stream
