#include "stream/ingest.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace retia::stream {

StreamIngest::StreamIngest(tkg::TkgDataset* live, const IngestConfig& config)
    : live_(live), config_(config) {
  RETIA_CHECK(live != nullptr);
  RETIA_CHECK(config.max_entities >= live->num_entities());
  floor_ = live->max_time();
  frontier_ = floor_;
}

IngestStatus StreamIngest::Validate(const tkg::Quadruple& q) {
  if (q.subject < 0 || q.relation < 0 || q.object < 0 || q.time < 0) {
    return IngestStatus::kRejectedInvalid;
  }
  if (q.time <= floor_) return IngestStatus::kRejectedLate;
  if (q.relation >= live_->num_relations()) {
    return IngestStatus::kRejectedUnseenRelation;
  }
  const int64_t needed = std::max(q.subject, q.object) + 1;
  if (needed > live_->num_entities()) {
    if (config_.unseen_policy != UnseenPolicy::kGrowEntities ||
        needed > config_.max_entities) {
      return IngestStatus::kRejectedUnseenEntity;
    }
    counters_.grown_entities += needed - live_->num_entities();
    RETIA_OBS_COUNTER_ADD("stream.ingest.grown_entities",
                          needed - live_->num_entities());
    live_->GrowVocab(needed, live_->num_relations());
  }
  return IngestStatus::kAccepted;
}

IngestStatus StreamIngest::Offer(const tkg::Quadruple& q) {
  ++counters_.offered;
  RETIA_OBS_COUNTER_ADD("stream.ingest.offered", 1);
  const IngestStatus status = Validate(q);
  switch (status) {
    case IngestStatus::kAccepted:
      break;
    case IngestStatus::kRejectedInvalid:
      ++counters_.rejected_invalid;
      RETIA_OBS_COUNTER_ADD("stream.ingest.rejected", 1);
      return status;
    case IngestStatus::kRejectedLate:
      ++counters_.rejected_late;
      RETIA_OBS_COUNTER_ADD("stream.ingest.rejected", 1);
      return status;
    case IngestStatus::kRejectedUnseenEntity:
      ++counters_.rejected_unseen_entity;
      RETIA_OBS_COUNTER_ADD("stream.ingest.rejected", 1);
      return status;
    case IngestStatus::kRejectedUnseenRelation:
      ++counters_.rejected_unseen_relation;
      RETIA_OBS_COUNTER_ADD("stream.ingest.rejected", 1);
      return status;
  }
  SealedBucket& bucket = open_[q.time];
  bucket.time = q.time;
  bucket.facts.push_back(q);
  bucket.arrival_ns.push_back(obs::NowNs());
  ++counters_.accepted;
  RETIA_OBS_COUNTER_ADD("stream.ingest.accepted", 1);
  return IngestStatus::kAccepted;
}

int64_t StreamIngest::OfferBatch(const std::vector<tkg::Quadruple>& quads) {
  int64_t accepted = 0;
  for (const tkg::Quadruple& q : quads) {
    if (Offer(q) == IngestStatus::kAccepted) ++accepted;
  }
  return accepted;
}

void StreamIngest::Seal(int64_t t, SealedBucket bucket,
                        std::vector<SealedBucket>* out) {
  live_->AppendBucket(t, bucket.facts);
  frontier_ = t;
  ++counters_.sealed_buckets;
  counters_.sealed_facts += static_cast<int64_t>(bucket.facts.size());
  RETIA_OBS_COUNTER_ADD("stream.ingest.sealed_buckets", 1);
  RETIA_OBS_COUNTER_ADD("stream.ingest.sealed_facts",
                        static_cast<int64_t>(bucket.facts.size()));
  out->push_back(std::move(bucket));
}

std::vector<SealedBucket> StreamIngest::SealBefore(int64_t t) {
  std::vector<SealedBucket> sealed;
  while (!open_.empty() && open_.begin()->first < t) {
    auto node = open_.extract(open_.begin());
    Seal(node.key(), std::move(node.mapped()), &sealed);
  }
  // Advance the floor even past empty timesteps: once a watermark is
  // announced, anything older is late by definition.
  floor_ = std::max(floor_, t - 1);
  return sealed;
}

std::vector<SealedBucket> StreamIngest::Flush() {
  std::vector<SealedBucket> sealed;
  while (!open_.empty()) {
    auto node = open_.extract(open_.begin());
    Seal(node.key(), std::move(node.mapped()), &sealed);
    floor_ = std::max(floor_, frontier_);
  }
  return sealed;
}

int64_t StreamIngest::pending() const {
  int64_t n = 0;
  for (const auto& [t, bucket] : open_) {
    n += static_cast<int64_t>(bucket.facts.size());
  }
  return n;
}

}  // namespace retia::stream
