#ifndef RETIA_STREAM_ONLINE_TRAINER_H_
#define RETIA_STREAM_ONLINE_TRAINER_H_

// retia::stream::OnlineTrainer — incremental fine-tuning of a live model
// on freshly sealed frontier timesteps, with crash-safe checkpoints.
//
// The update rule is the CEN-style online continuous training the offline
// Trainer already implements (DESIGN.md, Sec. III-F): for each newly
// observed timestep, a few gradient steps on that timestep's facts
// predicting it from its trailing history window. RE-Net's autoregressive
// formulation is why this is principled — the recurrent encoder only ever
// consumes the last k timesteps, so fine-tuning on the frontier is the
// full-information update.
//
// Crash safety: when configured with a checkpoint path, every fine-tune
// window ends with one atomic RETIACKPT2 artifact holding the complete
// trainer state (params + Adam + RNG + cursor, via train::Trainer) plus a
// `stream.cursor` section (last trained timestep, vocabulary bounds,
// update count). A SIGKILL anywhere — including between fine-tune and
// snapshot publication — resumes bit-exact via Resume() (tests/stream_test
// proves it with a real SIGKILL).
//
// Vocabulary growth: SyncVocab() grows the model (stream::GrowEntityVocab)
// when the ingest policy grew the dataset. Growth rebuilds the trainer, so
// Adam moments reset at the growth boundary — documented in
// docs/STREAMING.md; both an uninterrupted and a resumed run reset at the
// same boundary, preserving bit-exactness.
//
// Threading: not thread-safe; the pipeline driver thread owns it.

#include <cstdint>
#include <memory>
#include <string>

#include "ckpt/result.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "tkg/dataset.h"
#include "train/trainer.h"

namespace retia::stream {

struct OnlineTrainerConfig {
  // Gradient steps per newly sealed timestep.
  int64_t steps_per_time = 1;
  float lr = 1e-3f;
  float grad_clip = 1.0f;
  // When non-empty, every fine-tune window saves the full state here
  // atomically; Resume() restores it.
  std::string checkpoint_path;
};

class OnlineTrainer {
 public:
  // Takes ownership of the live (training) model. `live` must outlive the
  // trainer. Timesteps up to live->max_time() at construction are treated
  // as already covered by the offline training run.
  OnlineTrainer(std::unique_ptr<core::RetiaModel> model,
                tkg::TkgDataset* live, const OnlineTrainerConfig& config);

  // Grows the model to the live dataset's entity vocabulary when the
  // ingest policy grew it. Returns true when the model was rebuilt.
  bool SyncVocab();

  // Fine-tunes on every sealed timestep in (last_trained_time, through],
  // ascending, then checkpoints. Returns the number of gradient steps
  // applied.
  int64_t FineTuneThrough(int64_t through);

  // Frozen deep copy of the current model for publication (eval mode).
  std::unique_ptr<core::RetiaModel> PublishClone() const;

  // Restores the checkpoint at config.checkpoint_path: grows the model to
  // the recorded vocabulary first, then resumes the trainer state
  // bit-exactly. The live dataset must already contain the recorded
  // timesteps (the caller replays or reloads the stream).
  [[nodiscard]] ckpt::Result Resume();

  const core::RetiaModel& model() const { return *model_; }
  int64_t last_trained_time() const { return last_trained_time_; }
  // Gradient steps applied across the stream (survives Resume).
  int64_t updates() const { return updates_; }

 private:
  ckpt::Result SaveCheckpoint() const;
  void RebuildTrainer();

  OnlineTrainerConfig config_;
  tkg::TkgDataset* live_;
  std::unique_ptr<core::RetiaModel> model_;
  std::unique_ptr<graph::GraphCache> cache_;
  std::unique_ptr<train::Trainer> trainer_;
  int64_t last_trained_time_;
  int64_t updates_ = 0;
};

}  // namespace retia::stream

#endif  // RETIA_STREAM_ONLINE_TRAINER_H_
