#ifndef RETIA_STREAM_INGEST_H_
#define RETIA_STREAM_INGEST_H_

// retia::stream::StreamIngest — the validated append path from raw event
// streams into a live TkgDataset.
//
// Events arrive as (s, r, o, t) quadruples in arrival order, which is not
// necessarily timestamp order within the open frontier. The ingester
// buffers them in per-timestep buckets; a bucket is *sealed* — appended to
// the dataset as one immutable frontier timestep — once a strictly newer
// watermark is announced (SealBefore) or the stream is flushed. After
// sealing, facts for that timestep are late and rejected: a published
// subgraph never changes, which is what keeps downstream GraphCache
// entries and serving snapshots consistent.
//
// Unseen ids: relations outside the vocabulary are always rejected (the
// relation schema is fixed online; see docs/STREAMING.md). Entities
// outside the vocabulary follow the configured UnseenPolicy — reject, or
// grow the dataset vocabulary (the model side grows via
// stream::GrowEntityVocab at the next fine-tune window).
//
// Threading: not thread-safe; one ingesting thread (the pipeline driver)
// owns it. Instrumented as `stream.ingest.*` (docs/OBSERVABILITY.md).

#include <cstdint>
#include <map>
#include <vector>

#include "tkg/dataset.h"

namespace retia::stream {

// What to do with a fact whose subject/object lies outside the live
// dataset's entity vocabulary.
enum class UnseenPolicy {
  kReject,        // drop the fact, count it as rejected
  kGrowEntities,  // grow the vocabulary (model grows at the next window)
};

enum class IngestStatus {
  kAccepted,
  kRejectedInvalid,         // negative id or negative timestamp
  kRejectedLate,            // timestep already sealed
  kRejectedUnseenEntity,    // policy kReject (or growth cap hit)
  kRejectedUnseenRelation,  // relation ids never grow online
};

struct IngestConfig {
  UnseenPolicy unseen_policy = UnseenPolicy::kReject;
  // Hard cap on vocabulary growth under kGrowEntities; facts that would
  // push past it are rejected as unseen.
  int64_t max_entities = 1 << 20;
};

struct IngestCounters {
  int64_t offered = 0;
  int64_t accepted = 0;
  int64_t rejected_invalid = 0;
  int64_t rejected_late = 0;
  int64_t rejected_unseen_entity = 0;
  int64_t rejected_unseen_relation = 0;
  int64_t grown_entities = 0;  // vocabulary slots added
  int64_t sealed_buckets = 0;
  int64_t sealed_facts = 0;
};

// One sealed timestep: the facts appended to the dataset at `time`, plus
// each fact's arrival clock (obs::NowNs at Offer) so the pipeline can
// report end-to-end staleness per fact.
struct SealedBucket {
  int64_t time = 0;
  std::vector<tkg::Quadruple> facts;
  std::vector<int64_t> arrival_ns;
};

class StreamIngest {
 public:
  // `live` is the dataset the sealed buckets are appended to; it must
  // outlive the ingester. The seal floor starts at the dataset's current
  // frontier (max_time()), so streamed facts must be strictly newer than
  // everything the dataset was built with.
  explicit StreamIngest(tkg::TkgDataset* live, const IngestConfig& config = {});

  // Validates and buffers one event. Accepted facts sit in the open bucket
  // for their timestep until sealed.
  IngestStatus Offer(const tkg::Quadruple& q);

  // Offers a batch in order; returns the number accepted.
  int64_t OfferBatch(const std::vector<tkg::Quadruple>& quads);

  // Seals every buffered bucket with time < t (ascending) and appends each
  // to the live dataset. `t` becomes the new seal floor even when no
  // bucket matched: facts older than any announced watermark are late.
  std::vector<SealedBucket> SealBefore(int64_t t);

  // Seals everything still buffered (end of stream / shutdown).
  std::vector<SealedBucket> Flush();

  // Newest sealed (appended) timestep, or the dataset's construction-time
  // frontier when nothing has been sealed yet.
  int64_t frontier() const { return frontier_; }

  // Facts buffered in open (unsealed) buckets.
  int64_t pending() const;

  const IngestCounters& counters() const { return counters_; }

 private:
  IngestStatus Validate(const tkg::Quadruple& q);
  void Seal(int64_t t, SealedBucket bucket, std::vector<SealedBucket>* out);

  tkg::TkgDataset* live_;
  IngestConfig config_;
  int64_t floor_;     // facts must arrive at time > floor_
  int64_t frontier_;  // newest appended timestep
  std::map<int64_t, SealedBucket> open_;
  IngestCounters counters_;
};

}  // namespace retia::stream

#endif  // RETIA_STREAM_INGEST_H_
