#ifndef RETIA_STREAM_PIPELINE_H_
#define RETIA_STREAM_PIPELINE_H_

// retia::stream::StreamPipeline — the end-to-end online extrapolation
// driver: ingest → fine-tune → zero-downtime publish.
//
//   StreamPipeline pipeline(std::move(model), std::move(live), config);
//   pipeline.Offer({s, r, o, t});          // events arrive
//   pipeline.AdvanceTo(now);               // watermark: seal, train, publish
//   auto top = pipeline.engine().TopK(s, r, t, 10);  // any thread, any time
//
// One driver thread owns Offer/AdvanceTo/FlushAndPublish/Resume; queries
// against engine() are safe from any number of threads concurrently,
// including across a publish — readers pin the snapshot epoch they started
// on (ServeEngine::SwapSnapshot), so no request is ever dropped or torn.
//
// Data flow per window: once `config.window` sealed timestep buckets are
// staged, the pipeline (1) grows the model if ingestion grew the entity
// vocabulary, (2) fine-tunes through the window's newest timestep —
// checkpointing the full trainer state atomically when
// config.trainer.checkpoint_path is set — and (3) publishes a frozen deep
// copy of model + dataset into the serving engine (optionally persisting a
// serve snapshot at config.snapshot_prefix first). A SIGKILL between (2)
// and (3) is recovered by Resume(): the checkpoint restores bit-exactly
// and the republished snapshot equals the one the crash pre-empted
// (tests/stream_test.cc proves both with a real SIGKILL).
//
// Staleness: each accepted fact's arrival clock is kept until the publish
// that makes it visible to queries; the arrival→publish latency is
// recorded per fact in `stream.staleness.us` and kept in staleness_us()
// for bench_stream's p50/p95.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/result.h"
#include "core/retia.h"
#include "serve/engine.h"
#include "stream/ingest.h"
#include "stream/online_trainer.h"
#include "tkg/dataset.h"

namespace retia::stream {

struct StreamPipelineConfig {
  // Sealed timestep buckets per fine-tune window: the pipeline trains and
  // publishes once this many buckets are staged (and on FlushAndPublish).
  int64_t window = 1;
  IngestConfig ingest;
  OnlineTrainerConfig trainer;
  serve::ServeConfig serve;
  // When non-empty, every publish also persists the published model as a
  // serve snapshot at <prefix>.ckpt (atomic; old-or-new on crash).
  std::string snapshot_prefix;
};

// Point-in-time pipeline counters (Status()).
struct StreamStatus {
  int64_t frontier = -1;           // newest sealed timestep
  int64_t last_trained_time = -1;  // newest fine-tuned timestep
  int64_t pending_facts = 0;       // buffered in open buckets
  int64_t staged_buckets = 0;      // sealed, awaiting a full window
  int64_t publishes = 0;           // snapshot swaps into the engine
  int64_t updates = 0;             // gradient steps applied
  IngestCounters ingest;
};

class StreamPipeline {
 public:
  // Takes ownership of the warm-started model and the live dataset the
  // stream appends to. The serving engine starts on a frozen copy of both.
  StreamPipeline(std::unique_ptr<core::RetiaModel> model,
                 std::unique_ptr<tkg::TkgDataset> live,
                 const StreamPipelineConfig& config);

  // Event entry points (driver thread only).
  IngestStatus Offer(const tkg::Quadruple& q) { return ingest_->Offer(q); }
  int64_t OfferBatch(const std::vector<tkg::Quadruple>& quads) {
    return ingest_->OfferBatch(quads);
  }

  // Watermark: seals every buffered bucket with time < now, then runs one
  // fine-tune + publish cycle per complete window of sealed buckets.
  // Returns the number of publishes performed.
  int64_t AdvanceTo(int64_t now);

  // Seals everything buffered and, if any sealed bucket is still
  // unpublished, runs one final fine-tune + publish (end of stream).
  int64_t FlushAndPublish();

  // Crash recovery: restores the trainer checkpoint
  // (config.trainer.checkpoint_path) and republishes, so serving reflects
  // the restored state. Call before re-offering the replayed stream; facts
  // at already-trained timesteps are appended for history but not
  // re-trained, keeping the resumed run bit-exact with an uninterrupted
  // one.
  [[nodiscard]] ckpt::Result Resume();

  // The serving tier. Queries are thread-safe and may race with publishes.
  serve::ServeEngine& engine() { return *engine_; }
  const OnlineTrainer& trainer() const { return *trainer_; }
  const StreamIngest& ingest() const { return *ingest_; }
  const tkg::TkgDataset& live() const { return *live_; }

  // Arrival→publish latency of every fact published so far, in
  // microseconds, append order (also exported as `stream.staleness.us`).
  const std::vector<int64_t>& staleness_us() const { return staleness_us_; }

  StreamStatus Status() const;

 private:
  // Fine-tunes through the staged chunk's newest timestep and publishes.
  void TrainAndPublish(std::vector<SealedBucket> chunk);
  void Publish();

  StreamPipelineConfig config_;
  std::unique_ptr<tkg::TkgDataset> live_;
  std::unique_ptr<OnlineTrainer> trainer_;
  std::unique_ptr<StreamIngest> ingest_;
  std::unique_ptr<serve::ServeEngine> engine_;
  std::deque<SealedBucket> staged_;
  std::vector<int64_t> staleness_us_;
  int64_t publishes_ = 0;
};

}  // namespace retia::stream

#endif  // RETIA_STREAM_PIPELINE_H_
