#include "stream/grow.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/model_io.h"
#include "util/check.h"

namespace retia::stream {

std::unique_ptr<core::RetiaModel> CloneModel(const core::RetiaModel& model) {
  auto clone = std::make_unique<core::RetiaModel>(model.config());
  if (model.has_entity_types()) {
    clone->SetEntityTypes(model.entity_types(), model.num_static_types());
  }
  const ckpt::Result copied =
      ckpt::DecodeParamsInto(clone.get(), ckpt::EncodeParams(model));
  RETIA_CHECK_MSG(copied.ok(),
                  "CloneModel parameter copy failed: " << copied.ToString());
  clone->SetTraining(false);
  return clone;
}

std::unique_ptr<core::RetiaModel> GrowEntityVocab(
    const core::RetiaModel& model, int64_t new_num_entities) {
  core::RetiaConfig config = model.config();
  RETIA_CHECK_LE(config.num_entities, new_num_entities);
  RETIA_CHECK_MSG(config.use_eam,
                  "entity-vocab growth needs the trainable entity channel "
                  "(config.use_eam); ablated models must reject unseen "
                  "entities");
  RETIA_CHECK_MSG(!model.has_entity_types(),
                  "static-constraint models hold a per-entity type table "
                  "and cannot grow online; use UnseenPolicy::kReject");
  const int64_t old_n = config.num_entities;
  config.num_entities = new_num_entities;
  auto grown = std::make_unique<core::RetiaModel>(config);

  std::map<std::string, tensor::Tensor> old_params;
  for (auto& [name, t] : model.NamedParameters()) old_params.emplace(name, t);

  for (auto& [name, dst] : grown->NamedParameters()) {
    auto it = old_params.find(name);
    RETIA_CHECK_MSG(it != old_params.end(),
                    "grown model parameter '" << name
                                              << "' missing in the source");
    const tensor::Tensor& src = it->second;
    std::vector<float>& dst_data = dst.impl().data;
    const std::vector<float>& src_data = src.impl().data;
    if (name == "entity_init.table") {
      // [N, d] row-major: the old rows carry over, the new tail keeps the
      // grown model's fresh Xavier init.
      RETIA_CHECK_EQ(src.Dim(0), old_n);
      RETIA_CHECK_EQ(dst.Dim(0), new_num_entities);
      RETIA_CHECK_EQ(src.Dim(1), dst.Dim(1));
      std::copy(src_data.begin(), src_data.end(), dst_data.begin());
    } else {
      // Every other parameter is entity-count independent.
      RETIA_CHECK_MSG(src_data.size() == dst_data.size(),
                      "parameter '" << name << "' changed shape on growth");
      dst_data = src_data;
    }
  }
  grown->SetTraining(model.training());
  return grown;
}

}  // namespace retia::stream
