#include "stream/pipeline.h"

#include <utility>

#include "graph/graph_cache.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/snapshot.h"
#include "stream/grow.h"
#include "util/check.h"

namespace retia::stream {

StreamPipeline::StreamPipeline(std::unique_ptr<core::RetiaModel> model,
                               std::unique_ptr<tkg::TkgDataset> live,
                               const StreamPipelineConfig& config)
    : config_(config), live_(std::move(live)) {
  RETIA_CHECK(live_ != nullptr);
  RETIA_CHECK(model != nullptr);
  RETIA_CHECK(config_.window >= 1);
  trainer_ = std::make_unique<OnlineTrainer>(std::move(model), live_.get(),
                                             config_.trainer);
  ingest_ = std::make_unique<StreamIngest>(live_.get(), config_.ingest);

  serve::EngineSnapshot initial;
  initial.model = trainer_->PublishClone();
  initial.dataset = std::make_unique<tkg::TkgDataset>(*live_);
  initial.graph_cache =
      std::make_unique<graph::GraphCache>(initial.dataset.get());
  engine_ =
      std::make_unique<serve::ServeEngine>(std::move(initial), config_.serve);
}

int64_t StreamPipeline::AdvanceTo(int64_t now) {
  std::vector<SealedBucket> sealed = ingest_->SealBefore(now);
  for (SealedBucket& bucket : sealed) staged_.push_back(std::move(bucket));
  int64_t published = 0;
  while (static_cast<int64_t>(staged_.size()) >= config_.window) {
    std::vector<SealedBucket> chunk;
    chunk.reserve(static_cast<size_t>(config_.window));
    for (int64_t i = 0; i < config_.window; ++i) {
      chunk.push_back(std::move(staged_.front()));
      staged_.pop_front();
    }
    TrainAndPublish(std::move(chunk));
    ++published;
  }
  RETIA_OBS_GAUGE_SET("stream.window_lag",
                      static_cast<int64_t>(staged_.size()));
  return published;
}

int64_t StreamPipeline::FlushAndPublish() {
  std::vector<SealedBucket> sealed = ingest_->Flush();
  for (SealedBucket& bucket : sealed) staged_.push_back(std::move(bucket));
  if (staged_.empty()) return 0;
  std::vector<SealedBucket> chunk(std::make_move_iterator(staged_.begin()),
                                  std::make_move_iterator(staged_.end()));
  staged_.clear();
  TrainAndPublish(std::move(chunk));
  RETIA_OBS_GAUGE_SET("stream.window_lag", 0);
  return 1;
}

void StreamPipeline::TrainAndPublish(std::vector<SealedBucket> chunk) {
  RETIA_CHECK(!chunk.empty());
  trainer_->SyncVocab();
  trainer_->FineTuneThrough(chunk.back().time);
  Publish();
  // The facts of this chunk are now visible to queries: record each
  // fact's arrival → publish latency.
  const int64_t published_ns = obs::NowNs();
  for (const SealedBucket& bucket : chunk) {
    for (int64_t arrival : bucket.arrival_ns) {
      const int64_t us = (published_ns - arrival) / 1000;
      staleness_us_.push_back(us);
      RETIA_OBS_HIST_RECORD("stream.staleness.us", us);
    }
  }
}

void StreamPipeline::Publish() {
  RETIA_OBS_TIMED_SCOPE("stream.publish.us");
  serve::EngineSnapshot snapshot;
  snapshot.model = trainer_->PublishClone();
  snapshot.dataset = std::make_unique<tkg::TkgDataset>(*live_);
  snapshot.graph_cache =
      std::make_unique<graph::GraphCache>(snapshot.dataset.get());
  if (!config_.snapshot_prefix.empty()) {
    const ckpt::Result saved = serve::SaveModelSnapshot(
        *snapshot.model, config_.snapshot_prefix, live_->name());
    RETIA_CHECK_MSG(saved.ok(),
                    "publish snapshot failed: " << saved.ToString());
  }
  engine_->SwapSnapshot(std::move(snapshot));
  ++publishes_;
}

ckpt::Result StreamPipeline::Resume() {
  RETIA_CKPT_RETURN_IF_ERROR(trainer_->Resume());
  // Serving must reflect the restored state, and the on-disk serve
  // snapshot (old-or-new after a crash) must converge to the restored
  // model: republish.
  Publish();
  return ckpt::Result::Ok();
}

StreamStatus StreamPipeline::Status() const {
  StreamStatus status;
  status.frontier = ingest_->frontier();
  status.last_trained_time = trainer_->last_trained_time();
  status.pending_facts = ingest_->pending();
  status.staged_buckets = static_cast<int64_t>(staged_.size());
  status.publishes = publishes_;
  status.updates = trainer_->updates();
  status.ingest = ingest_->counters();
  return status;
}

}  // namespace retia::stream
