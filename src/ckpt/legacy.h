#ifndef RETIA_CKPT_LEGACY_H_
#define RETIA_CKPT_LEGACY_H_

#include <string>
#include <utility>
#include <vector>

#include "ckpt/result.h"
#include "nn/module.h"

namespace retia::ckpt {

// Readers and writers for the v1 on-disk formats (RETIACKPT1 binary
// parameter checkpoints and RETIASIDE1 text sidecars), kept for one
// release so existing files stay loadable. Unlike the original
// implementations these never abort: every malformed input surfaces as a
// Result naming the offending parameter or line. New code should write
// RETIACKPT2 artifacts (ckpt/artifact.h); docs/CHECKPOINTS.md describes
// the migration.

using Sidecar = std::vector<std::pair<std::string, std::string>>;

// Loads a RETIACKPT1 parameter file into `module` (matched by name and
// shape, same contract as the old nn::LoadCheckpoint).
Result ReadLegacyCheckpointInto(nn::Module* module, const std::string& path);

// Writes the v1 binary format, but atomically (tmp + fsync + rename) via
// the shared durable-write protocol.
Result WriteLegacyCheckpoint(const nn::Module& module,
                             const std::string& path);

// Loads a RETIASIDE1 key/value sidecar.
Result ReadLegacySidecar(const std::string& path, Sidecar* out);

// Writes the v1 sidecar format atomically. Keys and values must be
// single-line and tab-free.
Result WriteLegacySidecar(const std::string& path, const Sidecar& entries);

// Value of `key` in a sidecar/meta listing; kMissingSection (naming the
// key) when absent.
Result SidecarLookup(const Sidecar& sidecar, const std::string& key,
                     std::string* out);

}  // namespace retia::ckpt

#endif  // RETIA_CKPT_LEGACY_H_
