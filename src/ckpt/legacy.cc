#include "ckpt/legacy.h"

#include <cstdint>
#include <cstring>
#include <sstream>

#include "ckpt/artifact.h"
#include "ckpt/bytes.h"
#include "nn/checkpoint.h"
#include "util/check.h"

namespace retia::ckpt {

namespace {

constexpr char kMagic[] = "RETIACKPT1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;
constexpr char kSidecarMagic[] = "RETIASIDE1";

std::string ShapeString(const std::vector<int64_t>& shape) {
  std::string s = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

}  // namespace

Result ReadLegacyCheckpointInto(nn::Module* module, const std::string& path) {
  RETIA_CHECK(module != nullptr);
  std::string bytes;
  RETIA_CKPT_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    return Result::Error(ErrorCode::kBadMagic,
                         path + " is not a RETIA checkpoint");
  }
  ByteReader r(std::string_view(bytes).substr(kMagicLen), "v1 checkpoint");
  uint64_t count = 0;
  RETIA_CKPT_RETURN_IF_ERROR(r.U64(&count));
  auto named = module->NamedParameters();
  if (count != named.size()) {
    return Result::Error(
        ErrorCode::kSchemaMismatch,
        path + ": checkpoint has " + std::to_string(count) +
            " parameters, model has " + std::to_string(named.size()));
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    RETIA_CKPT_RETURN_IF_ERROR(r.U64(&name_len));
    if (name_len > bytes.size()) {
      return Result::Error(ErrorCode::kCorrupt,
                           path + ": implausible parameter-name length");
    }
    std::string name;
    RETIA_CKPT_RETURN_IF_ERROR(r.StrRaw(&name, name_len));
    if (name != named[i].first) {
      return Result::Error(ErrorCode::kSchemaMismatch,
                           path + ": parameter order mismatch: checkpoint "
                                  "has '" +
                               name + "', model expects '" + named[i].first +
                               "'");
    }
    uint64_t rank = 0;
    RETIA_CKPT_RETURN_IF_ERROR(r.U64(&rank));
    if (rank > 16) {
      return Result::Error(ErrorCode::kCorrupt,
                           path + ": implausible rank for parameter '" +
                               name + "'");
    }
    std::vector<int64_t> shape(rank);
    for (uint64_t d = 0; d < rank; ++d) {
      RETIA_CKPT_RETURN_IF_ERROR(r.I64(&shape[d]));
    }
    tensor::Tensor& t = named[i].second;
    if (shape != t.Shape()) {
      return Result::Error(ErrorCode::kSchemaMismatch,
                           path + ": shape mismatch for parameter '" + name +
                               "' (checkpoint " + ShapeString(shape) +
                               ", model " + ShapeString(t.Shape()) + ")");
    }
    Result payload = r.Raw(t.Data(), static_cast<size_t>(t.NumElements()) *
                                         sizeof(float));
    if (!payload.ok()) {
      return Result::Error(ErrorCode::kTruncated,
                           path + ": truncated checkpoint at parameter '" +
                               name + "'");
    }
  }
  return r.ExpectEnd();
}

Result WriteLegacyCheckpoint(const nn::Module& module,
                             const std::string& path) {
  ByteWriter w;
  w.Raw(kMagic, kMagicLen);
  const auto named = module.NamedParameters();
  w.U64(named.size());
  for (const auto& [name, t] : named) {
    w.U64(name.size());
    w.Raw(name.data(), name.size());
    const auto& shape = t.Shape();
    w.U64(shape.size());
    for (int64_t dim : shape) w.I64(dim);
    w.Raw(t.Data(), static_cast<size_t>(t.NumElements()) * sizeof(float));
  }
  return WriteFileDurably(path, w.bytes());
}

Result ReadLegacySidecar(const std::string& path, Sidecar* out) {
  std::string bytes;
  RETIA_CKPT_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
  std::istringstream in(bytes);
  std::string line;
  if (!std::getline(in, line) || line != kSidecarMagic) {
    return Result::Error(ErrorCode::kBadMagic,
                         path + " is not a RETIA sidecar");
  }
  Sidecar entries;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Result::Error(ErrorCode::kCorrupt,
                           path + " has a malformed sidecar line: " + line);
    }
    entries.emplace_back(line.substr(0, tab), line.substr(tab + 1));
  }
  *out = std::move(entries);
  return Result::Ok();
}

Result WriteLegacySidecar(const std::string& path, const Sidecar& entries) {
  std::string text(kSidecarMagic);
  text += "\n";
  for (const auto& [key, value] : entries) {
    if (key.find_first_of("\t\n") != std::string::npos ||
        value.find_first_of("\t\n") != std::string::npos) {
      return Result::Error(ErrorCode::kSchemaMismatch,
                           "sidecar entry '" + key +
                               "' contains a tab or newline");
    }
    text += key;
    text += "\t";
    text += value;
    text += "\n";
  }
  return WriteFileDurably(path, text);
}

Result SidecarLookup(const Sidecar& sidecar, const std::string& key,
                     std::string* out) {
  for (const auto& [k, v] : sidecar) {
    if (k == key) {
      *out = v;
      return Result::Ok();
    }
  }
  return Result::Error(ErrorCode::kMissingSection,
                       "sidecar has no key '" + key + "'");
}

}  // namespace retia::ckpt

// ---------------------------------------------------------------------------
// Deprecated retia::nn entry points (declared in nn/checkpoint.h), now thin
// shims over the Result-returning implementations above. They keep the old
// abort-on-error contract for one release; new code handles the Result.

namespace retia::nn {

void SaveCheckpoint(const Module& module, const std::string& path) {
  const ckpt::Result r = ckpt::WriteLegacyCheckpoint(module, path);
  RETIA_CHECK_MSG(r.ok(), r.ToString());
}

void LoadCheckpoint(Module* module, const std::string& path) {
  const ckpt::Result r = ckpt::ReadLegacyCheckpointInto(module, path);
  RETIA_CHECK_MSG(r.ok(), r.ToString());
}

void SaveSidecar(const std::string& path, const Sidecar& entries) {
  const ckpt::Result r = ckpt::WriteLegacySidecar(path, entries);
  RETIA_CHECK_MSG(r.ok(), r.ToString());
}

Sidecar LoadSidecar(const std::string& path) {
  Sidecar entries;
  const ckpt::Result r = ckpt::ReadLegacySidecar(path, &entries);
  RETIA_CHECK_MSG(r.ok(), r.ToString());
  return entries;
}

const std::string& SidecarValue(const Sidecar& sidecar,
                                const std::string& key) {
  for (const auto& [k, v] : sidecar) {
    if (k == key) return v;
  }
  RETIA_CHECK_MSG(false, "sidecar has no key '" << key << "'");
  static const std::string kEmpty;
  return kEmpty;
}

}  // namespace retia::nn
