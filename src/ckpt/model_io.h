#ifndef RETIA_CKPT_MODEL_IO_H_
#define RETIA_CKPT_MODEL_IO_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ckpt/legacy.h"
#include "ckpt/result.h"
#include "core/retia.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace retia::ckpt {

// Typed encode/decode of the standard artifact sections. Encoders are
// infallible (they serialize live objects); decoders validate everything
// against the in-memory target and return kSchemaMismatch naming the
// offending parameter or key rather than trusting the file.

// Canonical section names (docs/CHECKPOINTS.md).
inline constexpr char kSectionMeta[] = "meta";
inline constexpr char kSectionParams[] = "model.params";
inline constexpr char kSectionParamsQ8[] = "model.params.q8";
inline constexpr char kSectionParamsF16[] = "model.params.f16";
inline constexpr char kSectionStaticTypes[] = "model.static_types";
inline constexpr char kSectionAdam[] = "optim.adam";
inline constexpr char kSectionRng[] = "rng.model";
inline constexpr char kSectionCursor[] = "train.cursor";
inline constexpr char kSectionBestParams[] = "train.best_params";
inline constexpr char kSectionRecords[] = "train.records";

// Ordered key/value metadata (same shape as the v1 sidecar).
using Meta = Sidecar;

// ---- Section payloads ----------------------------------------------------

// Named parameters of a module: names, shapes, float payloads.
std::string EncodeParams(const nn::Module& module);
Result DecodeParamsInto(nn::Module* module, std::string_view payload);

std::string EncodeMeta(const Meta& meta);
Result DecodeMeta(std::string_view payload, Meta* out);

// Adam state: step count plus both moment vectors per parameter.
std::string EncodeAdam(const nn::Adam& adam);
Result DecodeAdamInto(nn::Adam* adam, std::string_view payload);

// Full util::Rng engine state (std::mt19937_64 stream serialization).
std::string EncodeRng(const util::Rng& rng);
Result DecodeRngInto(util::Rng* rng, std::string_view payload);

// ---- RetiaConfig <-> meta ------------------------------------------------

// Appends every RetiaConfig field to `meta` (keys identical to the v1
// snapshot sidecar, so one decoder serves both formats).
void AppendRetiaConfigMeta(const core::RetiaConfig& config, Meta* meta);
Result RetiaConfigFromMeta(const Meta& meta, core::RetiaConfig* out);

// ---- Model artifacts (the serve snapshot, v2) ----------------------------

// One self-contained artifact: meta (config + dataset name), parameters,
// and — when SetEntityTypes() installed one — the static-constraint
// entity-type table as its own versioned section, so such models round-trip
// instead of failing on a parameter-count mismatch at load.
Result SaveModelArtifact(const core::RetiaModel& model,
                         const std::string& path,
                         const std::string& dataset_name);

// Quantized variant (docs/QUANTIZATION.md): instead of the f32
// model.params section, parameters are split across model.params.q8
// (per-row symmetric int8 + f32 scales; every parameter where
// QuantizesAsInt8(shape) holds) and model.params.f16 (IEEE binary16;
// everything else — biases, norm gains, small tables). Both sections are
// always written, either may carry zero entries. Eval/serve snapshots
// only: a quantized artifact cannot seed training (no f32 payload).
Result SaveQuantizedModelArtifact(const core::RetiaModel& model,
                                  const std::string& path,
                                  const std::string& dataset_name);

// Section routing rule, shared by saver and loader (and documented in
// docs/QUANTIZATION.md): rank >= 2 with at least 16 trailing elements per
// leading row quantizes to int8; everything else stores f16.
bool QuantizesAsInt8(const std::vector<int64_t>& shape);

// Rebuilds the model from a v2 artifact. Returns kLegacyFormat (without
// touching `out`) when `path` holds a v1 checkpoint, so callers can
// dispatch to the legacy pair loader. Accepts both f32 (model.params) and
// quantized (model.params.q8 + .f16) artifacts — quantized payloads are
// dequantized into the in-memory f32 parameters, so every downstream
// consumer is format-agnostic. The model is returned in train mode;
// serving callers flip SetTraining(false) themselves.
Result LoadModelArtifact(const std::string& path,
                         std::unique_ptr<core::RetiaModel>* out,
                         std::string* dataset_name);

}  // namespace retia::ckpt

#endif  // RETIA_CKPT_MODEL_IO_H_
