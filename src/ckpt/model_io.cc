#include "ckpt/model_io.h"

#include <cstdio>
#include <cstdlib>

#include "ckpt/artifact.h"
#include "ckpt/bytes.h"
#include "quant/quant.h"

namespace retia::ckpt {

namespace {

std::string ShapeString(const std::vector<int64_t>& shape) {
  std::string s = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

std::string FloatString(float v) {
  char buf[32];
  // %.9g round-trips any float32 exactly.
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

// Typed meta lookups. Missing keys and malformed values both name the key.
Result MetaString(const Meta& meta, const std::string& key,
                  std::string* out) {
  Result r = SidecarLookup(meta, key, out);
  if (!r.ok()) {
    return Result::Error(ErrorCode::kSchemaMismatch,
                         "meta is missing key '" + key + "'");
  }
  return r;
}

Result MetaInt(const Meta& meta, const std::string& key, int64_t* out) {
  std::string v;
  RETIA_CKPT_RETURN_IF_ERROR(MetaString(meta, key, &v));
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    return Result::Error(ErrorCode::kCorrupt,
                         "meta key '" + key + "' has non-integer value '" +
                             v + "'");
  }
  *out = static_cast<int64_t>(parsed);
  return Result::Ok();
}

Result MetaFloat(const Meta& meta, const std::string& key, float* out) {
  std::string v;
  RETIA_CKPT_RETURN_IF_ERROR(MetaString(meta, key, &v));
  char* end = nullptr;
  const float parsed = std::strtof(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    return Result::Error(ErrorCode::kCorrupt,
                         "meta key '" + key + "' has non-float value '" + v +
                             "'");
  }
  *out = parsed;
  return Result::Ok();
}

Result MetaBool(const Meta& meta, const std::string& key, bool* out) {
  std::string v;
  RETIA_CKPT_RETURN_IF_ERROR(MetaString(meta, key, &v));
  if (v != "0" && v != "1") {
    return Result::Error(ErrorCode::kCorrupt,
                         "meta key '" + key + "' has non-boolean value '" +
                             v + "'");
  }
  *out = v == "1";
  return Result::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Parameters.

std::string EncodeParams(const nn::Module& module) {
  ByteWriter w;
  const auto named = module.NamedParameters();
  w.U64(named.size());
  for (const auto& [name, t] : named) {
    w.Str(name);
    const auto& shape = t.Shape();
    w.U32(static_cast<uint32_t>(shape.size()));
    for (int64_t dim : shape) w.I64(dim);
    w.FloatArray(t.Data(), t.NumElements());
  }
  return w.Take();
}

Result DecodeParamsInto(nn::Module* module, std::string_view payload) {
  ByteReader r(payload, kSectionParams);
  uint64_t count = 0;
  RETIA_CKPT_RETURN_IF_ERROR(r.U64(&count));
  auto named = module->NamedParameters();
  if (count != named.size()) {
    return Result::Error(ErrorCode::kSchemaMismatch,
                         "artifact has " + std::to_string(count) +
                             " parameters, model has " +
                             std::to_string(named.size()));
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    RETIA_CKPT_RETURN_IF_ERROR(r.Str(&name));
    if (name != named[i].first) {
      return Result::Error(ErrorCode::kSchemaMismatch,
                           "parameter order mismatch: artifact has '" + name +
                               "', model expects '" + named[i].first + "'");
    }
    uint32_t rank = 0;
    RETIA_CKPT_RETURN_IF_ERROR(r.U32(&rank));
    if (rank > 16) {
      return Result::Error(ErrorCode::kCorrupt,
                           "implausible rank for parameter '" + name + "'");
    }
    std::vector<int64_t> shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      RETIA_CKPT_RETURN_IF_ERROR(r.I64(&shape[d]));
    }
    tensor::Tensor& t = named[i].second;
    if (shape != t.Shape()) {
      return Result::Error(ErrorCode::kSchemaMismatch,
                           "shape mismatch for parameter '" + name +
                               "' (artifact " + ShapeString(shape) +
                               ", model " + ShapeString(t.Shape()) + ")");
    }
    std::vector<float> values;
    RETIA_CKPT_RETURN_IF_ERROR(r.FloatArray(&values));
    if (static_cast<int64_t>(values.size()) != t.NumElements()) {
      return Result::Error(ErrorCode::kCorrupt,
                           "element count mismatch for parameter '" + name +
                               "'");
    }
    t.impl().data = std::move(values);
  }
  return r.ExpectEnd();
}

// ---------------------------------------------------------------------------
// Quantized parameters (docs/QUANTIZATION.md).

bool QuantizesAsInt8(const std::vector<int64_t>& shape) {
  if (shape.size() < 2) return false;
  int64_t cols = 1;
  for (size_t d = 1; d < shape.size(); ++d) cols *= shape[d];
  return cols >= 16;
}

namespace {

// Shared entry header: name, rank, dims. Validated against the live
// parameter exactly like DecodeParamsInto (order, rank cap, shape).
void EncodeParamHeader(ByteWriter* w, const std::string& name,
                       const std::vector<int64_t>& shape) {
  w->Str(name);
  w->U32(static_cast<uint32_t>(shape.size()));
  for (int64_t dim : shape) w->I64(dim);
}

Result DecodeParamHeader(ByteReader* r, const std::string& expected_name,
                         const std::vector<int64_t>& expected_shape,
                         const char* section) {
  std::string name;
  RETIA_CKPT_RETURN_IF_ERROR(r->Str(&name));
  if (name != expected_name) {
    return Result::Error(ErrorCode::kSchemaMismatch,
                         std::string("parameter order mismatch in ") +
                             section + ": artifact has '" + name +
                             "', model expects '" + expected_name + "'");
  }
  uint32_t rank = 0;
  RETIA_CKPT_RETURN_IF_ERROR(r->U32(&rank));
  if (rank > 16) {
    return Result::Error(ErrorCode::kCorrupt,
                         "implausible rank for parameter '" + name + "'");
  }
  std::vector<int64_t> shape(rank);
  for (uint32_t d = 0; d < rank; ++d) {
    RETIA_CKPT_RETURN_IF_ERROR(r->I64(&shape[d]));
  }
  if (shape != expected_shape) {
    return Result::Error(ErrorCode::kSchemaMismatch,
                         "shape mismatch for parameter '" + name +
                             "' (artifact " + ShapeString(shape) + ", model " +
                             ShapeString(expected_shape) + ")");
  }
  return Result::Ok();
}

}  // namespace

Result SaveQuantizedModelArtifact(const core::RetiaModel& model,
                                  const std::string& path,
                                  const std::string& dataset_name) {
  ArtifactWriter writer;
  Meta meta = {{"artifact", "retia.model"}, {"dataset_name", dataset_name}};
  AppendRetiaConfigMeta(model.config(), &meta);
  writer.AddSection(kSectionMeta, EncodeMeta(meta));
  if (model.has_entity_types()) {
    ByteWriter types;
    types.I64(model.num_static_types());
    const auto& table = model.entity_types();
    types.U64(table.size());
    for (int64_t t : table) types.I64(t);
    writer.AddSection(kSectionStaticTypes, types.Take());
  }

  const auto named = model.NamedParameters();
  ByteWriter q8, f16;
  uint64_t q8_count = 0, f16_count = 0;
  for (const auto& [name, t] : named) {
    if (QuantizesAsInt8(t.Shape())) ++q8_count;
    else ++f16_count;
  }
  q8.U64(q8_count);
  f16.U64(f16_count);
  for (const auto& [name, t] : named) {
    if (QuantizesAsInt8(t.Shape())) {
      const int64_t rows = t.Shape()[0];
      const int64_t cols = t.NumElements() / rows;
      const quant::QuantizedRows q = quant::QuantizeRows(t.Data(), rows, cols);
      EncodeParamHeader(&q8, name, t.Shape());
      q8.FloatArray(q.scales.data(), rows);
      q8.U64(static_cast<uint64_t>(q.data.size()));
      q8.Raw(q.data.data(), q.data.size());
    } else {
      const std::vector<uint16_t> h =
          quant::EncodeF16(t.Data(), t.NumElements());
      EncodeParamHeader(&f16, name, t.Shape());
      f16.U64(static_cast<uint64_t>(h.size()));
      f16.Raw(h.data(), h.size() * sizeof(uint16_t));
    }
  }
  writer.AddSection(kSectionParamsQ8, q8.Take());
  writer.AddSection(kSectionParamsF16, f16.Take());
  return writer.WriteFile(path);
}

namespace {

// Decodes the q8 + f16 section pair into the module's f32 parameters.
// Routing mirrors the saver: each parameter's section is a pure function
// of its shape, so both readers are walked in NamedParameters order and
// must end exactly when the parameter list does.
Result DecodeQuantizedParamsInto(nn::Module* module,
                                 std::string_view q8_payload,
                                 std::string_view f16_payload) {
  ByteReader q8(q8_payload, kSectionParamsQ8);
  ByteReader f16(f16_payload, kSectionParamsF16);
  auto named = module->NamedParameters();
  uint64_t q8_count = 0, f16_count = 0;
  RETIA_CKPT_RETURN_IF_ERROR(q8.U64(&q8_count));
  RETIA_CKPT_RETURN_IF_ERROR(f16.U64(&f16_count));
  if (q8_count + f16_count != named.size()) {
    return Result::Error(ErrorCode::kSchemaMismatch,
                         "quantized artifact has " +
                             std::to_string(q8_count + f16_count) +
                             " parameters, model has " +
                             std::to_string(named.size()));
  }
  uint64_t q8_seen = 0, f16_seen = 0;
  for (auto& [name, t] : named) {
    if (QuantizesAsInt8(t.Shape())) {
      if (++q8_seen > q8_count) {
        return Result::Error(ErrorCode::kSchemaMismatch,
                             "q8 section entry count does not cover "
                             "parameter '" + name + "'");
      }
      RETIA_CKPT_RETURN_IF_ERROR(
          DecodeParamHeader(&q8, name, t.Shape(), kSectionParamsQ8));
      const int64_t rows = t.Shape()[0];
      const int64_t cols = t.NumElements() / rows;
      quant::QuantizedRows q;
      q.rows = rows;
      q.cols = cols;
      RETIA_CKPT_RETURN_IF_ERROR(q8.FloatArray(&q.scales));
      if (static_cast<int64_t>(q.scales.size()) != rows) {
        return Result::Error(ErrorCode::kCorrupt,
                             "scale count mismatch for parameter '" + name +
                                 "'");
      }
      uint64_t nbytes = 0;
      RETIA_CKPT_RETURN_IF_ERROR(q8.U64(&nbytes));
      if (nbytes != static_cast<uint64_t>(rows * cols)) {
        return Result::Error(ErrorCode::kCorrupt,
                             "int8 payload size mismatch for parameter '" +
                                 name + "'");
      }
      q.data.resize(static_cast<size_t>(nbytes));
      RETIA_CKPT_RETURN_IF_ERROR(q8.Raw(q.data.data(), q.data.size()));
      std::vector<float> values(static_cast<size_t>(t.NumElements()));
      quant::DequantizeInto(q, values.data());
      t.impl().data = std::move(values);
    } else {
      if (++f16_seen > f16_count) {
        return Result::Error(ErrorCode::kSchemaMismatch,
                             "f16 section entry count does not cover "
                             "parameter '" + name + "'");
      }
      RETIA_CKPT_RETURN_IF_ERROR(
          DecodeParamHeader(&f16, name, t.Shape(), kSectionParamsF16));
      uint64_t count = 0;
      RETIA_CKPT_RETURN_IF_ERROR(f16.U64(&count));
      if (count != static_cast<uint64_t>(t.NumElements())) {
        return Result::Error(ErrorCode::kCorrupt,
                             "f16 element count mismatch for parameter '" +
                                 name + "'");
      }
      std::vector<uint16_t> h(static_cast<size_t>(count));
      RETIA_CKPT_RETURN_IF_ERROR(
          f16.Raw(h.data(), h.size() * sizeof(uint16_t)));
      t.impl().data = quant::DecodeF16(h.data(), t.NumElements());
    }
  }
  if (q8_seen != q8_count || f16_seen != f16_count) {
    return Result::Error(ErrorCode::kSchemaMismatch,
                         "quantized artifact section split does not match "
                         "the model's parameter shapes");
  }
  RETIA_CKPT_RETURN_IF_ERROR(q8.ExpectEnd());
  return f16.ExpectEnd();
}

}  // namespace

// ---------------------------------------------------------------------------
// Meta.

std::string EncodeMeta(const Meta& meta) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(meta.size()));
  for (const auto& [key, value] : meta) {
    w.Str(key);
    w.Str(value);
  }
  return w.Take();
}

Result DecodeMeta(std::string_view payload, Meta* out) {
  ByteReader r(payload, kSectionMeta);
  uint32_t count = 0;
  RETIA_CKPT_RETURN_IF_ERROR(r.U32(&count));
  Meta meta;
  meta.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string key, value;
    RETIA_CKPT_RETURN_IF_ERROR(r.Str(&key));
    RETIA_CKPT_RETURN_IF_ERROR(r.Str(&value));
    meta.emplace_back(std::move(key), std::move(value));
  }
  RETIA_CKPT_RETURN_IF_ERROR(r.ExpectEnd());
  *out = std::move(meta);
  return Result::Ok();
}

// ---------------------------------------------------------------------------
// Adam.

std::string EncodeAdam(const nn::Adam& adam) {
  ByteWriter w;
  w.I64(adam.step_count());
  const auto& m = adam.first_moments();
  const auto& v = adam.second_moments();
  w.U64(m.size());
  for (size_t i = 0; i < m.size(); ++i) {
    w.FloatArray(m[i].data(), static_cast<int64_t>(m[i].size()));
    w.FloatArray(v[i].data(), static_cast<int64_t>(v[i].size()));
  }
  return w.Take();
}

Result DecodeAdamInto(nn::Adam* adam, std::string_view payload) {
  ByteReader r(payload, kSectionAdam);
  int64_t step_count = 0;
  RETIA_CKPT_RETURN_IF_ERROR(r.I64(&step_count));
  if (step_count < 0) {
    return Result::Error(ErrorCode::kCorrupt, "negative Adam step count");
  }
  uint64_t count = 0;
  RETIA_CKPT_RETURN_IF_ERROR(r.U64(&count));
  const auto& current_m = adam->first_moments();
  if (count != current_m.size()) {
    return Result::Error(ErrorCode::kSchemaMismatch,
                         "artifact Adam state covers " +
                             std::to_string(count) +
                             " parameters, optimizer has " +
                             std::to_string(current_m.size()));
  }
  std::vector<std::vector<float>> m(count), v(count);
  for (uint64_t i = 0; i < count; ++i) {
    RETIA_CKPT_RETURN_IF_ERROR(r.FloatArray(&m[i]));
    RETIA_CKPT_RETURN_IF_ERROR(r.FloatArray(&v[i]));
    if (m[i].size() != current_m[i].size() ||
        v[i].size() != current_m[i].size()) {
      return Result::Error(ErrorCode::kSchemaMismatch,
                           "artifact Adam moments for parameter " +
                               std::to_string(i) + " have wrong size");
    }
  }
  RETIA_CKPT_RETURN_IF_ERROR(r.ExpectEnd());
  adam->RestoreState(step_count, std::move(m), std::move(v));
  return Result::Ok();
}

// ---------------------------------------------------------------------------
// Rng.

std::string EncodeRng(const util::Rng& rng) {
  ByteWriter w;
  w.Str(rng.SaveStateString());
  return w.Take();
}

Result DecodeRngInto(util::Rng* rng, std::string_view payload) {
  ByteReader r(payload, kSectionRng);
  std::string state;
  RETIA_CKPT_RETURN_IF_ERROR(r.Str(&state));
  RETIA_CKPT_RETURN_IF_ERROR(r.ExpectEnd());
  if (!rng->LoadStateString(state)) {
    return Result::Error(ErrorCode::kCorrupt,
                         "invalid mt19937_64 engine state");
  }
  return Result::Ok();
}

// ---------------------------------------------------------------------------
// RetiaConfig <-> meta.

void AppendRetiaConfigMeta(const core::RetiaConfig& c, Meta* meta) {
  meta->emplace_back("num_entities", std::to_string(c.num_entities));
  meta->emplace_back("num_relations", std::to_string(c.num_relations));
  meta->emplace_back("dim", std::to_string(c.dim));
  meta->emplace_back("history_len", std::to_string(c.history_len));
  meta->emplace_back("rgcn_layers", std::to_string(c.rgcn_layers));
  meta->emplace_back("num_bases", std::to_string(c.num_bases));
  meta->emplace_back("conv_kernels", std::to_string(c.conv_kernels));
  meta->emplace_back("conv_kernel_size", std::to_string(c.conv_kernel_size));
  meta->emplace_back("dropout", FloatString(c.dropout));
  meta->emplace_back("lambda_entity", FloatString(c.lambda_entity));
  meta->emplace_back("use_eam", c.use_eam ? "1" : "0");
  meta->emplace_back("use_ram", c.use_ram ? "1" : "0");
  meta->emplace_back("use_tim", c.use_tim ? "1" : "0");
  meta->emplace_back("hyper_mode",
                     std::to_string(static_cast<int>(c.hyper_mode)));
  meta->emplace_back("relation_mode",
                     std::to_string(static_cast<int>(c.relation_mode)));
  meta->emplace_back("time_variability_decode",
                     c.time_variability_decode ? "1" : "0");
  meta->emplace_back("use_static_constraint",
                     c.use_static_constraint ? "1" : "0");
  meta->emplace_back("static_angle_step_deg",
                     FloatString(c.static_angle_step_deg));
  meta->emplace_back("static_weight", FloatString(c.static_weight));
  // The seed reproduces the frozen (non-parameter) ablation embeddings,
  // which are derived from the RNG at construction.
  meta->emplace_back("seed", std::to_string(c.seed));
}

Result RetiaConfigFromMeta(const Meta& meta, core::RetiaConfig* out) {
  core::RetiaConfig c;
  int64_t hyper_mode = 0;
  int64_t relation_mode = 0;
  int64_t seed = 0;
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "num_entities", &c.num_entities));
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "num_relations",
                                     &c.num_relations));
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "dim", &c.dim));
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "history_len", &c.history_len));
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "rgcn_layers", &c.rgcn_layers));
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "num_bases", &c.num_bases));
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "conv_kernels", &c.conv_kernels));
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "conv_kernel_size",
                                     &c.conv_kernel_size));
  RETIA_CKPT_RETURN_IF_ERROR(MetaFloat(meta, "dropout", &c.dropout));
  RETIA_CKPT_RETURN_IF_ERROR(MetaFloat(meta, "lambda_entity",
                                       &c.lambda_entity));
  RETIA_CKPT_RETURN_IF_ERROR(MetaBool(meta, "use_eam", &c.use_eam));
  RETIA_CKPT_RETURN_IF_ERROR(MetaBool(meta, "use_ram", &c.use_ram));
  RETIA_CKPT_RETURN_IF_ERROR(MetaBool(meta, "use_tim", &c.use_tim));
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "hyper_mode", &hyper_mode));
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "relation_mode", &relation_mode));
  RETIA_CKPT_RETURN_IF_ERROR(MetaBool(meta, "time_variability_decode",
                                      &c.time_variability_decode));
  RETIA_CKPT_RETURN_IF_ERROR(MetaBool(meta, "use_static_constraint",
                                      &c.use_static_constraint));
  RETIA_CKPT_RETURN_IF_ERROR(MetaFloat(meta, "static_angle_step_deg",
                                       &c.static_angle_step_deg));
  RETIA_CKPT_RETURN_IF_ERROR(MetaFloat(meta, "static_weight",
                                       &c.static_weight));
  RETIA_CKPT_RETURN_IF_ERROR(MetaInt(meta, "seed", &seed));
  c.hyper_mode = static_cast<core::HyperMode>(hyper_mode);
  c.relation_mode = static_cast<core::RelationMode>(relation_mode);
  c.seed = static_cast<uint64_t>(seed);
  *out = c;
  return Result::Ok();
}

// ---------------------------------------------------------------------------
// Model artifacts.

Result SaveModelArtifact(const core::RetiaModel& model,
                         const std::string& path,
                         const std::string& dataset_name) {
  ArtifactWriter writer;
  Meta meta = {{"artifact", "retia.model"}, {"dataset_name", dataset_name}};
  AppendRetiaConfigMeta(model.config(), &meta);
  writer.AddSection(kSectionMeta, EncodeMeta(meta));
  if (model.has_entity_types()) {
    ByteWriter types;
    types.I64(model.num_static_types());
    const auto& table = model.entity_types();
    types.U64(table.size());
    for (int64_t t : table) types.I64(t);
    writer.AddSection(kSectionStaticTypes, types.Take());
  }
  writer.AddSection(kSectionParams, EncodeParams(model));
  return writer.WriteFile(path);
}

Result LoadModelArtifact(const std::string& path,
                         std::unique_ptr<core::RetiaModel>* out,
                         std::string* dataset_name) {
  ArtifactReader reader;
  RETIA_CKPT_RETURN_IF_ERROR(ArtifactReader::Open(path, &reader));

  std::string_view meta_bytes;
  RETIA_CKPT_RETURN_IF_ERROR(reader.Section(kSectionMeta, &meta_bytes));
  Meta meta;
  RETIA_CKPT_RETURN_IF_ERROR(DecodeMeta(meta_bytes, &meta));
  core::RetiaConfig config;
  RETIA_CKPT_RETURN_IF_ERROR(RetiaConfigFromMeta(meta, &config));
  if (dataset_name != nullptr) {
    std::string name;
    RETIA_CKPT_RETURN_IF_ERROR(MetaString(meta, "dataset_name", &name));
    *dataset_name = std::move(name);
  }

  auto model = std::make_unique<core::RetiaModel>(config);

  // The static-constraint table must be installed before the parameters
  // are decoded: SetEntityTypes registers the per-type embedding, and the
  // parameter list in the artifact includes it.
  if (reader.Has(kSectionStaticTypes)) {
    std::string_view types_bytes;
    RETIA_CKPT_RETURN_IF_ERROR(reader.Section(kSectionStaticTypes,
                                              &types_bytes));
    ByteReader r(types_bytes, kSectionStaticTypes);
    int64_t num_types = 0;
    RETIA_CKPT_RETURN_IF_ERROR(r.I64(&num_types));
    uint64_t count = 0;
    RETIA_CKPT_RETURN_IF_ERROR(r.U64(&count));
    if (num_types <= 0 ||
        count != static_cast<uint64_t>(config.num_entities)) {
      return Result::Error(ErrorCode::kCorrupt,
                           "static-type table covers " +
                               std::to_string(count) + " entities, model has " +
                               std::to_string(config.num_entities));
    }
    std::vector<int64_t> types(count);
    for (uint64_t i = 0; i < count; ++i) {
      RETIA_CKPT_RETURN_IF_ERROR(r.I64(&types[i]));
      if (types[i] < 0 || types[i] >= num_types) {
        return Result::Error(ErrorCode::kCorrupt,
                             "static type of entity " + std::to_string(i) +
                                 " out of range");
      }
    }
    RETIA_CKPT_RETURN_IF_ERROR(r.ExpectEnd());
    if (!config.use_static_constraint) {
      return Result::Error(ErrorCode::kSchemaMismatch,
                           "artifact carries a static-type table but "
                           "use_static_constraint is off in its config");
    }
    model->SetEntityTypes(types, num_types);
  }

  if (reader.Has(kSectionParams)) {
    std::string_view params_bytes;
    RETIA_CKPT_RETURN_IF_ERROR(reader.Section(kSectionParams, &params_bytes));
    RETIA_CKPT_RETURN_IF_ERROR(DecodeParamsInto(model.get(), params_bytes));
  } else {
    // Quantized artifact: both dtype sections must be present (either may
    // hold zero entries). A file with neither spelling of the parameters
    // reports the canonical f32 section as missing.
    if (!reader.Has(kSectionParamsQ8) || !reader.Has(kSectionParamsF16)) {
      std::string_view params_bytes;
      return reader.Section(kSectionParams, &params_bytes);
    }
    std::string_view q8_bytes, f16_bytes;
    RETIA_CKPT_RETURN_IF_ERROR(reader.Section(kSectionParamsQ8, &q8_bytes));
    RETIA_CKPT_RETURN_IF_ERROR(reader.Section(kSectionParamsF16, &f16_bytes));
    RETIA_CKPT_RETURN_IF_ERROR(
        DecodeQuantizedParamsInto(model.get(), q8_bytes, f16_bytes));
  }

  *out = std::move(model);
  return Result::Ok();
}

}  // namespace retia::ckpt
