#ifndef RETIA_CKPT_RESULT_H_
#define RETIA_CKPT_RESULT_H_

#include <string>
#include <utility>

namespace retia::ckpt {

// Error taxonomy of the artifact subsystem. Every load/save entry point
// returns a Result carrying one of these codes plus a human-readable
// detail string naming the offending file, section, or parameter — load
// paths never CHECK-fail on bad input, they report and let the caller
// decide (serve keeps running, the trainer surfaces the error, tests
// assert on the exact code).
enum class ErrorCode {
  kOk = 0,
  kIoError,         // open/write/fsync/rename failed (or injected failure)
  kBadMagic,        // not a RETIA artifact at all
  kLegacyFormat,    // v1 RETIACKPT1/RETIASIDE1 file: readable via ckpt/legacy
  kBadVersion,      // v2 magic but an unsupported format version
  kTruncated,       // file or section ends before its declared contents
  kCorrupt,         // CRC mismatch or structurally inconsistent contents
  kMissingSection,  // a required section is absent from the artifact
  kSchemaMismatch,  // artifact disagrees with the in-memory model/optimizer
};

// Stable short name of a code ("ok", "io_error", ...), for logs and tests.
const char* ErrorCodeName(ErrorCode code);

// Status of a ckpt operation. [[nodiscard]] so that no load or save result
// can be silently dropped; check ok() or propagate.
class [[nodiscard]] Result {
 public:
  Result() : code_(ErrorCode::kOk) {}

  static Result Ok() { return Result(); }
  static Result Error(ErrorCode code, std::string detail) {
    Result r;
    r.code_ = code;
    r.detail_ = std::move(detail);
    return r;
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& detail() const { return detail_; }

  // "ok", or "<code_name>: <detail>".
  std::string ToString() const {
    if (ok()) return "ok";
    return std::string(ErrorCodeName(code_)) + ": " + detail_;
  }

 private:
  ErrorCode code_;
  std::string detail_;
};

// Propagates the first error of an expression returning Result.
#define RETIA_CKPT_RETURN_IF_ERROR(expr)                  \
  do {                                                    \
    ::retia::ckpt::Result retia_ckpt_result_ = (expr);    \
    if (!retia_ckpt_result_.ok()) return retia_ckpt_result_; \
  } while (0)

inline const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kBadMagic: return "bad_magic";
    case ErrorCode::kLegacyFormat: return "legacy_format";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kMissingSection: return "missing_section";
    case ErrorCode::kSchemaMismatch: return "schema_mismatch";
  }
  return "unknown";
}

}  // namespace retia::ckpt

#endif  // RETIA_CKPT_RESULT_H_
