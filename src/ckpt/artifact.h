#ifndef RETIA_CKPT_ARTIFACT_H_
#define RETIA_CKPT_ARTIFACT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ckpt/result.h"

namespace retia::ckpt {

// The RETIACKPT2 artifact container: one file holding named, individually
// CRC-guarded sections (docs/CHECKPOINTS.md is the normative spec).
//
// Layout (fixed-width fields in native little-endian order):
//   magic   "RETIACKPT2\n"                                    (11 bytes)
//   u32     format version (= 2)
//   u32     section count
//   per section:
//     u32   name length, name bytes
//     u64   payload length
//     u32   CRC-32 of the payload
//     payload bytes
//   u32     CRC-32 of every preceding byte (magic through last payload)
//
// Integrity: a bit flip in a payload fails that section's CRC (the error
// names the section); a flip anywhere else fails the file CRC or the
// structural parse; any truncation is caught by bounds checks or the
// missing footer. A reader never trusts a declared length beyond the
// bytes actually present.
//
// Durability: WriteFile serializes to <path>.tmp, write(2)s in bounded
// chunks, fsyncs, closes, renames over <path>, then fsyncs the parent
// directory — a crash at any point leaves either the complete old file or
// the complete new file. Every step is routed through the retia::fail
// hooks so the guarantee is provable under injected faults.

class ArtifactWriter {
 public:
  // Sections are written in insertion order. Names must be unique.
  void AddSection(std::string name, std::string payload);

  // Full serialized artifact (exposed so tests can corrupt known offsets).
  std::string Serialize() const;

  // Atomically replaces `path` with this artifact.
  Result WriteFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

class ArtifactReader {
 public:
  // Reads and fully validates `path` (structure, per-section CRCs, file
  // CRC). On a v1 RETIACKPT1/RETIASIDE1 file returns kLegacyFormat so
  // callers can dispatch to ckpt/legacy readers.
  static Result Open(const std::string& path, ArtifactReader* out);

  // Same validation over an in-memory artifact (tests, corruption matrix).
  static Result Parse(std::string bytes, ArtifactReader* out);

  bool Has(std::string_view name) const;

  // Payload view of section `name`; kMissingSection when absent. The view
  // borrows the reader's buffer and lives as long as the reader.
  Result Section(std::string_view name, std::string_view* out) const;

  std::vector<std::string> SectionNames() const;

 private:
  struct Entry {
    std::string name;
    size_t offset = 0;  // payload offset into bytes_
    size_t length = 0;
  };

  std::string bytes_;
  std::vector<Entry> entries_;
};

// The atomic tmp-file + fsync + rename protocol on raw bytes, shared with
// the legacy v1 writer shim. Consults the retia::fail hooks.
Result WriteFileDurably(const std::string& path, std::string_view bytes);

// Reads a whole file; kIoError when it cannot be opened or read.
Result ReadFileBytes(const std::string& path, std::string* out);

}  // namespace retia::ckpt

#endif  // RETIA_CKPT_ARTIFACT_H_
