#ifndef RETIA_CKPT_CRC32_H_
#define RETIA_CKPT_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace retia::ckpt {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// guarding every artifact section and the file as a whole. Table-driven,
// byte at a time: integrity checking is a rounding error next to the
// fsync the writer already pays.

// Incremental update: fold `len` bytes into a running CRC. Seed with 0.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

inline uint32_t Crc32(std::string_view bytes) {
  return Crc32Update(0, bytes.data(), bytes.size());
}

}  // namespace retia::ckpt

#endif  // RETIA_CKPT_CRC32_H_
