#ifndef RETIA_CKPT_CKPT_H_
#define RETIA_CKPT_CKPT_H_

// retia::ckpt umbrella header — the crash-safe, versioned artifact
// subsystem that owns every durable byte of model/training/serving state:
//
//   result.h    [[nodiscard]] Result + the ErrorCode taxonomy
//   bytes.h     bounds-checked section payload encoding
//   artifact.h  RETIACKPT2 sectioned container, atomic durable writes
//   model_io.h  typed sections (params, Adam, RNG, meta, static types)
//               and the unified model artifact (the serve snapshot)
//   legacy.h    v1 RETIACKPT1/RETIASIDE1 readers for migration
//
// Crash-safety contract: a save either atomically replaces the target
// file with a fully valid artifact or leaves the previous file untouched;
// a load either fully validates (magic, version, per-section CRC32, file
// CRC32, schema against the in-memory target) or returns an error naming
// what is wrong — it never aborts and never partially applies. The
// retia::fail hooks (util/fail.h) inject write failures, torn closes, and
// post-rename SIGKILLs to prove this under test.
//
// See docs/CHECKPOINTS.md for the format spec and resume semantics, and
// train/trainer.h for SaveState/ResumeState built on these sections.

#include "ckpt/artifact.h"   // IWYU pragma: export
#include "ckpt/bytes.h"      // IWYU pragma: export
#include "ckpt/legacy.h"     // IWYU pragma: export
#include "ckpt/model_io.h"   // IWYU pragma: export
#include "ckpt/result.h"     // IWYU pragma: export

#endif  // RETIA_CKPT_CKPT_H_
