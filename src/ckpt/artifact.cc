#include "ckpt/artifact.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "ckpt/bytes.h"
#include "ckpt/crc32.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/fail.h"

namespace retia::ckpt {

namespace {

constexpr char kMagic[] = "RETIACKPT2\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;  // 11
constexpr uint32_t kFormatVersion = 2;
// Sanity cap: an artifact with more sections than this is garbage, not a
// checkpoint; it bounds allocations before the file CRC is verified.
constexpr uint32_t kMaxSections = 1u << 20;
// Durable writes go out in bounded chunks so the fail layer can target
// "the Nth write" inside a single artifact, not just whole files.
constexpr size_t kWriteChunk = 64 * 1024;

constexpr char kLegacyCheckpointMagic[] = "RETIACKPT1\n";
constexpr char kLegacySidecarMagic[] = "RETIASIDE1";

Result IoError(const std::string& what, const std::string& path) {
  return Result::Error(ErrorCode::kIoError,
                       what + " " + path + ": " + std::strerror(errno));
}

bool StartsWith(std::string_view bytes, std::string_view prefix) {
  return bytes.size() >= prefix.size() &&
         std::memcmp(bytes.data(), prefix.data(), prefix.size()) == 0;
}

// True when `bytes` could be a (possibly truncated) v1 file: callers get
// kLegacyFormat and dispatch to ckpt/legacy, which reports precise errors.
bool LooksLegacy(std::string_view bytes) {
  const std::string_view ckpt(kLegacyCheckpointMagic,
                              sizeof(kLegacyCheckpointMagic) - 1);
  const std::string_view side(kLegacySidecarMagic,
                              sizeof(kLegacySidecarMagic) - 1);
  return StartsWith(bytes, ckpt) || StartsWith(bytes, side);
}

}  // namespace

void ArtifactWriter::AddSection(std::string name, std::string payload) {
  for (const auto& [existing, unused] : sections_) {
    RETIA_CHECK_MSG(existing != name,
                    "duplicate artifact section '" << name << "'");
  }
  sections_.emplace_back(std::move(name), std::move(payload));
}

std::string ArtifactWriter::Serialize() const {
  ByteWriter w;
  w.Raw(kMagic, kMagicLen);
  w.U32(kFormatVersion);
  w.U32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    w.Str(name);
    w.U64(payload.size());
    w.U32(Crc32(payload));
    w.Raw(payload.data(), payload.size());
  }
  const uint32_t file_crc = Crc32(w.bytes());
  w.U32(file_crc);
  return w.Take();
}

Result ArtifactWriter::WriteFile(const std::string& path) const {
  RETIA_OBS_TIMED_SCOPE("ckpt.save.us");
  const std::string bytes = Serialize();
  Result r = WriteFileDurably(path, bytes);
  if (r.ok()) {
    RETIA_OBS_COUNTER_ADD("ckpt.save.bytes",
                          static_cast<int64_t>(bytes.size()));
  }
  return r;
}

Result WriteFileDurably(const std::string& path, std::string_view bytes) {
  fail::InstallPlanFromEnvOnce();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return IoError("cannot open", tmp);

  size_t off = 0;
  while (off < bytes.size()) {
    const size_t chunk = std::min(bytes.size() - off, kWriteChunk);
    if (fail::ShouldFailWrite()) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Result::Error(ErrorCode::kIoError,
                           "injected write failure at byte " +
                               std::to_string(off) + " of " + tmp);
    }
    const ssize_t n = ::write(fd, bytes.data() + off, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Result r = IoError("write to", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return r;
    }
    off += static_cast<size_t>(n);
  }

  // A lying close: the plan may shear the file after we wrote everything,
  // modelling storage that acknowledged bytes it never kept. The artifact
  // still gets published — proving the *reader* rejects torn files.
  const int64_t truncate_to = fail::TruncateOnCloseBytes();
  if (truncate_to >= 0 &&
      truncate_to < static_cast<int64_t>(bytes.size())) {
    ::ftruncate(fd, static_cast<off_t>(truncate_to));
  }

  if (::fsync(fd) != 0) {
    const Result r = IoError("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return r;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return IoError("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Result r = IoError("rename to", path);
    ::unlink(tmp.c_str());
    return r;
  }
  // The commit point. A SIGKILL here (which the fail layer can inject)
  // must leave a complete, loadable artifact at `path`.
  fail::MaybeCrashAfterRename();

  // Make the rename itself durable. Best effort: some filesystems refuse
  // fsync on directories, and the data is already safe.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return Result::Ok();
}

Result ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return IoError("cannot open", path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return IoError("cannot read", path);
  *out = std::move(bytes);
  return Result::Ok();
}

Result ArtifactReader::Open(const std::string& path, ArtifactReader* out) {
  RETIA_OBS_TIMED_SCOPE("ckpt.load.us");
  std::string bytes;
  Result r = ReadFileBytes(path, &bytes);
  if (r.ok()) r = Parse(std::move(bytes), out);
  if (!r.ok()) {
    RETIA_OBS_COUNTER_ADD("ckpt.load.errors", 1);
    // Prefix the path so "section 'x' truncated" errors name the file.
    return Result::Error(r.code(), path + ": " + r.detail());
  }
  return r;
}

Result ArtifactReader::Parse(std::string bytes, ArtifactReader* out) {
  const std::string_view view(bytes);
  if (!StartsWith(view, std::string_view(kMagic, kMagicLen))) {
    if (LooksLegacy(view)) {
      return Result::Error(ErrorCode::kLegacyFormat,
                           "v1 RETIACKPT1/RETIASIDE1 file (read it through "
                           "ckpt/legacy or re-save as v2)");
    }
    if (view.size() < kMagicLen &&
        std::memcmp(view.data(), kMagic, view.size()) == 0) {
      return Result::Error(ErrorCode::kTruncated,
                           "file ends inside the artifact magic");
    }
    return Result::Error(ErrorCode::kBadMagic, "not a RETIA v2 artifact");
  }

  ByteReader header(view.substr(kMagicLen), "artifact header");
  uint32_t version = 0;
  RETIA_CKPT_RETURN_IF_ERROR(header.U32(&version));
  if (version != kFormatVersion) {
    return Result::Error(ErrorCode::kBadVersion,
                         "artifact format version " + std::to_string(version) +
                             ", this build reads version " +
                             std::to_string(kFormatVersion));
  }
  uint32_t count = 0;
  RETIA_CKPT_RETURN_IF_ERROR(header.U32(&count));
  if (count > kMaxSections) {
    return Result::Error(ErrorCode::kCorrupt,
                         "implausible section count " + std::to_string(count));
  }

  // Structural parse with explicit bounds checks against the *actual* file
  // size; declared lengths are never trusted past the bytes present.
  size_t pos = kMagicLen + 2 * sizeof(uint32_t);
  std::vector<Entry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const std::string at = "section " + std::to_string(i);
    ByteReader rec(view.substr(pos), at);
    std::string name;
    RETIA_CKPT_RETURN_IF_ERROR(rec.Str(&name));
    uint64_t payload_len = 0;
    RETIA_CKPT_RETURN_IF_ERROR(rec.U64(&payload_len));
    uint32_t stored_crc = 0;
    RETIA_CKPT_RETURN_IF_ERROR(rec.U32(&stored_crc));
    const size_t payload_off =
        pos + sizeof(uint32_t) + name.size() + sizeof(uint64_t) +
        sizeof(uint32_t);
    if (payload_len > view.size() - payload_off) {
      return Result::Error(ErrorCode::kTruncated,
                           "file ends inside the payload of section '" +
                               name + "'");
    }
    const std::string_view payload = view.substr(payload_off,
                                                 payload_len);
    if (Crc32(payload) != stored_crc) {
      return Result::Error(ErrorCode::kCorrupt,
                           "CRC mismatch in section '" + name + "'");
    }
    for (const Entry& e : entries) {
      if (e.name == name) {
        return Result::Error(ErrorCode::kCorrupt,
                             "duplicate section '" + name + "'");
      }
    }
    entries.push_back(Entry{name, payload_off, payload_len});
    pos = payload_off + payload_len;
  }

  if (view.size() - pos < sizeof(uint32_t)) {
    return Result::Error(ErrorCode::kTruncated,
                         "file ends before the file-CRC footer");
  }
  if (view.size() - pos > sizeof(uint32_t)) {
    return Result::Error(ErrorCode::kCorrupt,
                         std::to_string(view.size() - pos - sizeof(uint32_t)) +
                             " trailing bytes after the file-CRC footer");
  }
  uint32_t stored_file_crc = 0;
  std::memcpy(&stored_file_crc, view.data() + pos, sizeof(uint32_t));
  const uint32_t actual = Crc32Update(0, view.data(), pos);
  if (actual != stored_file_crc) {
    return Result::Error(ErrorCode::kCorrupt, "file CRC mismatch");
  }

  out->bytes_ = std::move(bytes);
  out->entries_ = std::move(entries);
  return Result::Ok();
}

bool ArtifactReader::Has(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

Result ArtifactReader::Section(std::string_view name,
                               std::string_view* out) const {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      *out = std::string_view(bytes_).substr(e.offset, e.length);
      return Result::Ok();
    }
  }
  return Result::Error(ErrorCode::kMissingSection,
                       "artifact has no section '" + std::string(name) + "'");
}

std::vector<std::string> ArtifactReader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

}  // namespace retia::ckpt
