#ifndef RETIA_CKPT_BYTES_H_
#define RETIA_CKPT_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/result.h"

namespace retia::ckpt {

// Section payload encoding. Fixed-width fields are memcpy'd in native
// byte order (the repo targets little-endian x86/arm; the v1 format made
// the same assumption for its raw uint64/float dumps). Every read is
// bounds-checked and returns a Result naming the enclosing section, so a
// truncated or corrupted payload surfaces as an error instead of UB.

class ByteWriter {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  // Length-prefixed string.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  // Length-prefixed float array.
  void FloatArray(const float* data, int64_t n) {
    U64(static_cast<uint64_t>(n));
    Raw(data, static_cast<size_t>(n) * sizeof(float));
  }

  void Raw(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  // `context` names the enclosing section in error details.
  ByteReader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  Result U32(uint32_t* out) { return Fixed(out); }
  Result U64(uint64_t* out) { return Fixed(out); }
  Result I64(int64_t* out) { return Fixed(out); }
  Result F32(float* out) { return Fixed(out); }
  Result F64(double* out) { return Fixed(out); }

  Result Str(std::string* out) {
    uint32_t len = 0;
    RETIA_CKPT_RETURN_IF_ERROR(U32(&len));
    if (Remaining() < len) return Truncation("string");
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Result::Ok();
  }

  Result FloatArray(std::vector<float>* out) {
    uint64_t n = 0;
    RETIA_CKPT_RETURN_IF_ERROR(U64(&n));
    const size_t bytes = static_cast<size_t>(n) * sizeof(float);
    if (n > (1ull << 34) || Remaining() < bytes) {
      return Truncation("float array");
    }
    out->resize(static_cast<size_t>(n));
    std::memcpy(out->data(), data_.data() + pos_, bytes);
    pos_ += bytes;
    return Result::Ok();
  }

  // Unprefixed bounded reads (the legacy v1 format carries its own
  // lengths in different widths).
  Result Raw(void* out, size_t len) {
    if (Remaining() < len) return Truncation("raw block");
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
    return Result::Ok();
  }

  Result StrRaw(std::string* out, size_t len) {
    if (Remaining() < len) return Truncation("string");
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Result::Ok();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

  // Sections must be consumed exactly: leftovers mean the payload does not
  // match the schema the reader expects.
  Result ExpectEnd() const {
    if (AtEnd()) return Result::Ok();
    return Result::Error(ErrorCode::kCorrupt,
                         "section '" + context_ + "' has " +
                             std::to_string(data_.size() - pos_) +
                             " unexpected trailing bytes");
  }

 private:
  template <typename T>
  Result Fixed(T* out) {
    if (Remaining() < sizeof(T)) return Truncation("field");
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Result::Ok();
  }

  Result Truncation(const char* what) const {
    return Result::Error(ErrorCode::kTruncated,
                         "section '" + context_ + "' truncated reading a " +
                             what + " at byte " + std::to_string(pos_));
  }

  size_t Remaining() const { return data_.size() - pos_; }

  std::string_view data_;
  std::string context_;
  size_t pos_ = 0;
};

}  // namespace retia::ckpt

#endif  // RETIA_CKPT_BYTES_H_
