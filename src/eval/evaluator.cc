#include "eval/evaluator.h"

#include <limits>
#include <map>
#include <set>

#include "util/check.h"
#include "util/timer.h"

namespace retia::eval {

namespace {

// All true objects per (subject, relation) at one timestamp, both query
// directions (inverse relations included), for the time-aware filter.
std::map<std::pair<int64_t, int64_t>, std::set<int64_t>> TrueObjectsAt(
    const std::vector<tkg::Quadruple>& facts, int64_t num_relations) {
  std::map<std::pair<int64_t, int64_t>, std::set<int64_t>> out;
  for (const tkg::Quadruple& q : facts) {
    out[{q.subject, q.relation}].insert(q.object);
    out[{q.object, q.relation + num_relations}].insert(q.subject);
  }
  return out;
}

// All true relations per (subject, object) at one timestamp.
std::map<std::pair<int64_t, int64_t>, std::set<int64_t>> TrueRelationsAt(
    const std::vector<tkg::Quadruple>& facts) {
  std::map<std::pair<int64_t, int64_t>, std::set<int64_t>> out;
  for (const tkg::Quadruple& q : facts) {
    out[{q.subject, q.object}].insert(q.relation);
  }
  return out;
}

}  // namespace

EvalResult EvaluateTimes(const tkg::TkgDataset& dataset,
                         const std::vector<int64_t>& times,
                         const ObjectScoreFn& object_fn,
                         const RelationScoreFn& relation_fn,
                         const EvalOptions& options,
                         const AfterTimestampFn& after_timestamp) {
  EvalResult result;
  const int64_t m = dataset.num_relations();
  for (int64_t t : times) {
    const std::vector<tkg::Quadruple>& facts = dataset.FactsAt(t);
    if (facts.empty()) continue;
    util::Timer timer;
    if (options.evaluate_entities) {
      // Object direction (s, r, ?) and subject direction (?, r, o) via the
      // inverse relation; the paper reports the mean of the two.
      std::vector<std::pair<int64_t, int64_t>> queries;
      std::vector<int64_t> targets;
      queries.reserve(facts.size() * 2);
      for (const tkg::Quadruple& q : facts) {
        queries.emplace_back(q.subject, q.relation);
        targets.push_back(q.object);
        queries.emplace_back(q.object, q.relation + m);
        targets.push_back(q.subject);
      }
      tensor::Tensor scores = object_fn(t, queries);
      RETIA_CHECK_EQ(scores.Dim(0), static_cast<int64_t>(queries.size()));
      RETIA_CHECK_EQ(scores.Dim(1), dataset.num_entities());
      const int64_t n = scores.Dim(1);
      const auto true_objects =
          options.time_aware_filter
              ? TrueObjectsAt(facts, dataset.num_relations())
              : std::map<std::pair<int64_t, int64_t>, std::set<int64_t>>{};
      for (size_t i = 0; i < queries.size(); ++i) {
        float* row = scores.Data() + i * n;
        if (options.time_aware_filter) {
          auto it = true_objects.find(queries[i]);
          if (it != true_objects.end()) {
            for (int64_t other : it->second) {
              if (other != targets[i]) {
                row[other] = -std::numeric_limits<float>::infinity();
              }
            }
          }
        }
        result.entity.AddRank(RankOf(row, n, targets[i]));
      }
    }
    if (options.evaluate_relations) {
      std::vector<std::pair<int64_t, int64_t>> queries;
      std::vector<int64_t> targets;
      queries.reserve(facts.size());
      for (const tkg::Quadruple& q : facts) {
        queries.emplace_back(q.subject, q.object);
        targets.push_back(q.relation);
      }
      tensor::Tensor scores = relation_fn(t, queries);
      RETIA_CHECK_EQ(scores.Dim(0), static_cast<int64_t>(queries.size()));
      RETIA_CHECK_EQ(scores.Dim(1), m);
      const auto true_relations =
          options.time_aware_filter
              ? TrueRelationsAt(facts)
              : std::map<std::pair<int64_t, int64_t>, std::set<int64_t>>{};
      for (size_t i = 0; i < queries.size(); ++i) {
        float* row = scores.Data() + i * m;
        if (options.time_aware_filter) {
          auto it = true_relations.find(queries[i]);
          if (it != true_relations.end()) {
            for (int64_t other : it->second) {
              if (other != targets[i]) {
                row[other] = -std::numeric_limits<float>::infinity();
              }
            }
          }
        }
        result.relation.AddRank(RankOf(row, m, targets[i]));
      }
    }
    result.predict_seconds += timer.Seconds();
    if (after_timestamp) after_timestamp(t);
  }
  return result;
}

}  // namespace retia::eval
