#ifndef RETIA_EVAL_EVALUATOR_H_
#define RETIA_EVAL_EVALUATOR_H_

#include <functional>
#include <utility>
#include <vector>

#include "eval/metrics.h"
#include "tensor/tensor.h"
#include "tkg/dataset.h"

namespace retia::eval {

// Callback scoring object queries (s, r) for a prediction at timestamp `t`;
// must return a [B, num_entities] score (or probability) matrix. Subject
// queries are issued by the evaluator with the inverse relation id r + M.
using ObjectScoreFn = std::function<tensor::Tensor(
    int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries)>;

// Callback scoring relation queries (s, o) at timestamp `t`; must return a
// [B, num_relations] matrix.
using RelationScoreFn = std::function<tensor::Tensor(
    int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries)>;

// Optional hook invoked after a timestamp is fully evaluated, enabling the
// online-continuous-training (time-variability) protocol of Sec. III-F.
using AfterTimestampFn = std::function<void(int64_t t)>;

struct EvalResult {
  Metrics entity;    // mean of subject and object forecasting
  Metrics relation;  // relation forecasting
  double predict_seconds = 0.0;  // scoring time (excludes online updates)
};

struct EvalOptions {
  bool evaluate_entities = true;
  bool evaluate_relations = true;
  // Time-aware filtered setting (Sec. IV-A3): candidates that form another
  // *true* fact at the same timestamp are removed from the ranking (except
  // the query's own ground truth). The paper argues this treatment of
  // one-to-many facts is crude and reports raw metrics instead; both
  // protocols are supported so the difference can be measured
  // (bench_protocol_comparison).
  bool time_aware_filter = false;
};

// Evaluates the facts of `times` (one ranked batch per timestamp, mirroring
// the paper's per-timestamp protocol) under the raw setting.
EvalResult EvaluateTimes(const tkg::TkgDataset& dataset,
                         const std::vector<int64_t>& times,
                         const ObjectScoreFn& object_fn,
                         const RelationScoreFn& relation_fn,
                         const EvalOptions& options = {},
                         const AfterTimestampFn& after_timestamp = nullptr);

}  // namespace retia::eval

#endif  // RETIA_EVAL_EVALUATOR_H_
