#include "eval/metrics.h"

#include <algorithm>

#include "simd/simd.h"
#include "util/check.h"

namespace retia::eval {

void Metrics::AddRank(int64_t rank) {
  RETIA_CHECK(rank >= 1);
  ++count_;
  reciprocal_sum_ += 1.0 / static_cast<double>(rank);
  if (rank <= 1) ++hits1_;
  if (rank <= 3) ++hits3_;
  if (rank <= 10) ++hits10_;
}

void Metrics::Merge(const Metrics& other) {
  count_ += other.count_;
  reciprocal_sum_ += other.reciprocal_sum_;
  hits1_ += other.hits1_;
  hits3_ += other.hits3_;
  hits10_ += other.hits10_;
}

double Metrics::Mrr() const {
  return count_ == 0 ? 0.0 : 100.0 * reciprocal_sum_ / count_;
}
double Metrics::Hits1() const {
  return count_ == 0 ? 0.0 : 100.0 * hits1_ / count_;
}
double Metrics::Hits3() const {
  return count_ == 0 ? 0.0 : 100.0 * hits3_ / count_;
}
double Metrics::Hits10() const {
  return count_ == 0 ? 0.0 : 100.0 * hits10_ / count_;
}

int64_t RankOf(const float* scores, int64_t n, int64_t target) {
  RETIA_CHECK_LT(target, n);
  const float t = scores[target];
  int64_t higher = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (scores[i] > t) ++higher;
  }
  return higher + 1;
}

std::vector<int64_t> TopKIndices(const float* scores, int64_t n, int64_t k) {
  RETIA_CHECK(k >= 0);
  // Partial selection kernel instead of sorting all n indices; the kernel
  // produces the same unique "higher score wins, ties to the lower index"
  // order on every backend (see simd::KernelTable::topk_select_f32).
  std::vector<int64_t> idx(std::min(k, n));
  const int64_t took = simd::TopKSelectF32(scores, n, k, idx.data());
  idx.resize(took);
  return idx;
}

}  // namespace retia::eval
