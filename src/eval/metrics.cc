#include "eval/metrics.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace retia::eval {

void Metrics::AddRank(int64_t rank) {
  RETIA_CHECK(rank >= 1);
  ++count_;
  reciprocal_sum_ += 1.0 / static_cast<double>(rank);
  if (rank <= 1) ++hits1_;
  if (rank <= 3) ++hits3_;
  if (rank <= 10) ++hits10_;
}

void Metrics::Merge(const Metrics& other) {
  count_ += other.count_;
  reciprocal_sum_ += other.reciprocal_sum_;
  hits1_ += other.hits1_;
  hits3_ += other.hits3_;
  hits10_ += other.hits10_;
}

double Metrics::Mrr() const {
  return count_ == 0 ? 0.0 : 100.0 * reciprocal_sum_ / count_;
}
double Metrics::Hits1() const {
  return count_ == 0 ? 0.0 : 100.0 * hits1_ / count_;
}
double Metrics::Hits3() const {
  return count_ == 0 ? 0.0 : 100.0 * hits3_ / count_;
}
double Metrics::Hits10() const {
  return count_ == 0 ? 0.0 : 100.0 * hits10_ / count_;
}

int64_t RankOf(const float* scores, int64_t n, int64_t target) {
  RETIA_CHECK_LT(target, n);
  const float t = scores[target];
  int64_t higher = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (scores[i] > t) ++higher;
  }
  return higher + 1;
}

std::vector<int64_t> TopKIndices(const float* scores, int64_t n, int64_t k) {
  RETIA_CHECK(k >= 0);
  const int64_t take = std::min(k, n);
  std::vector<int64_t> idx(n);
  std::iota(idx.begin(), idx.end(), int64_t{0});
  const auto better = [scores](int64_t a, int64_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  std::partial_sort(idx.begin(), idx.begin() + take, idx.end(), better);
  idx.resize(take);
  return idx;
}

}  // namespace retia::eval
