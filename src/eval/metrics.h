#ifndef RETIA_EVAL_METRICS_H_
#define RETIA_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace retia::eval {

// Accumulator for the paper's link-prediction metrics under the raw setting
// (Sec. IV-A3): MRR and Hits@{1,3,10}, reported x100.
class Metrics {
 public:
  // Records one query given the rank (1-based) of the ground truth.
  void AddRank(int64_t rank);

  // Merges another accumulator into this one.
  void Merge(const Metrics& other);

  int64_t count() const { return count_; }
  double Mrr() const;     // x100
  double Hits1() const;   // x100
  double Hits3() const;   // x100
  double Hits10() const;  // x100

 private:
  int64_t count_ = 0;
  double reciprocal_sum_ = 0.0;
  int64_t hits1_ = 0;
  int64_t hits3_ = 0;
  int64_t hits10_ = 0;
};

// Raw-setting rank of `target` within `scores` (1-based): one plus the
// number of strictly higher scores; ties are broken optimistically,
// matching the common open-source evaluation of RE-GCN-family models.
int64_t RankOf(const float* scores, int64_t n, int64_t target);

// Indices of the k highest scores, best first. Deterministic: ties are
// broken by the lower index, consistent with RankOf's optimistic ranking.
// Returns fewer than k entries when n < k. Shared by the serving engine's
// TopK path and the tests that cross-check it against full rankings.
std::vector<int64_t> TopKIndices(const float* scores, int64_t n, int64_t k);

}  // namespace retia::eval

#endif  // RETIA_EVAL_METRICS_H_
