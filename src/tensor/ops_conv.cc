#include "obs/obs.h"
#include "par/parallel_for.h"
#include "tensor/ops.h"

namespace retia::tensor {

// The convolution kernels (ConvTransE decode = Conv1d over the query
// batch) are parallelized over par::DefaultPool() with fixed shards that
// each own disjoint output slices:
//   forward      — (batch, cout) output maps,
//   input grad   — batch items,
//   weight grad  — (cout, cin) filter planes (batch stays the outer loop
//                  inside a shard, preserving the serial accumulation
//                  order per filter element),
//   bias grad    — output channels.
// Every output element therefore sees the serial arithmetic in the serial
// order: results are bit-identical for every thread count.

Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t pad) {
  RETIA_OBS_TIMED_SCOPE("tensor.conv1d.us");
  RETIA_CHECK_EQ(input.Rank(), 3);
  RETIA_CHECK_EQ(weight.Rank(), 3);
  const int64_t batch = input.Dim(0);
  const int64_t cin = input.Dim(1);
  const int64_t length = input.Dim(2);
  const int64_t cout = weight.Dim(0);
  RETIA_CHECK_EQ(weight.Dim(1), cin);
  const int64_t ksize = weight.Dim(2);
  const int64_t lout = length + 2 * pad - ksize + 1;
  RETIA_CHECK(lout > 0);
  if (bias.defined()) {
    RETIA_CHECK_EQ(bias.Rank(), 1);
    RETIA_CHECK_EQ(bias.Dim(0), cout);
  }

  std::vector<float> out(batch * cout * lout, 0.0f);
  const float* px = input.Data();
  const float* pw = weight.Data();
  par::ParallelFor(
      batch * cout, par::GrainRows(cin * lout * ksize),
      [&](int64_t map0, int64_t map1) {
        for (int64_t map = map0; map < map1; ++map) {
          const int64_t b = map / cout;
          const int64_t co = map % cout;
          float* orow = out.data() + map * lout;
          if (bias.defined()) {
            const float bv = bias.Data()[co];
            for (int64_t l = 0; l < lout; ++l) orow[l] = bv;
          }
          for (int64_t ci = 0; ci < cin; ++ci) {
            const float* xrow = px + (b * cin + ci) * length;
            const float* wrow = pw + (co * cin + ci) * ksize;
            for (int64_t l = 0; l < lout; ++l) {
              float acc = 0.0f;
              for (int64_t kk = 0; kk < ksize; ++kk) {
                const int64_t src = l + kk - pad;
                if (src >= 0 && src < length) acc += wrow[kk] * xrow[src];
              }
              orow[l] += acc;
            }
          }
        }
      });
  return MakeOpResult(
      {batch, cout, lout}, std::move(out), {input, weight, bias},
      [input, weight, bias, batch, cin, length, cout, ksize, lout,
       pad](TensorImpl& self) mutable {
        const float* g = self.grad.data();
        const float* px = input.Data();
        const float* pw = weight.Data();
        if (input.RequiresGrad()) {
          std::vector<float> gx(batch * cin * length, 0.0f);
          par::ParallelFor(
              batch, par::GrainRows(cout * cin * lout * ksize),
              [&](int64_t b0, int64_t b1) {
                for (int64_t b = b0; b < b1; ++b)
                  for (int64_t co = 0; co < cout; ++co) {
                    const float* grow = g + (b * cout + co) * lout;
                    for (int64_t ci = 0; ci < cin; ++ci) {
                      float* xrow = gx.data() + (b * cin + ci) * length;
                      const float* wrow = pw + (co * cin + ci) * ksize;
                      for (int64_t l = 0; l < lout; ++l)
                        for (int64_t kk = 0; kk < ksize; ++kk) {
                          const int64_t src = l + kk - pad;
                          if (src >= 0 && src < length)
                            xrow[src] += grow[l] * wrow[kk];
                        }
                    }
                  }
              });
          input.impl().AccumulateGrad(gx.data(), batch * cin * length);
        }
        if (weight.RequiresGrad()) {
          std::vector<float> gw(cout * cin * ksize, 0.0f);
          par::ParallelFor(
              cout * cin, par::GrainRows(batch * lout * ksize),
              [&](int64_t plane0, int64_t plane1) {
                for (int64_t b = 0; b < batch; ++b)
                  for (int64_t plane = plane0; plane < plane1; ++plane) {
                    const int64_t co = plane / cin;
                    const int64_t ci = plane % cin;
                    const float* grow = g + (b * cout + co) * lout;
                    const float* xrow = px + (b * cin + ci) * length;
                    float* wrow = gw.data() + plane * ksize;
                    for (int64_t l = 0; l < lout; ++l)
                      for (int64_t kk = 0; kk < ksize; ++kk) {
                        const int64_t src = l + kk - pad;
                        if (src >= 0 && src < length)
                          wrow[kk] += grow[l] * xrow[src];
                      }
                  }
              });
          weight.impl().AccumulateGrad(gw.data(), cout * cin * ksize);
        }
        if (bias.defined() && bias.RequiresGrad()) {
          std::vector<float> gb(cout, 0.0f);
          par::ParallelFor(
              cout, par::GrainRows(batch * lout),
              [&](int64_t co0, int64_t co1) {
                for (int64_t b = 0; b < batch; ++b)
                  for (int64_t co = co0; co < co1; ++co) {
                    const float* grow = g + (b * cout + co) * lout;
                    for (int64_t l = 0; l < lout; ++l) gb[co] += grow[l];
                  }
              });
          bias.impl().AccumulateGrad(gb.data(), cout);
        }
      });
}

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t pad) {
  RETIA_OBS_TIMED_SCOPE("tensor.conv2d.us");
  RETIA_CHECK_EQ(input.Rank(), 4);
  RETIA_CHECK_EQ(weight.Rank(), 4);
  const int64_t batch = input.Dim(0);
  const int64_t cin = input.Dim(1);
  const int64_t h = input.Dim(2);
  const int64_t w = input.Dim(3);
  const int64_t cout = weight.Dim(0);
  RETIA_CHECK_EQ(weight.Dim(1), cin);
  const int64_t kh = weight.Dim(2);
  const int64_t kw = weight.Dim(3);
  const int64_t ho = h + 2 * pad - kh + 1;
  const int64_t wo = w + 2 * pad - kw + 1;
  RETIA_CHECK(ho > 0 && wo > 0);
  if (bias.defined()) {
    RETIA_CHECK_EQ(bias.Rank(), 1);
    RETIA_CHECK_EQ(bias.Dim(0), cout);
  }

  std::vector<float> out(batch * cout * ho * wo, 0.0f);
  const float* px = input.Data();
  const float* pw = weight.Data();
  par::ParallelFor(
      batch * cout, par::GrainRows(cin * ho * wo * kh * kw),
      [&](int64_t map0, int64_t map1) {
        for (int64_t map = map0; map < map1; ++map) {
          const int64_t b = map / cout;
          const int64_t co = map % cout;
          float* omap = out.data() + map * ho * wo;
          if (bias.defined()) {
            const float bv = bias.Data()[co];
            for (int64_t i = 0; i < ho * wo; ++i) omap[i] = bv;
          }
          for (int64_t ci = 0; ci < cin; ++ci) {
            const float* xmap = px + (b * cin + ci) * h * w;
            const float* wmap = pw + (co * cin + ci) * kh * kw;
            for (int64_t oy = 0; oy < ho; ++oy)
              for (int64_t ox = 0; ox < wo; ++ox) {
                float acc = 0.0f;
                for (int64_t ky = 0; ky < kh; ++ky) {
                  const int64_t sy = oy + ky - pad;
                  if (sy < 0 || sy >= h) continue;
                  for (int64_t kx = 0; kx < kw; ++kx) {
                    const int64_t sx = ox + kx - pad;
                    if (sx < 0 || sx >= w) continue;
                    acc += wmap[ky * kw + kx] * xmap[sy * w + sx];
                  }
                }
                omap[oy * wo + ox] += acc;
              }
          }
        }
      });
  return MakeOpResult(
      {batch, cout, ho, wo}, std::move(out), {input, weight, bias},
      [input, weight, bias, batch, cin, h, w, cout, kh, kw, ho, wo,
       pad](TensorImpl& self) mutable {
        const float* g = self.grad.data();
        const float* px = input.Data();
        const float* pw = weight.Data();
        if (input.RequiresGrad()) {
          std::vector<float> gx(batch * cin * h * w, 0.0f);
          par::ParallelFor(
              batch, par::GrainRows(cout * cin * ho * wo * kh * kw),
              [&](int64_t b0, int64_t b1) {
                for (int64_t b = b0; b < b1; ++b)
                  for (int64_t co = 0; co < cout; ++co) {
                    const float* gmap = g + (b * cout + co) * ho * wo;
                    for (int64_t ci = 0; ci < cin; ++ci) {
                      float* xmap = gx.data() + (b * cin + ci) * h * w;
                      const float* wmap = pw + (co * cin + ci) * kh * kw;
                      for (int64_t oy = 0; oy < ho; ++oy)
                        for (int64_t ox = 0; ox < wo; ++ox) {
                          const float gv = gmap[oy * wo + ox];
                          if (gv == 0.0f) continue;
                          for (int64_t ky = 0; ky < kh; ++ky) {
                            const int64_t sy = oy + ky - pad;
                            if (sy < 0 || sy >= h) continue;
                            for (int64_t kx = 0; kx < kw; ++kx) {
                              const int64_t sx = ox + kx - pad;
                              if (sx < 0 || sx >= w) continue;
                              xmap[sy * w + sx] += gv * wmap[ky * kw + kx];
                            }
                          }
                        }
                    }
                  }
              });
          input.impl().AccumulateGrad(gx.data(), batch * cin * h * w);
        }
        if (weight.RequiresGrad()) {
          std::vector<float> gw(cout * cin * kh * kw, 0.0f);
          par::ParallelFor(
              cout * cin, par::GrainRows(batch * ho * wo * kh * kw),
              [&](int64_t plane0, int64_t plane1) {
                for (int64_t b = 0; b < batch; ++b)
                  for (int64_t plane = plane0; plane < plane1; ++plane) {
                    const int64_t co = plane / cin;
                    const int64_t ci = plane % cin;
                    const float* gmap = g + (b * cout + co) * ho * wo;
                    const float* xmap = px + (b * cin + ci) * h * w;
                    float* wmap = gw.data() + plane * kh * kw;
                    for (int64_t oy = 0; oy < ho; ++oy)
                      for (int64_t ox = 0; ox < wo; ++ox) {
                        const float gv = gmap[oy * wo + ox];
                        if (gv == 0.0f) continue;
                        for (int64_t ky = 0; ky < kh; ++ky) {
                          const int64_t sy = oy + ky - pad;
                          if (sy < 0 || sy >= h) continue;
                          for (int64_t kx = 0; kx < kw; ++kx) {
                            const int64_t sx = ox + kx - pad;
                            if (sx < 0 || sx >= w) continue;
                            wmap[ky * kw + kx] += gv * xmap[sy * w + sx];
                          }
                        }
                      }
                  }
              });
          weight.impl().AccumulateGrad(gw.data(), cout * cin * kh * kw);
        }
        if (bias.defined() && bias.RequiresGrad()) {
          std::vector<float> gb(cout, 0.0f);
          par::ParallelFor(
              cout, par::GrainRows(batch * ho * wo),
              [&](int64_t co0, int64_t co1) {
                for (int64_t b = 0; b < batch; ++b)
                  for (int64_t co = co0; co < co1; ++co) {
                    const float* gmap = g + (b * cout + co) * ho * wo;
                    for (int64_t i = 0; i < ho * wo; ++i) gb[co] += gmap[i];
                  }
              });
          bias.impl().AccumulateGrad(gb.data(), cout);
        }
      });
}

}  // namespace retia::tensor
