#include <cmath>
#include <memory>

#include "obs/obs.h"
#include "par/parallel_for.h"
#include "simd/simd.h"
#include "tensor/ops.h"

namespace retia::tensor {

// The batched softmax / cross-entropy kernels are row-parallel over
// par::DefaultPool(): every row is written by exactly one fixed shard, and
// the scalar loss is folded serially in row order from per-row terms — so
// outputs, losses, and gradients are bit-identical for every thread count.
// Per-row arithmetic goes through the simd kernel table; the scalar
// backend reproduces the historical serial loops bit-exactly, the SIMD
// backends use a polynomial exp and lane-tree sums within the documented
// tolerance (simd/simd.h).

Tensor Softmax(const Tensor& a) {
  RETIA_OBS_TIMED_SCOPE("tensor.softmax.us");
  RETIA_CHECK_EQ(a.Rank(), 2);
  const int64_t m = a.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out(m * n);
  const float* pa = a.Data();
  par::ParallelFor(m, par::GrainRows(n), [&](int64_t row0, int64_t row1) {
    const simd::KernelTable& t = simd::Kernels();
    for (int64_t i = row0; i < row1; ++i) {
      const float* row = pa + i * n;
      float* orow = out.data() + i * n;
      const float mx = t.reduce_max(row, n);
      double denom = 0.0;
      t.exp_store_sum(row, mx, orow, &denom, n);
      const float inv = static_cast<float>(1.0 / denom);
      t.scale(orow, inv, orow, n);
    }
  });
  return MakeOpResult(
      a.Shape(), std::move(out), {a}, [a, m, n](TensorImpl& self) mutable {
        if (!a.RequiresGrad()) return;
        // dx = y * (dy - sum_j dy_j y_j) per row.
        std::vector<float> g(m * n);
        par::ParallelFor(m, par::GrainRows(n), [&](int64_t row0, int64_t row1) {
          const simd::KernelTable& t = simd::Kernels();
          for (int64_t i = row0; i < row1; ++i) {
            const float* y = self.data.data() + i * n;
            const float* dy = self.grad.data() + i * n;
            const double dot = t.dot_f64(dy, y, n);
            for (int64_t j = 0; j < n; ++j)
              g[i * n + j] = y[j] * (dy[j] - static_cast<float>(dot));
          }
        });
        a.impl().AccumulateGrad(g.data(), m * n);
      });
}

Tensor LogSoftmax(const Tensor& a) {
  RETIA_OBS_TIMED_SCOPE("tensor.softmax.us");
  RETIA_CHECK_EQ(a.Rank(), 2);
  const int64_t m = a.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out(m * n);
  const float* pa = a.Data();
  par::ParallelFor(m, par::GrainRows(n), [&](int64_t row0, int64_t row1) {
    const simd::KernelTable& t = simd::Kernels();
    for (int64_t i = row0; i < row1; ++i) {
      const float* row = pa + i * n;
      const float mx = t.reduce_max(row, n);
      const double denom = t.exp_sum(row, mx, n);
      const float lse = mx + static_cast<float>(std::log(denom));
      // row[j] + (-lse) == row[j] - lse exactly.
      t.add_scalar(row, -lse, out.data() + i * n, n);
    }
  });
  return MakeOpResult(
      a.Shape(), std::move(out), {a}, [a, m, n](TensorImpl& self) mutable {
        if (!a.RequiresGrad()) return;
        // dx = dy - softmax(x) * sum_j dy_j per row; softmax = exp(out).
        std::vector<float> g(m * n);
        par::ParallelFor(m, par::GrainRows(n), [&](int64_t row0, int64_t row1) {
          for (int64_t i = row0; i < row1; ++i) {
            const float* y = self.data.data() + i * n;
            const float* dy = self.grad.data() + i * n;
            double total = 0.0;
            for (int64_t j = 0; j < n; ++j) total += dy[j];
            for (int64_t j = 0; j < n; ++j)
              g[i * n + j] =
                  dy[j] - std::exp(y[j]) * static_cast<float>(total);
          }
        });
        a.impl().AccumulateGrad(g.data(), m * n);
      });
}

Tensor NllFromProbs(const Tensor& p, const std::vector<int64_t>& targets) {
  RETIA_CHECK_EQ(p.Rank(), 2);
  RETIA_CHECK_EQ(p.Dim(0), static_cast<int64_t>(targets.size()));
  const int64_t m = p.Dim(0);
  const int64_t n = p.Dim(1);
  constexpr float kEps = 1e-10f;
  const float* pp = p.Data();
  double loss = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    RETIA_CHECK_LT(targets[i], n);
    loss -= std::log(pp[i * n + targets[i]] + kEps);
  }
  loss /= static_cast<double>(m);
  auto tgt = std::make_shared<std::vector<int64_t>>(targets);
  return MakeOpResult(
      {1}, {static_cast<float>(loss)}, {p},
      [p, tgt, m, n](TensorImpl& self) mutable {
        if (!p.RequiresGrad()) return;
        std::vector<float> g(m * n, 0.0f);
        const float* pp = p.Data();
        const float scale = self.grad[0] / static_cast<float>(m);
        for (int64_t i = 0; i < m; ++i) {
          const int64_t t = (*tgt)[i];
          g[i * n + t] = -scale / (pp[i * n + t] + kEps);
        }
        p.impl().AccumulateGrad(g.data(), m * n);
      });
}

Tensor CrossEntropyLogits(const Tensor& logits,
                          const std::vector<int64_t>& targets) {
  RETIA_OBS_TIMED_SCOPE("tensor.softmax_ce.us");
  RETIA_CHECK_EQ(logits.Rank(), 2);
  RETIA_CHECK_EQ(logits.Dim(0), static_cast<int64_t>(targets.size()));
  const int64_t m = logits.Dim(0);
  const int64_t n = logits.Dim(1);
  const float* pl = logits.Data();
  // Cache softmax for the backward pass. Per-row losses land in a buffer
  // and are summed serially in row order below, so the total matches the
  // serial accumulation bit-for-bit.
  auto probs = std::make_shared<std::vector<float>>(m * n);
  std::vector<double> row_loss(m);
  par::ParallelFor(m, par::GrainRows(n), [&](int64_t row0, int64_t row1) {
    const simd::KernelTable& t = simd::Kernels();
    for (int64_t i = row0; i < row1; ++i) {
      const float* row = pl + i * n;
      const float mx = t.reduce_max(row, n);
      const double denom = t.exp_sum(row, mx, n);
      const double lse = mx + std::log(denom);
      RETIA_CHECK_LT(targets[i], n);
      row_loss[i] = lse - row[targets[i]];
      t.exp_shift_store(row, lse, probs->data() + i * n, n);
    }
  });
  double loss = 0.0;
  for (int64_t i = 0; i < m; ++i) loss += row_loss[i];
  loss /= static_cast<double>(m);
  auto tgt = std::make_shared<std::vector<int64_t>>(targets);
  return MakeOpResult(
      {1}, {static_cast<float>(loss)}, {logits},
      [logits, tgt, probs, m, n](TensorImpl& self) mutable {
        if (!logits.RequiresGrad()) return;
        RETIA_OBS_TIMED_SCOPE("tensor.softmax_ce_bwd.us");
        std::vector<float> g(m * n);
        const float scale = self.grad[0] / static_cast<float>(m);
        par::ParallelFor(m, par::GrainRows(n), [&](int64_t row0, int64_t row1) {
          const simd::KernelTable& t = simd::Kernels();
          for (int64_t i = row0; i < row1; ++i) {
            t.scale(probs->data() + i * n, scale, g.data() + i * n, n);
            g[i * n + (*tgt)[i]] -= scale;
          }
        });
        logits.impl().AccumulateGrad(g.data(), m * n);
      });
}

}  // namespace retia::tensor
