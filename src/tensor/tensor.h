#ifndef RETIA_TENSOR_TENSOR_H_
#define RETIA_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"

namespace retia::tensor {

class Tensor;

// Reference-counted tensor storage plus the autograd tape hooks.
//
// A Tensor produced by an op records its parents and a backward function;
// Tensor::Backward() topologically sorts the reachable graph and runs the
// backward functions in reverse order, accumulating into each node's `grad`.
struct TensorImpl {
  std::vector<int64_t> shape;
  std::vector<float> data;

  // Autograd state. `grad` is lazily allocated to data.size() on first
  // accumulation. `parents` keeps upstream nodes alive for the backward pass.
  bool requires_grad = false;
  std::vector<float> grad;
  std::vector<Tensor> parents;
  std::function<void(TensorImpl&)> backward_fn;

  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n;
  }

  // Adds `g` (same length as data) into grad, allocating it if needed.
  void AccumulateGrad(const float* g, int64_t n);
  void EnsureGrad();
};

// Value-semantics handle to a shared TensorImpl. Copies are shallow (they
// alias the same storage), mirroring the behaviour of torch.Tensor handles.
class Tensor {
 public:
  // Default-constructed handle is "undefined"; defined() returns false.
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ---- Factories ----------------------------------------------------------
  static Tensor Zeros(std::vector<int64_t> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int64_t> shape, float value,
                     bool requires_grad = false);
  static Tensor FromVector(std::vector<int64_t> shape, std::vector<float> data,
                           bool requires_grad = false);
  // 1x1 scalar tensor.
  static Tensor Scalar(float value, bool requires_grad = false);

  // ---- Introspection ------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  int Rank() const { return static_cast<int>(impl().shape.size()); }
  int64_t Dim(int i) const;
  const std::vector<int64_t>& Shape() const { return impl().shape; }
  int64_t NumElements() const { return impl().NumElements(); }
  std::string ShapeString() const;

  // ---- Data access --------------------------------------------------------
  float* Data() { return impl().data.data(); }
  const float* Data() const { return impl().data.data(); }
  // 2-D element accessors (the dominant case in this library).
  float& At(int64_t i, int64_t j);
  float At(int64_t i, int64_t j) const;
  // Scalar value of a 1-element tensor.
  float Item() const;

  // ---- Autograd -----------------------------------------------------------
  bool RequiresGrad() const { return impl().requires_grad; }
  void SetRequiresGrad(bool value) { impl().requires_grad = value; }
  // Gradient buffer; CHECK-fails if no gradient has been accumulated yet.
  const std::vector<float>& Grad() const;
  std::vector<float>& MutableGrad();
  bool HasGrad() const { return !impl().grad.empty(); }
  void ZeroGrad();

  // Runs reverse-mode accumulation from this tensor. If the tensor is not a
  // scalar, the seed gradient is all-ones.
  void Backward();

  // Deep copy with no autograd history.
  Tensor Detach() const;

  TensorImpl& impl() const {
    RETIA_CHECK_MSG(impl_ != nullptr, "use of undefined Tensor");
    return *impl_;
  }
  const std::shared_ptr<TensorImpl>& ptr() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

// RAII guard disabling autograd recording (used during evaluation so that
// forward passes do not build a tape). Nestable.
//
// THREAD-SAFETY INVARIANT: grad mode is tracked in a thread_local counter,
// so a NoGradGuard only affects the thread that constructed it. Any thread
// running grad-free forward passes concurrently (e.g. the serve workers)
// must install its OWN guard; otherwise ops on that thread record tape
// edges whose `parents` handles alias the shared parameter tensors, and a
// later Backward() would race on their grad buffers. With a per-thread
// guard in place, concurrent forward passes over shared parameters are
// safe: every op allocates a fresh result tensor, never mutates its
// inputs, and the only rng-consuming ops (Dropout, RRelu) are pure
// pass-throughs outside training mode (audited 2026-08; keep it that way).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// True when ops should record autograd edges.
bool GradModeEnabled();

// Internal helper for op implementations: constructs the result tensor and
// wires the tape edge when recording is enabled and any parent needs grad.
Tensor MakeOpResult(std::vector<int64_t> shape, std::vector<float> data,
                    std::vector<Tensor> parents,
                    std::function<void(TensorImpl&)> backward_fn);

}  // namespace retia::tensor

#endif  // RETIA_TENSOR_TENSOR_H_
