#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "simd/simd.h"

namespace retia::tensor {

namespace {
thread_local int g_no_grad_depth = 0;
}  // namespace

void TensorImpl::EnsureGrad() {
  if (grad.empty()) grad.assign(data.size(), 0.0f);
}

void TensorImpl::AccumulateGrad(const float* g, int64_t n) {
  RETIA_CHECK_EQ(static_cast<size_t>(n), data.size());
  EnsureGrad();
  simd::Kernels().accumulate(g, grad.data(), n);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(impl->NumElements(), 0.0f);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value,
                    bool requires_grad) {
  Tensor t = Zeros(std::move(shape), requires_grad);
  std::fill(t.impl().data.begin(), t.impl().data.end(), value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, std::vector<float> data,
                          bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  RETIA_CHECK_EQ(static_cast<int64_t>(impl->data.size()), impl->NumElements());
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({1}, {value}, requires_grad);
}

int64_t Tensor::Dim(int i) const {
  RETIA_CHECK_LT(i, Rank());
  return impl().shape[i];
}

std::string Tensor::ShapeString() const {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < impl().shape.size(); ++i) {
    if (i) oss << ", ";
    oss << impl().shape[i];
  }
  oss << "]";
  return oss.str();
}

float& Tensor::At(int64_t i, int64_t j) {
  RETIA_CHECK_EQ(Rank(), 2);
  RETIA_CHECK_LT(i, Dim(0));
  RETIA_CHECK_LT(j, Dim(1));
  return impl().data[i * Dim(1) + j];
}

float Tensor::At(int64_t i, int64_t j) const {
  return const_cast<Tensor*>(this)->At(i, j);
}

float Tensor::Item() const {
  RETIA_CHECK_EQ(NumElements(), 1);
  return impl().data[0];
}

const std::vector<float>& Tensor::Grad() const {
  RETIA_CHECK_MSG(!impl().grad.empty(), "tensor has no accumulated gradient");
  return impl().grad;
}

std::vector<float>& Tensor::MutableGrad() {
  impl().EnsureGrad();
  return impl().grad;
}

void Tensor::ZeroGrad() {
  std::fill(impl().grad.begin(), impl().grad.end(), 0.0f);
}

void Tensor::Backward() {
  TensorImpl* root = &impl();
  root->EnsureGrad();
  std::fill(root->grad.begin(), root->grad.end(), 1.0f);

  // Iterative post-order DFS to get a topological order of the tape.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent].ptr().get();
      ++frame.next_parent;
      if (parent != nullptr && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  // order is post-order: parents before children; walk in reverse so each
  // node's grad is complete before it propagates to its parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*node);
    }
  }
}

Tensor Tensor::Detach() const {
  auto impl_copy = std::make_shared<TensorImpl>();
  impl_copy->shape = impl().shape;
  impl_copy->data = impl().data;
  impl_copy->requires_grad = false;
  return Tensor(std::move(impl_copy));
}

NoGradGuard::NoGradGuard() : previous_(g_no_grad_depth > 0) {
  ++g_no_grad_depth;
  (void)previous_;
}

NoGradGuard::~NoGradGuard() { --g_no_grad_depth; }

bool GradModeEnabled() { return g_no_grad_depth == 0; }

Tensor MakeOpResult(std::vector<int64_t> shape, std::vector<float> data,
                    std::vector<Tensor> parents,
                    std::function<void(TensorImpl&)> backward_fn) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  RETIA_CHECK_EQ(static_cast<int64_t>(impl->data.size()), impl->NumElements());
  bool needs_grad = false;
  if (GradModeEnabled()) {
    for (const Tensor& p : parents) {
      if (p.defined() && p.RequiresGrad()) {
        needs_grad = true;
        break;
      }
    }
  }
  if (needs_grad) {
    impl->requires_grad = true;
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(impl));
}

}  // namespace retia::tensor
