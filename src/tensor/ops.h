#ifndef RETIA_TENSOR_OPS_H_
#define RETIA_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace retia::tensor {

// All ops are pure functions building autograd tape edges when recording is
// enabled (see NoGradGuard). Shapes are validated with RETIA_CHECK.

// ---- Elementwise arithmetic -----------------------------------------------

// c = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
// c = a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);
// c = a * b elementwise (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);
// c[i,j] = a[i,j] + bias[j]; `a` is 2-D, `bias` is 1-D of length a.Dim(1).
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);
// c = s * a.
Tensor Scale(const Tensor& a, float s);
// c = -a.
Tensor Neg(const Tensor& a);

// ---- Activations -----------------------------------------------------------

Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Cos(const Tensor& a);
Tensor Sin(const Tensor& a);

// Randomized leaky ReLU (the paper's activation, Eq. 1/4). In training mode
// each negative element gets a slope drawn uniformly from [lo, hi]; in eval
// mode the mean slope (lo+hi)/2 is used. `rng` may be null in eval mode.
Tensor RRelu(const Tensor& a, float lo, float hi, bool training,
             util::Rng* rng);

// Inverted dropout with keep-prob (1-p); identity in eval mode.
Tensor Dropout(const Tensor& a, float p, bool training, util::Rng* rng);

// ---- Reductions ------------------------------------------------------------

// Sum of all elements -> scalar tensor.
Tensor Sum(const Tensor& a);
// Mean of all elements -> scalar tensor.
Tensor Mean(const Tensor& a);

// ---- Matrix multiplication --------------------------------------------------

// [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// a:[m,k], b:[n,k] -> a * b^T : [m,n]. The natural layout for scoring a batch
// of queries against an embedding table.
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

// ---- Indexing / structure ----------------------------------------------------

// Rows of `a` selected by `idx` (values in [0, a.Dim(0))) -> [idx.size(), n].
// This is the embedding-lookup / per-edge gather primitive.
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& idx);

// Dense [rows, n] result where result[idx[e]] += src[e] for every e. This is
// the message-passing aggregation primitive (sum over in-edges). Dispatches
// between two deterministic kernels on problem size alone (ScatterAlgo
// below), so the result is bit-identical for every thread count.
Tensor ScatterAddRows(const Tensor& src, const std::vector<int64_t>& idx,
                      int64_t rows);

// Scatter-add kernel selector. kAuto (what ScatterAddRows uses) picks per
// problem size — a pure function of (k, n, rows), never the thread count:
//  - kOwnerComputes: fixed shards own contiguous destination-row ranges and
//    scan the whole index list. Exactly the serial accumulation order, but
//    the duplicated index scan caps its scaling.
//  - kPrivatized: fixed source-row shards accumulate into private
//    destination buffers, merged by a fixed binary tree in shard order.
//    Scales with duplicate-heavy indices; same values up to float addition
//    order (the tree association differs from the serial left fold), still
//    bit-identical across thread counts because shards and tree shape
//    depend on the problem size only.
enum class ScatterAlgo { kAuto, kOwnerComputes, kPrivatized };

// ScatterAddRows with a forced kernel; tests and benches use it to compare
// the two algorithms. The backward pass (a gather) is algorithm-independent.
Tensor ScatterAddRowsWith(ScatterAlgo algo, const Tensor& src,
                          const std::vector<int64_t>& idx, int64_t rows);

// Per-row constant scaling: c[i,:] = s[i] * a[i,:]. `s` carries no gradient
// (used for 1/c_{o,r} degree normalisation, Eq. 1/4).
Tensor ScaleRows(const Tensor& a, const std::vector<float>& s);

// c[i,j] = a[i,j] * s[i,0]; `s` is an [m,1] tensor. Gradients flow to both
// inputs (unlike ScaleRows, whose scales are constants). Used for the basis
// coefficients of the R-GCN basis decomposition.
Tensor MulColBroadcast(const Tensor& a, const Tensor& s);

// Rows [start, start+len) of a 2-D tensor.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t len);

// [m,p] ++ [m,q] -> [m,p+q] along columns.
Tensor ConcatCols(const Tensor& a, const Tensor& b);
// [p,n] ++ [q,n] -> [p+q,n] along rows.
Tensor ConcatRows(const Tensor& a, const Tensor& b);
// Columns [start, start+len) of a 2-D tensor.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t len);
// Same data, new shape (element count must match). Gradient passes through.
Tensor Reshape(const Tensor& a, std::vector<int64_t> shape);

// ---- Softmax and losses -------------------------------------------------------

// Row-wise softmax of a 2-D tensor.
Tensor Softmax(const Tensor& a);
// Row-wise log-softmax (numerically stable).
Tensor LogSoftmax(const Tensor& a);

// Mean over rows of -log(p[i, target[i]] + eps). Consumes *probabilities*
// (possibly a sum of several softmax outputs, Eq. 13/14 of the paper).
Tensor NllFromProbs(const Tensor& p, const std::vector<int64_t>& targets);

// Standard softmax cross-entropy from logits (stable log-sum-exp form).
Tensor CrossEntropyLogits(const Tensor& logits,
                          const std::vector<int64_t>& targets);

// ---- Convolution ----------------------------------------------------------------

// input:[B,Cin,L], weight:[Cout,Cin,K], bias:[Cout] (may be undefined),
// zero padding `pad` on both ends -> [B,Cout,L+2*pad-K+1].
// ConvTransE (Eq. 11/12) uses Cin=2 (stacked subject/relation embeddings).
Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t pad);

// input:[B,Cin,H,W], weight:[Cout,Cin,KH,KW], bias:[Cout] (may be undefined),
// zero padding `pad` -> [B,Cout,H',W']. Used by the ConvE baseline.
Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t pad);

// ---- Pairwise scoring kernels -----------------------------------------------------

// c[i,j] = -sum_k |a[i,k] - b[j,k]|. Translational scoring (TransE/TTransE)
// of a batch of queries against every candidate.
Tensor PairwiseNegL1(const Tensor& a, const Tensor& b);

// RotatE scoring: entities' complex embeddings given as (re, im) halves.
// c[i,j] = gamma - sum_k sqrt((qre[i,k]-ore[j,k])^2 + (qim[i,k]-oim[j,k])^2).
Tensor PairwiseComplexNegDist(const Tensor& qre, const Tensor& qim,
                              const Tensor& ore, const Tensor& oim,
                              float gamma);

// Row-wise layer normalisation (Ba et al. 2016):
//   y[i,:] = gamma * (x[i,:] - mean_i) / sqrt(var_i + eps) + beta.
// `gamma` and `beta` are length-n vectors. The paper's Sec. IV-D2/IV-E
// discusses how mean-pooling interacts with "the layer normalization
// process of complex networks"; this op makes that normalisation available
// to the decoders (ConvTransEDecoder with_layernorm).
Tensor LayerNormRows(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                     float eps = 1e-5f);

// Mean over rows of max(0, min_cos - cos_sim(a[i], b[i])): the static-graph
// angle constraint of RE-GCN (adopted by RETIA for the ICEWS datasets).
// Gradients flow to both `a` (evolving embeddings) and `b` (static
// embeddings).
Tensor CosineHingeLoss(const Tensor& a, const Tensor& b, float min_cos);

}  // namespace retia::tensor

#endif  // RETIA_TENSOR_OPS_H_
