#include "obs/obs.h"
#include "simd/simd.h"
#include "tensor/ops.h"

namespace retia::tensor {

// All four GEMM shapes route through the simd::Gemm* drivers: row-blocked
// register-tiled micro-kernels from the active SIMD backend, sharded over
// par::DefaultPool() with tile-aligned fixed shards. Each shard owns a
// contiguous range of OUTPUT rows and every output element accumulates its
// contributions in a fixed index order, so results are bit-identical for
// every thread count (see simd/simd.h for the backend determinism
// contract). The kernels fully overwrite their row range — the
// std::vector zero fill below is the allocator's only touch of the buffer
// — except the one-hot-like fast path inside GemmNN, which accumulates
// into it.

Tensor MatMul(const Tensor& a, const Tensor& b) {
  RETIA_OBS_TIMED_SCOPE("tensor.gemm.us");
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(b.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(1), b.Dim(0));
  const int64_t m = a.Dim(0);
  const int64_t k = a.Dim(1);
  const int64_t n = b.Dim(1);
  std::vector<float> out(m * n);
  simd::GemmNN(a.Data(), b.Data(), out.data(), m, k, n);
  return MakeOpResult(
      {m, n}, std::move(out), {a, b}, [a, b, m, k, n](TensorImpl& self) mutable {
        // dA = dC * B^T ; dB = A^T * dC.
        RETIA_OBS_TIMED_SCOPE("tensor.gemm_bwd.us");
        if (a.RequiresGrad()) {
          std::vector<float> ga(m * k);
          simd::GemmNT(self.grad.data(), b.Data(), ga.data(), m, n, k);
          a.impl().AccumulateGrad(ga.data(), m * k);
        }
        if (b.RequiresGrad()) {
          std::vector<float> gb(k * n);
          simd::GemmTN(a.Data(), self.grad.data(), gb.data(), m, k, n);
          b.impl().AccumulateGrad(gb.data(), k * n);
        }
      });
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  RETIA_OBS_TIMED_SCOPE("tensor.gemm.us");
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(b.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(1), b.Dim(1));
  const int64_t m = a.Dim(0);
  const int64_t k = a.Dim(1);
  const int64_t n = b.Dim(0);
  std::vector<float> out(m * n);
  simd::GemmNT(a.Data(), b.Data(), out.data(), m, k, n);
  return MakeOpResult(
      {m, n}, std::move(out), {a, b}, [a, b, m, k, n](TensorImpl& self) mutable {
        // C = A B^T: dA = dC * B ; dB = dC^T * A.
        RETIA_OBS_TIMED_SCOPE("tensor.gemm_bwd.us");
        if (a.RequiresGrad()) {
          std::vector<float> ga(m * k);
          simd::GemmNN(self.grad.data(), b.Data(), ga.data(), m, n, k);
          a.impl().AccumulateGrad(ga.data(), m * k);
        }
        if (b.RequiresGrad()) {
          // dB[j,p] = sum_i dC[i,j] A[i,p] == dC^T * A.
          std::vector<float> gb(n * k);
          simd::GemmTN(self.grad.data(), a.Data(), gb.data(), m, n, k);
          b.impl().AccumulateGrad(gb.data(), n * k);
        }
      });
}

}  // namespace retia::tensor
