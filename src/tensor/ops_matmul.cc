#include "obs/obs.h"
#include "par/parallel_for.h"
#include "tensor/ops.h"

namespace retia::tensor {

namespace {

// All three GEMM kernels are row-blocked over par::DefaultPool(): each
// fixed shard owns a contiguous range of OUTPUT rows, so writes are
// disjoint and every output element is accumulated in exactly the order
// the serial loop used — results are bit-identical to the serial kernels
// for every thread count (see par/parallel_for.h).

// out[m,n] += A[m,k] * B[k,n]; plain ikj loop per row block, cache-friendly
// for the small dense matrices this library works with (embedding dims of
// 32-256).
void GemmAccum(const float* a, const float* b, float* out, int64_t m,
               int64_t k, int64_t n) {
  par::ParallelFor(m, par::GrainRows(k * n), [&](int64_t row0, int64_t row1) {
    for (int64_t i = row0; i < row1; ++i) {
      const float* arow = a + i * k;
      float* orow = out + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

// out[m,n] += A[m,k] * B^T where B is [n,k].
void GemmTransposeBAccum(const float* a, const float* b, float* out, int64_t m,
                         int64_t k, int64_t n) {
  par::ParallelFor(m, par::GrainRows(k * n), [&](int64_t row0, int64_t row1) {
    for (int64_t i = row0; i < row1; ++i) {
      const float* arow = a + i * k;
      float* orow = out + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        orow[j] += acc;
      }
    }
  });
}

// out[k,n] += A^T * G where A is [m,k], G is [m,n]. Sharded over the k
// output rows; `i` stays the outer loop inside each shard so every
// out[p,j] accumulates its m contributions in the serial order.
void GemmTransposeAAccum(const float* a, const float* g, float* out, int64_t m,
                         int64_t k, int64_t n) {
  par::ParallelFor(k, par::GrainRows(m * n), [&](int64_t p0, int64_t p1) {
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      const float* grow = g + i * n;
      for (int64_t p = p0; p < p1; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        float* orow = out + p * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * grow[j];
      }
    }
  });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  RETIA_OBS_TIMED_SCOPE("tensor.gemm.us");
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(b.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(1), b.Dim(0));
  const int64_t m = a.Dim(0);
  const int64_t k = a.Dim(1);
  const int64_t n = b.Dim(1);
  std::vector<float> out(m * n, 0.0f);
  GemmAccum(a.Data(), b.Data(), out.data(), m, k, n);
  return MakeOpResult(
      {m, n}, std::move(out), {a, b}, [a, b, m, k, n](TensorImpl& self) mutable {
        // dA = dC * B^T ; dB = A^T * dC.
        RETIA_OBS_TIMED_SCOPE("tensor.gemm_bwd.us");
        if (a.RequiresGrad()) {
          std::vector<float> ga(m * k, 0.0f);
          GemmTransposeBAccum(self.grad.data(), b.Data(), ga.data(), m, n, k);
          a.impl().AccumulateGrad(ga.data(), m * k);
        }
        if (b.RequiresGrad()) {
          std::vector<float> gb(k * n, 0.0f);
          GemmTransposeAAccum(a.Data(), self.grad.data(), gb.data(), m, k, n);
          b.impl().AccumulateGrad(gb.data(), k * n);
        }
      });
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  RETIA_OBS_TIMED_SCOPE("tensor.gemm.us");
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(b.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(1), b.Dim(1));
  const int64_t m = a.Dim(0);
  const int64_t k = a.Dim(1);
  const int64_t n = b.Dim(0);
  std::vector<float> out(m * n, 0.0f);
  GemmTransposeBAccum(a.Data(), b.Data(), out.data(), m, k, n);
  return MakeOpResult(
      {m, n}, std::move(out), {a, b}, [a, b, m, k, n](TensorImpl& self) mutable {
        // C = A B^T: dA = dC * B ; dB = dC^T * A.
        RETIA_OBS_TIMED_SCOPE("tensor.gemm_bwd.us");
        if (a.RequiresGrad()) {
          std::vector<float> ga(m * k, 0.0f);
          GemmAccum(self.grad.data(), b.Data(), ga.data(), m, n, k);
          a.impl().AccumulateGrad(ga.data(), m * k);
        }
        if (b.RequiresGrad()) {
          // dB[j,p] = sum_i dC[i,j] A[i,p]  == (dC^T A). Sharded over the
          // n rows of dB; `i` stays outer per shard for serial-order sums.
          std::vector<float> gb(n * k, 0.0f);
          const float* g = self.grad.data();
          const float* pa = a.Data();
          par::ParallelFor(
              n, par::GrainRows(m * k), [&](int64_t j0, int64_t j1) {
                for (int64_t i = 0; i < m; ++i) {
                  const float* grow = g + i * n;
                  const float* arow = pa + i * k;
                  for (int64_t j = j0; j < j1; ++j) {
                    const float gv = grow[j];
                    if (gv == 0.0f) continue;
                    float* brow = gb.data() + j * k;
                    for (int64_t p = 0; p < k; ++p) brow[p] += gv * arow[p];
                  }
                }
              });
          b.impl().AccumulateGrad(gb.data(), n * k);
        }
      });
}

}  // namespace retia::tensor
