#include <cmath>

#include "tensor/ops.h"

namespace retia::tensor {

Tensor PairwiseNegL1(const Tensor& a, const Tensor& b) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(b.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(1), b.Dim(1));
  const int64_t m = a.Dim(0);
  const int64_t n = b.Dim(0);
  const int64_t d = a.Dim(1);
  std::vector<float> out(m * n, 0.0f);
  const float* pa = a.Data();
  const float* pb = b.Data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * d;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * d;
      float acc = 0.0f;
      for (int64_t k = 0; k < d; ++k) acc += std::fabs(arow[k] - brow[k]);
      out[i * n + j] = -acc;
    }
  }
  return MakeOpResult(
      {m, n}, std::move(out), {a, b}, [a, b, m, n, d](TensorImpl& self) mutable {
        const float* pa = a.Data();
        const float* pb = b.Data();
        const float* g = self.grad.data();
        std::vector<float> ga, gb;
        if (a.RequiresGrad()) ga.assign(m * d, 0.0f);
        if (b.RequiresGrad()) gb.assign(n * d, 0.0f);
        for (int64_t i = 0; i < m; ++i) {
          const float* arow = pa + i * d;
          for (int64_t j = 0; j < n; ++j) {
            const float gv = g[i * n + j];
            if (gv == 0.0f) continue;
            const float* brow = pb + j * d;
            for (int64_t k = 0; k < d; ++k) {
              // d(-|x|)/dx = -sign(x); sign(0) treated as 0.
              const float diff = arow[k] - brow[k];
              const float s = diff > 0.0f ? 1.0f : (diff < 0.0f ? -1.0f : 0.0f);
              if (!ga.empty()) ga[i * d + k] -= gv * s;
              if (!gb.empty()) gb[j * d + k] += gv * s;
            }
          }
        }
        if (!ga.empty()) a.impl().AccumulateGrad(ga.data(), m * d);
        if (!gb.empty()) b.impl().AccumulateGrad(gb.data(), n * d);
      });
}

Tensor PairwiseComplexNegDist(const Tensor& qre, const Tensor& qim,
                              const Tensor& ore, const Tensor& oim,
                              float gamma) {
  RETIA_CHECK_EQ(qre.Rank(), 2);
  RETIA_CHECK(qre.Shape() == qim.Shape());
  RETIA_CHECK(ore.Shape() == oim.Shape());
  RETIA_CHECK_EQ(qre.Dim(1), ore.Dim(1));
  const int64_t m = qre.Dim(0);
  const int64_t n = ore.Dim(0);
  const int64_t d = qre.Dim(1);
  constexpr float kEps = 1e-9f;
  std::vector<float> out(m * n);
  const float* pqr = qre.Data();
  const float* pqi = qim.Data();
  const float* por = ore.Data();
  const float* poi = oim.Data();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < d; ++k) {
        const float dre = pqr[i * d + k] - por[j * d + k];
        const float dim = pqi[i * d + k] - poi[j * d + k];
        acc += std::sqrt(dre * dre + dim * dim + kEps);
      }
      out[i * n + j] = gamma - acc;
    }
  return MakeOpResult(
      {m, n}, std::move(out), {qre, qim, ore, oim},
      [qre, qim, ore, oim, m, n, d](TensorImpl& self) mutable {
        const float* pqr = qre.Data();
        const float* pqi = qim.Data();
        const float* por = ore.Data();
        const float* poi = oim.Data();
        const float* g = self.grad.data();
        constexpr float kEps = 1e-9f;
        std::vector<float> gqr, gqi, gor, goi;
        if (qre.RequiresGrad()) gqr.assign(m * d, 0.0f);
        if (qim.RequiresGrad()) gqi.assign(m * d, 0.0f);
        if (ore.RequiresGrad()) gor.assign(n * d, 0.0f);
        if (oim.RequiresGrad()) goi.assign(n * d, 0.0f);
        for (int64_t i = 0; i < m; ++i)
          for (int64_t j = 0; j < n; ++j) {
            const float gv = g[i * n + j];
            if (gv == 0.0f) continue;
            for (int64_t k = 0; k < d; ++k) {
              const float dre = pqr[i * d + k] - por[j * d + k];
              const float dim = pqi[i * d + k] - poi[j * d + k];
              const float dist = std::sqrt(dre * dre + dim * dim + kEps);
              // out = gamma - sum dist => d out / d dre = -dre/dist.
              const float cre = -gv * dre / dist;
              const float cim = -gv * dim / dist;
              if (!gqr.empty()) gqr[i * d + k] += cre;
              if (!gqi.empty()) gqi[i * d + k] += cim;
              if (!gor.empty()) gor[j * d + k] -= cre;
              if (!goi.empty()) goi[j * d + k] -= cim;
            }
          }
        if (!gqr.empty()) qre.impl().AccumulateGrad(gqr.data(), m * d);
        if (!gqi.empty()) qim.impl().AccumulateGrad(gqi.data(), m * d);
        if (!gor.empty()) ore.impl().AccumulateGrad(gor.data(), n * d);
        if (!goi.empty()) oim.impl().AccumulateGrad(goi.data(), n * d);
      });
}

}  // namespace retia::tensor

namespace retia::tensor {

Tensor CosineHingeLoss(const Tensor& a, const Tensor& b, float min_cos) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK(a.Shape() == b.Shape());
  const int64_t m = a.Dim(0);
  const int64_t d = a.Dim(1);
  constexpr float kEps = 1e-8f;
  const float* pa = a.Data();
  const float* pb = b.Data();
  // Cache per-row cosine terms for the backward pass.
  auto dots = std::make_shared<std::vector<float>>(m);
  auto na = std::make_shared<std::vector<float>>(m);
  auto nb = std::make_shared<std::vector<float>>(m);
  double loss = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    double dot = 0.0, aa = 0.0, bb = 0.0;
    for (int64_t k = 0; k < d; ++k) {
      dot += static_cast<double>(pa[i * d + k]) * pb[i * d + k];
      aa += static_cast<double>(pa[i * d + k]) * pa[i * d + k];
      bb += static_cast<double>(pb[i * d + k]) * pb[i * d + k];
    }
    (*dots)[i] = static_cast<float>(dot);
    (*na)[i] = static_cast<float>(std::sqrt(aa)) + kEps;
    (*nb)[i] = static_cast<float>(std::sqrt(bb)) + kEps;
    const float cos = (*dots)[i] / ((*na)[i] * (*nb)[i]);
    loss += std::max(0.0f, min_cos - cos);
  }
  loss /= static_cast<double>(m);
  return MakeOpResult(
      {1}, {static_cast<float>(loss)}, {a, b},
      [a, b, dots, na, nb, min_cos, m, d](TensorImpl& self) mutable {
        const float scale = self.grad[0] / static_cast<float>(m);
        const float* pa = a.Data();
        const float* pb = b.Data();
        std::vector<float> ga, gb;
        if (a.RequiresGrad()) ga.assign(m * d, 0.0f);
        if (b.RequiresGrad()) gb.assign(m * d, 0.0f);
        for (int64_t i = 0; i < m; ++i) {
          const float denom = (*na)[i] * (*nb)[i];
          const float cos = (*dots)[i] / denom;
          if (min_cos - cos <= 0.0f) continue;  // hinge inactive
          // d(-cos)/da_k = -(b_k/denom - a_k * cos / na^2)
          for (int64_t k = 0; k < d; ++k) {
            if (!ga.empty()) {
              ga[i * d + k] += scale * -(pb[i * d + k] / denom -
                                         pa[i * d + k] * cos /
                                             ((*na)[i] * (*na)[i]));
            }
            if (!gb.empty()) {
              gb[i * d + k] += scale * -(pa[i * d + k] / denom -
                                         pb[i * d + k] * cos /
                                             ((*nb)[i] * (*nb)[i]));
            }
          }
        }
        if (!ga.empty()) a.impl().AccumulateGrad(ga.data(), m * d);
        if (!gb.empty()) b.impl().AccumulateGrad(gb.data(), m * d);
      });
}

}  // namespace retia::tensor
