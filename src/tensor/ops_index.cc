#include <algorithm>
#include <cstring>
#include <memory>

#include "obs/obs.h"
#include "par/parallel_for.h"
#include "simd/simd.h"
#include "tensor/ops.h"

namespace retia::tensor {

namespace {

// Scatter-add of `k` source rows into `rows` destination rows ("owner
// computes"): each fixed shard owns a contiguous destination-row range and
// scans the whole index list, accumulating only the rows it owns. Writes
// are disjoint across shards and every destination row receives its
// contributions in index order — exactly the serial accumulation, so the
// result is bit-identical for every thread count. The duplicate-index
// case (several sources hitting one destination, the message-passing
// aggregation pattern) is therefore race-free by construction.
void ScatterAddRowsKernel(const float* src, const int64_t* idx, int64_t k,
                          int64_t n, int64_t rows, float* out) {
  const int64_t shards =
      std::min(par::NumShards(k * n, par::kTargetShardWork), rows);
  par::ParallelShards(shards, [&](int64_t shard) {
    const par::Range owned = par::ShardRange(rows, shards, shard);
    for (int64_t e = 0; e < k; ++e) {
      const int64_t d = idx[e];
      if (d < owned.begin || d >= owned.end) continue;
      simd::Kernels().accumulate(src + e * n, out + d * n, n);
    }
  });
}

}  // namespace

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& idx) {
  RETIA_OBS_TIMED_SCOPE("tensor.gather.us");
  RETIA_CHECK_EQ(a.Rank(), 2);
  const int64_t n = a.Dim(1);
  const int64_t rows = a.Dim(0);
  const int64_t k = static_cast<int64_t>(idx.size());
  std::vector<float> out(k * n);
  const float* pa = a.Data();
  for (int64_t e = 0; e < k; ++e) {
    RETIA_CHECK_LT(idx[e], rows);
    RETIA_CHECK_LE(0, idx[e]);
  }
  par::ParallelFor(k, par::GrainRows(n), [&](int64_t e0, int64_t e1) {
    for (int64_t e = e0; e < e1; ++e) {
      std::memcpy(out.data() + e * n, pa + idx[e] * n, n * sizeof(float));
    }
  });
  auto idx_copy = std::make_shared<std::vector<int64_t>>(idx);
  return MakeOpResult({k, n}, std::move(out), {a},
                      [a, idx_copy, rows, n, k](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        // Adjoint of a gather is a (duplicate-index)
                        // scatter-add of the output grads.
                        std::vector<float> ga(rows * n, 0.0f);
                        ScatterAddRowsKernel(self.grad.data(),
                                             idx_copy->data(), k, n, rows,
                                             ga.data());
                        a.impl().AccumulateGrad(ga.data(), rows * n);
                      });
}

Tensor ScatterAddRows(const Tensor& src, const std::vector<int64_t>& idx,
                      int64_t rows) {
  RETIA_OBS_TIMED_SCOPE("tensor.scatter_add.us");
  RETIA_CHECK_EQ(src.Rank(), 2);
  RETIA_CHECK_EQ(src.Dim(0), static_cast<int64_t>(idx.size()));
  const int64_t k = src.Dim(0);
  const int64_t n = src.Dim(1);
  std::vector<float> out(rows * n, 0.0f);
  for (int64_t e = 0; e < k; ++e) {
    RETIA_CHECK_LT(idx[e], rows);
    RETIA_CHECK_LE(0, idx[e]);
  }
  ScatterAddRowsKernel(src.Data(), idx.data(), k, n, rows, out.data());
  auto idx_copy = std::make_shared<std::vector<int64_t>>(idx);
  return MakeOpResult({rows, n}, std::move(out), {src},
                      [src, idx_copy, n, k](TensorImpl& self) mutable {
                        if (!src.RequiresGrad()) return;
                        // Adjoint is a gather: disjoint per source row.
                        std::vector<float> gs(k * n);
                        par::ParallelFor(
                            k, par::GrainRows(n), [&](int64_t e0, int64_t e1) {
                              for (int64_t e = e0; e < e1; ++e) {
                                const float* g =
                                    self.grad.data() + (*idx_copy)[e] * n;
                                std::memcpy(gs.data() + e * n, g,
                                            n * sizeof(float));
                              }
                            });
                        src.impl().AccumulateGrad(gs.data(), k * n);
                      });
}

Tensor ScaleRows(const Tensor& a, const std::vector<float>& s) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(0), static_cast<int64_t>(s.size()));
  const int64_t m = a.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out(m * n);
  const float* pa = a.Data();
  for (int64_t i = 0; i < m; ++i)
    simd::Kernels().scale(pa + i * n, s[i], out.data() + i * n, n);
  auto s_copy = std::make_shared<std::vector<float>>(s);
  return MakeOpResult({m, n}, std::move(out), {a},
                      [a, s_copy, m, n](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        std::vector<float> g(m * n);
                        for (int64_t i = 0; i < m; ++i)
                          simd::Kernels().scale(self.grad.data() + i * n,
                                                (*s_copy)[i],
                                                g.data() + i * n, n);
                        a.impl().AccumulateGrad(g.data(), m * n);
                      });
}

Tensor MulColBroadcast(const Tensor& a, const Tensor& s) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(s.Rank(), 2);
  RETIA_CHECK_EQ(s.Dim(1), 1);
  RETIA_CHECK_EQ(a.Dim(0), s.Dim(0));
  const int64_t m = a.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out(m * n);
  const float* pa = a.Data();
  const float* ps = s.Data();
  for (int64_t i = 0; i < m; ++i)
    simd::Kernels().scale(pa + i * n, ps[i], out.data() + i * n, n);
  return MakeOpResult(
      a.Shape(), std::move(out), {a, s},
      [a, s, m, n](TensorImpl& self) mutable {
        if (a.RequiresGrad()) {
          std::vector<float> ga(m * n);
          const float* ps = s.Data();
          for (int64_t i = 0; i < m; ++i)
            simd::Kernels().scale(self.grad.data() + i * n, ps[i],
                                  ga.data() + i * n, n);
          a.impl().AccumulateGrad(ga.data(), m * n);
        }
        if (s.RequiresGrad()) {
          std::vector<float> gs(m, 0.0f);
          const float* pa = a.Data();
          for (int64_t i = 0; i < m; ++i)
            for (int64_t j = 0; j < n; ++j)
              gs[i] += self.grad[i * n + j] * pa[i * n + j];
          s.impl().AccumulateGrad(gs.data(), m);
        }
      });
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_LE(start + len, a.Dim(0));
  RETIA_CHECK_LE(0, start);
  const int64_t n = a.Dim(1);
  std::vector<float> out(len * n);
  std::memcpy(out.data(), a.Data() + start * n, len * n * sizeof(float));
  return MakeOpResult({len, n}, std::move(out), {a},
                      [a, start, len, n](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        const int64_t rows = a.Dim(0);
                        std::vector<float> ga(rows * n, 0.0f);
                        std::memcpy(ga.data() + start * n, self.grad.data(),
                                    len * n * sizeof(float));
                        a.impl().AccumulateGrad(ga.data(), rows * n);
                      });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(b.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(0), b.Dim(0));
  const int64_t m = a.Dim(0);
  const int64_t p = a.Dim(1);
  const int64_t q = b.Dim(1);
  std::vector<float> out(m * (p + q));
  const float* pa = a.Data();
  const float* pb = b.Data();
  for (int64_t i = 0; i < m; ++i) {
    std::memcpy(out.data() + i * (p + q), pa + i * p, p * sizeof(float));
    std::memcpy(out.data() + i * (p + q) + p, pb + i * q, q * sizeof(float));
  }
  return MakeOpResult(
      {m, p + q}, std::move(out), {a, b},
      [a, b, m, p, q](TensorImpl& self) mutable {
        if (a.RequiresGrad()) {
          std::vector<float> ga(m * p);
          for (int64_t i = 0; i < m; ++i)
            std::memcpy(ga.data() + i * p, self.grad.data() + i * (p + q),
                        p * sizeof(float));
          a.impl().AccumulateGrad(ga.data(), m * p);
        }
        if (b.RequiresGrad()) {
          std::vector<float> gb(m * q);
          for (int64_t i = 0; i < m; ++i)
            std::memcpy(gb.data() + i * q, self.grad.data() + i * (p + q) + p,
                        q * sizeof(float));
          b.impl().AccumulateGrad(gb.data(), m * q);
        }
      });
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(b.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(1), b.Dim(1));
  const int64_t p = a.Dim(0);
  const int64_t q = b.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out((p + q) * n);
  std::memcpy(out.data(), a.Data(), p * n * sizeof(float));
  std::memcpy(out.data() + p * n, b.Data(), q * n * sizeof(float));
  return MakeOpResult(
      {p + q, n}, std::move(out), {a, b},
      [a, b, p, q, n](TensorImpl& self) mutable {
        if (a.RequiresGrad()) a.impl().AccumulateGrad(self.grad.data(), p * n);
        if (b.RequiresGrad())
          b.impl().AccumulateGrad(self.grad.data() + p * n, q * n);
      });
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_LE(start + len, a.Dim(1));
  RETIA_CHECK_LE(0, start);
  const int64_t m = a.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out(m * len);
  const float* pa = a.Data();
  for (int64_t i = 0; i < m; ++i)
    std::memcpy(out.data() + i * len, pa + i * n + start, len * sizeof(float));
  return MakeOpResult({m, len}, std::move(out), {a},
                      [a, start, len, m, n](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        std::vector<float> ga(m * n, 0.0f);
                        for (int64_t i = 0; i < m; ++i) {
                          const float* g = self.grad.data() + i * len;
                          float* dst = ga.data() + i * n + start;
                          for (int64_t j = 0; j < len; ++j) dst[j] += g[j];
                        }
                        a.impl().AccumulateGrad(ga.data(), m * n);
                      });
}

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  RETIA_CHECK_EQ(n, a.NumElements());
  std::vector<float> out(a.Data(), a.Data() + n);
  return MakeOpResult(std::move(shape), std::move(out), {a},
                      [a](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        a.impl().AccumulateGrad(self.grad.data(),
                                                self.NumElements());
                      });
}

}  // namespace retia::tensor
