#include <algorithm>
#include <cstring>
#include <memory>

#include "obs/obs.h"
#include "par/parallel_for.h"
#include "simd/simd.h"
#include "tensor/ops.h"

namespace retia::tensor {

namespace {

// Scatter-add of `k` source rows into `rows` destination rows ("owner
// computes"): each fixed shard owns a contiguous destination-row range and
// scans the whole index list, accumulating only the rows it owns. Writes
// are disjoint across shards and every destination row receives its
// contributions in index order — exactly the serial accumulation, so the
// result is bit-identical for every thread count. The duplicate-index
// case (several sources hitting one destination, the message-passing
// aggregation pattern) is therefore race-free by construction.
void ScatterAddRowsOwnerComputes(const float* src, const int64_t* idx,
                                 int64_t k, int64_t n, int64_t rows,
                                 float* out) {
  const int64_t shards =
      std::min(par::NumShards(k * n, par::kTargetShardWork), rows);
  par::ParallelShards(shards, [&](int64_t shard) {
    const par::Range owned = par::ShardRange(rows, shards, shard);
    for (int64_t e = 0; e < k; ++e) {
      const int64_t d = idx[e];
      if (d < owned.begin || d >= owned.end) continue;
      simd::Kernels().accumulate(src + e * n, out + d * n, n);
    }
  });
}

// Privatization cap: one private buffer per shard, so shards are bounded
// both by memory (kMaxScatterPrivateElems per buffer) and by merge cost.
constexpr int64_t kMaxScatterPrivateShards = 16;
constexpr int64_t kMaxScatterPrivateElems = int64_t{1} << 18;

// Shard count the privatized kernel uses — a pure function of the problem
// size (k, n, rows); 1 means "use owner-computes". Privatization pays when
// the index list is duplicate-heavy (k >> rows): owner-computes then
// re-scans the k indices once per shard while every shard only owns a
// sliver of the accumulate work, which is why its thread sweep is flat.
int64_t PrivatizedScatterShards(int64_t k, int64_t n, int64_t rows) {
  const int64_t shards = std::min(
      par::NumShards(k * n, par::kTargetShardWork), kMaxScatterPrivateShards);
  if (shards <= 1) return 1;
  if (rows * n > kMaxScatterPrivateElems) return 1;  // buffers too large
  if (k < 4 * rows) return 1;  // sparse: the zero+merge overhead dominates
  return shards;
}

// Privatized scatter-add: fixed shards of the SOURCE rows accumulate their
// contributions (in index order) into private zeroed [rows, n] buffers,
// then a fixed binary tree merges the buffers pairwise in shard order and
// the root is added into `out`. Shard boundaries, the tree shape, and
// every accumulation order are functions of (k, n, rows) alone, so the
// result is bit-identical for every thread count — but NOT bit-identical
// to owner-computes: float addition is not associative, and the tree
// association differs from the serial left fold (documented numerics
// change; tensor_property_test pins the two kernels together within
// accumulation tolerance).
void ScatterAddRowsPrivatized(const float* src, const int64_t* idx, int64_t k,
                              int64_t n, int64_t rows, int64_t shards,
                              float* out) {
  const int64_t buf_elems = rows * n;
  if (shards <= 1) {
    // One shard degenerates to the serial index-order accumulation.
    for (int64_t e = 0; e < k; ++e) {
      simd::Kernels().accumulate(src + e * n, out + idx[e] * n, n);
    }
    return;
  }
  std::unique_ptr<float[]> bufs(new float[shards * buf_elems]);
  par::ParallelShards(shards, [&](int64_t shard) {
    float* buf = bufs.get() + shard * buf_elems;
    std::fill(buf, buf + buf_elems, 0.0f);
    const par::Range r = par::ShardRange(k, shards, shard);
    for (int64_t e = r.begin; e < r.end; ++e) {
      simd::Kernels().accumulate(src + e * n, buf + idx[e] * n, n);
    }
  });
  for (int64_t stride = 1; stride < shards; stride *= 2) {
    // Level merge: buf[i] += buf[i + stride] for i = 0, 2*stride, ... —
    // disjoint pairs, so the level parallelizes; the pairing is fixed.
    const int64_t pairs = (shards - stride + 2 * stride - 1) / (2 * stride);
    par::ParallelShards(pairs, [&](int64_t p) {
      const int64_t i = p * 2 * stride;
      simd::Kernels().accumulate(bufs.get() + (i + stride) * buf_elems,
                                 bufs.get() + i * buf_elems, buf_elems);
    });
  }
  simd::Kernels().accumulate(bufs.get(), out, buf_elems);
}

void ScatterAddRowsKernel(ScatterAlgo algo, const float* src,
                          const int64_t* idx, int64_t k, int64_t n,
                          int64_t rows, float* out) {
  switch (algo) {
    case ScatterAlgo::kOwnerComputes:
      ScatterAddRowsOwnerComputes(src, idx, k, n, rows, out);
      return;
    case ScatterAlgo::kPrivatized:
      ScatterAddRowsPrivatized(
          src, idx, k, n, rows,
          std::min(par::NumShards(k * n, par::kTargetShardWork),
                   kMaxScatterPrivateShards),
          out);
      return;
    case ScatterAlgo::kAuto: {
      const int64_t shards = PrivatizedScatterShards(k, n, rows);
      if (shards > 1) {
        ScatterAddRowsPrivatized(src, idx, k, n, rows, shards, out);
      } else {
        ScatterAddRowsOwnerComputes(src, idx, k, n, rows, out);
      }
      return;
    }
  }
}

}  // namespace

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& idx) {
  RETIA_OBS_TIMED_SCOPE("tensor.gather.us");
  RETIA_CHECK_EQ(a.Rank(), 2);
  const int64_t n = a.Dim(1);
  const int64_t rows = a.Dim(0);
  const int64_t k = static_cast<int64_t>(idx.size());
  std::vector<float> out(k * n);
  const float* pa = a.Data();
  for (int64_t e = 0; e < k; ++e) {
    RETIA_CHECK_LT(idx[e], rows);
    RETIA_CHECK_LE(0, idx[e]);
  }
  par::ParallelFor(k, par::GrainRows(n), [&](int64_t e0, int64_t e1) {
    for (int64_t e = e0; e < e1; ++e) {
      std::memcpy(out.data() + e * n, pa + idx[e] * n, n * sizeof(float));
    }
  });
  auto idx_copy = std::make_shared<std::vector<int64_t>>(idx);
  return MakeOpResult({k, n}, std::move(out), {a},
                      [a, idx_copy, rows, n, k](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        // Adjoint of a gather is a (duplicate-index)
                        // scatter-add of the output grads.
                        std::vector<float> ga(rows * n, 0.0f);
                        ScatterAddRowsKernel(ScatterAlgo::kAuto,
                                             self.grad.data(),
                                             idx_copy->data(), k, n, rows,
                                             ga.data());
                        a.impl().AccumulateGrad(ga.data(), rows * n);
                      });
}

Tensor ScatterAddRowsWith(ScatterAlgo algo, const Tensor& src,
                          const std::vector<int64_t>& idx, int64_t rows) {
  RETIA_OBS_TIMED_SCOPE("tensor.scatter_add.us");
  RETIA_CHECK_EQ(src.Rank(), 2);
  RETIA_CHECK_EQ(src.Dim(0), static_cast<int64_t>(idx.size()));
  const int64_t k = src.Dim(0);
  const int64_t n = src.Dim(1);
  std::vector<float> out(rows * n, 0.0f);
  for (int64_t e = 0; e < k; ++e) {
    RETIA_CHECK_LT(idx[e], rows);
    RETIA_CHECK_LE(0, idx[e]);
  }
  ScatterAddRowsKernel(algo, src.Data(), idx.data(), k, n, rows, out.data());
  auto idx_copy = std::make_shared<std::vector<int64_t>>(idx);
  return MakeOpResult({rows, n}, std::move(out), {src},
                      [src, idx_copy, n, k](TensorImpl& self) mutable {
                        if (!src.RequiresGrad()) return;
                        // Adjoint is a gather: disjoint per source row.
                        std::vector<float> gs(k * n);
                        par::ParallelFor(
                            k, par::GrainRows(n), [&](int64_t e0, int64_t e1) {
                              for (int64_t e = e0; e < e1; ++e) {
                                const float* g =
                                    self.grad.data() + (*idx_copy)[e] * n;
                                std::memcpy(gs.data() + e * n, g,
                                            n * sizeof(float));
                              }
                            });
                        src.impl().AccumulateGrad(gs.data(), k * n);
                      });
}

Tensor ScatterAddRows(const Tensor& src, const std::vector<int64_t>& idx,
                      int64_t rows) {
  return ScatterAddRowsWith(ScatterAlgo::kAuto, src, idx, rows);
}

Tensor ScaleRows(const Tensor& a, const std::vector<float>& s) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(0), static_cast<int64_t>(s.size()));
  const int64_t m = a.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out(m * n);
  const float* pa = a.Data();
  for (int64_t i = 0; i < m; ++i)
    simd::Kernels().scale(pa + i * n, s[i], out.data() + i * n, n);
  auto s_copy = std::make_shared<std::vector<float>>(s);
  return MakeOpResult({m, n}, std::move(out), {a},
                      [a, s_copy, m, n](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        std::vector<float> g(m * n);
                        for (int64_t i = 0; i < m; ++i)
                          simd::Kernels().scale(self.grad.data() + i * n,
                                                (*s_copy)[i],
                                                g.data() + i * n, n);
                        a.impl().AccumulateGrad(g.data(), m * n);
                      });
}

Tensor MulColBroadcast(const Tensor& a, const Tensor& s) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(s.Rank(), 2);
  RETIA_CHECK_EQ(s.Dim(1), 1);
  RETIA_CHECK_EQ(a.Dim(0), s.Dim(0));
  const int64_t m = a.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out(m * n);
  const float* pa = a.Data();
  const float* ps = s.Data();
  for (int64_t i = 0; i < m; ++i)
    simd::Kernels().scale(pa + i * n, ps[i], out.data() + i * n, n);
  return MakeOpResult(
      a.Shape(), std::move(out), {a, s},
      [a, s, m, n](TensorImpl& self) mutable {
        if (a.RequiresGrad()) {
          std::vector<float> ga(m * n);
          const float* ps = s.Data();
          for (int64_t i = 0; i < m; ++i)
            simd::Kernels().scale(self.grad.data() + i * n, ps[i],
                                  ga.data() + i * n, n);
          a.impl().AccumulateGrad(ga.data(), m * n);
        }
        if (s.RequiresGrad()) {
          std::vector<float> gs(m, 0.0f);
          const float* pa = a.Data();
          for (int64_t i = 0; i < m; ++i)
            for (int64_t j = 0; j < n; ++j)
              gs[i] += self.grad[i * n + j] * pa[i * n + j];
          s.impl().AccumulateGrad(gs.data(), m);
        }
      });
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_LE(start + len, a.Dim(0));
  RETIA_CHECK_LE(0, start);
  const int64_t n = a.Dim(1);
  std::vector<float> out(len * n);
  std::memcpy(out.data(), a.Data() + start * n, len * n * sizeof(float));
  return MakeOpResult({len, n}, std::move(out), {a},
                      [a, start, len, n](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        const int64_t rows = a.Dim(0);
                        std::vector<float> ga(rows * n, 0.0f);
                        std::memcpy(ga.data() + start * n, self.grad.data(),
                                    len * n * sizeof(float));
                        a.impl().AccumulateGrad(ga.data(), rows * n);
                      });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(b.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(0), b.Dim(0));
  const int64_t m = a.Dim(0);
  const int64_t p = a.Dim(1);
  const int64_t q = b.Dim(1);
  std::vector<float> out(m * (p + q));
  const float* pa = a.Data();
  const float* pb = b.Data();
  for (int64_t i = 0; i < m; ++i) {
    std::memcpy(out.data() + i * (p + q), pa + i * p, p * sizeof(float));
    std::memcpy(out.data() + i * (p + q) + p, pb + i * q, q * sizeof(float));
  }
  return MakeOpResult(
      {m, p + q}, std::move(out), {a, b},
      [a, b, m, p, q](TensorImpl& self) mutable {
        if (a.RequiresGrad()) {
          std::vector<float> ga(m * p);
          for (int64_t i = 0; i < m; ++i)
            std::memcpy(ga.data() + i * p, self.grad.data() + i * (p + q),
                        p * sizeof(float));
          a.impl().AccumulateGrad(ga.data(), m * p);
        }
        if (b.RequiresGrad()) {
          std::vector<float> gb(m * q);
          for (int64_t i = 0; i < m; ++i)
            std::memcpy(gb.data() + i * q, self.grad.data() + i * (p + q) + p,
                        q * sizeof(float));
          b.impl().AccumulateGrad(gb.data(), m * q);
        }
      });
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(b.Rank(), 2);
  RETIA_CHECK_EQ(a.Dim(1), b.Dim(1));
  const int64_t p = a.Dim(0);
  const int64_t q = b.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out((p + q) * n);
  std::memcpy(out.data(), a.Data(), p * n * sizeof(float));
  std::memcpy(out.data() + p * n, b.Data(), q * n * sizeof(float));
  return MakeOpResult(
      {p + q, n}, std::move(out), {a, b},
      [a, b, p, q, n](TensorImpl& self) mutable {
        if (a.RequiresGrad()) a.impl().AccumulateGrad(self.grad.data(), p * n);
        if (b.RequiresGrad())
          b.impl().AccumulateGrad(self.grad.data() + p * n, q * n);
      });
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_LE(start + len, a.Dim(1));
  RETIA_CHECK_LE(0, start);
  const int64_t m = a.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out(m * len);
  const float* pa = a.Data();
  for (int64_t i = 0; i < m; ++i)
    std::memcpy(out.data() + i * len, pa + i * n + start, len * sizeof(float));
  return MakeOpResult({m, len}, std::move(out), {a},
                      [a, start, len, m, n](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        std::vector<float> ga(m * n, 0.0f);
                        for (int64_t i = 0; i < m; ++i) {
                          const float* g = self.grad.data() + i * len;
                          float* dst = ga.data() + i * n + start;
                          for (int64_t j = 0; j < len; ++j) dst[j] += g[j];
                        }
                        a.impl().AccumulateGrad(ga.data(), m * n);
                      });
}

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  RETIA_CHECK_EQ(n, a.NumElements());
  std::vector<float> out(a.Data(), a.Data() + n);
  return MakeOpResult(std::move(shape), std::move(out), {a},
                      [a](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        a.impl().AccumulateGrad(self.grad.data(),
                                                self.NumElements());
                      });
}

}  // namespace retia::tensor
