#include <cmath>
#include <memory>

#include "tensor/ops.h"

namespace retia::tensor {

Tensor LayerNormRows(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                     float eps) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(gamma.Rank(), 1);
  RETIA_CHECK_EQ(beta.Rank(), 1);
  const int64_t m = a.Dim(0);
  const int64_t n = a.Dim(1);
  RETIA_CHECK_EQ(gamma.Dim(0), n);
  RETIA_CHECK_EQ(beta.Dim(0), n);
  const float* pa = a.Data();
  const float* pg = gamma.Data();
  const float* pb = beta.Data();
  std::vector<float> out(m * n);
  // Cache the normalised activations and inverse stddevs for backward.
  auto xhat = std::make_shared<std::vector<float>>(m * n);
  auto inv_std = std::make_shared<std::vector<float>>(m);
  for (int64_t i = 0; i < m; ++i) {
    double mean = 0.0;
    for (int64_t j = 0; j < n; ++j) mean += pa[i * n + j];
    mean /= n;
    double var = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      const double d = pa[i * n + j] - mean;
      var += d * d;
    }
    var /= n;
    const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    (*inv_std)[i] = is;
    for (int64_t j = 0; j < n; ++j) {
      const float xh = (pa[i * n + j] - static_cast<float>(mean)) * is;
      (*xhat)[i * n + j] = xh;
      out[i * n + j] = pg[j] * xh + pb[j];
    }
  }
  return MakeOpResult(
      a.Shape(), std::move(out), {a, gamma, beta},
      [a, gamma, beta, xhat, inv_std, m, n](TensorImpl& self) mutable {
        const float* g = self.grad.data();
        const float* pg = gamma.Data();
        if (gamma.RequiresGrad()) {
          std::vector<float> gg(n, 0.0f);
          for (int64_t i = 0; i < m; ++i)
            for (int64_t j = 0; j < n; ++j)
              gg[j] += g[i * n + j] * (*xhat)[i * n + j];
          gamma.impl().AccumulateGrad(gg.data(), n);
        }
        if (beta.RequiresGrad()) {
          std::vector<float> gb(n, 0.0f);
          for (int64_t i = 0; i < m; ++i)
            for (int64_t j = 0; j < n; ++j) gb[j] += g[i * n + j];
          beta.impl().AccumulateGrad(gb.data(), n);
        }
        if (a.RequiresGrad()) {
          // dx = (1/N) * inv_std * (N*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
          // with dxhat = dy * gamma, per row.
          std::vector<float> ga(m * n);
          for (int64_t i = 0; i < m; ++i) {
            double sum_dxhat = 0.0;
            double sum_dxhat_xhat = 0.0;
            for (int64_t j = 0; j < n; ++j) {
              const double dxhat = static_cast<double>(g[i * n + j]) * pg[j];
              sum_dxhat += dxhat;
              sum_dxhat_xhat += dxhat * (*xhat)[i * n + j];
            }
            for (int64_t j = 0; j < n; ++j) {
              const double dxhat = static_cast<double>(g[i * n + j]) * pg[j];
              ga[i * n + j] = static_cast<float>(
                  (*inv_std)[i] / n *
                  (n * dxhat - sum_dxhat -
                   (*xhat)[i * n + j] * sum_dxhat_xhat));
            }
          }
          a.impl().AccumulateGrad(ga.data(), m * n);
        }
      });
}

}  // namespace retia::tensor
