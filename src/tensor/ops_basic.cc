#include <cmath>

#include "simd/simd.h"
#include "tensor/ops.h"

namespace retia::tensor {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  RETIA_CHECK_MSG(a.Shape() == b.Shape(),
                  "shape mismatch: " << a.ShapeString() << " vs "
                                     << b.ShapeString());
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  simd::Kernels().add(a.Data(), b.Data(), out.data(), n);
  return MakeOpResult(a.Shape(), std::move(out), {a, b},
                      [a, b](TensorImpl& self) mutable {
                        const int64_t n = self.NumElements();
                        if (a.RequiresGrad())
                          a.impl().AccumulateGrad(self.grad.data(), n);
                        if (b.RequiresGrad())
                          b.impl().AccumulateGrad(self.grad.data(), n);
                      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  simd::Kernels().sub(a.Data(), b.Data(), out.data(), n);
  return MakeOpResult(a.Shape(), std::move(out), {a, b},
                      [a, b](TensorImpl& self) mutable {
                        const int64_t n = self.NumElements();
                        if (a.RequiresGrad())
                          a.impl().AccumulateGrad(self.grad.data(), n);
                        if (b.RequiresGrad()) {
                          std::vector<float> gb(n);
                          // -g == -1.0f * g exactly (sign flip).
                          simd::Kernels().scale(self.grad.data(), -1.0f,
                                                gb.data(), n);
                          b.impl().AccumulateGrad(gb.data(), n);
                        }
                      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  simd::Kernels().mul(a.Data(), b.Data(), out.data(), n);
  return MakeOpResult(a.Shape(), std::move(out), {a, b},
                      [a, b](TensorImpl& self) mutable {
                        const int64_t n = self.NumElements();
                        std::vector<float> g(n);
                        if (a.RequiresGrad()) {
                          simd::Kernels().mul(self.grad.data(), b.Data(),
                                              g.data(), n);
                          a.impl().AccumulateGrad(g.data(), n);
                        }
                        if (b.RequiresGrad()) {
                          simd::Kernels().mul(self.grad.data(), a.Data(),
                                              g.data(), n);
                          b.impl().AccumulateGrad(g.data(), n);
                        }
                      });
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  RETIA_CHECK_EQ(a.Rank(), 2);
  RETIA_CHECK_EQ(bias.Rank(), 1);
  RETIA_CHECK_EQ(a.Dim(1), bias.Dim(0));
  const int64_t m = a.Dim(0);
  const int64_t n = a.Dim(1);
  std::vector<float> out(m * n);
  const float* pa = a.Data();
  const float* pb = bias.Data();
  for (int64_t i = 0; i < m; ++i)
    simd::Kernels().add(pa + i * n, pb, out.data() + i * n, n);
  return MakeOpResult(
      a.Shape(), std::move(out), {a, bias},
      [a, bias, m, n](TensorImpl& self) mutable {
        if (a.RequiresGrad())
          a.impl().AccumulateGrad(self.grad.data(), m * n);
        if (bias.RequiresGrad()) {
          std::vector<float> gb(n, 0.0f);
          for (int64_t i = 0; i < m; ++i)
            simd::Kernels().accumulate(self.grad.data() + i * n, gb.data(), n);
          bias.impl().AccumulateGrad(gb.data(), n);
        }
      });
}

Tensor Scale(const Tensor& a, float s) {
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  simd::Kernels().scale(a.Data(), s, out.data(), n);
  return MakeOpResult(a.Shape(), std::move(out), {a},
                      [a, s](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        const int64_t n = self.NumElements();
                        std::vector<float> g(n);
                        simd::Kernels().scale(self.grad.data(), s, g.data(), n);
                        a.impl().AccumulateGrad(g.data(), n);
                      });
}

Tensor Neg(const Tensor& a) { return Scale(a, -1.0f); }

namespace {

// Shared scaffold for unary elementwise ops whose gradient depends only on
// the output value: out = f(x), dx = g(out) * dout.
template <typename Fwd, typename BwdFromOut>
Tensor UnaryFromOutput(const Tensor& a, Fwd fwd, BwdFromOut bwd) {
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  const float* pa = a.Data();
  for (int64_t i = 0; i < n; ++i) out[i] = fwd(pa[i]);
  return MakeOpResult(a.Shape(), std::move(out), {a},
                      [a, bwd](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        const int64_t n = self.NumElements();
                        std::vector<float> g(n);
                        for (int64_t i = 0; i < n; ++i)
                          g[i] = self.grad[i] * bwd(self.data[i]);
                        a.impl().AccumulateGrad(g.data(), n);
                      });
}

// Unary op whose gradient depends on the input value.
template <typename Fwd, typename BwdFromIn>
Tensor UnaryFromInput(const Tensor& a, Fwd fwd, BwdFromIn bwd) {
  const int64_t n = a.NumElements();
  std::vector<float> out(n);
  const float* pa = a.Data();
  for (int64_t i = 0; i < n; ++i) out[i] = fwd(pa[i]);
  return MakeOpResult(a.Shape(), std::move(out), {a},
                      [a, bwd](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        const int64_t n = self.NumElements();
                        std::vector<float> g(n);
                        const float* pa = a.Data();
                        for (int64_t i = 0; i < n; ++i)
                          g[i] = self.grad[i] * bwd(pa[i]);
                        a.impl().AccumulateGrad(g.data(), n);
                      });
}

}  // namespace

Tensor Sigmoid(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryFromOutput(a, [](float x) { return std::tanh(x); },
                         [](float y) { return 1.0f - y * y; });
}

Tensor Relu(const Tensor& a) {
  return UnaryFromOutput(a, [](float x) { return x > 0.0f ? x : 0.0f; },
                         [](float y) { return y > 0.0f ? 1.0f : 0.0f; });
}

Tensor Cos(const Tensor& a) {
  return UnaryFromInput(a, [](float x) { return std::cos(x); },
                        [](float x) { return -std::sin(x); });
}

Tensor Sin(const Tensor& a) {
  return UnaryFromInput(a, [](float x) { return std::sin(x); },
                        [](float x) { return std::cos(x); });
}

Tensor RRelu(const Tensor& a, float lo, float hi, bool training,
             util::Rng* rng) {
  RETIA_CHECK_LE(lo, hi);
  const int64_t n = a.NumElements();
  const float* pa = a.Data();
  std::vector<float> out(n);
  // Per-element slope for negative inputs (1.0 for non-negative inputs),
  // captured by the backward lambda.
  auto slopes = std::make_shared<std::vector<float>>(n, 1.0f);
  const float eval_slope = 0.5f * (lo + hi);
  for (int64_t i = 0; i < n; ++i) {
    if (pa[i] >= 0.0f) {
      out[i] = pa[i];
    } else {
      float s = eval_slope;
      if (training) {
        RETIA_CHECK_MSG(rng != nullptr, "RRelu training mode needs an Rng");
        s = rng->Uniform(lo, hi);
      }
      (*slopes)[i] = s;
      out[i] = pa[i] * s;
    }
  }
  return MakeOpResult(a.Shape(), std::move(out), {a},
                      [a, slopes](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        const int64_t n = self.NumElements();
                        std::vector<float> g(n);
                        for (int64_t i = 0; i < n; ++i)
                          g[i] = self.grad[i] * (*slopes)[i];
                        a.impl().AccumulateGrad(g.data(), n);
                      });
}

Tensor Dropout(const Tensor& a, float p, bool training, util::Rng* rng) {
  if (!training || p <= 0.0f) {
    // Identity with gradient pass-through.
    return Scale(a, 1.0f);
  }
  RETIA_CHECK_MSG(rng != nullptr, "Dropout training mode needs an Rng");
  RETIA_CHECK_LT(p, 1.0f);
  const int64_t n = a.NumElements();
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  const float* pa = a.Data();
  std::vector<float> out(n);
  auto mask = std::make_shared<std::vector<float>>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float m = rng->Bernoulli(keep) ? inv_keep : 0.0f;
    (*mask)[i] = m;
    out[i] = pa[i] * m;
  }
  return MakeOpResult(a.Shape(), std::move(out), {a},
                      [a, mask](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        const int64_t n = self.NumElements();
                        std::vector<float> g(n);
                        for (int64_t i = 0; i < n; ++i)
                          g[i] = self.grad[i] * (*mask)[i];
                        a.impl().AccumulateGrad(g.data(), n);
                      });
}

Tensor Sum(const Tensor& a) {
  const int64_t n = a.NumElements();
  const float* pa = a.Data();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += pa[i];
  return MakeOpResult({1}, {static_cast<float>(acc)}, {a},
                      [a, n](TensorImpl& self) mutable {
                        if (!a.RequiresGrad()) return;
                        std::vector<float> g(n, self.grad[0]);
                        a.impl().AccumulateGrad(g.data(), n);
                      });
}

Tensor Mean(const Tensor& a) {
  const int64_t n = a.NumElements();
  return Scale(Sum(a), 1.0f / static_cast<float>(n));
}

}  // namespace retia::tensor
