#include "baselines/regcn.h"

#include "tensor/ops.h"

namespace retia::baselines {

using tensor::Tensor;

RegcnModel::RegcnModel(const RegcnConfig& config)
    : config_(config), rng_(config.seed) {
  RETIA_CHECK(config.num_entities > 0);
  RETIA_CHECK(config.num_relations > 0);
  const int64_t d = config.dim;
  const int64_t rel_aug = 2 * config.num_relations;
  entity_init_ =
      std::make_unique<nn::Embedding>(config.num_entities, d, &rng_);
  relation_init_ = std::make_unique<nn::Embedding>(rel_aug, d, &rng_);
  entity_rgcn_ = std::make_unique<core::EntityRgcnStack>(
      d, rel_aug, config.num_bases, config.rgcn_layers, config.dropout,
      &rng_);
  entity_gru_ = std::make_unique<nn::GruCell>(d, d, &rng_);
  relation_gru_ = std::make_unique<nn::GruCell>(2 * d, d, &rng_);
  entity_decoder_ = std::make_unique<core::ConvTransEDecoder>(
      d, config.conv_kernels, 3, config.dropout, &rng_);
  relation_decoder_ = std::make_unique<core::ConvTransEDecoder>(
      d, config.conv_kernels, 3, config.dropout, &rng_);
  RegisterModule("entity_init", entity_init_.get());
  RegisterModule("relation_init", relation_init_.get());
  RegisterModule("entity_rgcn", entity_rgcn_.get());
  RegisterModule("entity_gru", entity_gru_.get());
  RegisterModule("relation_gru", relation_gru_.get());
  RegisterModule("entity_decoder", entity_decoder_.get());
  RegisterModule("relation_decoder", relation_decoder_.get());
}

Tensor RegcnModel::MeanPoolEntities(const Tensor& entities,
                                    const graph::Subgraph& g) const {
  const int64_t rel_aug = 2 * config_.num_relations;
  std::vector<int64_t> ent_idx;
  std::vector<int64_t> rel_idx;
  std::vector<float> weights;
  for (int64_t r : g.active_relations()) {
    const auto& ents = g.relation_entities()[r];
    const float w = 1.0f / static_cast<float>(ents.size());
    for (int64_t e : ents) {
      ent_idx.push_back(e);
      rel_idx.push_back(r);
      weights.push_back(w);
    }
  }
  if (ent_idx.empty()) return Tensor::Zeros({rel_aug, config_.dim});
  return tensor::ScatterAddRows(
      tensor::ScaleRows(tensor::GatherRows(entities, ent_idx), weights),
      rel_idx, rel_aug);
}

std::vector<core::EvolutionModel::StepState> RegcnModel::Evolve(
    graph::GraphCache& cache, const std::vector<int64_t>& history) {
  const Tensor e0 = entity_init_->table();
  const Tensor r0 = relation_init_->table();
  std::vector<StepState> states;
  if (history.empty()) {
    states.push_back({e0, r0});
    return states;
  }
  Tensor e_prev = e0;
  Tensor r_prev = r0;
  for (int64_t t : history) {
    const graph::Subgraph& g = cache.subgraph(t);
    Tensor r_t = r_prev;
    if (config_.evolve_relations) {
      // RE-GCN relation evolution: r_t = GRU([R_0 ; MP(E_{t-1})], r_{t-1}).
      Tensor r_mean = tensor::ConcatCols(r0, MeanPoolEntities(e_prev, g));
      r_t = relation_gru_->Forward(r_mean, r_prev);
    }
    Tensor e_agg = entity_rgcn_->Forward(e_prev, r_t, g, &rng_);
    Tensor e_t = entity_gru_->Forward(e_agg, e_prev);
    states.push_back({e_t, r_t});
    e_prev = e_t;
    r_prev = r_t;
  }
  return states;
}

core::EvolutionModel::LossParts RegcnModel::ComputeLoss(
    const std::vector<StepState>& states,
    const std::vector<tkg::Quadruple>& facts) {
  RETIA_CHECK(!states.empty());
  const int64_t m = config_.num_relations;
  std::vector<std::pair<int64_t, int64_t>> entity_queries;
  std::vector<int64_t> entity_targets;
  for (const tkg::Quadruple& q : facts) {
    entity_queries.emplace_back(q.subject, q.relation);
    entity_targets.push_back(q.object);
    entity_queries.emplace_back(q.object, q.relation + m);
    entity_targets.push_back(q.subject);
  }
  Tensor loss_e =
      tensor::NllFromProbs(ScoreObjects(states, entity_queries), entity_targets);
  std::vector<std::pair<int64_t, int64_t>> relation_queries;
  std::vector<int64_t> relation_targets;
  for (const tkg::Quadruple& q : facts) {
    relation_queries.emplace_back(q.subject, q.object);
    relation_targets.push_back(q.relation);
  }
  Tensor loss_r = tensor::NllFromProbs(ScoreRelations(states, relation_queries),
                                       relation_targets);
  LossParts parts;
  parts.entity_loss = loss_e.Item();
  parts.relation_loss = loss_r.Item();
  parts.joint =
      tensor::Add(tensor::Scale(loss_e, config_.lambda_entity),
                  tensor::Scale(loss_r, 1.0f - config_.lambda_entity));
  return parts;
}

Tensor RegcnModel::ScoreObjects(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries) {
  RETIA_CHECK(!states.empty());
  std::vector<int64_t> s_idx;
  std::vector<int64_t> r_idx;
  for (const auto& [s, r] : queries) {
    s_idx.push_back(s);
    r_idx.push_back(r);
  }
  const size_t first =
      config_.time_variability_decode ? 0 : states.size() - 1;
  Tensor total;
  for (size_t i = first; i < states.size(); ++i) {
    const StepState& st = states[i];
    Tensor logits = entity_decoder_->Forward(
        tensor::GatherRows(st.entities, s_idx),
        tensor::GatherRows(st.relations, r_idx), st.entities, &rng_);
    Tensor p = tensor::Softmax(logits);
    total = total.defined() ? tensor::Add(total, p) : p;
  }
  return total;
}

Tensor RegcnModel::ScoreRelations(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries) {
  RETIA_CHECK(!states.empty());
  const int64_t m = config_.num_relations;
  std::vector<int64_t> s_idx;
  std::vector<int64_t> o_idx;
  for (const auto& [s, o] : queries) {
    s_idx.push_back(s);
    o_idx.push_back(o);
  }
  const size_t first =
      config_.time_variability_decode ? 0 : states.size() - 1;
  Tensor total;
  for (size_t i = first; i < states.size(); ++i) {
    const StepState& st = states[i];
    Tensor logits = relation_decoder_->Forward(
        tensor::GatherRows(st.entities, s_idx),
        tensor::GatherRows(st.entities, o_idx),
        tensor::SliceRows(st.relations, 0, m), &rng_);
    Tensor p = tensor::Softmax(logits);
    total = total.defined() ? tensor::Add(total, p) : p;
  }
  return total;
}

}  // namespace retia::baselines
