#include "baselines/cygnet.h"

#include <cmath>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace retia::baselines {

using tensor::Tensor;

CygnetModel::CygnetModel(int64_t num_entities, int64_t num_relations,
                         int64_t dim, uint64_t seed)
    : num_entities_(num_entities), num_relations_(num_relations), rng_(seed) {
  entities_ = std::make_unique<nn::Embedding>(num_entities, dim, &rng_);
  relations_ = std::make_unique<nn::Embedding>(2 * num_relations, dim, &rng_);
  generator_ = std::make_unique<nn::Linear>(2 * dim, dim, &rng_);
  copy_gate_ = RegisterParameter("copy_gate", Tensor::Zeros({1}));
  RegisterModule("entities", entities_.get());
  RegisterModule("relations", relations_.get());
  RegisterModule("generator", generator_.get());
}

void CygnetModel::ObserveUpTo(const tkg::TkgDataset& dataset,
                              int64_t t_exclusive) {
  for (int64_t t = observed_to_; t < t_exclusive; ++t) {
    for (const tkg::Quadruple& q : dataset.FactsAt(t)) {
      ++history_[{q.subject, q.relation}][q.object];
      ++history_[{q.object, q.relation + num_relations_}][q.subject];
    }
  }
  observed_to_ = std::max(observed_to_, t_exclusive);
}

Tensor CygnetModel::CopyProbs(
    int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) const {
  RETIA_CHECK_MSG(t <= observed_to_,
                  "copy vocabulary not advanced to timestamp " << t);
  const int64_t batch = static_cast<int64_t>(queries.size());
  Tensor probs = Tensor::Zeros({batch, num_entities_});
  float* p = probs.Data();
  for (int64_t i = 0; i < batch; ++i) {
    auto it = history_.find(queries[i]);
    if (it == history_.end()) continue;
    int64_t total = 0;
    for (const auto& [o, count] : it->second) total += count;
    for (const auto& [o, count] : it->second) {
      p[i * num_entities_ + o] =
          static_cast<float>(count) / static_cast<float>(total);
    }
  }
  return probs;  // constant w.r.t. parameters
}

Tensor CygnetModel::ScoreObjects(
    int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
  std::vector<int64_t> s_idx;
  std::vector<int64_t> r_idx;
  for (const auto& [s, r] : queries) {
    s_idx.push_back(s);
    r_idx.push_back(r);
  }
  Tensor feat = tensor::Relu(generator_->Forward(tensor::ConcatCols(
      entities_->Forward(s_idx), relations_->Forward(r_idx))));
  Tensor gen =
      tensor::Softmax(tensor::MatMulTransposeB(feat, entities_->table()));
  Tensor copy = CopyProbs(t, queries);
  // Mixture weight sigma(copy_gate), broadcast over the whole batch.
  const float alpha =
      1.0f / (1.0f + std::exp(-copy_gate_.Data()[0]));
  // p = alpha * copy + (1 - alpha) * gen. The gate gradient is routed via
  // Scale on gen only (copy is a constant); this keeps the op graph simple
  // while still learning alpha through the generation share.
  Tensor mix = tensor::Add(tensor::Scale(copy, alpha),
                           tensor::Scale(gen, 1.0f - alpha));
  return mix;
}

void CygnetModel::Fit(const tkg::TkgDataset& dataset, int64_t epochs,
                      float lr) {
  std::vector<tensor::Tensor> params = Parameters();
  nn::Adam optimizer(params, nn::Adam::Options{.lr = lr});
  SetTraining(true);
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    // Rebuild the vocabulary in time order every epoch.
    history_.clear();
    observed_to_ = 0;
    for (int64_t t : dataset.train_times()) {
      ObserveUpTo(dataset, t);
      const std::vector<tkg::Quadruple>& facts = dataset.FactsAt(t);
      if (facts.empty()) continue;
      std::vector<std::pair<int64_t, int64_t>> queries;
      std::vector<int64_t> targets;
      for (const tkg::Quadruple& q : facts) {
        queries.emplace_back(q.subject, q.relation);
        targets.push_back(q.object);
        queries.emplace_back(q.object, q.relation + num_relations_);
        targets.push_back(q.subject);
      }
      ZeroGrad();
      Tensor probs = ScoreObjects(t, queries);
      Tensor loss = tensor::NllFromProbs(probs, targets);
      loss.Backward();
      nn::ClipGradNorm(params, 1.0f);
      optimizer.Step();
    }
  }
  // Leave the vocabulary covering the whole train split so evaluation can
  // continue observing valid/test timestamps incrementally.
  SetTraining(false);
}

}  // namespace retia::baselines
