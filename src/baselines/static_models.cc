#include "baselines/static_models.h"

#include <algorithm>
#include <set>

#include "nn/init.h"
#include "tensor/ops.h"

namespace retia::baselines {

using tensor::Tensor;

std::string StaticScorerName(StaticScorerKind kind) {
  switch (kind) {
    case StaticScorerKind::kDistMult: return "DistMult";
    case StaticScorerKind::kComplEx: return "ComplEx";
    case StaticScorerKind::kRotatE: return "RotatE";
    case StaticScorerKind::kTransE: return "TransE";
    case StaticScorerKind::kConvE: return "ConvE";
    case StaticScorerKind::kConvTransE: return "Conv-TransE";
  }
  return "unknown";
}

StaticModel::StaticModel(const StaticModelConfig& config)
    : config_(config), rng_(config.seed) {
  RETIA_CHECK(config.num_entities > 0);
  RETIA_CHECK(config.num_relations > 0);
  if (config.kind == StaticScorerKind::kComplEx ||
      config.kind == StaticScorerKind::kRotatE) {
    RETIA_CHECK_MSG(config.dim % 2 == 0,
                    "complex scorers need an even embedding dim");
  }
  entities_ =
      std::make_unique<nn::Embedding>(config.num_entities, config.dim, &rng_);
  relations_ = std::make_unique<nn::Embedding>(2 * config.num_relations,
                                               config.dim, &rng_);
  RegisterModule("entities", entities_.get());
  RegisterModule("relations", relations_.get());
  if (config.kind == StaticScorerKind::kConvTransE) {
    conv_weight_ = RegisterParameter(
        "conv_weight", nn::XavierUniform({config.conv_kernels, 2, 3}, &rng_));
    conv_bias_ =
        RegisterParameter("conv_bias", Tensor::Zeros({config.conv_kernels}));
    fc_ = std::make_unique<nn::Linear>(config.conv_kernels * config.dim,
                                       config.dim, &rng_);
    RegisterModule("fc", fc_.get());
  } else if (config.kind == StaticScorerKind::kConvE) {
    RETIA_CHECK_MSG(config.dim % config.reshape_h == 0,
                    "ConvE reshape must divide the embedding dim");
    conv_weight_ = RegisterParameter(
        "conv_weight",
        nn::XavierUniform({config.conv_kernels, 1, 3, 3}, &rng_));
    conv_bias_ =
        RegisterParameter("conv_bias", Tensor::Zeros({config.conv_kernels}));
    fc_ = std::make_unique<nn::Linear>(config.conv_kernels * 2 * config.dim,
                                       config.dim, &rng_);
    RegisterModule("fc", fc_.get());
  }
}

Tensor StaticModel::QueryFeature(const std::vector<int64_t>& a_idx,
                                 const std::vector<int64_t>& b_idx,
                                 bool relation_task) {
  const int64_t batch = static_cast<int64_t>(a_idx.size());
  const int64_t d = config_.dim;
  Tensor a = entities_->Forward(a_idx);
  Tensor b = relation_task ? entities_->Forward(b_idx)
                           : relations_->Forward(b_idx);
  Tensor stacked = tensor::ConcatCols(a, b);
  if (config_.kind == StaticScorerKind::kConvTransE) {
    Tensor x = tensor::Reshape(stacked, {batch, 2, d});
    x = tensor::Dropout(x, config_.dropout, training(), &rng_);
    Tensor conv = tensor::Relu(tensor::Conv1d(x, conv_weight_, conv_bias_, 1));
    conv = tensor::Dropout(conv, config_.dropout, training(), &rng_);
    Tensor flat =
        tensor::Reshape(conv, {batch, config_.conv_kernels * d});
    return tensor::Relu(fc_->Forward(flat));
  }
  RETIA_CHECK(config_.kind == StaticScorerKind::kConvE);
  const int64_t h = config_.reshape_h;
  const int64_t w = d / h;
  Tensor x = tensor::Reshape(stacked, {batch, 1, 2 * h, w});
  x = tensor::Dropout(x, config_.dropout, training(), &rng_);
  Tensor conv = tensor::Relu(tensor::Conv2d(x, conv_weight_, conv_bias_, 1));
  conv = tensor::Dropout(conv, config_.dropout, training(), &rng_);
  Tensor flat =
      tensor::Reshape(conv, {batch, config_.conv_kernels * 2 * d});
  return tensor::Relu(fc_->Forward(flat));
}

Tensor StaticModel::ScoreObjects(
    const std::vector<std::pair<int64_t, int64_t>>& queries) {
  std::vector<int64_t> s_idx;
  std::vector<int64_t> r_idx;
  s_idx.reserve(queries.size());
  r_idx.reserve(queries.size());
  for (const auto& [s, r] : queries) {
    s_idx.push_back(s);
    r_idx.push_back(r);
  }
  const Tensor& table = entities_->table();
  const int64_t d = config_.dim;
  const int64_t h = d / 2;
  switch (config_.kind) {
    case StaticScorerKind::kDistMult: {
      Tensor s = entities_->Forward(s_idx);
      Tensor r = relations_->Forward(r_idx);
      return tensor::MatMulTransposeB(tensor::Mul(s, r), table);
    }
    case StaticScorerKind::kComplEx: {
      Tensor s = entities_->Forward(s_idx);
      Tensor r = relations_->Forward(r_idx);
      Tensor s_re = tensor::SliceCols(s, 0, h);
      Tensor s_im = tensor::SliceCols(s, h, h);
      Tensor r_re = tensor::SliceCols(r, 0, h);
      Tensor r_im = tensor::SliceCols(r, h, h);
      // (s*r) = a + ib; score = a . o_re + b . o_im.
      Tensor a = tensor::Sub(tensor::Mul(s_re, r_re), tensor::Mul(s_im, r_im));
      Tensor b = tensor::Add(tensor::Mul(s_re, r_im), tensor::Mul(s_im, r_re));
      Tensor e_re = tensor::SliceCols(table, 0, h);
      Tensor e_im = tensor::SliceCols(table, h, h);
      return tensor::Add(tensor::MatMulTransposeB(a, e_re),
                         tensor::MatMulTransposeB(b, e_im));
    }
    case StaticScorerKind::kRotatE: {
      Tensor s = entities_->Forward(s_idx);
      Tensor r = relations_->Forward(r_idx);
      Tensor s_re = tensor::SliceCols(s, 0, h);
      Tensor s_im = tensor::SliceCols(s, h, h);
      Tensor phase = tensor::SliceCols(r, 0, h);
      Tensor cosp = tensor::Cos(phase);
      Tensor sinp = tensor::Sin(phase);
      Tensor q_re =
          tensor::Sub(tensor::Mul(s_re, cosp), tensor::Mul(s_im, sinp));
      Tensor q_im =
          tensor::Add(tensor::Mul(s_re, sinp), tensor::Mul(s_im, cosp));
      Tensor e_re = tensor::SliceCols(table, 0, h);
      Tensor e_im = tensor::SliceCols(table, h, h);
      return tensor::PairwiseComplexNegDist(q_re, q_im, e_re, e_im,
                                            config_.rotate_gamma);
    }
    case StaticScorerKind::kTransE: {
      Tensor s = entities_->Forward(s_idx);
      Tensor r = relations_->Forward(r_idx);
      return tensor::PairwiseNegL1(tensor::Add(s, r), table);
    }
    case StaticScorerKind::kConvE:
    case StaticScorerKind::kConvTransE: {
      Tensor feat = QueryFeature(s_idx, r_idx, /*relation_task=*/false);
      return tensor::MatMulTransposeB(feat, table);
    }
  }
  RETIA_CHECK_MSG(false, "unreachable");
  return {};
}

Tensor StaticModel::ScoreRelations(
    const std::vector<std::pair<int64_t, int64_t>>& queries) {
  std::vector<int64_t> s_idx;
  std::vector<int64_t> o_idx;
  s_idx.reserve(queries.size());
  o_idx.reserve(queries.size());
  for (const auto& [s, o] : queries) {
    s_idx.push_back(s);
    o_idx.push_back(o);
  }
  Tensor candidates =
      tensor::SliceRows(relations_->table(), 0, config_.num_relations);
  const int64_t d = config_.dim;
  const int64_t h = d / 2;
  switch (config_.kind) {
    case StaticScorerKind::kDistMult: {
      Tensor s = entities_->Forward(s_idx);
      Tensor o = entities_->Forward(o_idx);
      return tensor::MatMulTransposeB(tensor::Mul(s, o), candidates);
    }
    case StaticScorerKind::kComplEx: {
      Tensor s = entities_->Forward(s_idx);
      Tensor o = entities_->Forward(o_idx);
      Tensor s_re = tensor::SliceCols(s, 0, h);
      Tensor s_im = tensor::SliceCols(s, h, h);
      Tensor o_re = tensor::SliceCols(o, 0, h);
      Tensor o_im = tensor::SliceCols(o, h, h);
      // Coefficients of r in Re<s, r, conj(o)>.
      Tensor c_re =
          tensor::Add(tensor::Mul(s_re, o_re), tensor::Mul(s_im, o_im));
      Tensor c_im =
          tensor::Sub(tensor::Mul(s_re, o_im), tensor::Mul(s_im, o_re));
      return tensor::MatMulTransposeB(tensor::ConcatCols(c_re, c_im),
                                      candidates);
    }
    case StaticScorerKind::kTransE: {
      Tensor s = entities_->Forward(s_idx);
      Tensor o = entities_->Forward(o_idx);
      return tensor::PairwiseNegL1(tensor::Sub(o, s), candidates);
    }
    case StaticScorerKind::kConvE:
    case StaticScorerKind::kConvTransE: {
      Tensor feat = QueryFeature(s_idx, o_idx, /*relation_task=*/true);
      return tensor::MatMulTransposeB(feat, candidates);
    }
    case StaticScorerKind::kRotatE:
      RETIA_CHECK_MSG(false,
                      "RotatE relation scoring is undefined (Table VII)");
  }
  return {};
}

void StaticModel::Fit(const tkg::TkgDataset& dataset, int64_t epochs, float lr,
                      int64_t batch_size) {
  // Collapse the time dimension: unique (s, r, o) triples of the train set.
  std::set<std::tuple<int64_t, int64_t, int64_t>> unique;
  for (const tkg::Quadruple& q : dataset.train()) {
    unique.insert({q.subject, q.relation, q.object});
  }
  std::vector<std::tuple<int64_t, int64_t, int64_t>> triples(unique.begin(),
                                                             unique.end());
  std::vector<tensor::Tensor> params = Parameters();
  nn::Adam optimizer(params, nn::Adam::Options{.lr = lr});
  const int64_t m = config_.num_relations;
  const bool relation_capable = config_.kind != StaticScorerKind::kRotatE;
  SetTraining(true);
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    std::shuffle(triples.begin(), triples.end(), rng_.engine());
    for (size_t begin = 0; begin < triples.size();
         begin += static_cast<size_t>(batch_size)) {
      const size_t end =
          std::min(begin + static_cast<size_t>(batch_size), triples.size());
      std::vector<std::pair<int64_t, int64_t>> obj_queries;
      std::vector<int64_t> obj_targets;
      std::vector<std::pair<int64_t, int64_t>> rel_queries;
      std::vector<int64_t> rel_targets;
      for (size_t i = begin; i < end; ++i) {
        const auto& [s, r, o] = triples[i];
        obj_queries.emplace_back(s, r);
        obj_targets.push_back(o);
        obj_queries.emplace_back(o, r + m);
        obj_targets.push_back(s);
        rel_queries.emplace_back(s, o);
        rel_targets.push_back(r);
      }
      ZeroGrad();
      Tensor loss =
          tensor::CrossEntropyLogits(ScoreObjects(obj_queries), obj_targets);
      if (relation_capable) {
        Tensor rel_loss = tensor::CrossEntropyLogits(
            ScoreRelations(rel_queries), rel_targets);
        loss = tensor::Add(tensor::Scale(loss, 0.7f),
                           tensor::Scale(rel_loss, 0.3f));
      }
      loss.Backward();
      nn::ClipGradNorm(params, 1.0f);
      optimizer.Step();
    }
  }
  SetTraining(false);
}

}  // namespace retia::baselines
