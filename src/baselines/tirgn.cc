#include "baselines/tirgn.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace retia::baselines {

using tensor::Tensor;

TirgnModel::TirgnModel(const TirgnConfig& config) : config_(config) {
  local_ = std::make_unique<RegcnModel>(config.local);
  RegisterModule("local", local_.get());
  gate_ = RegisterParameter("gate", Tensor::Full({1}, config.gate_init));
}

void TirgnModel::SetDataset(const tkg::TkgDataset* dataset) {
  RETIA_CHECK(dataset != nullptr);
  dataset_ = dataset;
  const int64_t m = dataset->num_relations();
  object_index_.clear();
  relation_index_.clear();
  for (const std::vector<tkg::Quadruple>* split :
       {&dataset->train(), &dataset->valid(), &dataset->test()}) {
    for (const tkg::Quadruple& q : *split) {
      object_index_[{q.subject, q.relation}][q.object].push_back(q.time);
      object_index_[{q.object, q.relation + m}][q.subject].push_back(q.time);
      relation_index_[{q.subject, q.object}][q.relation].push_back(q.time);
    }
  }
  for (auto* index : {&object_index_, &relation_index_}) {
    for (auto& [key, candidates] : *index) {
      for (auto& [candidate, times] : candidates) {
        std::sort(times.begin(), times.end());
      }
    }
  }
}

float TirgnModel::GateValue() const {
  return 1.0f / (1.0f + std::exp(-gate_.Data()[0]));
}

namespace {

// Number of occurrences with time <= up_to in a sorted timestamp list.
int64_t CountUpTo(const std::vector<int64_t>& times, int64_t up_to) {
  return std::upper_bound(times.begin(), times.end(), up_to) - times.begin();
}

}  // namespace

Tensor TirgnModel::GlobalObjectProbs(
    const std::vector<std::pair<int64_t, int64_t>>& queries,
    int64_t up_to) const {
  RETIA_CHECK_MSG(dataset_ != nullptr, "call SetDataset() first");
  const int64_t n = dataset_->num_entities();
  Tensor probs =
      Tensor::Zeros({static_cast<int64_t>(queries.size()), n});
  float* p = probs.Data();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto it = object_index_.find(queries[i]);
    if (it == object_index_.end()) continue;
    int64_t total = 0;
    for (const auto& [candidate, times] : it->second) {
      total += CountUpTo(times, up_to);
    }
    if (total == 0) continue;
    for (const auto& [candidate, times] : it->second) {
      const int64_t count = CountUpTo(times, up_to);
      if (count > 0) {
        p[i * n + candidate] =
            static_cast<float>(count) / static_cast<float>(total);
      }
    }
  }
  return probs;
}

Tensor TirgnModel::GlobalRelationProbs(
    const std::vector<std::pair<int64_t, int64_t>>& queries,
    int64_t up_to) const {
  RETIA_CHECK_MSG(dataset_ != nullptr, "call SetDataset() first");
  const int64_t m = dataset_->num_relations();
  Tensor probs =
      Tensor::Zeros({static_cast<int64_t>(queries.size()), m});
  float* p = probs.Data();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto it = relation_index_.find(queries[i]);
    if (it == relation_index_.end()) continue;
    int64_t total = 0;
    for (const auto& [candidate, times] : it->second) {
      total += CountUpTo(times, up_to);
    }
    if (total == 0) continue;
    for (const auto& [candidate, times] : it->second) {
      const int64_t count = CountUpTo(times, up_to);
      if (count > 0) {
        p[i * m + candidate] =
            static_cast<float>(count) / static_cast<float>(total);
      }
    }
  }
  return probs;
}

std::vector<core::EvolutionModel::StepState> TirgnModel::Evolve(
    graph::GraphCache& cache, const std::vector<int64_t>& history) {
  last_history_end_ = history.empty() ? -1 : history.back();
  return local_->Evolve(cache, history);
}

core::EvolutionModel::LossParts TirgnModel::ComputeLoss(
    const std::vector<StepState>& states,
    const std::vector<tkg::Quadruple>& facts) {
  RETIA_CHECK(!states.empty());
  const int64_t m = config_.local.num_relations;
  std::vector<std::pair<int64_t, int64_t>> entity_queries;
  std::vector<int64_t> entity_targets;
  for (const tkg::Quadruple& q : facts) {
    entity_queries.emplace_back(q.subject, q.relation);
    entity_targets.push_back(q.object);
    entity_queries.emplace_back(q.object, q.relation + m);
    entity_targets.push_back(q.subject);
  }
  Tensor loss_e = tensor::NllFromProbs(ScoreObjects(states, entity_queries),
                                       entity_targets);
  std::vector<std::pair<int64_t, int64_t>> relation_queries;
  std::vector<int64_t> relation_targets;
  for (const tkg::Quadruple& q : facts) {
    relation_queries.emplace_back(q.subject, q.object);
    relation_targets.push_back(q.relation);
  }
  Tensor loss_r = tensor::NllFromProbs(ScoreRelations(states, relation_queries),
                                       relation_targets);
  LossParts parts;
  parts.entity_loss = loss_e.Item();
  parts.relation_loss = loss_r.Item();
  parts.joint = tensor::Add(
      tensor::Scale(loss_e, config_.local.lambda_entity),
      tensor::Scale(loss_r, 1.0f - config_.local.lambda_entity));
  return parts;
}

Tensor TirgnModel::ScoreObjects(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries) {
  Tensor local = local_->ScoreObjects(states, queries);
  Tensor global = GlobalObjectProbs(queries, last_history_end_);
  // The gate gradient flows through the scaling of the local branch (the
  // global branch is a constant); alpha itself adapts via that path.
  const float alpha = GateValue();
  return tensor::Add(tensor::Scale(local, 1.0f - alpha),
                     tensor::Scale(global, alpha));
}

Tensor TirgnModel::ScoreRelations(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries) {
  Tensor local = local_->ScoreRelations(states, queries);
  Tensor global = GlobalRelationProbs(queries, last_history_end_);
  const float alpha = GateValue();
  return tensor::Add(tensor::Scale(local, 1.0f - alpha),
                     tensor::Scale(global, alpha));
}

}  // namespace retia::baselines
