#include "baselines/ttranse.h"

#include <algorithm>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace retia::baselines {

using tensor::Tensor;

TTransEModel::TTransEModel(int64_t num_entities, int64_t num_relations,
                           int64_t num_timestamps, int64_t dim, uint64_t seed)
    : num_relations_(num_relations),
      num_timestamps_(num_timestamps),
      rng_(seed) {
  entities_ = std::make_unique<nn::Embedding>(num_entities, dim, &rng_);
  relations_ = std::make_unique<nn::Embedding>(2 * num_relations, dim, &rng_);
  timestamps_ = std::make_unique<nn::Embedding>(num_timestamps, dim, &rng_);
  RegisterModule("entities", entities_.get());
  RegisterModule("relations", relations_.get());
  RegisterModule("timestamps", timestamps_.get());
}

Tensor TTransEModel::ScoreObjects(
    int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
  std::vector<int64_t> s_idx;
  std::vector<int64_t> r_idx;
  std::vector<int64_t> t_idx;
  // Clamp to the last timestamp the model has embeddings for: an
  // interpolation model has no representation of the future.
  const int64_t clamped =
      std::min(std::min(t, num_timestamps_ - 1), max_trained_time_);
  for (const auto& [s, r] : queries) {
    s_idx.push_back(s);
    r_idx.push_back(r);
    t_idx.push_back(clamped);
  }
  Tensor q = tensor::Add(
      tensor::Add(entities_->Forward(s_idx), relations_->Forward(r_idx)),
      timestamps_->Forward(t_idx));
  return tensor::PairwiseNegL1(q, entities_->table());
}

void TTransEModel::Fit(const tkg::TkgDataset& dataset, int64_t epochs,
                       float lr, int64_t batch_size) {
  std::vector<tkg::Quadruple> quads = dataset.train();
  for (const tkg::Quadruple& q : quads) {
    max_trained_time_ = std::max(max_trained_time_, q.time);
  }
  std::vector<tensor::Tensor> params = Parameters();
  nn::Adam optimizer(params, nn::Adam::Options{.lr = lr});
  const int64_t m = num_relations_;
  SetTraining(true);
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    std::shuffle(quads.begin(), quads.end(), rng_.engine());
    for (size_t begin = 0; begin < quads.size();
         begin += static_cast<size_t>(batch_size)) {
      const size_t end =
          std::min(begin + static_cast<size_t>(batch_size), quads.size());
      std::vector<int64_t> s_idx;
      std::vector<int64_t> r_idx;
      std::vector<int64_t> t_idx;
      std::vector<int64_t> targets;
      for (size_t i = begin; i < end; ++i) {
        const tkg::Quadruple& q = quads[i];
        s_idx.push_back(q.subject);
        r_idx.push_back(q.relation);
        t_idx.push_back(q.time);
        targets.push_back(q.object);
        s_idx.push_back(q.object);
        r_idx.push_back(q.relation + m);
        t_idx.push_back(q.time);
        targets.push_back(q.subject);
      }
      ZeroGrad();
      Tensor q_emb = tensor::Add(
          tensor::Add(entities_->Forward(s_idx), relations_->Forward(r_idx)),
          timestamps_->Forward(t_idx));
      Tensor logits = tensor::PairwiseNegL1(q_emb, entities_->table());
      Tensor loss = tensor::CrossEntropyLogits(logits, targets);
      loss.Backward();
      nn::ClipGradNorm(params, 1.0f);
      optimizer.Step();
    }
  }
  SetTraining(false);
}

}  // namespace retia::baselines
