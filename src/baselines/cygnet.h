#ifndef RETIA_BASELINES_CYGNET_H_
#define RETIA_BASELINES_CYGNET_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "tkg/dataset.h"
#include "util/rng.h"

namespace retia::baselines {

// CyGNet-style copy-generation baseline (Zhu et al. 2021). The copy mode
// scores candidates by how often (s, r, o) repeated in the observed past;
// the generation mode scores them with a learned embedding decoder. The
// final distribution mixes the two with a learned gate:
//
//   p(o | s, r, t) = sigma(alpha) * copy(s, r, <t) + (1-sigma(alpha)) * gen.
//
// The historical vocabulary is maintained incrementally in time order, so
// evaluating a timestamp automatically sees all facts observed before it
// (the paper's raw extrapolation protocol).
class CygnetModel : public nn::Module {
 public:
  CygnetModel(int64_t num_entities, int64_t num_relations, int64_t dim,
              uint64_t seed = 17);

  // Probabilities [B, N] for object queries (s, r) forecast at timestamp
  // `t`. Only facts with time < t contribute to the copy vocabulary
  // (ObserveUpTo must have been called with some bound >= t).
  tensor::Tensor ScoreObjects(
      int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries);

  // Adds all facts with time < `t_exclusive` to the copy vocabulary
  // (idempotent; facts are consumed in time order).
  void ObserveUpTo(const tkg::TkgDataset& dataset, int64_t t_exclusive);

  // Trains on the train split in time order: for each timestamp, the copy
  // vocabulary holds exactly the facts before it.
  void Fit(const tkg::TkgDataset& dataset, int64_t epochs, float lr);

 private:
  tensor::Tensor CopyProbs(
      int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) const;

  int64_t num_entities_;
  int64_t num_relations_;
  util::Rng rng_;
  std::unique_ptr<nn::Embedding> entities_;
  std::unique_ptr<nn::Embedding> relations_;  // 2M rows
  std::unique_ptr<nn::Linear> generator_;     // [s;r] -> d
  tensor::Tensor copy_gate_;                  // scalar, mixed via sigmoid

  // (s, r) -> object -> count of occurrences strictly before observed_to_.
  std::map<std::pair<int64_t, int64_t>, std::map<int64_t, int64_t>> history_;
  int64_t observed_to_ = 0;  // exclusive bound of consumed facts
};

}  // namespace retia::baselines

#endif  // RETIA_BASELINES_CYGNET_H_
