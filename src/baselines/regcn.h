#ifndef RETIA_BASELINES_REGCN_H_
#define RETIA_BASELINES_REGCN_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/decoder.h"
#include "core/evolution_model.h"
#include "core/rgcn.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"
#include "util/rng.h"

namespace retia::baselines {

struct RegcnConfig {
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  int64_t dim = 32;
  int64_t history_len = 3;
  int64_t rgcn_layers = 2;
  int64_t num_bases = 2;
  int64_t conv_kernels = 16;
  float dropout = 0.2f;
  float lambda_entity = 0.7f;
  // RE-GCN evolves relation embeddings via mean pooling + GRU; RGCRN keeps
  // them static (it only evolves entity embeddings).
  bool evolve_relations = true;
  // CEN-style multi-history decoding: sum decoder probabilities over every
  // history step instead of only the last.
  bool time_variability_decode = false;
  uint64_t seed = 23;
};

// RE-GCN (Li et al. 2021): the direct ancestor of RETIA and the key
// extrapolation baseline. Entities evolve through an entity-aggregating
// R-GCN + GRU; relations evolve through mean-pooled adjacent entities + a
// GRU (the "w. MP + GRU" level the paper identifies as suffering from the
// "message islands" problem — no relation-to-relation aggregation).
//
// Two paper baselines are configurations of this class:
//  * RGCRN: evolve_relations = false (GCN + GRU over entities only).
//  * CEN:   time_variability_decode = true and online evaluation, i.e.
//           RE-GCN + the online multi-length ensemble of CEN.
class RegcnModel : public core::EvolutionModel {
 public:
  explicit RegcnModel(const RegcnConfig& config);

  std::vector<StepState> Evolve(graph::GraphCache& cache,
                                const std::vector<int64_t>& history) override;

  LossParts ComputeLoss(const std::vector<StepState>& states,
                        const std::vector<tkg::Quadruple>& facts) override;

  tensor::Tensor ScoreObjects(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) override;

  tensor::Tensor ScoreRelations(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) override;

  int64_t history_len() const override { return config_.history_len; }
  util::Rng* MutableRng() override { return &rng_; }

  const RegcnConfig& config() const { return config_; }

 private:
  tensor::Tensor MeanPoolEntities(const tensor::Tensor& entities,
                                  const graph::Subgraph& g) const;

  RegcnConfig config_;
  util::Rng rng_;
  std::unique_ptr<nn::Embedding> entity_init_;
  std::unique_ptr<nn::Embedding> relation_init_;
  std::unique_ptr<core::EntityRgcnStack> entity_rgcn_;
  std::unique_ptr<nn::GruCell> entity_gru_;
  std::unique_ptr<nn::GruCell> relation_gru_;  // input 2d, hidden d
  std::unique_ptr<core::ConvTransEDecoder> entity_decoder_;
  std::unique_ptr<core::ConvTransEDecoder> relation_decoder_;
};

}  // namespace retia::baselines

#endif  // RETIA_BASELINES_REGCN_H_
