#ifndef RETIA_BASELINES_RENET_H_
#define RETIA_BASELINES_RENET_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/evolution_model.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"
#include "util/rng.h"

namespace retia::baselines {

struct RenetConfig {
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  int64_t dim = 32;
  int64_t history_len = 3;
  float dropout = 0.2f;
  float lambda_entity = 0.7f;
  uint64_t seed = 29;
};

// RE-NET-lite (Jin et al. 2020): autoregressive neighbourhood encoding
// without structural graph convolution. For each historical timestamp a
// *global* per-entity neighbourhood summary is computed (the mean of the
// embeddings of the entities each entity interacted with at that
// timestamp), and a GRU evolves each entity's representation over those
// summaries. Relations keep static learned embeddings (RE-NET does not
// model relation evolution — the gap the paper highlights). Decoding is an
// MLP over [s; r] against all candidates, as in the original's aggregate
// mode.
//
// This captures RE-NET's defining trait the paper leans on in Sec. IV-B1:
// it conditions on each entity's own interaction history but "does not
// aggregate the neighborhood information of entities" structurally
// (no R-GCN), and it has no relation modeling.
class RenetModel : public core::EvolutionModel {
 public:
  explicit RenetModel(const RenetConfig& config);

  std::vector<StepState> Evolve(graph::GraphCache& cache,
                                const std::vector<int64_t>& history) override;

  LossParts ComputeLoss(const std::vector<StepState>& states,
                        const std::vector<tkg::Quadruple>& facts) override;

  tensor::Tensor ScoreObjects(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) override;

  tensor::Tensor ScoreRelations(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) override;

  int64_t history_len() const override { return config_.history_len; }
  util::Rng* MutableRng() override { return &rng_; }

 private:
  // Mean embedding of each entity's interaction partners at one timestamp
  // (zero row for inactive entities).
  tensor::Tensor NeighborSummary(const tensor::Tensor& entities,
                                 const graph::Subgraph& g) const;

  RenetConfig config_;
  util::Rng rng_;
  std::unique_ptr<nn::Embedding> entity_init_;
  std::unique_ptr<nn::Embedding> relation_init_;  // 2M rows, static
  std::unique_ptr<nn::GruCell> entity_gru_;       // input: summary, state: e
  std::unique_ptr<nn::Linear> entity_head_;       // [s; r] -> d
  std::unique_ptr<nn::Linear> relation_head_;     // [s; o] -> d
};

}  // namespace retia::baselines

#endif  // RETIA_BASELINES_RENET_H_
