#ifndef RETIA_BASELINES_TTRANSE_H_
#define RETIA_BASELINES_TTRANSE_H_

#include <memory>
#include <utility>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "tkg/dataset.h"
#include "util/rng.h"

namespace retia::baselines {

// TTransE (Jiang et al. 2016): the translational interpolation baseline of
// Tables III/IV. Facts are scored as -|s + r + tau_t - o|_1 with learned
// per-timestamp embeddings tau_t. Timestamps beyond the training range are
// clamped to the last trained embedding, which is exactly the weakness the
// paper highlights for interpolation methods applied to extrapolation.
class TTransEModel : public nn::Module {
 public:
  TTransEModel(int64_t num_entities, int64_t num_relations,
               int64_t num_timestamps, int64_t dim, uint64_t seed = 13);

  // Logits [B, N] for object queries (s, r), r in [0, 2M), predicting at
  // timestamp `t`.
  tensor::Tensor ScoreObjects(
      int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries);

  // Trains on the train split with full-softmax cross-entropy.
  void Fit(const tkg::TkgDataset& dataset, int64_t epochs, float lr,
           int64_t batch_size = 256);

 private:
  int64_t num_relations_;
  int64_t num_timestamps_;
  int64_t max_trained_time_ = 0;
  util::Rng rng_;
  std::unique_ptr<nn::Embedding> entities_;
  std::unique_ptr<nn::Embedding> relations_;   // 2M rows
  std::unique_ptr<nn::Embedding> timestamps_;  // num_timestamps rows
};

}  // namespace retia::baselines

#endif  // RETIA_BASELINES_TTRANSE_H_
