#ifndef RETIA_BASELINES_TIRGN_H_
#define RETIA_BASELINES_TIRGN_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/regcn.h"
#include "core/evolution_model.h"
#include "tkg/dataset.h"

namespace retia::baselines {

struct TirgnConfig {
  RegcnConfig local;  // the local recurrent (RE-GCN style) component
  // Initial logit of the global-history gate; sigmoid(gate) mixes the
  // global repetition distribution into the local scores.
  float gate_init = 0.0f;
};

// TiRGN-lite (Li et al., IJCAI 2022): time-guided recurrent graph network
// with *local* and *global* historical patterns. The local component is the
// RE-GCN style evolution; the global component scores candidates by their
// repetition frequency over the entire observed past (not just the k-step
// window), and a learned gate mixes the two distributions:
//
//   p = (1 - sigma(g)) * p_local + sigma(g) * p_global.
//
// This captures the design the paper discusses: "TiRGN uses historical
// one-hop repetitive relations to limit the scope of the candidate set"
// (Sec. IV-B2) — the global distribution concentrates mass on candidates
// that ever co-occurred with the query, which also reproduces TiRGN's
// weakness of occasionally kicking genuinely novel answers out.
//
// Global counts are read from a time-indexed occurrence index built over
// the whole dataset; only facts at timestamps <= the end of the evolved
// history window are counted, so there is no test leakage.
class TirgnModel : public core::EvolutionModel {
 public:
  explicit TirgnModel(const TirgnConfig& config);

  // Must be called once before training; builds the global occurrence
  // index over all splits (queries only ever look strictly into the past).
  void SetDataset(const tkg::TkgDataset* dataset);

  std::vector<StepState> Evolve(graph::GraphCache& cache,
                                const std::vector<int64_t>& history) override;

  LossParts ComputeLoss(const std::vector<StepState>& states,
                        const std::vector<tkg::Quadruple>& facts) override;

  tensor::Tensor ScoreObjects(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) override;

  tensor::Tensor ScoreRelations(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) override;

  int64_t history_len() const override { return config_.local.history_len; }
  // TiRGN's trainable state lives in its local RE-GCN; so does its RNG.
  util::Rng* MutableRng() override { return local_->MutableRng(); }

 private:
  // Normalised global repetition distribution for object queries (s, r)
  // using facts with time <= `up_to`. Rows with no history are zero.
  tensor::Tensor GlobalObjectProbs(
      const std::vector<std::pair<int64_t, int64_t>>& queries,
      int64_t up_to) const;
  tensor::Tensor GlobalRelationProbs(
      const std::vector<std::pair<int64_t, int64_t>>& queries,
      int64_t up_to) const;

  float GateValue() const;

  TirgnConfig config_;
  std::unique_ptr<RegcnModel> local_;
  tensor::Tensor gate_;

  const tkg::TkgDataset* dataset_ = nullptr;
  // (s, r) -> object -> sorted occurrence timestamps; inverse direction
  // included with relation id r + M. Same layout for (s, o) -> relation.
  std::map<std::pair<int64_t, int64_t>, std::map<int64_t, std::vector<int64_t>>>
      object_index_;
  std::map<std::pair<int64_t, int64_t>, std::map<int64_t, std::vector<int64_t>>>
      relation_index_;
  // End of the last evolved history window (counts use time <= this).
  int64_t last_history_end_ = -1;
};

}  // namespace retia::baselines

#endif  // RETIA_BASELINES_TIRGN_H_
