#ifndef RETIA_BASELINES_STATIC_MODELS_H_
#define RETIA_BASELINES_STATIC_MODELS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"
#include "tkg/dataset.h"
#include "util/rng.h"

namespace retia::baselines {

// The static KG-embedding baselines of Tables III/IV/VII. They ignore the
// time dimension entirely (Sec. IV-A2: "the static methods are trained
// without the time dimension"): all training facts are collapsed into one
// graph and scored with the method's scoring function.
enum class StaticScorerKind {
  kDistMult,    // <s, r, o> trilinear
  kComplEx,     // Re<s, r, conj(o)> in C^{d/2}
  kRotatE,      // -|s * r - o| with r a complex rotation
  kTransE,      // -|s + r - o|_1
  kConvE,       // 2D convolution over stacked reshaped embeddings
  kConvTransE,  // 1D convolution, translation-preserving
};

std::string StaticScorerName(StaticScorerKind kind);

struct StaticModelConfig {
  StaticScorerKind kind = StaticScorerKind::kDistMult;
  int64_t num_entities = 0;
  int64_t num_relations = 0;  // M; inverse relations are added internally
  int64_t dim = 32;           // must be even for ComplEx/RotatE
  int64_t conv_kernels = 16;
  float dropout = 0.2f;
  // ConvE reshapes d into a (reshape_h x d/reshape_h) image.
  int64_t reshape_h = 4;
  float rotate_gamma = 6.0f;
  uint64_t seed = 11;
};

// A static scorer with full-softmax training over the collapsed graph.
class StaticModel : public nn::Module {
 public:
  explicit StaticModel(const StaticModelConfig& config);

  // Logits of all entities for object queries (s, r), r in [0, 2M).
  tensor::Tensor ScoreObjects(
      const std::vector<std::pair<int64_t, int64_t>>& queries);

  // Logits of the M forward relations for queries (s, o). Supported by all
  // scorers except RotatE (whose relation scoring is not linear in r);
  // RotatE CHECK-fails here, matching its absence from Table VII.
  tensor::Tensor ScoreRelations(
      const std::vector<std::pair<int64_t, int64_t>>& queries);

  // Trains on the time-collapsed training split with cross-entropy over
  // objects (both directions) and, when supported, relations.
  void Fit(const tkg::TkgDataset& dataset, int64_t epochs, float lr,
           int64_t batch_size = 256);

  const StaticModelConfig& config() const { return config_; }

 private:
  tensor::Tensor QueryFeature(const std::vector<int64_t>& a_idx,
                              const std::vector<int64_t>& b_idx,
                              bool relation_task);

  StaticModelConfig config_;
  util::Rng rng_;
  std::unique_ptr<nn::Embedding> entities_;
  std::unique_ptr<nn::Embedding> relations_;  // 2M rows
  // Convolutional decoders (ConvE / Conv-TransE only).
  tensor::Tensor conv_weight_;
  tensor::Tensor conv_bias_;
  std::unique_ptr<nn::Linear> fc_;
};

}  // namespace retia::baselines

#endif  // RETIA_BASELINES_STATIC_MODELS_H_
