#include "baselines/renet.h"

#include "tensor/ops.h"

namespace retia::baselines {

using tensor::Tensor;

RenetModel::RenetModel(const RenetConfig& config)
    : config_(config), rng_(config.seed) {
  RETIA_CHECK(config.num_entities > 0);
  RETIA_CHECK(config.num_relations > 0);
  const int64_t d = config.dim;
  entity_init_ =
      std::make_unique<nn::Embedding>(config.num_entities, d, &rng_);
  relation_init_ =
      std::make_unique<nn::Embedding>(2 * config.num_relations, d, &rng_);
  entity_gru_ = std::make_unique<nn::GruCell>(d, d, &rng_);
  entity_head_ = std::make_unique<nn::Linear>(2 * d, d, &rng_);
  relation_head_ = std::make_unique<nn::Linear>(2 * d, d, &rng_);
  RegisterModule("entity_init", entity_init_.get());
  RegisterModule("relation_init", relation_init_.get());
  RegisterModule("entity_gru", entity_gru_.get());
  RegisterModule("entity_head", entity_head_.get());
  RegisterModule("relation_head", relation_head_.get());
}

Tensor RenetModel::NeighborSummary(const Tensor& entities,
                                   const graph::Subgraph& g) const {
  const int64_t n = config_.num_entities;
  if (g.num_edges() == 0) return Tensor::Zeros({n, config_.dim});
  // Every edge (s, r, o) deposits e_s into o's summary (inverse edges give
  // the other direction); per-entity means via in-degree normalisation.
  std::vector<int64_t> degree(n, 0);
  for (int64_t e = 0; e < g.num_edges(); ++e) ++degree[g.dst()[e]];
  std::vector<float> weights(g.num_edges());
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    weights[e] = 1.0f / static_cast<float>(degree[g.dst()[e]]);
  }
  Tensor gathered =
      tensor::ScaleRows(tensor::GatherRows(entities, g.src()), weights);
  return tensor::ScatterAddRows(gathered, g.dst(), n);
}

std::vector<core::EvolutionModel::StepState> RenetModel::Evolve(
    graph::GraphCache& cache, const std::vector<int64_t>& history) {
  const Tensor e0 = entity_init_->table();
  const Tensor r0 = relation_init_->table();
  std::vector<StepState> states;
  if (history.empty()) {
    states.push_back({e0, r0});
    return states;
  }
  Tensor e_prev = e0;
  for (int64_t t : history) {
    const graph::Subgraph& g = cache.subgraph(t);
    Tensor summary = NeighborSummary(e_prev, g);
    Tensor e_t = entity_gru_->Forward(summary, e_prev);
    states.push_back({e_t, r0});  // relations stay static
    e_prev = e_t;
  }
  return states;
}

core::EvolutionModel::LossParts RenetModel::ComputeLoss(
    const std::vector<StepState>& states,
    const std::vector<tkg::Quadruple>& facts) {
  RETIA_CHECK(!states.empty());
  const int64_t m = config_.num_relations;
  std::vector<std::pair<int64_t, int64_t>> entity_queries;
  std::vector<int64_t> entity_targets;
  for (const tkg::Quadruple& q : facts) {
    entity_queries.emplace_back(q.subject, q.relation);
    entity_targets.push_back(q.object);
    entity_queries.emplace_back(q.object, q.relation + m);
    entity_targets.push_back(q.subject);
  }
  Tensor loss_e = tensor::NllFromProbs(ScoreObjects(states, entity_queries),
                                       entity_targets);
  std::vector<std::pair<int64_t, int64_t>> relation_queries;
  std::vector<int64_t> relation_targets;
  for (const tkg::Quadruple& q : facts) {
    relation_queries.emplace_back(q.subject, q.object);
    relation_targets.push_back(q.relation);
  }
  Tensor loss_r = tensor::NllFromProbs(
      ScoreRelations(states, relation_queries), relation_targets);
  LossParts parts;
  parts.entity_loss = loss_e.Item();
  parts.relation_loss = loss_r.Item();
  parts.joint =
      tensor::Add(tensor::Scale(loss_e, config_.lambda_entity),
                  tensor::Scale(loss_r, 1.0f - config_.lambda_entity));
  return parts;
}

Tensor RenetModel::ScoreObjects(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries) {
  RETIA_CHECK(!states.empty());
  const StepState& st = states.back();
  std::vector<int64_t> s_idx;
  std::vector<int64_t> r_idx;
  for (const auto& [s, r] : queries) {
    s_idx.push_back(s);
    r_idx.push_back(r);
  }
  Tensor feat = tensor::Relu(entity_head_->Forward(
      tensor::ConcatCols(tensor::GatherRows(st.entities, s_idx),
                         tensor::GatherRows(st.relations, r_idx))));
  feat = tensor::Dropout(feat, config_.dropout, training(), &rng_);
  return tensor::Softmax(tensor::MatMulTransposeB(feat, st.entities));
}

Tensor RenetModel::ScoreRelations(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries) {
  RETIA_CHECK(!states.empty());
  const StepState& st = states.back();
  const int64_t m = config_.num_relations;
  std::vector<int64_t> s_idx;
  std::vector<int64_t> o_idx;
  for (const auto& [s, o] : queries) {
    s_idx.push_back(s);
    o_idx.push_back(o);
  }
  Tensor feat = tensor::Relu(relation_head_->Forward(
      tensor::ConcatCols(tensor::GatherRows(st.entities, s_idx),
                         tensor::GatherRows(st.entities, o_idx))));
  feat = tensor::Dropout(feat, config_.dropout, training(), &rng_);
  return tensor::Softmax(tensor::MatMulTransposeB(
      feat, tensor::SliceRows(st.relations, 0, m)));
}

}  // namespace retia::baselines
