#include "par/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"
#include "util/env.h"

namespace retia::par {

namespace {

// Depth of ParallelRun shard execution on this thread; > 0 means a nested
// ParallelRun must fall back to serial.
thread_local int tls_region_depth = 0;

struct RegionGuard {
  RegionGuard() { ++tls_region_depth; }
  ~RegionGuard() { --tls_region_depth; }
};

}  // namespace

struct ThreadPool::Job {
  std::function<void(int64_t)> fn;
  int64_t num_shards = 0;
  // Next shard to claim; >= num_shards once all shards are handed out.
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> completed{0};
  // Fire-and-forget Submit job: nobody waits on `done`, shards must not
  // mark the parallel region (so the task itself may ParallelRun), and an
  // escaped exception is fatal.
  bool detached = false;
  std::mutex mu;
  std::condition_variable done;
  std::exception_ptr error;  // guarded by mu
};

ThreadPool::ThreadPool(int threads) {
  const int workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InParallelRegion() { return tls_region_depth > 0; }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping, queue drained
      job = jobs_.front();
      if (job->next.load() >= job->num_shards) {
        // All shards already claimed; retire the job and look again.
        jobs_.pop_front();
        continue;
      }
    }
    RunShards(*job, /*on_worker=*/true);
  }
}

void ThreadPool::RunShards(Job& job, bool on_worker) {
  for (;;) {
    const int64_t shard = job.next.fetch_add(1);
    if (shard >= job.num_shards) return;
    if (on_worker) {
      RETIA_OBS_COUNTER_ADD("par.worker_shards", 1);
    } else {
      RETIA_OBS_COUNTER_ADD("par.caller_shards", 1);
    }
    if (job.detached) {
      // Serve ticks and other fire-and-forget tasks may themselves issue
      // ParallelRun, so they do not mark the parallel region.
      try {
        job.fn(shard);
      } catch (...) {
        util::CheckFailure(__FILE__, __LINE__,
                           "exception escaped a detached ThreadPool task");
      }
    } else {
      RegionGuard guard;
      try {
        RETIA_OBS_TRACE_SPAN("par.shard");
        job.fn(shard);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.mu);
        if (!job.error) job.error = std::current_exception();
      }
    }
    if (job.completed.fetch_add(1) + 1 == job.num_shards) {
      std::lock_guard<std::mutex> lock(job.mu);
      job.done.notify_all();
    }
  }
}

void ThreadPool::ParallelRun(int64_t num_shards,
                             const std::function<void(int64_t)>& fn) {
  if (num_shards <= 0) return;
  if (num_shards == 1 || workers_.empty() || InParallelRegion()) {
    // Serial fallback: shards run in order on the calling thread. Still
    // marked as a parallel region so doubly-nested calls stay serial too.
    RETIA_OBS_COUNTER_ADD("par.jobs_serial", 1);
    RegionGuard guard;
    for (int64_t shard = 0; shard < num_shards; ++shard) {
      RETIA_OBS_TRACE_SPAN("par.shard");
      fn(shard);
    }
    return;
  }
  RETIA_OBS_TIMED_SCOPE("par.job.us");
  RETIA_OBS_COUNTER_ADD("par.jobs", 1);
  RETIA_OBS_COUNTER_ADD("par.shards", num_shards);
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->num_shards = num_shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
    RETIA_OBS_GAUGE_SET("par.queue_depth",
                        static_cast<double>(jobs_.size()));
  }
  cv_.notify_all();
  RunShards(*job, /*on_worker=*/false);
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done.wait(lock,
                   [&] { return job->completed.load() == job->num_shards; });
  }
  {
    // Retire eagerly so exhausted jobs don't linger at the queue front.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->get() == job.get()) {
        jobs_.erase(it);
        break;
      }
    }
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::Submit(std::function<void()> task) {
  RETIA_OBS_COUNTER_ADD("par.submitted", 1);
  if (workers_.empty()) {
    task();
    return;
  }
  auto job = std::make_shared<Job>();
  job->detached = true;
  job->num_shards = 1;
  job->fn = [moved = std::move(task)](int64_t) { moved(); };
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
    RETIA_OBS_GAUGE_SET("par.queue_depth",
                        static_cast<double>(jobs_.size()));
  }
  cv_.notify_one();
}

int ParseThreadCount(const char* value, int fallback) {
  int64_t parsed = 0;
  if (!util::Env::ParseInt(value, &parsed)) return fallback;
  if (parsed < 1 || parsed > 4096) return fallback;
  return static_cast<int>(parsed);
}

int DefaultThreads() {
  static const int threads = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
    return ParseThreadCount(util::Env::Raw("RETIA_NUM_THREADS"), fallback);
  }();
  return threads;
}

namespace {
std::atomic<ThreadPool*> g_override_pool{nullptr};
}  // namespace

ThreadPool* DefaultPool() {
  ThreadPool* override_pool = g_override_pool.load();
  if (override_pool != nullptr) return override_pool;
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return pool;
}

ScopedDefaultPool::ScopedDefaultPool(ThreadPool* pool)
    : previous_(g_override_pool.exchange(pool)) {}

ScopedDefaultPool::~ScopedDefaultPool() { g_override_pool.store(previous_); }

}  // namespace retia::par
