#include "par/parallel_for.h"

#include "util/check.h"

namespace retia::par {

int64_t NumShards(int64_t n, int64_t grain) {
  RETIA_CHECK(grain >= 1);
  if (n <= grain) return 1;
  const int64_t shards = (n + grain - 1) / grain;
  return shards < kMaxShards ? shards : kMaxShards;
}

int64_t GrainRows(int64_t work_per_row) {
  if (work_per_row < 1) work_per_row = 1;
  const int64_t rows = (kTargetShardWork + work_per_row - 1) / work_per_row;
  return rows >= 1 ? rows : 1;
}

Range ShardRange(int64_t n, int64_t shards, int64_t shard) {
  RETIA_CHECK(shards >= 1);
  RETIA_CHECK(0 <= shard && shard < shards);
  return {shard * n / shards, (shard + 1) * n / shards};
}

void ParallelShards(int64_t num_shards,
                    const std::function<void(int64_t)>& body,
                    ThreadPool* pool) {
  if (num_shards <= 0) return;
  (pool != nullptr ? pool : DefaultPool())->ParallelRun(num_shards, body);
}

void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body,
                 ThreadPool* pool) {
  if (n <= 0) return;
  const int64_t shards = NumShards(n, grain);
  ParallelShards(
      shards,
      [&](int64_t shard) {
        const Range range = ShardRange(n, shards, shard);
        body(range.begin, range.end);
      },
      pool);
}

void ParallelForTiled(int64_t n, int64_t tile, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& body,
                      ThreadPool* pool) {
  RETIA_CHECK(tile >= 1);
  if (n <= 0) return;
  // Shard the ceil(n / tile) tile-rows, then scale ranges back to rows;
  // every boundary lands on a tile multiple except the clamped final end.
  const int64_t tiles = (n + tile - 1) / tile;
  const int64_t grain_tiles = (grain + tile - 1) / tile;
  const int64_t shards = NumShards(tiles, grain_tiles);
  ParallelShards(
      shards,
      [&](int64_t shard) {
        const Range range = ShardRange(tiles, shards, shard);
        const int64_t begin = range.begin * tile;
        const int64_t end = range.end * tile < n ? range.end * tile : n;
        if (begin < end) body(begin, end);
      },
      pool);
}

}  // namespace retia::par
