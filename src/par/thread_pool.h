#ifndef RETIA_PAR_THREAD_POOL_H_
#define RETIA_PAR_THREAD_POOL_H_

// Work-sharing thread pool behind retia's deterministic intra-op
// parallelism (see parallel_for.h for the fixed-shard helpers and
// DESIGN.md §7 for the bit-identity contract).
//
// Ownership / threading contract: a ThreadPool owns `threads - 1` worker
// threads; the caller of ParallelRun always participates, so progress
// never depends on free workers. ParallelRun may be called from any
// thread (concurrently from several), shard bodies must write disjoint
// outputs, and a nested ParallelRun runs serially. The process-wide
// DefaultPool() is shared by the tensor kernels, the optimizer, and
// serve::ServeEngine; it is created on first use and never destroyed.
// Queue depth, shard counts and caller-participation are exported as
// `par.*` metrics (docs/OBSERVABILITY.md).
//
// Usage:
//   par::ThreadPool pool(4);                  // or par::DefaultPool()
//   pool.ParallelRun(num_shards, [&](int64_t shard) {
//     const par::Range r = par::ShardRange(n, num_shards, shard);
//     for (int64_t i = r.begin; i < r.end; ++i) out[i] = f(i);
//   });

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace retia::par {

// Work-sharing thread pool used for intra-op parallelism.
//
// Determinism contract: ParallelRun executes `fn(shard)` for a FIXED set of
// shards whose boundaries callers derive from the problem size alone (see
// parallel_for.h), never from the thread count. Which thread runs which
// shard is unspecified, so shard bodies must write disjoint outputs; any
// cross-shard combine happens afterwards on the caller, in shard order.
// Under that contract every result is bit-identical for every pool size.
class ThreadPool {
 public:
  // `threads` is the total parallelism: the pool spawns `threads - 1`
  // workers and the calling thread participates in ParallelRun. With
  // threads <= 1 there are no workers and everything runs inline.
  explicit ThreadPool(int threads);

  // Drains queued work, then joins the workers. Destroying a pool while a
  // ParallelRun on it is still blocked is a usage error.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism (workers + the participating caller).
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(shard) for every shard in [0, num_shards) and blocks until all
  // of them finished. The calling thread executes shards alongside the
  // workers, so progress is guaranteed even when every worker is busy.
  // The first exception thrown by a shard is rethrown on the caller once
  // the job has fully finished. A ParallelRun issued from INSIDE a shard
  // (nested parallelism) runs its shards serially on that thread.
  void ParallelRun(int64_t num_shards, const std::function<void(int64_t)>& fn);

  // Fire-and-forget task (retia::serve drain ticks). With no workers the
  // task runs inline on the caller before Submit returns. Tasks must not
  // throw: an escaped exception aborts the process.
  void Submit(std::function<void()> task);

  // True while the current thread is executing a ParallelRun shard; used
  // for the nested-parallelism serial fallback.
  static bool InParallelRegion();

 private:
  struct Job;

  void WorkerLoop();
  // Claims and runs shards of `job` until none are left. `on_worker`
  // distinguishes pool workers from the participating caller in the
  // par.worker_shards / par.caller_shards metrics.
  static void RunShards(Job& job, bool on_worker);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Parses a RETIA_NUM_THREADS-style value: returns the parsed positive
// thread count, or `fallback` when `value` is null, empty, non-numeric, or
// not positive. Exposed separately so the parsing is unit-testable.
int ParseThreadCount(const char* value, int fallback);

// Thread count the process-wide pool uses: RETIA_NUM_THREADS when set to a
// positive integer, otherwise std::thread::hardware_concurrency() (min 1).
int DefaultThreads();

// Process-wide shared pool, built lazily on first use with
// DefaultThreads() threads. Every parallel kernel and retia::serve engine
// without an explicit pool shares it, so the process never oversubscribes
// the machine with per-subsystem worker fleets.
ThreadPool* DefaultPool();

// Test hook: makes DefaultPool() return `pool` for the guard's lifetime
// (nullptr restores the real default). Swapping pools while other threads
// are running kernels is a data race; tests swap only from a quiescent
// main thread.
class ScopedDefaultPool {
 public:
  explicit ScopedDefaultPool(ThreadPool* pool);
  ~ScopedDefaultPool();
  ScopedDefaultPool(const ScopedDefaultPool&) = delete;
  ScopedDefaultPool& operator=(const ScopedDefaultPool&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace retia::par

#endif  // RETIA_PAR_THREAD_POOL_H_
