#include "par/task_graph.h"

#include <atomic>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"
#include "util/env.h"

namespace retia::par {

TaskGraph::TaskId TaskGraph::Add(std::function<void()> fn,
                                 const std::vector<TaskId>& deps) {
  Shared& s = *s_;
  std::lock_guard<std::mutex> lock(s.mu);
  RETIA_CHECK_MSG(!s.finished, "TaskGraph::Add after Run() returned");
  const TaskId id = static_cast<TaskId>(s.nodes.size());
  s.nodes.emplace_back();
  Node& node = s.nodes.back();
  node.fn = std::move(fn);
  ++s.incomplete;
  bool dead_dep = false;
  for (TaskId dep : deps) {
    RETIA_CHECK_LE(0, dep);
    RETIA_CHECK_LT(dep, id);
    Node& d = s.nodes[static_cast<size_t>(dep)];
    switch (d.state) {
      case NodeState::kDone:
        break;  // already satisfied
      case NodeState::kFailed:
      case NodeState::kSkipped:
        dead_dep = true;
        break;
      default:
        ++node.unmet;
        d.dependents.push_back(id);
        break;
    }
  }
  if (dead_dep) {
    Skip(s, id);
  } else if (node.unmet == 0) {
    s.ready.push_back(id);
  }
  if (s.running) {
    MaybeSpawnRunners(s_);
    s.cv.notify_all();
  }
  return id;
}

void TaskGraph::Run(ThreadPool* pool, int max_concurrency) {
  RETIA_OBS_TIMED_SCOPE("par.interop.run.us");
  const std::shared_ptr<Shared> s = s_;
  std::unique_lock<std::mutex> lock(s->mu);
  RETIA_CHECK_MSG(!s->running && !s->finished, "TaskGraph::Run is single-use");
  s->running = true;
  s->pool = pool != nullptr ? pool : DefaultPool();
  s->cap = max_concurrency > 0 ? max_concurrency : InteropThreads();
  RETIA_OBS_COUNTER_ADD("par.interop.graphs", 1);
  MaybeSpawnRunners(s);
  RunnerLoop(s, lock, /*is_caller=*/true);
  // RunnerLoop returned, so incomplete == 0: every task finished and every
  // fn was released. Do NOT wait for runners still sitting in the pool
  // queue — when every worker is itself blocked in a nested Run() of its
  // own, nothing could ever drain the queue and the wait would deadlock.
  // A late runner holds the state via shared_ptr, sees `finished`, and
  // exits without touching anything.
  s->running = false;
  s->finished = true;
  if (s->first_error) std::rethrow_exception(s->first_error);
}

int64_t TaskGraph::size() const {
  std::lock_guard<std::mutex> lock(s_->mu);
  return static_cast<int64_t>(s_->nodes.size());
}

int64_t TaskGraph::tasks_succeeded() const {
  std::lock_guard<std::mutex> lock(s_->mu);
  return s_->succeeded;
}

int64_t TaskGraph::tasks_skipped() const {
  std::lock_guard<std::mutex> lock(s_->mu);
  return s_->skipped;
}

void TaskGraph::MaybeSpawnRunners(const std::shared_ptr<Shared>& s) {
  // A 1-thread pool executes Submit() inline on the caller — under s->mu
  // here — so the caller simply runs the whole graph itself.
  if (s->pool == nullptr || s->pool->threads() <= 1) return;
  while (s->active_runners + 1 < s->cap &&
         s->active_runners < static_cast<int64_t>(s->ready.size())) {
    ++s->active_runners;
    s->pool->Submit([s] {
      std::unique_lock<std::mutex> lock(s->mu);
      if (!s->finished) RunnerLoop(s, lock, /*is_caller=*/false);
      --s->active_runners;
      s->cv.notify_all();
    });
  }
}

void TaskGraph::RunnerLoop(const std::shared_ptr<Shared>& s,
                           std::unique_lock<std::mutex>& lk, bool is_caller) {
  for (;;) {
    if (!s->ready.empty()) {
      const TaskId id = s->ready.front();
      s->ready.pop_front();
      RunTask(s, lk, id);
      continue;
    }
    if (s->incomplete == 0) return;
    // Only the caller blocks waiting for new ready work: pool runners give
    // their worker thread back instead of parking it (Finish respawns
    // runners whenever completions unlock more ready tasks).
    if (!is_caller) return;
    s->cv.wait(lk);
  }
}

void TaskGraph::RunTask(const std::shared_ptr<Shared>& s,
                        std::unique_lock<std::mutex>& lk, TaskId id) {
  Node& node = s->nodes[static_cast<size_t>(id)];
  node.state = NodeState::kRunning;
  lk.unlock();
  std::exception_ptr error;
  {
    RETIA_OBS_TRACE_SPAN("par.interop.task");
    try {
      node.fn();
    } catch (...) {
      error = std::current_exception();
    }
  }
  node.fn = nullptr;  // release captures as soon as the task is over
  lk.lock();
  Finish(s, id, error);
}

void TaskGraph::Finish(const std::shared_ptr<Shared>& s, TaskId id,
                       std::exception_ptr error) {
  Node& node = s->nodes[static_cast<size_t>(id)];
  node.state = error ? NodeState::kFailed : NodeState::kDone;
  if (error == nullptr) ++s->succeeded;
  --s->incomplete;
  RETIA_OBS_COUNTER_ADD("par.interop.tasks", 1);
  if (error != nullptr &&
      (s->first_error_id == kInvalid || id < s->first_error_id)) {
    // Lowest failed id wins: with a fixed DAG the set of tasks that run
    // (and therefore can fail) does not depend on scheduling, so the
    // rethrown error is deterministic even when several tasks fail.
    s->first_error_id = id;
    s->first_error = error;
  }
  for (TaskId dep : node.dependents) {
    Node& d = s->nodes[static_cast<size_t>(dep)];
    if (d.state != NodeState::kPending) continue;
    if (error != nullptr) {
      Skip(*s, dep);
    } else if (--d.unmet == 0) {
      s->ready.push_back(dep);
    }
  }
  node.dependents.clear();
  MaybeSpawnRunners(s);
  s->cv.notify_all();
}

void TaskGraph::Skip(Shared& s, TaskId id) {
  Node& node = s.nodes[static_cast<size_t>(id)];
  node.state = NodeState::kSkipped;
  node.fn = nullptr;
  ++s.skipped;
  --s.incomplete;
  for (TaskId dep : node.dependents) {
    if (s.nodes[static_cast<size_t>(dep)].state == NodeState::kPending) {
      Skip(s, dep);
    }
  }
  node.dependents.clear();
}

namespace {
std::atomic<int> g_interop_override{0};
}  // namespace

int InteropThreads() {
  const int override_threads =
      g_interop_override.load(std::memory_order_relaxed);
  if (override_threads > 0) return override_threads;
  static const int threads = ParseThreadCount(
      util::Env::Raw("RETIA_INTEROP_THREADS"), DefaultThreads());
  return threads;
}

ScopedInteropThreads::ScopedInteropThreads(int threads)
    : previous_(g_interop_override.exchange(threads > 0 ? threads : 0)) {}

ScopedInteropThreads::~ScopedInteropThreads() {
  g_interop_override.store(previous_);
}

}  // namespace retia::par
