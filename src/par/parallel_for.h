#ifndef RETIA_PAR_PARALLEL_FOR_H_
#define RETIA_PAR_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "par/thread_pool.h"

namespace retia::par {

// Shard-count ceiling. A constant (never the thread count) so that shard
// boundaries — and therefore per-shard floating-point partials — depend on
// the problem size alone and survive any pool size bit-identically.
inline constexpr int64_t kMaxShards = 64;

// Soft target for the amount of work (in "items", whatever the caller's
// unit is — flops, elements, rows x columns) one shard should carry before
// splitting further. Small problems therefore stay on one shard and take
// the exact serial code path.
inline constexpr int64_t kTargetShardWork = 1 << 15;

// Number of fixed shards for `n` items at a soft minimum of `grain` items
// per shard: min(kMaxShards, ceil(n / grain)), at least 1. Pure function
// of (n, grain).
int64_t NumShards(int64_t n, int64_t grain);

// Rows-per-shard grain for row-blocked kernels whose per-row cost is
// `work_per_row` items: ceil(kTargetShardWork / work_per_row), >= 1.
int64_t GrainRows(int64_t work_per_row);

// Half-open item range of `shard` when [0, n) is split into `shards`
// near-equal contiguous pieces.
struct Range {
  int64_t begin = 0;
  int64_t end = 0;
};
Range ShardRange(int64_t n, int64_t shards, int64_t shard);

// Runs body(shard) for shard in [0, num_shards) on `pool` (DefaultPool()
// when null). Blocks until done; the caller participates.
void ParallelShards(int64_t num_shards,
                    const std::function<void(int64_t)>& body,
                    ThreadPool* pool = nullptr);

// Runs body(begin, end) over the fixed shards of [0, n). Shard bodies must
// write disjoint outputs; under that contract the result is bit-identical
// to the serial loop for every thread count.
void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body,
                 ThreadPool* pool = nullptr);

// Like ParallelFor, but every range boundary except the final `n` falls on
// a multiple of `tile`. For register-blocked kernels that process `tile`
// rows per step (simd's 4-row GEMM micro-kernels), this keeps shard
// boundaries off the slow 1-row remainder path. Shards are still a pure
// function of (n, tile, grain) — tile-aligned sharding is a performance
// knob only, valid for the same disjoint-output bodies as ParallelFor,
// whose results by contract do not depend on where ranges split.
void ParallelForTiled(int64_t n, int64_t tile, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& body,
                      ThreadPool* pool = nullptr);

// Deterministic reduction: evaluates partial(begin, end) on every fixed
// shard of [0, n) in parallel, then folds the per-shard partials IN SHARD
// ORDER on the calling thread:
//   combine(...combine(combine(init, p_0), p_1)..., p_{S-1}).
// Because both the shard boundaries and the fold order are functions of
// (n, grain) only, the result is bit-identical for every thread count.
template <typename T, typename PartialFn, typename CombineFn>
T DeterministicReduce(int64_t n, int64_t grain, T init, PartialFn partial,
                      CombineFn combine, ThreadPool* pool = nullptr) {
  if (n <= 0) return init;
  const int64_t shards = NumShards(n, grain);
  if (shards == 1) return combine(std::move(init), partial(int64_t{0}, n));
  std::vector<T> partials(static_cast<size_t>(shards));
  ParallelShards(
      shards,
      [&](int64_t shard) {
        const Range range = ShardRange(n, shards, shard);
        partials[static_cast<size_t>(shard)] = partial(range.begin, range.end);
      },
      pool);
  T acc = std::move(init);
  for (int64_t shard = 0; shard < shards; ++shard) {
    acc = combine(std::move(acc), std::move(partials[static_cast<size_t>(shard)]));
  }
  return acc;
}

}  // namespace retia::par

#endif  // RETIA_PAR_PARALLEL_FOR_H_
