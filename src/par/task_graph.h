#ifndef RETIA_PAR_TASK_GRAPH_H_
#define RETIA_PAR_TASK_GRAPH_H_

// retia::par::TaskGraph — deterministic inter-op task scheduling on the
// shared ThreadPool (DESIGN.md §12).
//
// Where parallel_for.h splits ONE kernel into fixed shards (intra-op),
// TaskGraph runs MANY coarse units — history-timestep snapshot builds,
// pipelined evolution steps, batched decode ticks — as a dependency DAG.
// Tasks with no unmet dependencies run concurrently; dependency edges
// serialize everything that must stay in program order, so a recurrent
// chain (evolve step t after step t-1) executes exactly as the serial
// loop would while independent prep work overlaps it.
//
// Determinism contract: the DAG (task bodies + edges) is built from the
// problem alone, never from the thread count. Dependency completion is
// published through the graph mutex, so a task observes everything its
// dependencies wrote (happens-before), and any cross-task combine happens
// in a fixed order chosen by the caller. Under that contract results are
// bit-identical for every RETIA_INTEROP_THREADS value, including 1 (the
// serial path: the caller alone runs ready tasks in FIFO order).
//
// Ownership / threading contract: Run() is synchronous and single-use; the
// caller participates, so progress never depends on free pool workers (a
// 1-thread pool runs the whole graph inline on the caller). Extra runners
// are dispatched to the pool as detached tasks, capped at
// `max_concurrency` total (InteropThreads() by default). Task bodies may
// issue nested ParallelRun (intra-op inside inter-op), may Add() new
// tasks to the SAME graph while it runs (nested submission), and may Run()
// a DIFFERENT TaskGraph of their own (nested inter-op, e.g. a pipelined
// trainer step whose body evolves through its own graph): the inner run
// completes caller-driven even when every pool worker is busy, and Run()
// never blocks on runner jobs still sitting in the pool queue — the graph
// state is shared-owned, so a runner scheduled after Run() returned is a
// harmless no-op instead of a use-after-free (and waiting for it, with all
// workers parked in nested runs of their own, would deadlock). Exceptions
// thrown by a task are caught; dependents of a failed task are skipped,
// independent tasks still run, and once the graph quiesces Run() rethrows
// the error of the lowest-id failed task (a deterministic choice).
//
// Usage:
//   par::TaskGraph graph;
//   auto prep = graph.Add([&] { BuildSnapshot(t); });
//   prev = graph.Add([&] { EvolveStep(t); }, {prep, prev});
//   graph.Run();  // blocks; rethrows the first (lowest-id) task error

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "par/thread_pool.h"

namespace retia::par {

class TaskGraph {
 public:
  using TaskId = int64_t;
  static constexpr TaskId kInvalid = -1;

  TaskGraph() = default;
  ~TaskGraph() = default;

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  // Adds a task that runs after every task in `deps` (ids returned by
  // earlier Add calls) has finished. May be called before Run(), or from
  // inside a running task of this graph — the new task joins the same run.
  // If any dependency already failed or was skipped, the new task is
  // skipped too. CHECK-fails on an id that is not an earlier task's, or
  // when called after Run() returned.
  TaskId Add(std::function<void()> fn, const std::vector<TaskId>& deps = {});

  // Runs the graph to completion on `pool` (DefaultPool() when null) with
  // at most `max_concurrency` tasks executing at once (InteropThreads()
  // when <= 0). The caller participates as a runner. Single-use: a second
  // Run() CHECK-fails. Rethrows the error of the lowest-id failed task
  // after every runnable task has finished.
  void Run(ThreadPool* pool = nullptr, int max_concurrency = 0);

  // Tasks added so far (any state).
  int64_t size() const;

  // Tasks that ran to completion (excludes failed and skipped). Valid
  // after Run() returned; used by tests.
  int64_t tasks_succeeded() const;

  // Tasks skipped because a (transitive) dependency failed.
  int64_t tasks_skipped() const;

 private:
  enum class NodeState { kPending, kRunning, kDone, kFailed, kSkipped };

  struct Node {
    std::function<void()> fn;
    int64_t unmet = 0;                // not-yet-finished dependencies
    std::vector<TaskId> dependents;   // edges out
    NodeState state = NodeState::kPending;
  };

  // The mutable graph state, shared-owned by the TaskGraph object and by
  // every runner job submitted to the pool. A runner the pool schedules
  // only after Run() already returned (possible whenever the queue backs
  // up) then still holds valid state, sees `finished`, and exits — Run()
  // must NOT wait for queued runners, because with every worker blocked
  // inside a nested Run() nothing would ever drain the queue.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    // deque: push_back from nested Add must not invalidate the reference a
    // concurrently executing RunTask holds into an earlier node.
    std::deque<Node> nodes;
    std::deque<TaskId> ready;   // FIFO — the deterministic serial order
    int64_t incomplete = 0;     // nodes not yet done/failed/skipped
    int64_t succeeded = 0;
    int64_t skipped = 0;
    int64_t active_runners = 0;  // runners alive or still queued (caps spawns)
    std::exception_ptr first_error;
    TaskId first_error_id = kInvalid;
    bool running = false;
    bool finished = false;
    ThreadPool* pool = nullptr;
    int cap = 1;
  };

  // All helpers require s->mu held (RunTask releases it around the task
  // body). They are static and take the shared state explicitly so runner
  // lambdas never capture `this`.
  static void MaybeSpawnRunners(const std::shared_ptr<Shared>& s);
  static void RunnerLoop(const std::shared_ptr<Shared>& s,
                         std::unique_lock<std::mutex>& lk, bool is_caller);
  static void RunTask(const std::shared_ptr<Shared>& s,
                      std::unique_lock<std::mutex>& lk, TaskId id);
  static void Finish(const std::shared_ptr<Shared>& s, TaskId id,
                     std::exception_ptr error);
  static void Skip(Shared& s, TaskId id);

  const std::shared_ptr<Shared> s_ = std::make_shared<Shared>();
};

// Inter-op width: how many TaskGraph tasks may execute concurrently by
// default. RETIA_INTEROP_THREADS when set to a positive integer, otherwise
// DefaultThreads(). Independent from the pool size on purpose: the graph
// shares DefaultPool() with the intra-op kernels, this knob only caps how
// many of its tasks are in flight.
int InteropThreads();

// Test hook: makes InteropThreads() return `threads` for the guard's
// lifetime (<= 0 restores the real default). Same quiescence caveat as
// ScopedDefaultPool.
class ScopedInteropThreads {
 public:
  explicit ScopedInteropThreads(int threads);
  ~ScopedInteropThreads();
  ScopedInteropThreads(const ScopedInteropThreads&) = delete;
  ScopedInteropThreads& operator=(const ScopedInteropThreads&) = delete;

 private:
  int previous_;
};

}  // namespace retia::par

#endif  // RETIA_PAR_TASK_GRAPH_H_
