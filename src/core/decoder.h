#ifndef RETIA_CORE_DECODER_H_
#define RETIA_CORE_DECODER_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"
#include "quant/quant.h"
#include "util/rng.h"

namespace retia::core {

// Conv-TransE decoder (Shang et al. 2019), the component unit of the
// time-variability E-decoder and R-decoder (Eq. 11/12). The two query
// embeddings are stacked as a 2-channel length-d signal, convolved with
// `kernels` 2x`kernel_size` filters, flattened and projected back to d;
// scores are inner products with every candidate embedding.
class ConvTransEDecoder : public nn::Module {
 public:
  // `with_layernorm` inserts layer normalisation after the fully connected
  // projection (the normalisation whose interaction with mean pooling the
  // paper discusses in Sec. IV-D2/IV-E). Off by default, matching the
  // released RETIA configuration.
  ConvTransEDecoder(int64_t dim, int64_t kernels, int64_t kernel_size,
                    float dropout, util::Rng* rng,
                    bool with_layernorm = false);

  // a:[B,d], b:[B,d] (e.g. subject and relation embeddings),
  // candidates:[X,d] -> logits [B,X].
  tensor::Tensor Forward(const tensor::Tensor& a, const tensor::Tensor& b,
                         const tensor::Tensor& candidates,
                         util::Rng* rng) const;

  // Quantized decode (docs/QUANTIZATION.md): the identical feature
  // pipeline, with the candidate inner products computed by the int8 GEMM
  // against pre-quantized candidate rows. Eval/serve only — callers hold a
  // NoGradGuard; the result carries no autograd graph.
  tensor::Tensor ForwardQuantized(const tensor::Tensor& a,
                                  const tensor::Tensor& b,
                                  const quant::QuantizedRows& candidates,
                                  util::Rng* rng) const;

 private:
  // Shared feature half of both Forward variants: everything up to (but
  // not including) the candidate product.
  tensor::Tensor Features(const tensor::Tensor& a, const tensor::Tensor& b,
                          util::Rng* rng) const;

  int64_t dim_;
  int64_t kernels_;
  float dropout_;
  tensor::Tensor conv_weight_;  // [kernels, 2, kernel_size]
  tensor::Tensor conv_bias_;    // [kernels]
  std::unique_ptr<nn::Linear> fc_;  // kernels*d -> d
  tensor::Tensor ln_gamma_;  // layer-norm scale (when with_layernorm)
  tensor::Tensor ln_beta_;   // layer-norm shift
};

}  // namespace retia::core

#endif  // RETIA_CORE_DECODER_H_
