#ifndef RETIA_CORE_EVOLUTION_MODEL_H_
#define RETIA_CORE_EVOLUTION_MODEL_H_

#include <utility>
#include <vector>

#include "graph/graph_cache.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "tkg/dataset.h"
#include "util/rng.h"

namespace retia::core {

// Common interface of "evolutional representation" extrapolation models
// (RETIA and the RE-GCN family): unroll embeddings over a history of
// temporal subgraphs, then decode entity/relation queries against the
// evolved embeddings. The shared trainer and evaluator work against this
// interface.
class EvolutionModel : public nn::Module {
 public:
  // Evolved embeddings after one history timestamp.
  struct StepState {
    tensor::Tensor entities;   // [N, d]
    tensor::Tensor relations;  // [2M, d]
  };

  struct LossParts {
    tensor::Tensor joint;  // scalar loss to backpropagate
    float entity_loss = 0.0f;
    float relation_loss = 0.0f;
  };

  ~EvolutionModel() override = default;

  // Unrolls over `history` (ascending timestamps). An empty history must
  // yield one state holding the initial embeddings.
  virtual std::vector<StepState> Evolve(
      graph::GraphCache& cache, const std::vector<int64_t>& history) = 0;

  // Joint loss for the facts of one future timestamp.
  virtual LossParts ComputeLoss(const std::vector<StepState>& states,
                                const std::vector<tkg::Quadruple>& facts) = 0;

  // Probabilities for object queries (s, r), r in [0, 2M) -> [B, N].
  virtual tensor::Tensor ScoreObjects(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) = 0;

  // Probabilities for relation queries (s, o) -> [B, M].
  virtual tensor::Tensor ScoreRelations(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) = 0;

  // Length k of the history window the model was configured for.
  virtual int64_t history_len() const = 0;

  // Whether Evolve consumes twin hyperrelation subgraphs in addition to
  // the per-timestamp subgraphs. Pipelines use this to prefetch the right
  // snapshot flavour (GraphCache::Prefetch) ahead of the recurrent chain.
  virtual bool uses_hypergraphs() const { return false; }

  // The RNG stream the model consumes during training (dropout etc.), or
  // nullptr for RNG-free models. train::Trainer persists and restores it
  // through retia::ckpt so a resumed run replays the exact dropout masks
  // an uninterrupted run would have drawn.
  virtual util::Rng* MutableRng() { return nullptr; }
};

}  // namespace retia::core

#endif  // RETIA_CORE_EVOLUTION_MODEL_H_
