#ifndef RETIA_CORE_RGCN_H_
#define RETIA_CORE_RGCN_H_

#include <vector>

#include "graph/hypergraph.h"
#include "graph/subgraph.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "util/rng.h"

namespace retia::core {

// One layer of the entity-aggregating R-GCN (Eq. 4):
//
//   e_o' = f( sum_r sum_{s in E_o^r} (1/c_{o,r}) W_r (e_s + r)  +  W_0 e_o )
//
// with f = RReLU. The per-relation transforms W_r use the basis
// decomposition of Schlichtkrull et al. (W_r = sum_b a_{r,b} V_b) so the
// parameter count is independent of the relation vocabulary size.
class EntityRgcnLayer : public nn::Module {
 public:
  EntityRgcnLayer(int64_t dim, int64_t num_relations_aug, int64_t num_bases,
                  float dropout, util::Rng* rng);

  // nodes:[N,d], relations:[2M,d] -> [N,d].
  tensor::Tensor Forward(const tensor::Tensor& nodes,
                         const tensor::Tensor& relations,
                         const graph::Subgraph& g, util::Rng* rng) const;

 private:
  int64_t num_bases_;
  float dropout_;
  std::vector<tensor::Tensor> bases_;  // num_bases x [d,d]
  tensor::Tensor coeff_;               // [2M, num_bases]
  tensor::Tensor self_weight_;         // [d,d]
};

// One layer of the relation-aggregating R-GCN over a twin hyperrelation
// subgraph (Eq. 1):
//
//   r_o' = f( sum_hr sum_{r_s in R_o^hr} (1/c_{o,hr}) W_hr (r_s + hr)
//             + W_0 r_o )
//
// The hyperrelation vocabulary is fixed at 2H = 8 so each hyperrelation
// gets its own full transform W_hr.
class RelationRgcnLayer : public nn::Module {
 public:
  RelationRgcnLayer(int64_t dim, float dropout, util::Rng* rng);

  // relations:[2M,d], hyperrelations:[8,d] -> [2M,d].
  tensor::Tensor Forward(const tensor::Tensor& relations,
                         const tensor::Tensor& hyperrelations,
                         const graph::HyperSubgraph& hg,
                         util::Rng* rng) const;

 private:
  float dropout_;
  std::vector<tensor::Tensor> weights_;  // 8 x [d,d]
  tensor::Tensor self_weight_;           // [d,d]
};

// A stack of `layers` EntityRgcnLayer applications, all consuming the same
// relation embeddings (as in RE-GCN): EAR_GCN of Eq. 5.
class EntityRgcnStack : public nn::Module {
 public:
  EntityRgcnStack(int64_t dim, int64_t num_relations_aug, int64_t num_bases,
                  int64_t layers, float dropout, util::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& nodes,
                         const tensor::Tensor& relations,
                         const graph::Subgraph& g, util::Rng* rng) const;

 private:
  std::vector<std::unique_ptr<EntityRgcnLayer>> layers_;
};

// A stack of RelationRgcnLayer applications: RAR_GCN of Eq. 2.
class RelationRgcnStack : public nn::Module {
 public:
  RelationRgcnStack(int64_t dim, int64_t layers, float dropout,
                    util::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& relations,
                         const tensor::Tensor& hyperrelations,
                         const graph::HyperSubgraph& hg,
                         util::Rng* rng) const;

 private:
  std::vector<std::unique_ptr<RelationRgcnLayer>> layers_;
};

}  // namespace retia::core

#endif  // RETIA_CORE_RGCN_H_
