#ifndef RETIA_CORE_RETIA_H_
#define RETIA_CORE_RETIA_H_

#include <memory>
#include <vector>

#include "core/decoder.h"
#include "core/evolution_model.h"
#include "core/rgcn.h"
#include "graph/graph_cache.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/rnn_cells.h"
#include "tkg/dataset.h"
#include "util/rng.h"

namespace retia::core {

// How much of the relation-modeling pipeline is active; the sweep of
// Fig. 6/7 ("wo.RM" / "w.MP" / "w.MP+LSTM" / "w.MP+LSTM+Agg"). The last
// level is full RETIA; the third is the RE-GCN/TiRGN level that suffers
// from the "message islands" problem.
enum class RelationMode {
  kNone,       // initial embeddings straight to the decoder
  kMp,         // mean pooling of adjacent entities only
  kMpLstm,     // mean pooling + LSTM evolution
  kMpLstmAgg,  // + hyperrelation-subgraph aggregation (RAM)
};

// How hyperrelation embeddings delivered to the RAM are produced; the sweep
// of Fig. 5 ("wo.HRM" / "w.HMP" / "w.HMP+HLSTM").
enum class HyperMode {
  kNone,      // static initial hyperrelation embeddings
  kHmp,       // hyper mean pooling of adjacent relations
  kHmpHlstm,  // + hyper LSTM evolution (full model)
};

struct RetiaConfig {
  int64_t num_entities = 0;
  int64_t num_relations = 0;  // M (before inverse augmentation)
  int64_t dim = 32;           // d
  int64_t history_len = 3;    // k
  int64_t rgcn_layers = 2;
  int64_t num_bases = 2;
  int64_t conv_kernels = 16;
  int64_t conv_kernel_size = 3;
  float dropout = 0.2f;
  float lambda_entity = 0.7f;  // loss weight of the entity task

  // Ablation switches (Tables VI/IX, Figs. 3-7).
  bool use_eam = true;
  bool use_ram = true;
  bool use_tim = true;
  HyperMode hyper_mode = HyperMode::kHmpHlstm;
  RelationMode relation_mode = RelationMode::kMpLstmAgg;
  // When true, decode against the embeddings of every historical timestamp
  // and sum the probabilities (Eq. 13/14, CEN-style time variability);
  // otherwise only the final evolved embeddings are used.
  bool time_variability_decode = true;

  // Optional static-graph constraint (inherited from RE-GCN, used by the
  // paper for the ICEWS datasets, Sec. IV-A4): evolving entity embeddings
  // are kept within a step-dependent angle of per-type static embeddings.
  // Enable with SetEntityTypes() after construction.
  bool use_static_constraint = false;
  float static_angle_step_deg = 10.0f;  // allowed angle opens by this/step
  float static_weight = 0.5f;           // weight of the constraint loss

  uint64_t seed = 7;
};

// The RETIA model (Sec. III): EAM + RAM + TIM over a k-length history of
// temporal subgraphs, with time-variability Conv-TransE decoders.
class RetiaModel : public EvolutionModel {
 public:
  explicit RetiaModel(const RetiaConfig& config);

  // Runs the RAM/EAM/TIM evolution over `history` (ascending timestamps,
  // typically GraphCache::HistoryBefore(t, k)). Returns one state per
  // history step; empty history yields a single state holding the initial
  // embeddings.
  std::vector<StepState> Evolve(graph::GraphCache& cache,
                                const std::vector<int64_t>& history) override;

  // Joint training loss (Eq. 13/14) for the facts of one future timestamp.
  // Entity loss covers both query directions via inverse relations.
  LossParts ComputeLoss(const std::vector<StepState>& states,
                        const std::vector<tkg::Quadruple>& facts) override;

  // Summed decoder probabilities for object queries (s, r) with r in
  // [0, 2M) (use r+M for subject queries) -> [B, N].
  tensor::Tensor ScoreObjects(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) override;

  // Summed decoder probabilities for relation queries (s, o) -> [B, M].
  tensor::Tensor ScoreRelations(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) override;

  // Frozen (serving) entry points: identical math to ScoreObjects /
  // ScoreRelations, but const and rng-free, so concurrent callers can decode
  // against the same pre-evolved states without any shared mutable state.
  // Requires eval mode (SetTraining(false)); every caller thread must hold
  // its own tensor::NoGradGuard (grad mode is thread-local, see tensor.h).
  tensor::Tensor ScoreObjectsFrozen(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) const;
  tensor::Tensor ScoreRelationsFrozen(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries) const;

  // Quantized frozen decode (docs/QUANTIZATION.md): identical structure to
  // ScoreObjectsFrozen, but each state's entity-candidate inner products
  // run the exact-int32 int8 GEMM against `qcands[i]` — the pre-quantized
  // rows of states[i].entities (one QuantizeTensorRows per evolved
  // timestamp, built by the serving layer). Tolerance-bound against the
  // f32 path; bit-exact across simd backends and thread counts.
  tensor::Tensor ScoreObjectsFrozenQuantized(
      const std::vector<StepState>& states,
      const std::vector<quant::QuantizedRows>& qcands,
      const std::vector<std::pair<int64_t, int64_t>>& queries) const;

  int64_t history_len() const override { return config_.history_len; }

  bool uses_hypergraphs() const override {
    return config_.use_ram && config_.relation_mode == RelationMode::kMpLstmAgg;
  }

  // Installs the static typing information consumed by the static-graph
  // constraint: types[e] in [0, num_types) for every entity. Requires
  // config.use_static_constraint.
  void SetEntityTypes(const std::vector<int64_t>& types, int64_t num_types);

  const RetiaConfig& config() const { return config_; }
  util::Rng& rng() { return rng_; }
  util::Rng* MutableRng() override { return &rng_; }

  // Static-constraint introspection, consumed by retia::ckpt so model
  // artifacts can serialize the SetEntityTypes() table as its own section.
  bool has_entity_types() const { return !entity_types_.empty(); }
  const std::vector<int64_t>& entity_types() const { return entity_types_; }
  int64_t num_static_types() const { return num_static_types_; }

 private:
  // Shared decode bodies; `rng` is only touched in training mode (dropout),
  // the frozen entry points pass nullptr.
  tensor::Tensor ScoreObjectsImpl(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries,
      util::Rng* rng) const;
  tensor::Tensor ScoreRelationsImpl(
      const std::vector<StepState>& states,
      const std::vector<std::pair<int64_t, int64_t>>& queries,
      util::Rng* rng) const;

  // Index plan of one mean pooling (gather src rows, scale by 1/degree,
  // scatter-add into dst rows of a [dst_rows, d] output). A plan depends
  // on graph structure only — no embeddings, no RNG — so the inter-op
  // pipeline builds the plans of future timesteps while the recurrent
  // chain is still evolving earlier ones (DESIGN.md §12).
  struct PoolPlan {
    std::vector<int64_t> src_idx;
    std::vector<int64_t> dst_idx;
    std::vector<float> weights;
    int64_t dst_rows = 0;
  };

  // TIM Eq. 7: mean pooling of adjacent entity embeddings per relation.
  static PoolPlan EntityPoolPlan(const graph::Subgraph& g, int64_t rel_aug);
  // TIM Eq. 9: hyper mean pooling of adjacent relation embeddings.
  static PoolPlan HyperPoolPlan(const graph::HyperSubgraph& hg);
  // Executes a plan against an embedding table; empty plans yield zeros.
  tensor::Tensor ApplyPoolPlan(const tensor::Tensor& table,
                               const PoolPlan& plan) const;

  RetiaConfig config_;
  util::Rng rng_;

  std::unique_ptr<nn::Embedding> entity_init_;    // E_0
  std::unique_ptr<nn::Embedding> relation_init_;  // R_0
  std::unique_ptr<nn::Embedding> hyper_init_;     // HR_0
  std::unique_ptr<nn::Embedding> static_type_init_;  // static constraint
  std::vector<int64_t> entity_types_;
  int64_t num_static_types_ = 0;
  // Frozen random embeddings used by the ablation protocols (Sec. IV-C /
  // IV-D1): the ablated side keeps its initialization "unchanged".
  tensor::Tensor frozen_entities_;       // when !use_eam
  tensor::Tensor frozen_relations_;      // when !use_ram
  tensor::Tensor eam_static_relations_;  // when !use_tim

  std::unique_ptr<EntityRgcnStack> entity_rgcn_;
  std::unique_ptr<RelationRgcnStack> relation_rgcn_;
  std::unique_ptr<nn::GruCell> entity_gru_;    // Eq. 6
  std::unique_ptr<nn::GruCell> relation_gru_;  // Eq. 3
  std::unique_ptr<nn::ProjectedLstmCell> relation_lstm_;  // Eq. 8
  std::unique_ptr<nn::ProjectedLstmCell> hyper_lstm_;     // Eq. 10
  std::unique_ptr<nn::Linear> mp_proj_;  // 2d->d for RelationMode::kMp

  std::unique_ptr<ConvTransEDecoder> entity_decoder_;
  std::unique_ptr<ConvTransEDecoder> relation_decoder_;
};

}  // namespace retia::core

#endif  // RETIA_CORE_RETIA_H_
