#include "core/rgcn.h"

#include <string>

#include "nn/init.h"
#include "tensor/ops.h"

namespace retia::core {

using tensor::Tensor;

namespace {
constexpr float kRReluLo = 1.0f / 8.0f;
constexpr float kRReluHi = 1.0f / 3.0f;
}  // namespace

EntityRgcnLayer::EntityRgcnLayer(int64_t dim, int64_t num_relations_aug,
                                 int64_t num_bases, float dropout,
                                 util::Rng* rng)
    : num_bases_(num_bases), dropout_(dropout) {
  RETIA_CHECK(num_bases >= 1);
  for (int64_t b = 0; b < num_bases; ++b) {
    bases_.push_back(RegisterParameter("basis" + std::to_string(b),
                                       nn::XavierUniform({dim, dim}, rng)));
  }
  coeff_ = RegisterParameter(
      "coeff", nn::XavierUniform({num_relations_aug, num_bases}, rng));
  self_weight_ =
      RegisterParameter("self_weight", nn::XavierUniform({dim, dim}, rng));
}

Tensor EntityRgcnLayer::Forward(const Tensor& nodes, const Tensor& relations,
                                const graph::Subgraph& g,
                                util::Rng* rng) const {
  RETIA_CHECK_EQ(relations.Dim(0), g.num_relations_aug());
  const int64_t num_nodes = nodes.Dim(0);
  // The gather / per-edge GEMM / scatter-add kernels below run on
  // par::DefaultPool() with deterministic fixed shards (GatherRows /
  // MatMulTransposeB / ScatterAddRows in tensor/), so the message passing
  // parallelizes across edges while staying bit-identical to the serial
  // aggregation for every thread count.
  // Per-edge input: e_s + r.
  Tensor x = tensor::Add(tensor::GatherRows(nodes, g.src()),
                         tensor::GatherRows(relations, g.rel()));
  // Basis-decomposed per-edge transform:
  //   m_e = sum_b coeff[rel_e, b] * (x_e V_b^T).
  Tensor coeff_e = tensor::GatherRows(coeff_, g.rel());
  Tensor msg;
  for (int64_t b = 0; b < num_bases_; ++b) {
    Tensor part = tensor::MulColBroadcast(
        tensor::MatMulTransposeB(x, bases_[b]),
        tensor::SliceCols(coeff_e, b, 1));
    msg = msg.defined() ? tensor::Add(msg, part) : part;
  }
  // Degree normalisation 1/c_{o,r} and aggregation.
  msg = tensor::ScaleRows(msg, g.edge_norm());
  Tensor agg = tensor::ScatterAddRows(msg, g.dst(), num_nodes);
  // Self loop and activation.
  Tensor out = tensor::Add(agg, tensor::MatMulTransposeB(nodes, self_weight_));
  out = tensor::RRelu(out, kRReluLo, kRReluHi, training(), rng);
  return tensor::Dropout(out, dropout_, training(), rng);
}

RelationRgcnLayer::RelationRgcnLayer(int64_t dim, float dropout,
                                     util::Rng* rng)
    : dropout_(dropout) {
  for (int64_t hr = 0; hr < graph::kNumHyperRelationsAug; ++hr) {
    weights_.push_back(RegisterParameter("w_hr" + std::to_string(hr),
                                         nn::XavierUniform({dim, dim}, rng)));
  }
  self_weight_ =
      RegisterParameter("self_weight", nn::XavierUniform({dim, dim}, rng));
}

Tensor RelationRgcnLayer::Forward(const Tensor& relations,
                                  const Tensor& hyperrelations,
                                  const graph::HyperSubgraph& hg,
                                  util::Rng* rng) const {
  RETIA_CHECK_EQ(hyperrelations.Dim(0), graph::kNumHyperRelationsAug);
  const int64_t num_rel_nodes = relations.Dim(0);
  Tensor out = tensor::MatMulTransposeB(relations, self_weight_);
  if (hg.num_edges() > 0) {
    // Per-edge input r_s + hr, transformed by the edge's W_hr. Edges are
    // processed grouped by hyperrelation type so each group is one matmul
    // (the gather / GEMM / scatter kernels shard deterministically over
    // par::DefaultPool(); see tensor/). Groups are built in one pass over
    // the edge list, preserving edge order within each group.
    Tensor x = tensor::Add(tensor::GatherRows(relations, hg.src()),
                           tensor::GatherRows(hyperrelations, hg.hyper_rel()));
    const int64_t num_edges = hg.num_edges();
    std::vector<std::vector<int64_t>> edge_ids(graph::kNumHyperRelationsAug);
    std::vector<std::vector<int64_t>> dsts(graph::kNumHyperRelationsAug);
    std::vector<std::vector<float>> norms(graph::kNumHyperRelationsAug);
    for (int64_t e = 0; e < num_edges; ++e) {
      const int64_t hr = hg.hyper_rel()[e];
      edge_ids[hr].push_back(e);
      dsts[hr].push_back(hg.dst()[e]);
      norms[hr].push_back(hg.edge_norm()[e]);
    }
    for (int64_t hr = 0; hr < graph::kNumHyperRelationsAug; ++hr) {
      if (edge_ids[hr].empty()) continue;
      Tensor group = tensor::GatherRows(x, edge_ids[hr]);
      Tensor msg = tensor::ScaleRows(
          tensor::MatMulTransposeB(group, weights_[hr]), norms[hr]);
      out = tensor::Add(
          out, tensor::ScatterAddRows(msg, dsts[hr], num_rel_nodes));
    }
  }
  out = tensor::RRelu(out, kRReluLo, kRReluHi, training(), rng);
  return tensor::Dropout(out, dropout_, training(), rng);
}

EntityRgcnStack::EntityRgcnStack(int64_t dim, int64_t num_relations_aug,
                                 int64_t num_bases, int64_t layers,
                                 float dropout, util::Rng* rng) {
  for (int64_t l = 0; l < layers; ++l) {
    layers_.push_back(std::make_unique<EntityRgcnLayer>(
        dim, num_relations_aug, num_bases, dropout, rng));
    RegisterModule("layer" + std::to_string(l), layers_.back().get());
  }
}

Tensor EntityRgcnStack::Forward(const Tensor& nodes, const Tensor& relations,
                                const graph::Subgraph& g,
                                util::Rng* rng) const {
  Tensor h = nodes;
  for (const auto& layer : layers_) h = layer->Forward(h, relations, g, rng);
  return h;
}

RelationRgcnStack::RelationRgcnStack(int64_t dim, int64_t layers,
                                     float dropout, util::Rng* rng) {
  for (int64_t l = 0; l < layers; ++l) {
    layers_.push_back(std::make_unique<RelationRgcnLayer>(dim, dropout, rng));
    RegisterModule("layer" + std::to_string(l), layers_.back().get());
  }
}

Tensor RelationRgcnStack::Forward(const Tensor& relations,
                                  const Tensor& hyperrelations,
                                  const graph::HyperSubgraph& hg,
                                  util::Rng* rng) const {
  Tensor h = relations;
  for (const auto& layer : layers_)
    h = layer->Forward(h, hyperrelations, hg, rng);
  return h;
}

}  // namespace retia::core
