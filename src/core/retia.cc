#include "core/retia.h"

#include <cmath>
#include <optional>
#include <utility>

#include "nn/init.h"
#include "obs/obs.h"
#include "par/task_graph.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace retia::core {

using tensor::Tensor;

RetiaModel::RetiaModel(const RetiaConfig& config)
    : config_(config), rng_(config.seed) {
  RETIA_CHECK(config.num_entities > 0);
  RETIA_CHECK(config.num_relations > 0);
  const int64_t d = config.dim;
  const int64_t rel_aug = 2 * config.num_relations;

  entity_init_ =
      std::make_unique<nn::Embedding>(config.num_entities, d, &rng_);
  relation_init_ = std::make_unique<nn::Embedding>(rel_aug, d, &rng_);
  hyper_init_ = std::make_unique<nn::Embedding>(
      graph::kNumHyperRelationsAug, d, &rng_);
  RegisterModule("entity_init", entity_init_.get());
  RegisterModule("relation_init", relation_init_.get());
  RegisterModule("hyper_init", hyper_init_.get());
  // Ablation protocol (Sec. IV-C / IV-D1): the ablated side keeps its
  // *randomly initialized* embeddings "unchanged", i.e. frozen constants,
  // not trainable parameters.
  if (!config.use_eam) {
    frozen_entities_ = nn::XavierUniform({config.num_entities, d}, &rng_);
  }
  if (!config.use_ram) {
    frozen_relations_ = nn::XavierUniform({rel_aug, d}, &rng_);
  }
  if (!config.use_tim) {
    // The EAM's private relation embeddings when the TIM channel is cut:
    // "two different and inconsistent individuals".
    eam_static_relations_ = nn::XavierUniform({rel_aug, d}, &rng_);
  }

  entity_rgcn_ = std::make_unique<EntityRgcnStack>(
      d, rel_aug, config.num_bases, config.rgcn_layers, config.dropout, &rng_);
  relation_rgcn_ = std::make_unique<RelationRgcnStack>(
      d, config.rgcn_layers, config.dropout, &rng_);
  entity_gru_ = std::make_unique<nn::GruCell>(d, d, &rng_);
  relation_gru_ = std::make_unique<nn::GruCell>(d, d, &rng_);
  relation_lstm_ = std::make_unique<nn::ProjectedLstmCell>(
      /*input_size=*/2 * d, /*hidden_size=*/d, /*cell_size=*/2 * d, &rng_);
  hyper_lstm_ = std::make_unique<nn::ProjectedLstmCell>(
      /*input_size=*/2 * d, /*hidden_size=*/d, /*cell_size=*/2 * d, &rng_);
  mp_proj_ = std::make_unique<nn::Linear>(2 * d, d, &rng_);
  RegisterModule("entity_rgcn", entity_rgcn_.get());
  RegisterModule("relation_rgcn", relation_rgcn_.get());
  RegisterModule("entity_gru", entity_gru_.get());
  RegisterModule("relation_gru", relation_gru_.get());
  RegisterModule("relation_lstm", relation_lstm_.get());
  RegisterModule("hyper_lstm", hyper_lstm_.get());
  RegisterModule("mp_proj", mp_proj_.get());

  entity_decoder_ = std::make_unique<ConvTransEDecoder>(
      d, config.conv_kernels, config.conv_kernel_size, config.dropout, &rng_);
  relation_decoder_ = std::make_unique<ConvTransEDecoder>(
      d, config.conv_kernels, config.conv_kernel_size, config.dropout, &rng_);
  RegisterModule("entity_decoder", entity_decoder_.get());
  RegisterModule("relation_decoder", relation_decoder_.get());
}

void RetiaModel::SetEntityTypes(const std::vector<int64_t>& types,
                                int64_t num_types) {
  RETIA_CHECK_MSG(config_.use_static_constraint,
                  "enable config.use_static_constraint first");
  RETIA_CHECK_EQ(static_cast<int64_t>(types.size()), config_.num_entities);
  RETIA_CHECK(num_types > 0);
  for (int64_t t : types) RETIA_CHECK_LT(t, num_types);
  entity_types_ = types;
  num_static_types_ = num_types;
  static_type_init_ =
      std::make_unique<nn::Embedding>(num_types, config_.dim, &rng_);
  RegisterModule("static_type_init", static_type_init_.get());
}

RetiaModel::PoolPlan RetiaModel::EntityPoolPlan(const graph::Subgraph& g,
                                                int64_t rel_aug) {
  PoolPlan plan;
  plan.dst_rows = rel_aug;
  for (int64_t r : g.active_relations()) {
    const auto& ents = g.relation_entities()[r];
    const float w = 1.0f / static_cast<float>(ents.size());
    for (int64_t e : ents) {
      plan.src_idx.push_back(e);
      plan.dst_idx.push_back(r);
      plan.weights.push_back(w);
    }
  }
  return plan;
}

RetiaModel::PoolPlan RetiaModel::HyperPoolPlan(const graph::HyperSubgraph& hg) {
  PoolPlan plan;
  plan.dst_rows = graph::kNumHyperRelationsAug;
  for (int64_t hr = 0; hr < graph::kNumHyperRelationsAug; ++hr) {
    const auto& rels = hg.hyperrelation_relations()[hr];
    if (rels.empty()) continue;
    const float w = 1.0f / static_cast<float>(rels.size());
    for (int64_t r : rels) {
      plan.src_idx.push_back(r);
      plan.dst_idx.push_back(hr);
      plan.weights.push_back(w);
    }
  }
  return plan;
}

Tensor RetiaModel::ApplyPoolPlan(const Tensor& table,
                                 const PoolPlan& plan) const {
  if (plan.src_idx.empty()) {
    return Tensor::Zeros({plan.dst_rows, config_.dim});
  }
  Tensor gathered =
      tensor::ScaleRows(tensor::GatherRows(table, plan.src_idx), plan.weights);
  return tensor::ScatterAddRows(gathered, plan.dst_idx, plan.dst_rows);
}

std::vector<RetiaModel::StepState> RetiaModel::Evolve(
    graph::GraphCache& cache, const std::vector<int64_t>& history) {
  const Tensor e0 =
      config_.use_eam ? entity_init_->table() : frozen_entities_;
  const Tensor r0 =
      config_.use_ram ? relation_init_->table() : frozen_relations_;
  const Tensor hr0 = hyper_init_->table();

  Tensor e_prev = e0;
  Tensor r_prev = r0;
  Tensor hr_prev = hr0;
  Tensor lstm_cell;   // C_{t-1}, lazily set to R_Mean^0 (Eq. 8)
  Tensor hlstm_cell;  // HC_{t-1}, lazily set to HR_Mean^0 (Eq. 10)

  std::vector<StepState> states;
  if (history.empty()) {
    states.push_back({e0, r0});
    return states;
  }
  states.reserve(history.size());

  const bool run_ram = config_.use_ram &&
                       config_.relation_mode == RelationMode::kMpLstmAgg;
  // Which prep products each timestep needs; pure functions of the config.
  const bool tim_pooling = config_.use_ram &&
                           config_.relation_mode != RelationMode::kNone &&
                           config_.use_tim;
  const bool hyper_pooling =
      run_ram && config_.use_tim && config_.hyper_mode != HyperMode::kNone;

  // Inter-op pipeline (DESIGN.md §12): per-timestep prep — snapshot (and
  // hypergraph) construction plus the pooling index plans — touches no
  // embeddings and no RNG, so prep(t) tasks run concurrently and overlap
  // the recurrent chain, which stays strictly serialized by dependency
  // edges (evolve(i) after {prep(i), evolve(i-1)}). The chain executes the
  // exact serial math in the exact serial order (including the training
  // RNG stream), so results bit-match the serial path and are invariant
  // to RETIA_INTEROP_THREADS.
  struct StepPrep {
    const graph::Subgraph* g = nullptr;
    const graph::HyperSubgraph* hg = nullptr;
    PoolPlan entity_plan;
    PoolPlan hyper_plan;
  };
  std::vector<StepPrep> preps(history.size());

  // Grad mode is thread-local (tensor.h): tasks run on pool workers, so
  // each task re-installs the caller's mode before touching tensors.
  const bool record = tensor::GradModeEnabled();
  const int64_t rel_aug = 2 * config_.num_relations;

  par::TaskGraph graph;
  std::vector<par::TaskGraph::TaskId> prep_ids;
  prep_ids.reserve(history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    prep_ids.push_back(graph.Add([&, i] {
      StepPrep& prep = preps[i];
      prep.g = &cache.subgraph(history[i]);
      if (tim_pooling) prep.entity_plan = EntityPoolPlan(*prep.g, rel_aug);
      if (run_ram) prep.hg = &cache.hypergraph(history[i]);
      if (hyper_pooling) prep.hyper_plan = HyperPoolPlan(*prep.hg);
    }));
  }

  par::TaskGraph::TaskId prev_step = par::TaskGraph::kInvalid;
  for (size_t i = 0; i < history.size(); ++i) {
    std::vector<par::TaskGraph::TaskId> deps = {prep_ids[i]};
    if (prev_step != par::TaskGraph::kInvalid) deps.push_back(prev_step);
    prev_step = graph.Add(
        [&, i] {
          std::optional<tensor::NoGradGuard> guard;
          if (!record) guard.emplace();
          const StepPrep& prep = preps[i];
          const graph::Subgraph& g = *prep.g;

          // ---- TIM + RAM: produce R_t ----------------------------------
          Tensor r_input;  // relation embeddings fed to the RAM / decoder
          if (!config_.use_ram) {
            // Table VI "wo. RAM": relations stay at their initial
            // embeddings.
            r_input = r0;
          } else if (config_.relation_mode == RelationMode::kNone) {
            // Fig. 6/7 "wo. RM": raw initial embeddings, no modeling.
            r_input = r0;
          } else if (!config_.use_tim) {
            // Table IX / Fig. 3-4 "wo. TIM": no communication from the
            // EAM; the relation pipeline evolves on its own previous
            // output.
            r_input = r_prev;
          } else {
            // Eq. 7: R_Mean^t = [R_0 ; MP(E_{t-1}, E_r^t)].
            Tensor pooled = ApplyPoolPlan(e_prev, prep.entity_plan);
            Tensor r_mean = tensor::ConcatCols(r0, pooled);
            if (config_.relation_mode == RelationMode::kMp) {
              // Fig. 6/7 "w. MP": no LSTM evolution; a learned projection
              // brings the 2d-wide pooled features back to width d.
              r_input = mp_proj_->Forward(r_mean);
            } else {
              // Eq. 8, with C_0 = R_Mean^0.
              if (!lstm_cell.defined()) lstm_cell = r_mean;
              nn::ProjectedLstmCell::State state =
                  relation_lstm_->Forward(r_mean, {r_prev, lstm_cell});
              r_input = state.h;
              lstm_cell = state.c;
            }
          }

          Tensor r_t = r_input;
          if (run_ram) {
            const graph::HyperSubgraph& hg = *prep.hg;
            // Hyperrelation embeddings delivered to the RAM (Fig. 5).
            Tensor hr_t;
            if (!config_.use_tim || config_.hyper_mode == HyperMode::kNone) {
              hr_t = hr0;
            } else if (config_.hyper_mode == HyperMode::kHmp) {
              // "w. HMP": hyperrelation representations replaced by the
              // mean of the immediately adjacent relation embeddings.
              hr_t = ApplyPoolPlan(r_input, prep.hyper_plan);
            } else {
              // Eq. 9/10, with HC_0 = HR_Mean^0.
              Tensor hr_mean = tensor::ConcatCols(
                  hr0, ApplyPoolPlan(r_input, prep.hyper_plan));
              if (!hlstm_cell.defined()) hlstm_cell = hr_mean;
              nn::ProjectedLstmCell::State state =
                  hyper_lstm_->Forward(hr_mean, {hr_prev, hlstm_cell});
              hr_t = state.h;
              hlstm_cell = state.c;
            }
            hr_prev = hr_t;
            // Eq. 2 + Eq. 3: aggregate in the twin hyperrelation subgraph,
            // then gate against the input through the R-GRU.
            Tensor r_agg = relation_rgcn_->Forward(r_input, hr_t, hg, &rng_);
            r_t = relation_gru_->Forward(r_agg, r_input);
          }

          // ---- EAM: produce E_t ----------------------------------------
          Tensor e_t = e_prev;
          if (config_.use_eam) {
            // Table IX "wo. TIM" severs the channel from the RAM: the EAM
            // sees its own private static relation embeddings.
            const Tensor& eam_rel =
                config_.use_tim ? r_t : eam_static_relations_;
            // Eq. 5 + Eq. 6.
            Tensor e_agg = entity_rgcn_->Forward(e_prev, eam_rel, g, &rng_);
            e_t = entity_gru_->Forward(e_agg, e_prev);
          }

          states.push_back({e_t, r_t});
          e_prev = e_t;
          r_prev = r_t;
        },
        deps);
  }
  graph.Run();
  return states;
}

RetiaModel::LossParts RetiaModel::ComputeLoss(
    const std::vector<StepState>& states,
    const std::vector<tkg::Quadruple>& facts) {
  RETIA_CHECK(!states.empty());
  RETIA_CHECK(!facts.empty());
  const int64_t m = config_.num_relations;

  // Entity task: object queries plus inverse subject queries (Sec. III-A).
  std::vector<std::pair<int64_t, int64_t>> entity_queries;
  std::vector<int64_t> entity_targets;
  entity_queries.reserve(facts.size() * 2);
  for (const tkg::Quadruple& q : facts) {
    entity_queries.emplace_back(q.subject, q.relation);
    entity_targets.push_back(q.object);
    entity_queries.emplace_back(q.object, q.relation + m);
    entity_targets.push_back(q.subject);
  }
  Tensor p_entity = ScoreObjects(states, entity_queries);
  Tensor loss_e = tensor::NllFromProbs(p_entity, entity_targets);

  // Relation task (Eq. 12/14).
  std::vector<std::pair<int64_t, int64_t>> relation_queries;
  std::vector<int64_t> relation_targets;
  relation_queries.reserve(facts.size());
  for (const tkg::Quadruple& q : facts) {
    relation_queries.emplace_back(q.subject, q.object);
    relation_targets.push_back(q.relation);
  }
  Tensor p_relation = ScoreRelations(states, relation_queries);
  Tensor loss_r = tensor::NllFromProbs(p_relation, relation_targets);

  LossParts parts;
  parts.entity_loss = loss_e.Item();
  parts.relation_loss = loss_r.Item();
  parts.joint = tensor::Add(tensor::Scale(loss_e, config_.lambda_entity),
                            tensor::Scale(loss_r, 1.0f - config_.lambda_entity));

  // Static-graph constraint (RE-GCN): at evolution step i the angle between
  // the evolved entity embeddings and the static per-type embeddings may
  // open by at most (i+1) * static_angle_step_deg.
  if (config_.use_static_constraint && static_type_init_ != nullptr) {
    Tensor static_rows = static_type_init_->Forward(entity_types_);
    Tensor static_total;
    for (size_t i = 0; i < states.size(); ++i) {
      const float angle_deg = std::min(
          90.0f, static_cast<float>(i + 1) * config_.static_angle_step_deg);
      const float min_cos =
          std::cos(angle_deg * 3.14159265f / 180.0f);
      Tensor step = tensor::CosineHingeLoss(states[i].entities, static_rows,
                                            min_cos);
      static_total =
          static_total.defined() ? tensor::Add(static_total, step) : step;
    }
    static_total = tensor::Scale(
        static_total, config_.static_weight /
                          static_cast<float>(states.size()));
    parts.joint = tensor::Add(parts.joint, static_total);
  }
  return parts;
}

Tensor RetiaModel::ScoreObjects(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries) {
  return ScoreObjectsImpl(states, queries, &rng_);
}

Tensor RetiaModel::ScoreRelations(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries) {
  return ScoreRelationsImpl(states, queries, &rng_);
}

Tensor RetiaModel::ScoreObjectsFrozen(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries) const {
  RETIA_CHECK_MSG(!training(),
                  "frozen scoring requires eval mode (SetTraining(false))");
  return ScoreObjectsImpl(states, queries, nullptr);
}

Tensor RetiaModel::ScoreRelationsFrozen(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries) const {
  RETIA_CHECK_MSG(!training(),
                  "frozen scoring requires eval mode (SetTraining(false))");
  return ScoreRelationsImpl(states, queries, nullptr);
}

Tensor RetiaModel::ScoreObjectsFrozenQuantized(
    const std::vector<StepState>& states,
    const std::vector<quant::QuantizedRows>& qcands,
    const std::vector<std::pair<int64_t, int64_t>>& queries) const {
  RETIA_CHECK_MSG(!training(),
                  "frozen scoring requires eval mode (SetTraining(false))");
  RETIA_CHECK(!states.empty());
  RETIA_CHECK_EQ(states.size(), qcands.size());
  RETIA_OBS_COUNTER_ADD("quant.decode.batches", 1);
  std::vector<int64_t> subj_idx;
  std::vector<int64_t> rel_idx;
  subj_idx.reserve(queries.size());
  rel_idx.reserve(queries.size());
  for (const auto& [s, r] : queries) {
    subj_idx.push_back(s);
    rel_idx.push_back(r);
  }
  const size_t first =
      config_.time_variability_decode ? 0 : states.size() - 1;
  auto decode = [&](size_t i) {
    const StepState& st = states[i];
    Tensor s_emb = tensor::GatherRows(st.entities, subj_idx);
    Tensor r_emb = tensor::GatherRows(st.relations, rel_idx);
    Tensor logits =
        entity_decoder_->ForwardQuantized(s_emb, r_emb, qcands[i], nullptr);
    return tensor::Softmax(logits);
  };
  // Same eval-only fan-out (and the same determinism argument) as
  // ScoreObjectsImpl: frozen callers have no tape and no RNG stream.
  if (states.size() - first > 1 && !tensor::GradModeEnabled()) {
    std::vector<Tensor> per_state(states.size() - first);
    par::TaskGraph graph;
    for (size_t j = 0; j < per_state.size(); ++j) {
      graph.Add([&, j] {
        tensor::NoGradGuard guard;  // grad mode is thread-local
        per_state[j] = decode(first + j);
      });
    }
    graph.Run();
    Tensor total = per_state[0];
    for (size_t j = 1; j < per_state.size(); ++j) {
      total = tensor::Add(total, per_state[j]);
    }
    return total;
  }
  Tensor total;
  for (size_t i = first; i < states.size(); ++i) {
    Tensor p = decode(i);
    total = total.defined() ? tensor::Add(total, p) : p;
  }
  return total;
}

Tensor RetiaModel::ScoreObjectsImpl(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries,
    util::Rng* rng) const {
  RETIA_CHECK(!states.empty());
  std::vector<int64_t> subj_idx;
  std::vector<int64_t> rel_idx;
  subj_idx.reserve(queries.size());
  rel_idx.reserve(queries.size());
  for (const auto& [s, r] : queries) {
    subj_idx.push_back(s);
    rel_idx.push_back(r);
  }
  const size_t first =
      config_.time_variability_decode ? 0 : states.size() - 1;
  auto decode = [&](const StepState& st) {
    Tensor s_emb = tensor::GatherRows(st.entities, subj_idx);
    Tensor r_emb = tensor::GatherRows(st.relations, rel_idx);
    Tensor logits = entity_decoder_->Forward(s_emb, r_emb, st.entities, rng);
    return tensor::Softmax(logits);
  };
  // Time-variability decode fans out per state when nothing serializes it:
  // no autograd tape to record and no RNG stream to keep ordered (dropout
  // is a pass-through outside training). The per-state math and the fixed
  // state-order combine are identical to the serial loop, so the result is
  // bit-identical to it for every inter-op width. Training-mode and
  // grad-recording callers take the serial loop below unchanged.
  if (states.size() - first > 1 && !training() && !tensor::GradModeEnabled()) {
    std::vector<Tensor> per_state(states.size() - first);
    par::TaskGraph graph;
    for (size_t j = 0; j < per_state.size(); ++j) {
      graph.Add([&, j] {
        tensor::NoGradGuard guard;  // grad mode is thread-local
        per_state[j] = decode(states[first + j]);
      });
    }
    graph.Run();
    Tensor total = per_state[0];
    for (size_t j = 1; j < per_state.size(); ++j) {
      total = tensor::Add(total, per_state[j]);
    }
    return total;
  }
  Tensor total;
  for (size_t i = first; i < states.size(); ++i) {
    Tensor p = decode(states[i]);
    total = total.defined() ? tensor::Add(total, p) : p;
  }
  return total;
}

Tensor RetiaModel::ScoreRelationsImpl(
    const std::vector<StepState>& states,
    const std::vector<std::pair<int64_t, int64_t>>& queries,
    util::Rng* rng) const {
  RETIA_CHECK(!states.empty());
  const int64_t m = config_.num_relations;
  std::vector<int64_t> subj_idx;
  std::vector<int64_t> obj_idx;
  subj_idx.reserve(queries.size());
  obj_idx.reserve(queries.size());
  for (const auto& [s, o] : queries) {
    subj_idx.push_back(s);
    obj_idx.push_back(o);
  }
  const size_t first =
      config_.time_variability_decode ? 0 : states.size() - 1;
  auto decode = [&](const StepState& st) {
    Tensor s_emb = tensor::GatherRows(st.entities, subj_idx);
    Tensor o_emb = tensor::GatherRows(st.entities, obj_idx);
    // Candidates are the M forward relations (the paper's p^r is
    // M-dimensional).
    Tensor candidates = tensor::SliceRows(st.relations, 0, m);
    Tensor logits = relation_decoder_->Forward(s_emb, o_emb, candidates, rng);
    return tensor::Softmax(logits);
  };
  // Same eval-only fan-out (and the same determinism argument) as
  // ScoreObjectsImpl above.
  if (states.size() - first > 1 && !training() && !tensor::GradModeEnabled()) {
    std::vector<Tensor> per_state(states.size() - first);
    par::TaskGraph graph;
    for (size_t j = 0; j < per_state.size(); ++j) {
      graph.Add([&, j] {
        tensor::NoGradGuard guard;  // grad mode is thread-local
        per_state[j] = decode(states[first + j]);
      });
    }
    graph.Run();
    Tensor total = per_state[0];
    for (size_t j = 1; j < per_state.size(); ++j) {
      total = tensor::Add(total, per_state[j]);
    }
    return total;
  }
  Tensor total;
  for (size_t i = first; i < states.size(); ++i) {
    Tensor p = decode(states[i]);
    total = total.defined() ? tensor::Add(total, p) : p;
  }
  return total;
}

}  // namespace retia::core
