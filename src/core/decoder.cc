#include "core/decoder.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace retia::core {

using tensor::Tensor;

ConvTransEDecoder::ConvTransEDecoder(int64_t dim, int64_t kernels,
                                     int64_t kernel_size, float dropout,
                                     util::Rng* rng, bool with_layernorm)
    : dim_(dim), kernels_(kernels), dropout_(dropout) {
  if (with_layernorm) {
    ln_gamma_ = RegisterParameter("ln_gamma", Tensor::Full({dim}, 1.0f));
    ln_beta_ = RegisterParameter("ln_beta", Tensor::Zeros({dim}));
  }
  RETIA_CHECK(kernel_size % 2 == 1);  // same-length output needs odd kernels
  conv_weight_ = RegisterParameter(
      "conv_weight", nn::XavierUniform({kernels, 2, kernel_size}, rng));
  conv_bias_ = RegisterParameter("conv_bias", Tensor::Zeros({kernels}));
  fc_ = std::make_unique<nn::Linear>(kernels * dim, dim, rng);
  RegisterModule("fc", fc_.get());
}

Tensor ConvTransEDecoder::Features(const Tensor& a, const Tensor& b,
                                   util::Rng* rng) const {
  RETIA_CHECK_EQ(a.Dim(1), dim_);
  RETIA_CHECK_EQ(b.Dim(1), dim_);
  const int64_t batch = a.Dim(0);
  const int64_t pad = (conv_weight_.Dim(2) - 1) / 2;
  // Stack the two embeddings as channels: [B, 2, d].
  Tensor stacked =
      tensor::Reshape(tensor::ConcatCols(a, b), {batch, 2, dim_});
  stacked = tensor::Dropout(stacked, dropout_, training(), rng);
  Tensor conv = tensor::Conv1d(stacked, conv_weight_, conv_bias_, pad);
  conv = tensor::Relu(conv);
  conv = tensor::Dropout(conv, dropout_, training(), rng);
  Tensor flat = tensor::Reshape(conv, {batch, kernels_ * dim_});
  Tensor feat = fc_->Forward(flat);
  if (ln_gamma_.defined()) {
    feat = tensor::LayerNormRows(feat, ln_gamma_, ln_beta_);
  }
  feat = tensor::Relu(feat);
  return tensor::Dropout(feat, dropout_, training(), rng);
}

Tensor ConvTransEDecoder::Forward(const Tensor& a, const Tensor& b,
                                  const Tensor& candidates,
                                  util::Rng* rng) const {
  return tensor::MatMulTransposeB(Features(a, b, rng), candidates);
}

Tensor ConvTransEDecoder::ForwardQuantized(
    const Tensor& a, const Tensor& b, const quant::QuantizedRows& candidates,
    util::Rng* rng) const {
  RETIA_CHECK(!training());
  RETIA_CHECK_EQ(candidates.cols, dim_);
  return quant::MatMulTransposeBQuant(Features(a, b, rng), candidates);
}

}  // namespace retia::core
