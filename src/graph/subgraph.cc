#include "graph/subgraph.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace retia::graph {

Subgraph::Subgraph(const std::vector<tkg::Quadruple>& facts,
                   int64_t num_entities, int64_t num_relations)
    : num_entities_(num_entities), num_relations_(num_relations) {
  const int64_t m = num_relations;
  src_.reserve(facts.size() * 2);
  rel_.reserve(facts.size() * 2);
  dst_.reserve(facts.size() * 2);
  for (const tkg::Quadruple& q : facts) {
    RETIA_CHECK_LT(q.subject, num_entities_);
    RETIA_CHECK_LT(q.object, num_entities_);
    RETIA_CHECK_LT(q.relation, m);
    // Forward edge and its inverse (o, r^-1, s).
    src_.push_back(q.subject);
    rel_.push_back(q.relation);
    dst_.push_back(q.object);
    src_.push_back(q.object);
    rel_.push_back(q.relation + m);
    dst_.push_back(q.subject);
  }

  // c_{o,r}: number of in-edges of each (dst, rel) pair.
  std::map<std::pair<int64_t, int64_t>, int64_t> counts;
  for (size_t e = 0; e < src_.size(); ++e) {
    ++counts[{dst_[e], rel_[e]}];
  }
  edge_norm_.resize(src_.size());
  for (size_t e = 0; e < src_.size(); ++e) {
    edge_norm_[e] =
        1.0f / static_cast<float>(counts[{dst_[e], rel_[e]}]);
  }

  relation_entities_.assign(2 * m, {});
  for (size_t e = 0; e < src_.size(); ++e) {
    relation_entities_[rel_[e]].push_back(src_[e]);
    relation_entities_[rel_[e]].push_back(dst_[e]);
  }
  for (int64_t r = 0; r < 2 * m; ++r) {
    auto& ents = relation_entities_[r];
    std::sort(ents.begin(), ents.end());
    ents.erase(std::unique(ents.begin(), ents.end()), ents.end());
    if (!ents.empty()) active_relations_.push_back(r);
  }
}

}  // namespace retia::graph
