#ifndef RETIA_GRAPH_SUBGRAPH_H_
#define RETIA_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <vector>

#include "tkg/dataset.h"

namespace retia::graph {

// One directed labelled edge of a temporal subgraph. Relations live in the
// augmented vocabulary [0, 2M): ids >= M are the inverse relations r^-1
// added per Sec. III-A so only in-degree edges need aggregation.
struct Edge {
  int64_t src = 0;
  int64_t rel = 0;
  int64_t dst = 0;
};

// A single timestamp's subgraph G_t, augmented with inverse edges and
// preprocessed for RGCN message passing and TIM mean pooling:
//  * flat src/rel/dst index vectors (gather/scatter friendly),
//  * per-edge normalisation 1/c_{o,r} with c_{o,r} = |E_o^r| (Eq. 4),
//  * relation -> incident entity lists (both directions) for Eq. 7's MP,
//  * the set of active relations at this timestamp.
class Subgraph {
 public:
  Subgraph(const std::vector<tkg::Quadruple>& facts, int64_t num_entities,
           int64_t num_relations);

  int64_t num_entities() const { return num_entities_; }
  // M: relation count before inverse augmentation.
  int64_t num_relations() const { return num_relations_; }
  // 2M: relation vocabulary used for modeling.
  int64_t num_relations_aug() const { return 2 * num_relations_; }

  int64_t num_edges() const { return static_cast<int64_t>(src_.size()); }
  const std::vector<int64_t>& src() const { return src_; }
  const std::vector<int64_t>& rel() const { return rel_; }
  const std::vector<int64_t>& dst() const { return dst_; }
  // 1/c_{dst,rel} per edge.
  const std::vector<float>& edge_norm() const { return edge_norm_; }

  // Entities incident to each augmented relation id (subjects and objects,
  // deduplicated). Empty for relations absent at this timestamp.
  const std::vector<std::vector<int64_t>>& relation_entities() const {
    return relation_entities_;
  }

  // Augmented relation ids with at least one edge, ascending.
  const std::vector<int64_t>& active_relations() const {
    return active_relations_;
  }

 private:
  int64_t num_entities_;
  int64_t num_relations_;
  std::vector<int64_t> src_;
  std::vector<int64_t> rel_;
  std::vector<int64_t> dst_;
  std::vector<float> edge_norm_;
  std::vector<std::vector<int64_t>> relation_entities_;
  std::vector<int64_t> active_relations_;
};

}  // namespace retia::graph

#endif  // RETIA_GRAPH_SUBGRAPH_H_
