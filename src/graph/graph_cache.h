#ifndef RETIA_GRAPH_GRAPH_CACHE_H_
#define RETIA_GRAPH_GRAPH_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/hypergraph.h"
#include "graph/subgraph.h"
#include "par/task_graph.h"
#include "tkg/dataset.h"

namespace retia::graph {

// Lazily-built cache of per-timestamp subgraphs and twin hyperrelation
// subgraphs for a dataset. Training revisits the same timestamps every
// epoch, so graph construction (including Algorithm 1) is paid once.
//
// Threading: subgraph(), hypergraph(), and Prefetch() are safe to call
// concurrently from any number of threads (the inter-op pipelines build
// history snapshots in parallel). Construction is pure and deterministic,
// so when two threads race on the same timestamp both build identical
// objects and the first insert wins; returned references stay valid for
// the cache's lifetime (entries are never evicted). Lookups take one
// mutex; construction itself runs outside the lock.
//
// Streaming: the cache reads the dataset's fact-bearing timestamps live
// (TkgDataset::all_times()), so buckets appended at the frontier become
// visible to HistoryBefore / subgraph without a rebuild. Because the
// append path only ever adds whole new timestamps, previously built
// subgraphs stay valid; only a vocabulary growth (GrowVocab) invalidates
// them — callers rebuild the cache after growing (stream::OnlineTrainer
// does).
class GraphCache {
 public:
  explicit GraphCache(const tkg::TkgDataset* dataset);

  const tkg::TkgDataset& dataset() const { return *dataset_; }

  // Subgraph at timestamp `t` (possibly empty if the timestamp has no
  // facts; an empty Subgraph is still valid). Thread-safe.
  const Subgraph& subgraph(int64_t t);

  // Twin hyperrelation subgraph of timestamp `t` (Algorithm 1).
  // Thread-safe.
  const HyperSubgraph& hypergraph(int64_t t);

  // Builds (and caches) the snapshots of every timestamp in `times`
  // concurrently — one inter-op task per timestamp on `pool`
  // (par::DefaultPool() when null). With `hypergraphs` set the twin
  // hyperrelation subgraphs are built too (they subsume the subgraphs).
  // Purely a warm-up: subgraph()/hypergraph() return the same objects
  // whether or not Prefetch ran.
  void Prefetch(const std::vector<int64_t>& times, bool hypergraphs,
                par::ThreadPool* pool = nullptr);

  // The latest `k` fact-bearing timestamps strictly before `t`, ascending.
  // Fewer than `k` are returned near the start of the dataset.
  std::vector<int64_t> HistoryBefore(int64_t t, int64_t k) const;

 private:
  const tkg::TkgDataset* dataset_;
  mutable std::mutex mu_;  // guards the two maps (not the built objects)
  std::map<int64_t, std::unique_ptr<Subgraph>> subgraphs_;
  std::map<int64_t, std::unique_ptr<HyperSubgraph>> hypergraphs_;
};

}  // namespace retia::graph

#endif  // RETIA_GRAPH_GRAPH_CACHE_H_
