#ifndef RETIA_GRAPH_GRAPH_CACHE_H_
#define RETIA_GRAPH_GRAPH_CACHE_H_

#include <map>
#include <memory>
#include <vector>

#include "graph/hypergraph.h"
#include "graph/subgraph.h"
#include "tkg/dataset.h"

namespace retia::graph {

// Lazily-built cache of per-timestamp subgraphs and twin hyperrelation
// subgraphs for a dataset. Training revisits the same timestamps every
// epoch, so graph construction (including Algorithm 1) is paid once.
//
// Streaming: the cache reads the dataset's fact-bearing timestamps live
// (TkgDataset::all_times()), so buckets appended at the frontier become
// visible to HistoryBefore / subgraph without a rebuild. Because the
// append path only ever adds whole new timestamps, previously built
// subgraphs stay valid; only a vocabulary growth (GrowVocab) invalidates
// them — callers rebuild the cache after growing (stream::OnlineTrainer
// does).
class GraphCache {
 public:
  explicit GraphCache(const tkg::TkgDataset* dataset);

  const tkg::TkgDataset& dataset() const { return *dataset_; }

  // Subgraph at timestamp `t` (possibly empty if the timestamp has no
  // facts; an empty Subgraph is still valid).
  const Subgraph& subgraph(int64_t t);

  // Twin hyperrelation subgraph of timestamp `t` (Algorithm 1).
  const HyperSubgraph& hypergraph(int64_t t);

  // The latest `k` fact-bearing timestamps strictly before `t`, ascending.
  // Fewer than `k` are returned near the start of the dataset.
  std::vector<int64_t> HistoryBefore(int64_t t, int64_t k) const;

 private:
  const tkg::TkgDataset* dataset_;
  std::map<int64_t, std::unique_ptr<Subgraph>> subgraphs_;
  std::map<int64_t, std::unique_ptr<HyperSubgraph>> hypergraphs_;
};

}  // namespace retia::graph

#endif  // RETIA_GRAPH_GRAPH_CACHE_H_
