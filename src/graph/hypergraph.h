#ifndef RETIA_GRAPH_HYPERGRAPH_H_
#define RETIA_GRAPH_HYPERGRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/subgraph.h"

namespace retia::graph {

// The four positional hyperrelation types of Table II. Ids 4..7 are the
// inverse hyperrelations added per Sec. III-A (hyper-r^-1), so the modeled
// hyperrelation vocabulary has 2H = 8 entries.
enum HyperRelationType : int64_t {
  kObjectSubject = 0,  // o-s: object of r_s is subject of r_o
  kSubjectObject = 1,  // s-o: subject of r_s is object of r_o
  kObjectObject = 2,   // o-o: r_s and r_o share an object
  kSubjectSubject = 3, // s-s: r_s and r_o share a subject
};

inline constexpr int64_t kNumHyperRelations = 4;      // H
inline constexpr int64_t kNumHyperRelationsAug = 8;   // 2H

// Inverse hyperrelation id for an augmented id in [0, 8).
int64_t InverseHyperRelation(int64_t hr);

// The twin hyperrelation subgraph HG_t of a temporal subgraph G_t
// (Algorithm 1). Nodes are the 2M augmented relations of G_t; edges are
// hyperrelation facts (r_s, hyper-r, r_o).
//
// Construction follows Algorithm 1: the relation-object adjacency RO_t and
// relation-subject adjacency RS_t are assembled in one pass over the edges;
// the boolean products RO x RS, RS x RO, RO x RO, RS x RS then yield the
// o-s / s-o / o-o / s-s adjacency, with the diagonals of the o-o and s-s
// products zeroed to suppress self-loop relation pairs. Inverse hyperedges
// are appended so only in-neighbourhoods need aggregation.
class HyperSubgraph {
 public:
  explicit HyperSubgraph(const Subgraph& base);

  int64_t num_relation_nodes() const { return num_relation_nodes_; }

  int64_t num_edges() const { return static_cast<int64_t>(src_.size()); }
  const std::vector<int64_t>& src() const { return src_; }
  const std::vector<int64_t>& hyper_rel() const { return hyper_rel_; }
  const std::vector<int64_t>& dst() const { return dst_; }
  // 1/c_{r_o,hr} per hyperedge (Eq. 1).
  const std::vector<float>& edge_norm() const { return edge_norm_; }

  // Relations incident to each of the 8 hyperrelation ids (deduplicated);
  // the R_hr^t sets consumed by hyper mean pooling (Eq. 9).
  const std::vector<std::vector<int64_t>>& hyperrelation_relations() const {
    return hyperrelation_relations_;
  }

 private:
  int64_t num_relation_nodes_;
  std::vector<int64_t> src_;
  std::vector<int64_t> hyper_rel_;
  std::vector<int64_t> dst_;
  std::vector<float> edge_norm_;
  std::vector<std::vector<int64_t>> hyperrelation_relations_;
};

}  // namespace retia::graph

#endif  // RETIA_GRAPH_HYPERGRAPH_H_
