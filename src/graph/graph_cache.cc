#include "graph/graph_cache.h"

#include <algorithm>

#include "util/check.h"

namespace retia::graph {

GraphCache::GraphCache(const tkg::TkgDataset* dataset) : dataset_(dataset) {
  RETIA_CHECK(dataset != nullptr);
}

const Subgraph& GraphCache::subgraph(int64_t t) {
  auto it = subgraphs_.find(t);
  if (it == subgraphs_.end()) {
    it = subgraphs_
             .emplace(t, std::make_unique<Subgraph>(
                             dataset_->FactsAt(t), dataset_->num_entities(),
                             dataset_->num_relations()))
             .first;
  }
  return *it->second;
}

const HyperSubgraph& GraphCache::hypergraph(int64_t t) {
  auto it = hypergraphs_.find(t);
  if (it == hypergraphs_.end()) {
    it = hypergraphs_.emplace(t, std::make_unique<HyperSubgraph>(subgraph(t)))
             .first;
  }
  return *it->second;
}

std::vector<int64_t> GraphCache::HistoryBefore(int64_t t, int64_t k) const {
  // Read the dataset's times live so frontier buckets appended by
  // retia::stream enter the history window without a cache rebuild.
  const std::vector<int64_t>& all_times = dataset_->all_times();
  auto end = std::lower_bound(all_times.begin(), all_times.end(), t);
  auto begin = end;
  for (int64_t i = 0; i < k && begin != all_times.begin(); ++i) --begin;
  return {begin, end};
}

}  // namespace retia::graph
