#include "graph/graph_cache.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace retia::graph {

GraphCache::GraphCache(const tkg::TkgDataset* dataset) : dataset_(dataset) {
  RETIA_CHECK(dataset != nullptr);
}

const Subgraph& GraphCache::subgraph(int64_t t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subgraphs_.find(t);
    if (it != subgraphs_.end()) return *it->second;
  }
  // Build outside the lock so concurrent timestamps construct in parallel.
  // Construction is pure, so a losing racer built an identical object and
  // simply drops it (emplace keeps the first insert).
  auto built = std::make_unique<Subgraph>(dataset_->FactsAt(t),
                                          dataset_->num_entities(),
                                          dataset_->num_relations());
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = subgraphs_.emplace(t, std::move(built));
  return *it->second;
}

const HyperSubgraph& GraphCache::hypergraph(int64_t t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = hypergraphs_.find(t);
    if (it != hypergraphs_.end()) return *it->second;
  }
  const Subgraph& g = subgraph(t);
  auto built = std::make_unique<HyperSubgraph>(g);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = hypergraphs_.emplace(t, std::move(built));
  return *it->second;
}

void GraphCache::Prefetch(const std::vector<int64_t>& times, bool hypergraphs,
                          par::ThreadPool* pool) {
  if (times.empty()) return;
  if (times.size() == 1) {
    // One timestamp needs no graph machinery.
    if (hypergraphs) {
      hypergraph(times[0]);
    } else {
      subgraph(times[0]);
    }
    return;
  }
  par::TaskGraph graph;
  for (int64_t t : times) {
    graph.Add([this, t, hypergraphs] {
      if (hypergraphs) {
        hypergraph(t);
      } else {
        subgraph(t);
      }
    });
  }
  graph.Run(pool);
}

std::vector<int64_t> GraphCache::HistoryBefore(int64_t t, int64_t k) const {
  // Read the dataset's times live so frontier buckets appended by
  // retia::stream enter the history window without a cache rebuild.
  const std::vector<int64_t>& all_times = dataset_->all_times();
  auto end = std::lower_bound(all_times.begin(), all_times.end(), t);
  auto begin = end;
  for (int64_t i = 0; i < k && begin != all_times.begin(); ++i) --begin;
  return {begin, end};
}

}  // namespace retia::graph
