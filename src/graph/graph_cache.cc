#include "graph/graph_cache.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace retia::graph {

GraphCache::GraphCache(const tkg::TkgDataset* dataset) : dataset_(dataset) {
  RETIA_CHECK(dataset != nullptr);
  std::set<int64_t> times;
  for (const auto* split :
       {&dataset->train(), &dataset->valid(), &dataset->test()}) {
    for (const tkg::Quadruple& q : *split) times.insert(q.time);
  }
  all_times_.assign(times.begin(), times.end());
}

const Subgraph& GraphCache::subgraph(int64_t t) {
  auto it = subgraphs_.find(t);
  if (it == subgraphs_.end()) {
    it = subgraphs_
             .emplace(t, std::make_unique<Subgraph>(
                             dataset_->FactsAt(t), dataset_->num_entities(),
                             dataset_->num_relations()))
             .first;
  }
  return *it->second;
}

const HyperSubgraph& GraphCache::hypergraph(int64_t t) {
  auto it = hypergraphs_.find(t);
  if (it == hypergraphs_.end()) {
    it = hypergraphs_.emplace(t, std::make_unique<HyperSubgraph>(subgraph(t)))
             .first;
  }
  return *it->second;
}

std::vector<int64_t> GraphCache::HistoryBefore(int64_t t, int64_t k) const {
  auto end = std::lower_bound(all_times_.begin(), all_times_.end(), t);
  auto begin = end;
  for (int64_t i = 0; i < k && begin != all_times_.begin(); ++i) --begin;
  return {begin, end};
}

}  // namespace retia::graph
