#include "graph/hypergraph.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"

namespace retia::graph {

int64_t InverseHyperRelation(int64_t hr) {
  RETIA_CHECK_LT(hr, kNumHyperRelationsAug);
  RETIA_CHECK_LE(0, hr);
  return hr < kNumHyperRelations ? hr + kNumHyperRelations
                                 : hr - kNumHyperRelations;
}

HyperSubgraph::HyperSubgraph(const Subgraph& base)
    : num_relation_nodes_(base.num_relations_aug()) {
  // RO_t and RS_t: for each entity, the relations having it as object /
  // subject (Algorithm 1, lines 1-3). Stored entity-indexed so the boolean
  // matrix products reduce to per-entity pair enumeration.
  std::map<int64_t, std::set<int64_t>> rels_with_object;   // entity -> {r}
  std::map<int64_t, std::set<int64_t>> rels_with_subject;  // entity -> {r}
  const int64_t num_edges = base.num_edges();
  for (int64_t e = 0; e < num_edges; ++e) {
    rels_with_subject[base.src()[e]].insert(base.rel()[e]);
    rels_with_object[base.dst()[e]].insert(base.rel()[e]);
  }

  // (r_s, hr, r_o) triples, deduplicated.
  std::set<std::tuple<int64_t, int64_t, int64_t>> hyper_facts;
  auto add = [&](int64_t rs, int64_t hr, int64_t ro) {
    hyper_facts.insert({rs, hr, ro});
    // Inverse hyperrelation fact (r_o, hyper-r^-1, r_s), Sec. III-A.
    hyper_facts.insert({ro, InverseHyperRelation(hr), rs});
  };

  // o-s (RO x RS): object of r_s is the subject of r_o (lines 4-6).
  for (const auto& [entity, objs] : rels_with_object) {
    auto it = rels_with_subject.find(entity);
    if (it == rels_with_subject.end()) continue;
    for (int64_t rs : objs)
      for (int64_t ro : it->second) add(rs, kObjectSubject, ro);
  }
  // s-o (RS x RO): subject of r_s is the object of r_o (lines 7-9).
  for (const auto& [entity, subs] : rels_with_subject) {
    auto it = rels_with_object.find(entity);
    if (it == rels_with_object.end()) continue;
    for (int64_t rs : subs)
      for (int64_t ro : it->second) add(rs, kSubjectObject, ro);
  }
  // o-o (RO x RO, zero diagonal): shared object (lines 10-12).
  for (const auto& [entity, objs] : rels_with_object) {
    for (int64_t rs : objs)
      for (int64_t ro : objs)
        if (rs != ro) add(rs, kObjectObject, ro);
  }
  // s-s (RS x RS, zero diagonal): shared subject (lines 13-15).
  for (const auto& [entity, subs] : rels_with_subject) {
    for (int64_t rs : subs)
      for (int64_t ro : subs)
        if (rs != ro) add(rs, kSubjectSubject, ro);
  }

  src_.reserve(hyper_facts.size());
  hyper_rel_.reserve(hyper_facts.size());
  dst_.reserve(hyper_facts.size());
  for (const auto& [rs, hr, ro] : hyper_facts) {
    src_.push_back(rs);
    hyper_rel_.push_back(hr);
    dst_.push_back(ro);
  }

  // c_{r_o,hr} = |R_{r_o}^{hr}| (Eq. 1 normalisation).
  std::map<std::pair<int64_t, int64_t>, int64_t> counts;
  for (size_t e = 0; e < src_.size(); ++e) ++counts[{dst_[e], hyper_rel_[e]}];
  edge_norm_.resize(src_.size());
  for (size_t e = 0; e < src_.size(); ++e) {
    edge_norm_[e] = 1.0f / static_cast<float>(counts[{dst_[e], hyper_rel_[e]}]);
  }

  hyperrelation_relations_.assign(kNumHyperRelationsAug, {});
  for (size_t e = 0; e < src_.size(); ++e) {
    hyperrelation_relations_[hyper_rel_[e]].push_back(src_[e]);
    hyperrelation_relations_[hyper_rel_[e]].push_back(dst_[e]);
  }
  for (auto& rels : hyperrelation_relations_) {
    std::sort(rels.begin(), rels.end());
    rels.erase(std::unique(rels.begin(), rels.end()), rels.end());
  }
}

}  // namespace retia::graph
