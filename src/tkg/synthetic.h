#ifndef RETIA_TKG_SYNTHETIC_H_
#define RETIA_TKG_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "tkg/dataset.h"

namespace retia::tkg {

// Knobs for the synthetic TKG generator. The generator produces a world of
// "event schemas": a pool of (s, r, o) triples with zipfian entity/relation
// popularity. Each schema has a recurrence period; at matching timestamps it
// fires with `repeat_prob`. A `noise_frac` share of each timestamp's facts
// is drawn fresh at random (the novel, hard-to-predict events).
//
// These two mechanisms mirror what drives the real benchmarks:
//  * YAGO/WIKI (yearly granularity): facts persist across years -> short
//    periods and high repeat_prob, tiny noise -> extrapolators that track
//    evolution (or merely copy) reach very high MRR, and relation
//    forecasting is near-saturated because relations are few and stable.
//  * ICEWS (daily granularity): events recur loosely and much of each day
//    is novel -> longer periods, lower repeat probability, high noise ->
//    much lower absolute MRR, and structure-aware models gain most.
struct SyntheticConfig {
  std::string name;
  int64_t num_entities = 300;
  int64_t num_relations = 24;
  int64_t num_timestamps = 80;
  int64_t facts_per_timestamp = 60;
  int64_t num_schemas = 600;  // size of the recurring event-schema pool
  int64_t min_period = 1;
  int64_t max_period = 10;
  double repeat_prob = 0.8;   // chance a due schema actually fires
  double noise_frac = 0.1;    // share of per-timestamp facts drawn at random
  // Fraction of schemas whose *relation rotates over time* with a global
  // phase (t mod cycle_len): the (s, o) pair is fixed but the relation
  // cycles in lockstep across the whole graph. Forecasting these relations
  // requires tracking the temporal evolution of relation semantics (the
  // behaviour RETIA's RAM/TIM target); a static (s, o) -> r memoriser
  // faces an unresolvable ambiguity.
  double cycle_frac = 0.0;
  int64_t cycle_len = 3;
  double entity_zipf = 1.1;   // popularity skew when sampling entities
  double relation_zipf = 1.05;
  std::string granularity = "synthetic";
  uint64_t seed = 42;

  // Scaled-down stand-ins for the five paper benchmarks (Table V).
  static SyntheticConfig Icews14Like();
  static SyntheticConfig Icews0515Like();
  static SyntheticConfig Icews18Like();
  static SyntheticConfig YagoLike();
  static SyntheticConfig WikiLike();
};

// Generates the dataset and splits it 80/10/10 by time (paper protocol).
TkgDataset GenerateSynthetic(const SyntheticConfig& config);

}  // namespace retia::tkg

#endif  // RETIA_TKG_SYNTHETIC_H_
