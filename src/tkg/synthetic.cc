#include "tkg/synthetic.h"

#include <algorithm>
#include <set>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace retia::tkg {

SyntheticConfig SyntheticConfig::Icews14Like() {
  SyntheticConfig c;
  c.name = "ICEWS14-like";
  c.num_entities = 300;
  c.num_relations = 36;
  c.num_timestamps = 70;
  c.facts_per_timestamp = 45;
  c.num_schemas = 700;
  c.min_period = 2;
  c.max_period = 24;
  c.repeat_prob = 0.40;
  c.noise_frac = 0.45;
  c.cycle_frac = 0.55;
  c.granularity = "24 hours";
  c.seed = 140;
  return c;
}

SyntheticConfig SyntheticConfig::Icews0515Like() {
  SyntheticConfig c;
  c.name = "ICEWS05-15-like";
  c.num_entities = 340;
  c.num_relations = 40;
  c.num_timestamps = 90;
  c.facts_per_timestamp = 45;
  c.num_schemas = 850;
  c.min_period = 2;
  c.max_period = 24;
  c.repeat_prob = 0.45;
  c.noise_frac = 0.40;
  c.cycle_frac = 0.55;
  c.granularity = "24 hours";
  c.seed = 515;
  return c;
}

SyntheticConfig SyntheticConfig::Icews18Like() {
  SyntheticConfig c;
  c.name = "ICEWS18-like";
  c.num_entities = 420;
  c.num_relations = 42;
  c.num_timestamps = 70;
  c.facts_per_timestamp = 55;
  c.num_schemas = 1000;
  c.min_period = 2;
  c.max_period = 28;
  c.repeat_prob = 0.35;
  c.noise_frac = 0.50;
  c.cycle_frac = 0.60;
  c.granularity = "24 hours";
  c.seed = 180;
  return c;
}

SyntheticConfig SyntheticConfig::YagoLike() {
  SyntheticConfig c;
  c.name = "YAGO-like";
  c.num_entities = 220;
  c.num_relations = 10;
  c.num_timestamps = 36;
  c.facts_per_timestamp = 60;
  c.num_schemas = 110;
  c.min_period = 1;
  c.max_period = 3;
  c.repeat_prob = 0.92;
  c.noise_frac = 0.05;
  c.cycle_frac = 0.25;
  c.granularity = "1 year";
  c.seed = 30;
  return c;
}

SyntheticConfig SyntheticConfig::WikiLike() {
  SyntheticConfig c;
  c.name = "WIKI-like";
  c.num_entities = 260;
  c.num_relations = 20;
  c.num_timestamps = 40;
  c.facts_per_timestamp = 65;
  c.num_schemas = 140;
  c.min_period = 1;
  c.max_period = 4;
  c.repeat_prob = 0.88;
  c.noise_frac = 0.08;
  c.cycle_frac = 0.25;
  c.granularity = "1 year";
  c.seed = 77;
  return c;
}

namespace {

// A recurring event schema: a fixed triple that is "due" at timestamps
// congruent to `phase` modulo `period`.
struct Schema {
  int64_t subject;
  int64_t relation;
  int64_t object;
  int64_t period;
  int64_t phase;
  // cycle_len == 0: fixed relation. Otherwise the relation rotates with a
  // *global* phase shared by every cycling schema:
  //   relation_t = (relation + (t mod cycle_len)) mod M.
  // Because the phase is global, which relations are currently "active" is
  // a dataset-wide temporal signal: models that evolve relation
  // representations over the history (RE-GCN-family, RETIA) can track it,
  // while a static (s, o) -> r memoriser sees an unresolvable 1/cycle_len
  // ambiguity.
  int64_t cycle_len = 0;

  int64_t RelationAt(int64_t t, int64_t num_relations) const {
    if (cycle_len == 0) return relation;
    return (relation + t % cycle_len) % num_relations;
  }
};

}  // namespace

TkgDataset GenerateSynthetic(const SyntheticConfig& config) {
  RETIA_CHECK(config.num_entities > 1);
  RETIA_CHECK(config.num_relations > 0);
  RETIA_CHECK(config.num_timestamps >= 10);
  RETIA_CHECK_LE(config.min_period, config.max_period);
  util::Rng rng(config.seed);

  auto sample_entity = [&]() {
    return rng.Zipf(config.num_entities, config.entity_zipf);
  };
  auto sample_relation = [&]() {
    return rng.Zipf(config.num_relations, config.relation_zipf);
  };

  // Build the schema pool. Distinct triples so that relation forecasting
  // carries signal: a recurring (s, o) pair almost determines its relation.
  std::vector<Schema> schemas;
  std::set<std::tuple<int64_t, int64_t, int64_t>> seen;
  int64_t guard = 0;
  while (static_cast<int64_t>(schemas.size()) < config.num_schemas &&
         guard++ < config.num_schemas * 50) {
    Schema s;
    s.subject = sample_entity();
    s.object = sample_entity();
    if (s.subject == s.object) continue;
    s.relation = sample_relation();
    if (!seen.insert({s.subject, s.relation, s.object}).second) continue;
    s.period = rng.UniformInt(config.min_period, config.max_period);
    s.phase = rng.UniformInt(0, s.period - 1);
    if (config.cycle_frac > 0.0 && rng.Bernoulli(config.cycle_frac) &&
        config.num_relations >= 3) {
      s.cycle_len = std::min(config.cycle_len, config.num_relations);
    }
    schemas.push_back(s);
  }

  std::vector<Quadruple> all;
  std::set<std::tuple<int64_t, int64_t, int64_t>> at_t;
  for (int64_t t = 0; t < config.num_timestamps; ++t) {
    at_t.clear();
    std::vector<Quadruple> facts;
    // Recurring schemas due at this timestamp.
    for (const Schema& s : schemas) {
      if (t % s.period != s.phase) continue;
      if (!rng.Bernoulli(config.repeat_prob)) continue;
      const int64_t rel = s.RelationAt(t, config.num_relations);
      if (!at_t.insert({s.subject, rel, s.object}).second) continue;
      facts.push_back({s.subject, rel, s.object, t});
    }
    // Fresh noise facts up to the per-timestamp budget.
    const int64_t target = config.facts_per_timestamp;
    const int64_t noise_target = static_cast<int64_t>(
        config.noise_frac * static_cast<double>(target));
    int64_t noise_added = 0;
    int64_t attempts = 0;
    while ((noise_added < noise_target ||
            static_cast<int64_t>(facts.size()) < target) &&
           attempts++ < target * 20) {
      Quadruple q;
      q.subject = sample_entity();
      q.object = sample_entity();
      if (q.subject == q.object) continue;
      q.relation = sample_relation();
      q.time = t;
      if (!at_t.insert({q.subject, q.relation, q.object}).second) continue;
      facts.push_back(q);
      ++noise_added;
    }
    all.insert(all.end(), facts.begin(), facts.end());
  }

  std::vector<Quadruple> train;
  std::vector<Quadruple> valid;
  std::vector<Quadruple> test;
  SplitByTime(std::move(all), SplitProportions{}, &train, &valid, &test);
  return TkgDataset(config.name, config.num_entities, config.num_relations,
                    std::move(train), std::move(valid), std::move(test),
                    config.granularity);
}

}  // namespace retia::tkg
