#ifndef RETIA_TKG_ANALYSIS_H_
#define RETIA_TKG_ANALYSIS_H_

#include "tkg/dataset.h"

namespace retia::tkg {

// Structural statistics of a temporal knowledge graph that explain how
// hard extrapolation is on it. The paper's cross-dataset contrasts (Tables
// III/IV/VII) are driven by exactly these properties: yearly YAGO/WIKI have
// high repetition and subgraph overlap (easy for evolution/copy models),
// daily ICEWS has high novelty (hard for everyone, structure-aware models
// gain most).
struct TemporalStats {
  // Share of facts whose (s, r, o) triple already occurred at an earlier
  // timestamp ("how much does pure copying solve?").
  double repetition_rate = 0.0;
  // Mean Jaccard similarity between the triple sets of consecutive
  // timestamps ("how smoothly does the graph evolve?").
  double consecutive_overlap = 0.0;
  // Share of facts whose (s, o) pair occurred earlier with a *different*
  // relation ("how much does relation forecasting need temporal context?").
  double relation_drift_rate = 0.0;
  // Shannon entropy (bits) of the relation marginal distribution.
  double relation_entropy = 0.0;
  double mean_facts_per_timestamp = 0.0;
  int64_t distinct_triples = 0;
};

// Computes the statistics over all splits in time order.
TemporalStats AnalyzeTemporal(const TkgDataset& dataset);

}  // namespace retia::tkg

#endif  // RETIA_TKG_ANALYSIS_H_
