#ifndef RETIA_TKG_DATASET_H_
#define RETIA_TKG_DATASET_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace retia::tkg {

// One fact (s, r, o, t). Entities and relations are dense integer ids;
// timestamps are dense integers after granularity normalisation (one unit =
// one temporal subgraph, matching the paper's G_t slicing).
struct Quadruple {
  int64_t subject = 0;
  int64_t relation = 0;
  int64_t object = 0;
  int64_t time = 0;

  friend bool operator==(const Quadruple&, const Quadruple&) = default;
  friend auto operator<=>(const Quadruple&, const Quadruple&) = default;
};

// Table V style summary of a dataset.
struct DatasetStats {
  std::string name;
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  int64_t num_train = 0;
  int64_t num_valid = 0;
  int64_t num_test = 0;
  int64_t num_timestamps = 0;
  std::string granularity;
};

// A temporal knowledge graph with train/valid/test splits. The splits are
// time-ordered (train timestamps < valid timestamps < test timestamps),
// matching the extrapolation protocol: models may only see strictly earlier
// subgraphs when forecasting a timestamp.
class TkgDataset {
 public:
  TkgDataset(std::string name, int64_t num_entities, int64_t num_relations,
             std::vector<Quadruple> train, std::vector<Quadruple> valid,
             std::vector<Quadruple> test, std::string granularity = "synthetic");

  const std::string& name() const { return name_; }
  int64_t num_entities() const { return num_entities_; }
  int64_t num_relations() const { return num_relations_; }

  const std::vector<Quadruple>& train() const { return train_; }
  const std::vector<Quadruple>& valid() const { return valid_; }
  const std::vector<Quadruple>& test() const { return test_; }

  // All facts at timestamp `t`, across every split (streamed buckets
  // included). Empty vector when the timestamp has no facts. Used to build
  // evaluation histories under the raw protocol (all previously *observed*
  // facts are available as history).
  const std::vector<Quadruple>& FactsAt(int64_t t) const;

  // Sorted list of timestamps that carry at least one fact, per split.
  const std::vector<int64_t>& train_times() const { return train_times_; }
  const std::vector<int64_t>& valid_times() const { return valid_times_; }
  const std::vector<int64_t>& test_times() const { return test_times_; }

  // ---- Streaming append path (src/stream) --------------------------------
  //
  // A live dataset is grown at the frontier only: retia::stream seals one
  // timestep bucket at a time and appends it here, so every timestamp is
  // appended exactly once and historical subgraphs never change after the
  // fact (lazily-built GraphCache entries stay valid). Appends are NOT
  // thread-safe; the stream pipeline serializes them against readers by
  // only publishing immutable snapshot copies to the serving tier.

  // Appends one sealed bucket of facts, all at timestamp `t`, which must be
  // strictly greater than every existing timestamp (max_time()). Facts must
  // respect the current vocabulary bounds.
  void AppendBucket(int64_t t, const std::vector<Quadruple>& facts);

  // Raises the entity/relation vocabulary bounds (never shrinks). Existing
  // facts keep their ids; the caller is responsible for growing any model
  // that scores against this dataset (see stream::GrowEntityVocab).
  void GrowVocab(int64_t num_entities, int64_t num_relations);

  // Facts appended through AppendBucket, in append order.
  const std::vector<Quadruple>& streamed() const { return streamed_; }
  const std::vector<int64_t>& streamed_times() const { return streamed_times_; }

  // Sorted fact-bearing timestamps across every split and streamed bucket.
  const std::vector<int64_t>& all_times() const { return all_times_; }

  // Newest fact-bearing timestamp, or -1 for an empty dataset.
  int64_t max_time() const {
    return all_times_.empty() ? -1 : all_times_.back();
  }

  // Number of distinct timestamps across all splits.
  int64_t num_timestamps() const { return static_cast<int64_t>(by_time_.size()); }

  DatasetStats Stats() const;

 private:
  std::string name_;
  int64_t num_entities_;
  int64_t num_relations_;
  std::string granularity_;
  std::vector<Quadruple> train_;
  std::vector<Quadruple> valid_;
  std::vector<Quadruple> test_;
  std::vector<Quadruple> streamed_;
  std::map<int64_t, std::vector<Quadruple>> by_time_;
  std::vector<int64_t> train_times_;
  std::vector<int64_t> valid_times_;
  std::vector<int64_t> test_times_;
  std::vector<int64_t> streamed_times_;
  std::vector<int64_t> all_times_;
  std::vector<Quadruple> empty_;
};

// Reads quadruples from the benchmark TSV format used by the RE-GCN/RETIA
// releases: one fact per line, "subject\trelation\tobject\ttime" (extra
// columns are ignored). Timestamps are divided by `time_granularity` when
// it is > 1 (the raw ICEWS dumps use 24h granularity in hours).
std::vector<Quadruple> LoadQuadrupleFile(const std::string& path,
                                         int64_t time_granularity = 1);

// Writes quadruples in the same TSV format.
void SaveQuadrupleFile(const std::string& path,
                       const std::vector<Quadruple>& quads);

// Splits facts into train/valid/test by time proportions (default 80/10/10
// as in the paper). Facts are grouped by timestamp: every fact of one
// timestamp lands in the same split.
struct SplitProportions {
  double train = 0.8;
  double valid = 0.1;
};
void SplitByTime(std::vector<Quadruple> all, const SplitProportions& prop,
                 std::vector<Quadruple>* train, std::vector<Quadruple>* valid,
                 std::vector<Quadruple>* test);

}  // namespace retia::tkg

#endif  // RETIA_TKG_DATASET_H_
