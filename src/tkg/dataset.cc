#include "tkg/dataset.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "util/check.h"

namespace retia::tkg {

namespace {

std::vector<int64_t> DistinctTimes(const std::vector<Quadruple>& quads) {
  std::set<int64_t> times;
  for (const Quadruple& q : quads) times.insert(q.time);
  return {times.begin(), times.end()};
}

}  // namespace

TkgDataset::TkgDataset(std::string name, int64_t num_entities,
                       int64_t num_relations, std::vector<Quadruple> train,
                       std::vector<Quadruple> valid,
                       std::vector<Quadruple> test, std::string granularity)
    : name_(std::move(name)),
      num_entities_(num_entities),
      num_relations_(num_relations),
      granularity_(std::move(granularity)),
      train_(std::move(train)),
      valid_(std::move(valid)),
      test_(std::move(test)) {
  for (const std::vector<Quadruple>* split : {&train_, &valid_, &test_}) {
    for (const Quadruple& q : *split) {
      RETIA_CHECK_LT(q.subject, num_entities_);
      RETIA_CHECK_LT(q.object, num_entities_);
      RETIA_CHECK_LT(q.relation, num_relations_);
      RETIA_CHECK_LE(0, q.time);
      by_time_[q.time].push_back(q);
    }
  }
  train_times_ = DistinctTimes(train_);
  valid_times_ = DistinctTimes(valid_);
  test_times_ = DistinctTimes(test_);
  for (const auto& [t, facts] : by_time_) all_times_.push_back(t);
}

void TkgDataset::AppendBucket(int64_t t, const std::vector<Quadruple>& facts) {
  RETIA_CHECK_MSG(t > max_time(),
                  "AppendBucket(" << t << ") is not past the frontier "
                                  << max_time()
                                  << "; buckets seal strictly in time order");
  RETIA_CHECK(!facts.empty());
  std::vector<Quadruple>& bucket = by_time_[t];
  for (Quadruple q : facts) {
    RETIA_CHECK_EQ(q.time, t);
    RETIA_CHECK_LE(0, q.subject);
    RETIA_CHECK_LT(q.subject, num_entities_);
    RETIA_CHECK_LE(0, q.object);
    RETIA_CHECK_LT(q.object, num_entities_);
    RETIA_CHECK_LE(0, q.relation);
    RETIA_CHECK_LT(q.relation, num_relations_);
    bucket.push_back(q);
    streamed_.push_back(q);
  }
  streamed_times_.push_back(t);
  all_times_.push_back(t);  // t > max_time() keeps the vector sorted
}

void TkgDataset::GrowVocab(int64_t num_entities, int64_t num_relations) {
  RETIA_CHECK_LE(num_entities_, num_entities);
  RETIA_CHECK_LE(num_relations_, num_relations);
  num_entities_ = num_entities;
  num_relations_ = num_relations;
}

const std::vector<Quadruple>& TkgDataset::FactsAt(int64_t t) const {
  auto it = by_time_.find(t);
  if (it == by_time_.end()) return empty_;
  return it->second;
}

DatasetStats TkgDataset::Stats() const {
  DatasetStats s;
  s.name = name_;
  s.num_entities = num_entities_;
  s.num_relations = num_relations_;
  s.num_train = static_cast<int64_t>(train_.size());
  s.num_valid = static_cast<int64_t>(valid_.size());
  s.num_test = static_cast<int64_t>(test_.size());
  s.num_timestamps = num_timestamps();
  s.granularity = granularity_;
  return s;
}

std::vector<Quadruple> LoadQuadrupleFile(const std::string& path,
                                         int64_t time_granularity) {
  std::ifstream in(path);
  RETIA_CHECK_MSG(in.good(), "cannot open " << path);
  std::vector<Quadruple> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream iss(line);
    Quadruple q;
    if (!(iss >> q.subject >> q.relation >> q.object >> q.time)) continue;
    if (time_granularity > 1) q.time /= time_granularity;
    out.push_back(q);
  }
  return out;
}

void SaveQuadrupleFile(const std::string& path,
                       const std::vector<Quadruple>& quads) {
  std::ofstream out(path);
  RETIA_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  for (const Quadruple& q : quads) {
    out << q.subject << '\t' << q.relation << '\t' << q.object << '\t'
        << q.time << '\n';
  }
}

void SplitByTime(std::vector<Quadruple> all, const SplitProportions& prop,
                 std::vector<Quadruple>* train, std::vector<Quadruple>* valid,
                 std::vector<Quadruple>* test) {
  RETIA_CHECK(prop.train > 0.0 && prop.valid >= 0.0 &&
              prop.train + prop.valid < 1.0 + 1e-9);
  std::sort(all.begin(), all.end(),
            [](const Quadruple& a, const Quadruple& b) {
              return a.time < b.time ||
                     (a.time == b.time && std::tie(a.subject, a.relation,
                                                   a.object) <
                                              std::tie(b.subject, b.relation,
                                                       b.object));
            });
  const std::vector<int64_t> times = DistinctTimes(all);
  const int64_t total = static_cast<int64_t>(times.size());
  RETIA_CHECK_MSG(total >= 3, "need at least 3 timestamps to split");
  int64_t n_train = std::max<int64_t>(
      1, static_cast<int64_t>(prop.train * static_cast<double>(total)));
  int64_t n_valid = std::max<int64_t>(
      1, static_cast<int64_t>(prop.valid * static_cast<double>(total)));
  if (n_train + n_valid >= total) {
    n_train = total - 2;
    n_valid = 1;
  }
  const int64_t valid_from = times[n_train];
  const int64_t test_from = times[n_train + n_valid];
  train->clear();
  valid->clear();
  test->clear();
  for (const Quadruple& q : all) {
    if (q.time < valid_from) {
      train->push_back(q);
    } else if (q.time < test_from) {
      valid->push_back(q);
    } else {
      test->push_back(q);
    }
  }
}

}  // namespace retia::tkg
