#include "tkg/analysis.h"

#include <cmath>
#include <map>
#include <set>

namespace retia::tkg {

TemporalStats AnalyzeTemporal(const TkgDataset& dataset) {
  TemporalStats stats;
  std::set<std::tuple<int64_t, int64_t, int64_t>> seen_triples;
  std::map<std::pair<int64_t, int64_t>, std::set<int64_t>> seen_pair_relations;
  std::map<int64_t, int64_t> relation_counts;
  std::set<std::tuple<int64_t, int64_t, int64_t>> previous_set;

  int64_t total_facts = 0;
  int64_t repeated = 0;
  int64_t drifted = 0;
  double overlap_sum = 0.0;
  int64_t overlap_terms = 0;
  int64_t timestamps = 0;

  // Walk timestamps in order; FactsAt merges all splits.
  std::set<int64_t> times;
  for (const auto* split :
       {&dataset.train(), &dataset.valid(), &dataset.test()}) {
    for (const Quadruple& q : *split) times.insert(q.time);
  }
  for (int64_t t : times) {
    const std::vector<Quadruple>& facts = dataset.FactsAt(t);
    if (facts.empty()) continue;
    ++timestamps;
    std::set<std::tuple<int64_t, int64_t, int64_t>> current_set;
    for (const Quadruple& q : facts) {
      ++total_facts;
      const auto triple = std::make_tuple(q.subject, q.relation, q.object);
      current_set.insert(triple);
      if (seen_triples.count(triple)) ++repeated;
      auto it = seen_pair_relations.find({q.subject, q.object});
      if (it != seen_pair_relations.end() &&
          (it->second.size() > 1 || !it->second.count(q.relation))) {
        ++drifted;
      }
      ++relation_counts[q.relation];
    }
    // Jaccard overlap with the previous timestamp.
    if (!previous_set.empty()) {
      int64_t intersection = 0;
      for (const auto& triple : current_set) {
        if (previous_set.count(triple)) ++intersection;
      }
      const int64_t union_size = static_cast<int64_t>(
          current_set.size() + previous_set.size()) - intersection;
      if (union_size > 0) {
        overlap_sum += static_cast<double>(intersection) / union_size;
        ++overlap_terms;
      }
    }
    // Commit this timestamp's facts to the history *after* scoring it, so
    // a triple repeated within one timestamp is not self-counted.
    for (const Quadruple& q : facts) {
      seen_triples.insert({q.subject, q.relation, q.object});
      seen_pair_relations[{q.subject, q.object}].insert(q.relation);
    }
    previous_set = std::move(current_set);
  }

  if (total_facts > 0) {
    stats.repetition_rate = static_cast<double>(repeated) / total_facts;
    stats.relation_drift_rate = static_cast<double>(drifted) / total_facts;
  }
  if (overlap_terms > 0) stats.consecutive_overlap = overlap_sum / overlap_terms;
  if (timestamps > 0) {
    stats.mean_facts_per_timestamp =
        static_cast<double>(total_facts) / timestamps;
  }
  stats.distinct_triples = static_cast<int64_t>(seen_triples.size());
  double entropy = 0.0;
  for (const auto& [rel, count] : relation_counts) {
    const double p = static_cast<double>(count) / total_facts;
    entropy -= p * std::log2(p);
  }
  stats.relation_entropy = entropy;
  return stats;
}

}  // namespace retia::tkg
