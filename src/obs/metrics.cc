#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/trace.h"
#include "util/check.h"

namespace retia::obs {

int64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point anchor = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              anchor)
      .count();
}

namespace {
std::atomic<bool> g_metrics_enabled{true};

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}
}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Gauge::Set(double value) {
  bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
}

double Gauge::Value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

int Histogram::BucketIndex(int64_t value) {
  if (value < 1) return 0;
  const int index =
      std::bit_width(static_cast<uint64_t>(value));  // floor(log2)+1
  return index < kNumBuckets ? index : kNumBuckets - 1;
}

int64_t Histogram::BucketLowerEdge(int bucket) {
  return bucket == 0 ? 0 : int64_t{1} << (bucket - 1);
}

int64_t Histogram::BucketUpperEdge(int bucket) {
  return int64_t{1} << bucket;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::QuantileFromBuckets(
    const std::array<int64_t, kNumBuckets>& buckets, int64_t count, double q) {
  if (count <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank (1-based) with linear interpolation inside the bucket.
  int64_t rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (in_bucket <= 0) continue;
    cumulative += in_bucket;
    if (cumulative >= rank) {
      const double position =
          static_cast<double>(rank - (cumulative - in_bucket));
      const double fraction = position / static_cast<double>(in_bucket);
      const double lower = static_cast<double>(BucketLowerEdge(i));
      const double upper = static_cast<double>(BucketUpperEdge(i));
      return lower + fraction * (upper - lower);
    }
  }
  return static_cast<double>(BucketUpperEdge(kNumBuckets - 1));
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = static_cast<double>(sum_.load(std::memory_order_relaxed));
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  // A racing Record may have bumped count_ but not its bucket yet (or vice
  // versa); normalise to the bucket total so the quantile walk is
  // self-consistent.
  int64_t bucket_total = 0;
  for (int64_t b : snap.buckets) bucket_total += b;
  snap.count = bucket_total;
  snap.mean = snap.count > 0 ? snap.sum / static_cast<double>(snap.count) : 0.0;
  snap.p50 = QuantileFromBuckets(snap.buckets, snap.count, 0.50);
  snap.p95 = QuantileFromBuckets(snap.buckets, snap.count, 0.95);
  snap.p99 = QuantileFromBuckets(snap.buckets, snap.count, 0.99);
  return snap;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = [] {
    InitObsFromEnvOnce();
    return new MetricsRegistry();
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RETIA_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                  "metric '" << name << "' already registered as another kind");
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RETIA_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
                  "metric '" << name << "' already registered as another kind");
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  RETIA_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                  "metric '" << name << "' already registered as another kind");
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, metric] : counters_) names.push_back(name);
  for (const auto& [name, metric] : gauges_) names.push_back(name);
  for (const auto& [name, metric] : histograms_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << counter->Value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << FormatDouble(gauge->Value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ",";
    first = false;
    const Histogram::Snapshot snap = histogram->Snap();
    out << "\"" << name << "\":{\"count\":" << snap.count
        << ",\"sum\":" << FormatDouble(snap.sum)
        << ",\"mean\":" << FormatDouble(snap.mean)
        << ",\"p50\":" << FormatDouble(snap.p50)
        << ",\"p95\":" << FormatDouble(snap.p95)
        << ",\"p99\":" << FormatDouble(snap.p99) << ",\"buckets\":[";
    int last_nonzero = -1;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (snap.buckets[static_cast<size_t>(i)] != 0) last_nonzero = i;
    }
    for (int i = 0; i <= last_nonzero; ++i) {
      if (i > 0) out << ",";
      out << snap.buckets[static_cast<size_t>(i)];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << ToJson() << "\n";
  return out.good();
}

std::map<std::string, int64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> values;
  for (const auto& [name, counter] : counters_) values[name] = counter->Value();
  return values;
}

std::map<std::string, double> MetricsRegistry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> values;
  for (const auto& [name, gauge] : gauges_) values[name] = gauge->Value();
  return values;
}

std::map<std::string, Histogram::Snapshot> MetricsRegistry::HistogramSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Histogram::Snapshot> snaps;
  for (const auto& [name, histogram] : histograms_) {
    snaps[name] = histogram->Snap();
  }
  return snaps;
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace retia::obs
