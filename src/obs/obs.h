#ifndef RETIA_OBS_OBS_H_
#define RETIA_OBS_OBS_H_

// retia::obs umbrella header: the RETIA_OBS_* instrumentation macros and
// the RAII ScopedTimer that ties metrics (obs/metrics.h) and tracing
// (obs/trace.h) together.
//
// Ownership / threading contract: every macro is safe from any thread.
// Each call site resolves its metric pointer once (function-local static)
// and afterwards pays a few relaxed atomics per hit; metric and span
// names must be string literals. Defining RETIA_OBS_DISABLE (per
// translation unit or tree-wide via -DRETIA_OBS_DISABLE=ON) compiles
// every macro to nothing — the obs library itself still links.
//
// Usage:
//   {
//     RETIA_OBS_TIMED_SCOPE("tensor.gemm.us");   // histogram + trace span
//     Gemm(...);
//   }
//   RETIA_OBS_COUNTER_ADD("par.jobs", 1);
//   RETIA_OBS_GAUGE_SET("train.loss.joint", loss);
//
// Every metric name used with these macros must be catalogued in
// docs/OBSERVABILITY.md; scripts/check.sh fails otherwise.

#include "obs/metrics.h"
#include "obs/trace.h"

namespace retia::obs {

// Times a scope into a histogram (in MICROSECONDS) and, when tracing is
// enabled, also emits a trace span under the same name. Inactive (no
// clock reads) when metrics are disabled and tracing is off.
class ScopedTimer {
 public:
  ScopedTimer(Histogram* histogram, const char* name)
      : histogram_(MetricsEnabled() ? histogram : nullptr),
        name_(Trace::Enabled() ? name : nullptr) {
    if (histogram_ != nullptr || name_ != nullptr) start_ns_ = NowNs();
  }

  ~ScopedTimer() {
    if (histogram_ == nullptr && name_ == nullptr) return;
    const int64_t duration_ns = NowNs() - start_ns_;
    if (histogram_ != nullptr) histogram_->Record(duration_ns / 1000);
    if (name_ != nullptr) Trace::RecordComplete(name_, start_ns_, duration_ns);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  const char* name_;
  int64_t start_ns_ = 0;
};

}  // namespace retia::obs

#define RETIA_OBS_CONCAT_INNER_(a, b) a##b
#define RETIA_OBS_CONCAT_(a, b) RETIA_OBS_CONCAT_INNER_(a, b)

#if defined(RETIA_OBS_DISABLE)

#define RETIA_OBS_TIMED_SCOPE(name) static_cast<void>(0)
#define RETIA_OBS_TRACE_SPAN(name) static_cast<void>(0)
#define RETIA_OBS_COUNTER_ADD(name, delta) static_cast<void>(0)
#define RETIA_OBS_GAUGE_SET(name, value) static_cast<void>(0)
#define RETIA_OBS_HIST_RECORD(name, value) static_cast<void>(0)

#else  // !defined(RETIA_OBS_DISABLE)

// Histogram-timed scope (+ trace span when tracing): place at the top of
// the block to measure. `name` must be a string literal.
#define RETIA_OBS_TIMED_SCOPE(name)                                      \
  static ::retia::obs::Histogram* RETIA_OBS_CONCAT_(                     \
      retia_obs_hist_, __LINE__) =                                       \
      ::retia::obs::MetricsRegistry::Get().GetHistogram(name);           \
  ::retia::obs::ScopedTimer RETIA_OBS_CONCAT_(retia_obs_timer_,          \
                                              __LINE__)(                 \
      RETIA_OBS_CONCAT_(retia_obs_hist_, __LINE__), name)

// Trace-only scope: no histogram, records only while tracing is enabled.
#define RETIA_OBS_TRACE_SPAN(name)                                       \
  static const bool RETIA_OBS_CONCAT_(retia_obs_env_, __LINE__) =        \
      (::retia::obs::InitObsFromEnvOnce(), true);                        \
  static_cast<void>(RETIA_OBS_CONCAT_(retia_obs_env_, __LINE__));        \
  ::retia::obs::TraceSpan RETIA_OBS_CONCAT_(retia_obs_span_,             \
                                            __LINE__)(name)

#define RETIA_OBS_COUNTER_ADD(name, delta)                               \
  do {                                                                   \
    if (::retia::obs::MetricsEnabled()) {                                \
      static ::retia::obs::Counter* retia_obs_counter =                  \
          ::retia::obs::MetricsRegistry::Get().GetCounter(name);         \
      retia_obs_counter->Add(delta);                                     \
    }                                                                    \
  } while (0)

#define RETIA_OBS_GAUGE_SET(name, value)                                 \
  do {                                                                   \
    if (::retia::obs::MetricsEnabled()) {                                \
      static ::retia::obs::Gauge* retia_obs_gauge =                      \
          ::retia::obs::MetricsRegistry::Get().GetGauge(name);           \
      retia_obs_gauge->Set(value);                                       \
    }                                                                    \
  } while (0)

#define RETIA_OBS_HIST_RECORD(name, value)                               \
  do {                                                                   \
    if (::retia::obs::MetricsEnabled()) {                                \
      static ::retia::obs::Histogram* retia_obs_histogram =              \
          ::retia::obs::MetricsRegistry::Get().GetHistogram(name);       \
      retia_obs_histogram->Record(value);                                \
    }                                                                    \
  } while (0)

#endif  // RETIA_OBS_DISABLE

#endif  // RETIA_OBS_OBS_H_
