#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "util/env.h"

namespace retia::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
};

// One ring per thread. The owning thread appends under `mu`; exporters
// briefly lock the same mutex to copy, so appends never race with reads
// (appends are uncontended except during an export).
struct ThreadBuffer {
  std::mutex mu;
  uint32_t tid = 0;
  std::vector<TraceEvent> ring;
  int64_t next = 0;      // ring index of the next write
  int64_t retained = 0;  // min(total appended, capacity)
  int64_t dropped = 0;   // events overwritten by wrap-around
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  // live + exited threads
  uint32_t next_tid = 1;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  // The shared_ptr in the registry keeps a thread's events alive (and
  // exportable) after the thread exits.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto created = std::make_shared<ThreadBuffer>();
    BufferRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    created->tid = registry.next_tid++;
    registry.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

}  // namespace

bool Trace::Enabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void Trace::Enable() {
  g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void Trace::Disable() {
  g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void Trace::RecordComplete(const char* name, int64_t start_ns,
                           int64_t duration_ns) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.ring.empty()) {
    buffer.ring.resize(static_cast<size_t>(kRingCapacity));
  }
  if (buffer.retained == kRingCapacity) {
    ++buffer.dropped;
  } else {
    ++buffer.retained;
  }
  buffer.ring[static_cast<size_t>(buffer.next)] = {name, start_ns, duration_ns};
  buffer.next = (buffer.next + 1) % kRingCapacity;
}

namespace {

struct ExportEvent {
  TraceEvent event;
  uint32_t tid = 0;
};

std::vector<ExportEvent> CollectEvents() {
  std::vector<ExportEvent> events;
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    // Oldest retained event first: with a full ring that is `next`, else 0.
    const int64_t count = buffer->retained;
    const int64_t start =
        count == Trace::kRingCapacity ? buffer->next : int64_t{0};
    for (int64_t i = 0; i < count; ++i) {
      const int64_t slot = (start + i) % Trace::kRingCapacity;
      events.push_back(
          {buffer->ring[static_cast<size_t>(slot)], buffer->tid});
    }
  }
  return events;
}

}  // namespace

std::string Trace::ToJson() {
  std::vector<ExportEvent> events = CollectEvents();
  std::sort(events.begin(), events.end(),
            [](const ExportEvent& a, const ExportEvent& b) {
              return a.event.start_ns < b.event.start_ns;
            });
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[64];
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out << ",";
    const ExportEvent& e = events[i];
    // Chrome's `ts`/`dur` unit is microseconds.
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.event.start_ns) / 1e3);
    out << "{\"name\":\"" << e.event.name
        << "\",\"cat\":\"retia\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":" << buf;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.event.duration_ns) / 1e3);
    out << ",\"dur\":" << buf << "}";
  }
  out << "]}";
  return out.str();
}

bool Trace::WriteFile(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << ToJson() << "\n";
  return out.good();
}

void Trace::Clear() {
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->next = 0;
    buffer->retained = 0;
    buffer->dropped = 0;
  }
}

int64_t Trace::DroppedCount() {
  int64_t dropped = 0;
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

int64_t Trace::EventCount() {
  int64_t count = 0;
  BufferRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    count += buffer->retained;
  }
  return count;
}

TraceSpan::TraceSpan(const char* name)
    : name_(Trace::Enabled() ? name : nullptr) {
  if (name_ != nullptr) start_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (name_ != nullptr) {
    Trace::RecordComplete(name_, start_ns_, NowNs() - start_ns_);
  }
}

namespace {

std::string& TracePathAtExit() {
  static std::string* path = new std::string();
  return *path;
}

std::string& MetricsPathAtExit() {
  static std::string* path = new std::string();
  return *path;
}

void WriteObsFilesAtExit() {
  const std::string& trace_path = TracePathAtExit();
  if (!trace_path.empty() && !Trace::WriteFile(trace_path)) {
    std::fprintf(stderr, "[obs] failed to write RETIA_TRACE file %s\n",
                 trace_path.c_str());
  }
  const std::string& metrics_path = MetricsPathAtExit();
  if (!metrics_path.empty() &&
      !MetricsRegistry::Get().WriteJsonFile(metrics_path)) {
    std::fprintf(stderr, "[obs] failed to write RETIA_METRICS file %s\n",
                 metrics_path.c_str());
  }
}

}  // namespace

void InitObsFromEnvOnce() {
  static const bool initialized = [] {
    if (util::Env::IsSet("RETIA_TRACE")) {
      TracePathAtExit() = util::Env::Raw("RETIA_TRACE");
      Trace::Enable();
    }
    if (util::Env::IsSet("RETIA_METRICS")) {
      MetricsPathAtExit() = util::Env::Raw("RETIA_METRICS");
    }
    if (!TracePathAtExit().empty() || !MetricsPathAtExit().empty()) {
      std::atexit(WriteObsFilesAtExit);
    }
    return true;
  }();
  static_cast<void>(initialized);
}

}  // namespace retia::obs
