#ifndef RETIA_OBS_METRICS_H_
#define RETIA_OBS_METRICS_H_

// retia::obs metrics: a process-wide registry of named counters, gauges,
// and fixed-bucket histograms.
//
// Ownership / threading contract: the registry is a leaked process-wide
// singleton; Get*() registration takes a mutex once per call site (cache
// the returned pointer — the RETIA_OBS_* macros in obs.h do this with a
// function-local static), after which every returned pointer is valid for
// the life of the process and every record operation is a handful of
// relaxed atomics — safe from any thread, lock-free on the hot path.
// Snapshots (ToJson / *Snapshots) are weakly consistent: values recorded
// concurrently with a snapshot may or may not be included.
//
// Usage:
//   obs::Counter* reqs = obs::MetricsRegistry::Get().GetCounter("serve.requests");
//   reqs->Add(1);
//   obs::Histogram* lat = obs::MetricsRegistry::Get().GetHistogram("serve.compute.us");
//   lat->Record(elapsed_us);
//   std::cout << obs::MetricsRegistry::Get().ToJson() << "\n";

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace retia::obs {

// Monotonic nanoseconds since an arbitrary process-wide anchor (the first
// call). Shared clock for ScopedTimer histograms and trace-event
// timestamps so metric latencies and trace spans line up.
int64_t NowNs();

// Process-wide kill switch for metric recording (tracing has its own in
// trace.h). Defaults to on; bench_obs_overhead flips it to measure the
// instrumentation cost. Counter/Gauge/Histogram record methods themselves
// do NOT check it — the check lives in ScopedTimer and the RETIA_OBS_*
// macros, so direct pointer use stays branch-free.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

// Monotonically increasing event count.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins instantaneous value (loss, queue depth, ...).
class Gauge {
 public:
  void Set(double value);
  double Value() const;
  void Reset() { Set(0.0); }

 private:
  // Double stored as bits so the hot path is one relaxed integer store.
  std::atomic<uint64_t> bits_{0};
};

// Fixed-bucket histogram over non-negative integer samples (microseconds
// for the latency instances, plain counts for e.g. serve.batch_size).
//
// Buckets are powers of two — bucket 0 holds values < 1, bucket i >= 1
// holds [2^(i-1), 2^i) — so the bucket edges are a pure function of the
// bucket index, never of the data, and recording is a countl_zero plus one
// relaxed fetch_add. Quantiles are estimated from the bucket counts by
// nearest-rank with linear interpolation inside the selected bucket, which
// bounds the error of p50/p95/p99 by one bucket width.
class Histogram {
 public:
  static constexpr int kNumBuckets = 44;  // last bucket ~2^42us ~= 51 days

  void Record(int64_t value);

  struct Snapshot {
    int64_t count = 0;
    double sum = 0.0;   // sum of recorded values
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::array<int64_t, kNumBuckets> buckets{};
  };
  Snapshot Snap() const;

  // Bucket index for `value`: 0 for value < 1, else floor(log2(value)) + 1
  // capped at kNumBuckets - 1. Exposed for the bucket-edge unit tests.
  static int BucketIndex(int64_t value);
  // Half-open value range [lower, upper) of `bucket`.
  static int64_t BucketLowerEdge(int bucket);
  static int64_t BucketUpperEdge(int bucket);
  // Quantile q in [0, 1] estimated from bucket counts alone (see class
  // comment). Pure function, unit-testable without a live histogram.
  static double QuantileFromBuckets(
      const std::array<int64_t, kNumBuckets>& buckets, int64_t count,
      double q);

  void Reset();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
};

// Name -> metric map. Names are dot-separated lowercase
// (`subsystem.what.unit`, e.g. `tensor.gemm.us`); every name registered
// anywhere in the tree must be catalogued in docs/OBSERVABILITY.md —
// scripts/check.sh greps the sources and fails on undocumented names.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  // Find-or-create. Registering one name as two different metric kinds is
  // a programming error and aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Sorted names of every registered metric (all three kinds).
  std::vector<std::string> Names() const;

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  // {"count":..,"sum":..,"mean":..,"p50":..,"p95":..,"p99":..,
  //  "buckets":[...]}}} with histogram bucket arrays trimmed of trailing
  // zeros.
  std::string ToJson() const;
  // Writes ToJson() (plus a trailing newline) to `path`; false on I/O
  // error.
  bool WriteJsonFile(const std::string& path) const;

  // Structured snapshots for programmatic consumers (bench_table8_runtime's
  // runtime decomposition).
  std::map<std::string, int64_t> CounterValues() const;
  std::map<std::string, double> GaugeValues() const;
  std::map<std::string, Histogram::Snapshot> HistogramSnapshots() const;

  // Zeroes every registered metric (the metrics stay registered). Test- and
  // bench-only; concurrent recorders may interleave with the reset.
  void ResetAllForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace retia::obs

#endif  // RETIA_OBS_METRICS_H_
