#ifndef RETIA_OBS_TRACE_H_
#define RETIA_OBS_TRACE_H_

// retia::obs tracing: RAII spans recorded into per-thread ring buffers and
// exported as Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file).
//
// Ownership / threading contract: spans may open and close on any thread;
// each thread appends to its own fixed-capacity ring buffer (oldest events
// are overwritten and counted as dropped), so recording never blocks on
// other threads. Span names must be string literals (or otherwise outlive
// the process) — the buffers store the pointer, not a copy. Tracing is OFF
// by default: a closed span with tracing off costs one relaxed atomic
// load. Enable programmatically or by setting RETIA_TRACE=<file>, which
// also writes the trace at process exit.
//
// Usage:
//   retia::obs::Trace::Enable();
//   { RETIA_OBS_TRACE_SPAN("train.forward"); model.Evolve(...); }
//   retia::obs::Trace::WriteFile("epoch.trace.json");

#include <cstdint>
#include <string>

namespace retia::obs {

class Trace {
 public:
  // Events each thread retains; older events are overwritten (ring).
  static constexpr int64_t kRingCapacity = 1 << 16;

  static bool Enabled();
  static void Enable();
  static void Disable();

  // Appends one complete ("ph":"X") event for the calling thread.
  // `name` must outlive the process (string literal).
  static void RecordComplete(const char* name, int64_t start_ns,
                             int64_t duration_ns);

  // Chrome trace-event JSON of every retained event from every thread,
  // sorted by start time: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  static std::string ToJson();
  // Writes ToJson() to `path`; false on I/O error.
  static bool WriteFile(const std::string& path);

  // Drops every retained event (buffers stay registered).
  static void Clear();
  // Total events overwritten by ring wrap-around since the last Clear().
  static int64_t DroppedCount();
  // Events currently retained across all threads.
  static int64_t EventCount();
};

// Trace-only RAII span; see obs.h for RETIA_OBS_TRACE_SPAN, which
// compiles out under RETIA_OBS_DISABLE.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  // null when tracing was off at construction
  int64_t start_ns_ = 0;
};

// One-time environment hookup, invoked lazily from MetricsRegistry::Get()
// and TraceSpan construction: RETIA_TRACE=<file> enables tracing now and
// writes the trace file at process exit; RETIA_METRICS=<file> writes a
// metrics JSON snapshot at process exit. Safe to call repeatedly.
void InitObsFromEnvOnce();

}  // namespace retia::obs

#endif  // RETIA_OBS_TRACE_H_
