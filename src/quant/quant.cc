#include "quant/quant.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/obs.h"
#include "simd/simd.h"
#include "util/env.h"

namespace retia::quant {

QuantizedRows QuantizeRows(const float* a, int64_t rows, int64_t cols) {
  RETIA_OBS_TIMED_SCOPE("quant.quantize.us");
  QuantizedRows q;
  q.rows = rows;
  q.cols = cols;
  q.data.resize(static_cast<size_t>(rows * cols));
  q.scales.resize(static_cast<size_t>(rows));
  if (rows > 0 && cols > 0) {
    simd::Kernels().quantize_rows_i8(a, q.data.data(), q.scales.data(), rows,
                                     cols);
  }
  RETIA_OBS_COUNTER_ADD("quant.candidate_rows.quantized", rows);
  return q;
}

QuantizedRows QuantizeTensorRows(const tensor::Tensor& t) {
  assert(t.Rank() == 2);
  return QuantizeRows(t.Data(), t.Shape()[0], t.Shape()[1]);
}

void DequantizeInto(const QuantizedRows& q, float* out) {
  for (int64_t i = 0; i < q.rows; ++i) {
    const float s = q.scales[static_cast<size_t>(i)];
    const int8_t* row = q.data.data() + i * q.cols;
    float* orow = out + i * q.cols;
    for (int64_t c = 0; c < q.cols; ++c)
      orow[c] = static_cast<float>(row[c]) * s;
  }
}

tensor::Tensor MatMulTransposeBQuant(const tensor::Tensor& a,
                                     const QuantizedRows& b) {
  assert(a.Rank() == 2 && a.Shape()[1] == b.cols);
  const int64_t m = a.Shape()[0];
  const int64_t k = a.Shape()[1];
  const int64_t n = b.rows;
  const QuantizedRows aq = QuantizeRows(a.Data(), m, k);
  tensor::Tensor out = tensor::Tensor::Zeros({m, n});
  {
    RETIA_OBS_TIMED_SCOPE("quant.gemm_i8.us");
    simd::GemmNTQuant(aq.data.data(), aq.scales.data(), b.data.data(),
                      b.scales.data(), out.Data(), m, k, n);
  }
  return out;
}

std::vector<uint16_t> EncodeF16(const float* x, int64_t n) {
  std::vector<uint16_t> y(static_cast<size_t>(n));
  if (n > 0) simd::Kernels().f32_to_f16(x, y.data(), n);
  return y;
}

std::vector<float> DecodeF16(const uint16_t* x, int64_t n) {
  std::vector<float> y(static_cast<size_t>(n));
  if (n > 0) simd::Kernels().f16_to_f32(x, y.data(), n);
  return y;
}

bool QuantEnabled() {
  static const bool enabled = [] {
    const std::string v = util::Env::StringOr("RETIA_QUANT", "off");
    if (v == "int8") return true;
    if (v != "off") {
      std::fprintf(stderr,
                   "[retia] warning: RETIA_QUANT=%s is not off|int8; "
                   "using off\n",
                   v.c_str());
    }
    return false;
  }();
  return enabled;
}

int64_t QuantMinRows() {
  static const int64_t min_rows =
      util::Env::PositiveIntOr("RETIA_QUANT_MIN_ROWS", 64);
  return min_rows;
}

}  // namespace retia::quant
