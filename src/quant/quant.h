#ifndef RETIA_QUANT_QUANT_H_
#define RETIA_QUANT_QUANT_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace retia::quant {

// Quantized inference storage and ops (docs/QUANTIZATION.md).
//
// Serving does not need f32 training precision: decode-time candidate
// matrices are stored as per-row symmetric int8 (one f32 scale per row)
// and multiplied with the simd KernelTable's exact-int32 gemm_nt_i8;
// embedding/elementwise payloads ride checkpoints as IEEE binary16.
// Training always stays f32 — nothing here participates in autograd.
//
// Numerics contract (enforced by tests/quant_test.cc, label `quant`):
//  * QuantizeRows / Dequantize / f16 round-trips and MatMulTransposeBQuant
//    are BIT-EXACT across simd backends and thread counts.
//  * Against the f32 reference, a quantized NT product differs by at most
//    (k + 0.25 * (|row sums|)) * sa_i * sb_j in magnitude — see
//    docs/QUANTIZATION.md for the derivation; tests use the analytic
//    per-element bound 127.25 * k * sa_i * sb_j.

// Per-row symmetric int8: q[i,c] in [-127,127], row i dequantizes as
// q[i,c] * scales[i]. An all-zero row stores scale 0 and zero codes.
struct QuantizedRows {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int8_t> data;    // rows * cols codes, row-major
  std::vector<float> scales;   // rows scales (amax_i / 127)
};

// Quantizes a row-major [rows, cols] f32 matrix with the active simd
// backend's quantize_rows_i8 kernel (bit-exact on every backend).
QuantizedRows QuantizeRows(const float* a, int64_t rows, int64_t cols);

// Convenience over a rank-2 tensor's storage (no autograd interaction).
QuantizedRows QuantizeTensorRows(const tensor::Tensor& t);

// Dequantizes into out[rows * cols]; out[i,c] = data[i,c] * scales[i].
void DequantizeInto(const QuantizedRows& q, float* out);

// out[m,n] = A[m,k] * dequant(B)[n,k]^T computed in int8: A's rows are
// quantized on the fly, then GemmNTQuant runs the exact-int32 kernel.
// Eval/serve only — the result carries no autograd graph, and callers are
// expected to hold a tensor::NoGradGuard (the decode path does).
tensor::Tensor MatMulTransposeBQuant(const tensor::Tensor& a,
                                     const QuantizedRows& b);

// IEEE binary16 conversion helpers (round-to-nearest-even, bit-exact on
// every backend); used for the f16 checkpoint sections.
std::vector<uint16_t> EncodeF16(const float* x, int64_t n);
std::vector<float> DecodeF16(const uint16_t* x, int64_t n);

// ---- Env knobs (README env-var table) --------------------------------------

// RETIA_QUANT=off|int8 (default off): whether serve decode runs the
// quantized path. Parsed once per process; unknown values warn and fall
// back to off.
bool QuantEnabled();

// RETIA_QUANT_MIN_ROWS (default 64): candidate matrices with fewer rows
// than this stay f32 even when quantization is on — the quantize cost and
// accuracy loss are not worth it for tiny decodes (e.g. relation tables).
int64_t QuantMinRows();

}  // namespace retia::quant

#endif  // RETIA_QUANT_QUANT_H_
