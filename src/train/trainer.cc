#include "train/trainer.h"

#include <iostream>

#include "obs/obs.h"
#include "util/timer.h"

namespace retia::train {

Trainer::Trainer(core::EvolutionModel* model, graph::GraphCache* cache,
                 const TrainConfig& config)
    : model_(model),
      cache_(cache),
      config_(config),
      params_(model->Parameters()),
      optimizer_(params_, nn::Adam::Options{.lr = config.lr}) {}

bool Trainer::StepOnTimestamp(int64_t t,
                              core::EvolutionModel::LossParts* parts) {
  const std::vector<tkg::Quadruple>& facts = cache_->dataset().FactsAt(t);
  if (facts.empty()) return false;
  const std::vector<int64_t> history =
      cache_->HistoryBefore(t, model_->history_len());
  if (history.empty()) return false;
  model_->SetTraining(true);
  model_->ZeroGrad();
  core::EvolutionModel::LossParts loss;
  {
    RETIA_OBS_TIMED_SCOPE("train.forward.us");
    std::vector<core::EvolutionModel::StepState> states =
        model_->Evolve(*cache_, history);
    loss = model_->ComputeLoss(states, facts);
  }
  {
    RETIA_OBS_TIMED_SCOPE("train.backward.us");
    loss.joint.Backward();
  }
  float grad_norm = 0.0f;
  {
    RETIA_OBS_TIMED_SCOPE("train.clip.us");
    grad_norm = nn::ClipGradNorm(params_, config_.grad_clip);
  }
  {
    RETIA_OBS_TIMED_SCOPE("train.step.us");
    optimizer_.Step();
  }
  RETIA_OBS_GAUGE_SET("train.grad_norm", grad_norm);
  RETIA_OBS_GAUGE_SET("train.loss.joint", loss.joint.Item());
  RETIA_OBS_GAUGE_SET("train.loss.entity", loss.entity_loss);
  RETIA_OBS_GAUGE_SET("train.loss.relation", loss.relation_loss);
  if (parts != nullptr) *parts = loss;
  return true;
}

double Trainer::ValidationEntityMrr() {
  eval::EvalOptions options;
  options.evaluate_relations = false;
  eval::EvalResult r =
      Evaluate(cache_->dataset().valid_times(), /*online=*/false, options);
  return r.entity.Mrr();
}

std::vector<std::vector<float>> Trainer::SnapshotParams() const {
  std::vector<std::vector<float>> snapshot;
  snapshot.reserve(params_.size());
  for (const tensor::Tensor& p : params_) snapshot.push_back(p.impl().data);
  return snapshot;
}

void Trainer::RestoreParams(const std::vector<std::vector<float>>& snapshot) {
  RETIA_CHECK_EQ(snapshot.size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i].impl().data = snapshot[i];
  }
}

std::vector<EpochRecord> Trainer::TrainGeneral() {
  std::vector<EpochRecord> records;
  double best_mrr = -1.0;
  int64_t below_best = 0;
  std::vector<std::vector<float>> best_params;
  for (int64_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    RETIA_OBS_TIMED_SCOPE("train.epoch.us");
    util::Timer timer;
    EpochRecord rec;
    int64_t batches = 0;
    for (int64_t t : cache_->dataset().train_times()) {
      core::EvolutionModel::LossParts parts;
      if (!StepOnTimestamp(t, &parts)) continue;
      rec.joint_loss += parts.joint.Item();
      rec.entity_loss += parts.entity_loss;
      rec.relation_loss += parts.relation_loss;
      ++batches;
    }
    if (batches > 0) {
      rec.joint_loss /= batches;
      rec.entity_loss /= batches;
      rec.relation_loss /= batches;
    }
    rec.valid_entity_mrr = ValidationEntityMrr();
    rec.seconds = timer.Seconds();
    records.push_back(rec);
    if (config_.verbose) {
      std::cout << "epoch " << epoch << " loss " << rec.joint_loss
                << " (e " << rec.entity_loss << ", r " << rec.relation_loss
                << ") valid MRR " << rec.valid_entity_mrr << " ["
                << util::FormatDuration(rec.seconds) << "]\n";
    }
    if (rec.valid_entity_mrr > best_mrr) {
      best_mrr = rec.valid_entity_mrr;
      below_best = 0;
      best_params = SnapshotParams();
    } else {
      ++below_best;
      if (below_best >= config_.patience) break;
    }
  }
  if (!best_params.empty()) RestoreParams(best_params);
  return records;
}

eval::EvalResult Trainer::Evaluate(const std::vector<int64_t>& times,
                                   bool online,
                                   const eval::EvalOptions& options) {
  auto evolve_eval = [this](int64_t t) {
    model_->SetTraining(false);
    const std::vector<int64_t> history =
        cache_->HistoryBefore(t, model_->history_len());
    return model_->Evolve(*cache_, history);
  };
  eval::ObjectScoreFn object_fn =
      [this, &evolve_eval](
          int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        tensor::NoGradGuard guard;
        return model_->ScoreObjects(evolve_eval(t), queries);
      };
  eval::RelationScoreFn relation_fn =
      [this, &evolve_eval](
          int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        tensor::NoGradGuard guard;
        return model_->ScoreRelations(evolve_eval(t), queries);
      };
  eval::AfterTimestampFn after = nullptr;
  if (online) {
    after = [this](int64_t t) {
      const float general_lr = optimizer_.lr();
      optimizer_.set_lr(config_.online_lr);
      for (int64_t step = 0; step < config_.online_steps; ++step) {
        StepOnTimestamp(t, nullptr);
      }
      optimizer_.set_lr(general_lr);
    };
  }
  eval::EvalResult result = eval::EvaluateTimes(
      cache_->dataset(), times, object_fn, relation_fn, options, after);
  model_->SetTraining(true);
  return result;
}

}  // namespace retia::train
