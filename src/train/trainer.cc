#include "train/trainer.h"

#include <iostream>
#include <utility>

#include "ckpt/artifact.h"
#include "ckpt/bytes.h"
#include "ckpt/model_io.h"
#include "obs/obs.h"
#include "par/task_graph.h"
#include "util/timer.h"

namespace retia::train {

namespace {

constexpr char kTrainerArtifactKind[] = "retia.trainer_state";

std::string EncodeCursor(int64_t next_epoch, double best_mrr,
                         int64_t below_best, int64_t online_updates) {
  ckpt::ByteWriter w;
  w.I64(next_epoch);
  w.F64(best_mrr);
  w.I64(below_best);
  w.I64(online_updates);
  return w.Take();
}

std::string EncodeParamVectors(const std::vector<std::vector<float>>& params) {
  ckpt::ByteWriter w;
  w.U64(params.size());
  for (const std::vector<float>& p : params) {
    w.FloatArray(p.data(), static_cast<int64_t>(p.size()));
  }
  return w.Take();
}

std::string EncodeRecords(const std::vector<EpochRecord>& records) {
  ckpt::ByteWriter w;
  w.U64(records.size());
  for (const EpochRecord& r : records) {
    w.F64(r.joint_loss);
    w.F64(r.entity_loss);
    w.F64(r.relation_loss);
    w.F64(r.valid_entity_mrr);
    w.F64(r.seconds);
  }
  return w.Take();
}

ckpt::Result DecodeRecords(std::string_view payload,
                           std::vector<EpochRecord>* out) {
  ckpt::ByteReader r(payload, ckpt::kSectionRecords);
  uint64_t count = 0;
  RETIA_CKPT_RETURN_IF_ERROR(r.U64(&count));
  std::vector<EpochRecord> records(count);
  for (uint64_t i = 0; i < count; ++i) {
    RETIA_CKPT_RETURN_IF_ERROR(r.F64(&records[i].joint_loss));
    RETIA_CKPT_RETURN_IF_ERROR(r.F64(&records[i].entity_loss));
    RETIA_CKPT_RETURN_IF_ERROR(r.F64(&records[i].relation_loss));
    RETIA_CKPT_RETURN_IF_ERROR(r.F64(&records[i].valid_entity_mrr));
    RETIA_CKPT_RETURN_IF_ERROR(r.F64(&records[i].seconds));
  }
  RETIA_CKPT_RETURN_IF_ERROR(r.ExpectEnd());
  *out = std::move(records);
  return ckpt::Result::Ok();
}

}  // namespace

Trainer::Trainer(core::EvolutionModel* model, graph::GraphCache* cache,
                 const TrainConfig& config)
    : model_(model),
      cache_(cache),
      config_(config),
      params_(model->Parameters()),
      optimizer_(params_, nn::Adam::Options{.lr = config.lr}) {}

bool Trainer::StepOnTimestamp(int64_t t,
                              core::EvolutionModel::LossParts* parts) {
  const std::vector<tkg::Quadruple>& facts = cache_->dataset().FactsAt(t);
  if (facts.empty()) return false;
  const std::vector<int64_t> history =
      cache_->HistoryBefore(t, model_->history_len());
  if (history.empty()) return false;
  model_->SetTraining(true);
  model_->ZeroGrad();
  core::EvolutionModel::LossParts loss;
  {
    RETIA_OBS_TIMED_SCOPE("train.forward.us");
    std::vector<core::EvolutionModel::StepState> states =
        model_->Evolve(*cache_, history);
    loss = model_->ComputeLoss(states, facts);
  }
  {
    RETIA_OBS_TIMED_SCOPE("train.backward.us");
    loss.joint.Backward();
  }
  float grad_norm = 0.0f;
  {
    RETIA_OBS_TIMED_SCOPE("train.clip.us");
    grad_norm = nn::ClipGradNorm(params_, config_.grad_clip);
  }
  {
    RETIA_OBS_TIMED_SCOPE("train.step.us");
    optimizer_.Step();
  }
  RETIA_OBS_GAUGE_SET("train.grad_norm", grad_norm);
  RETIA_OBS_GAUGE_SET("train.loss.joint", loss.joint.Item());
  RETIA_OBS_GAUGE_SET("train.loss.entity", loss.entity_loss);
  RETIA_OBS_GAUGE_SET("train.loss.relation", loss.relation_loss);
  if (parts != nullptr) *parts = loss;
  return true;
}

void Trainer::ForEachTimePipelined(const std::vector<int64_t>& times,
                                   const std::function<void(int64_t)>& body) {
  par::TaskGraph graph;
  par::TaskGraph::TaskId prev = par::TaskGraph::kInvalid;
  for (int64_t t : times) {
    // The prefetch tasks only populate the (first-wins, idempotent)
    // GraphCache, so they carry no ordering constraints and overlap both
    // each other and earlier gradient steps.
    const par::TaskGraph::TaskId prefetch = graph.Add([this, t] {
      cache_->Prefetch(cache_->HistoryBefore(t, model_->history_len()),
                       model_->uses_hypergraphs());
    });
    std::vector<par::TaskGraph::TaskId> deps = {prefetch};
    if (prev != par::TaskGraph::kInvalid) deps.push_back(prev);
    // The bodies chain in program order: parameter updates and the model
    // RNG stream advance exactly as in the plain serial loop.
    prev = graph.Add([&body, t] { body(t); }, deps);
  }
  graph.Run();
}

double Trainer::ValidationEntityMrr() {
  eval::EvalOptions options;
  options.evaluate_relations = false;
  eval::EvalResult r =
      Evaluate(cache_->dataset().valid_times(), /*online=*/false, options);
  return r.entity.Mrr();
}

std::vector<std::vector<float>> Trainer::SnapshotParams() const {
  std::vector<std::vector<float>> snapshot;
  snapshot.reserve(params_.size());
  for (const tensor::Tensor& p : params_) snapshot.push_back(p.impl().data);
  return snapshot;
}

void Trainer::RestoreParams(const std::vector<std::vector<float>>& snapshot) {
  RETIA_CHECK_EQ(snapshot.size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i].impl().data = snapshot[i];
  }
}

std::vector<EpochRecord> Trainer::TrainGeneral() {
  for (int64_t epoch = next_epoch_;
       epoch < config_.max_epochs && below_best_ < config_.patience; ++epoch) {
    RETIA_OBS_TIMED_SCOPE("train.epoch.us");
    util::Timer timer;
    EpochRecord rec;
    int64_t batches = 0;
    ForEachTimePipelined(cache_->dataset().train_times(), [&](int64_t t) {
      core::EvolutionModel::LossParts parts;
      if (!StepOnTimestamp(t, &parts)) return;
      rec.joint_loss += parts.joint.Item();
      rec.entity_loss += parts.entity_loss;
      rec.relation_loss += parts.relation_loss;
      ++batches;
    });
    if (batches > 0) {
      rec.joint_loss /= batches;
      rec.entity_loss /= batches;
      rec.relation_loss /= batches;
    }
    rec.valid_entity_mrr = ValidationEntityMrr();
    rec.seconds = timer.Seconds();
    records_.push_back(rec);
    if (config_.verbose) {
      std::cout << "epoch " << epoch << " loss " << rec.joint_loss
                << " (e " << rec.entity_loss << ", r " << rec.relation_loss
                << ") valid MRR " << rec.valid_entity_mrr << " ["
                << util::FormatDuration(rec.seconds) << "]\n";
    }
    if (rec.valid_entity_mrr > best_mrr_) {
      best_mrr_ = rec.valid_entity_mrr;
      below_best_ = 0;
      best_params_ = SnapshotParams();
    } else {
      ++below_best_;
    }
    next_epoch_ = epoch + 1;
    // Persist the pre-restore training state: a resumed run must see the
    // live parameters the next epoch would have trained from, not the
    // best-validation parameters restored below.
    if (!config_.checkpoint_path.empty()) {
      ckpt::Result saved = SaveState(config_.checkpoint_path);
      if (!saved.ok()) {
        std::cerr << "[train] WARNING: failed to save training state to '"
                  << config_.checkpoint_path << "': " << saved.ToString()
                  << "\n";
      }
    }
  }
  if (!best_params_.empty()) RestoreParams(best_params_);
  return records_;
}

ckpt::Result Trainer::SaveState(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& extra_sections)
    const {
  ckpt::ArtifactWriter writer;
  ckpt::Meta meta = {{"artifact", kTrainerArtifactKind}};
  writer.AddSection(ckpt::kSectionMeta, ckpt::EncodeMeta(meta));
  writer.AddSection(ckpt::kSectionParams, ckpt::EncodeParams(*model_));
  writer.AddSection(ckpt::kSectionAdam, ckpt::EncodeAdam(optimizer_));
  if (const util::Rng* rng = model_->MutableRng(); rng != nullptr) {
    writer.AddSection(ckpt::kSectionRng, ckpt::EncodeRng(*rng));
  }
  writer.AddSection(
      ckpt::kSectionCursor,
      EncodeCursor(next_epoch_, best_mrr_, below_best_, online_updates_));
  if (!best_params_.empty()) {
    writer.AddSection(ckpt::kSectionBestParams,
                      EncodeParamVectors(best_params_));
  }
  writer.AddSection(ckpt::kSectionRecords, EncodeRecords(records_));
  for (const auto& [name, payload] : extra_sections) {
    writer.AddSection(name, payload);
  }
  return writer.WriteFile(path);
}

ckpt::Result Trainer::ResumeState(const std::string& path) {
  ckpt::ArtifactReader reader;
  RETIA_CKPT_RETURN_IF_ERROR(ckpt::ArtifactReader::Open(path, &reader));

  std::string_view meta_bytes;
  RETIA_CKPT_RETURN_IF_ERROR(reader.Section(ckpt::kSectionMeta, &meta_bytes));
  ckpt::Meta meta;
  RETIA_CKPT_RETURN_IF_ERROR(ckpt::DecodeMeta(meta_bytes, &meta));
  std::string kind;
  RETIA_CKPT_RETURN_IF_ERROR(ckpt::SidecarLookup(meta, "artifact", &kind));
  if (kind != kTrainerArtifactKind) {
    return ckpt::Result::Error(
        ckpt::ErrorCode::kSchemaMismatch,
        "artifact is a '" + kind + "', not a " + kTrainerArtifactKind);
  }

  // Decode everything into locals before mutating the trainer: a
  // mismatching artifact must leave this trainer untouched.
  std::string_view params_bytes;
  RETIA_CKPT_RETURN_IF_ERROR(
      reader.Section(ckpt::kSectionParams, &params_bytes));

  std::string_view cursor_bytes;
  RETIA_CKPT_RETURN_IF_ERROR(
      reader.Section(ckpt::kSectionCursor, &cursor_bytes));
  ckpt::ByteReader cursor(cursor_bytes, ckpt::kSectionCursor);
  int64_t next_epoch = 0, below_best = 0, online_updates = 0;
  double best_mrr = -1.0;
  RETIA_CKPT_RETURN_IF_ERROR(cursor.I64(&next_epoch));
  RETIA_CKPT_RETURN_IF_ERROR(cursor.F64(&best_mrr));
  RETIA_CKPT_RETURN_IF_ERROR(cursor.I64(&below_best));
  RETIA_CKPT_RETURN_IF_ERROR(cursor.I64(&online_updates));
  RETIA_CKPT_RETURN_IF_ERROR(cursor.ExpectEnd());
  if (next_epoch < 0 || below_best < 0 || online_updates < 0) {
    return ckpt::Result::Error(ckpt::ErrorCode::kCorrupt,
                               "negative value in training cursor");
  }

  std::vector<std::vector<float>> best_params;
  if (reader.Has(ckpt::kSectionBestParams)) {
    std::string_view best_bytes;
    RETIA_CKPT_RETURN_IF_ERROR(
        reader.Section(ckpt::kSectionBestParams, &best_bytes));
    ckpt::ByteReader r(best_bytes, ckpt::kSectionBestParams);
    uint64_t count = 0;
    RETIA_CKPT_RETURN_IF_ERROR(r.U64(&count));
    if (count != params_.size()) {
      return ckpt::Result::Error(
          ckpt::ErrorCode::kSchemaMismatch,
          "artifact best-params cover " + std::to_string(count) +
              " parameters, model has " + std::to_string(params_.size()));
    }
    best_params.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      RETIA_CKPT_RETURN_IF_ERROR(r.FloatArray(&best_params[i]));
      if (best_params[i].size() != params_[i].impl().data.size()) {
        return ckpt::Result::Error(
            ckpt::ErrorCode::kSchemaMismatch,
            "artifact best-params entry " + std::to_string(i) +
                " has wrong size");
      }
    }
    RETIA_CKPT_RETURN_IF_ERROR(r.ExpectEnd());
  }

  std::vector<EpochRecord> records;
  std::string_view records_bytes;
  RETIA_CKPT_RETURN_IF_ERROR(
      reader.Section(ckpt::kSectionRecords, &records_bytes));
  RETIA_CKPT_RETURN_IF_ERROR(DecodeRecords(records_bytes, &records));

  // All fallible decoding into model/optimizer state comes last; the
  // schema checks above make the remaining failures (shape or name
  // mismatches) the only ones that could leave partial state, and
  // DecodeParamsInto validates every name and shape before writing.
  RETIA_CKPT_RETURN_IF_ERROR(ckpt::DecodeParamsInto(model_, params_bytes));

  std::string_view adam_bytes;
  RETIA_CKPT_RETURN_IF_ERROR(reader.Section(ckpt::kSectionAdam, &adam_bytes));
  RETIA_CKPT_RETURN_IF_ERROR(ckpt::DecodeAdamInto(&optimizer_, adam_bytes));

  if (util::Rng* rng = model_->MutableRng();
      rng != nullptr && reader.Has(ckpt::kSectionRng)) {
    std::string_view rng_bytes;
    RETIA_CKPT_RETURN_IF_ERROR(reader.Section(ckpt::kSectionRng, &rng_bytes));
    RETIA_CKPT_RETURN_IF_ERROR(ckpt::DecodeRngInto(rng, rng_bytes));
  }

  next_epoch_ = next_epoch;
  best_mrr_ = best_mrr;
  below_best_ = below_best;
  online_updates_ = online_updates;
  best_params_ = std::move(best_params);
  records_ = std::move(records);
  return ckpt::Result::Ok();
}

int64_t Trainer::FineTuneOnTimes(const std::vector<int64_t>& times) {
  RETIA_OBS_TIMED_SCOPE("train.finetune.us");
  const float general_lr = optimizer_.lr();
  optimizer_.set_lr(config_.online_lr);
  int64_t applied = 0;
  ForEachTimePipelined(times, [&](int64_t t) {
    for (int64_t step = 0; step < config_.online_steps; ++step) {
      if (StepOnTimestamp(t, nullptr)) {
        ++applied;
        ++online_updates_;
      }
    }
  });
  optimizer_.set_lr(general_lr);
  return applied;
}

eval::EvalResult Trainer::Evaluate(const std::vector<int64_t>& times,
                                   bool online,
                                   const eval::EvalOptions& options) {
  auto evolve_eval = [this](int64_t t) {
    model_->SetTraining(false);
    const std::vector<int64_t> history =
        cache_->HistoryBefore(t, model_->history_len());
    return model_->Evolve(*cache_, history);
  };
  eval::ObjectScoreFn object_fn =
      [this, &evolve_eval](
          int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        tensor::NoGradGuard guard;
        return model_->ScoreObjects(evolve_eval(t), queries);
      };
  eval::RelationScoreFn relation_fn =
      [this, &evolve_eval](
          int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        tensor::NoGradGuard guard;
        return model_->ScoreRelations(evolve_eval(t), queries);
      };
  eval::AfterTimestampFn after = nullptr;
  if (online) {
    after = [this](int64_t t) {
      const float general_lr = optimizer_.lr();
      optimizer_.set_lr(config_.online_lr);
      for (int64_t step = 0; step < config_.online_steps; ++step) {
        if (StepOnTimestamp(t, nullptr)) ++online_updates_;
      }
      optimizer_.set_lr(general_lr);
    };
  }
  eval::EvalResult result = eval::EvaluateTimes(
      cache_->dataset(), times, object_fn, relation_fn, options, after);
  model_->SetTraining(true);
  return result;
}

}  // namespace retia::train
