#ifndef RETIA_TRAIN_TRAINER_H_
#define RETIA_TRAIN_TRAINER_H_

// Training / evaluation driver for any core::EvolutionModel: the general
// training process with validation early stopping (Sec. IV-D1) and split
// evaluation with optional online continuous training (Sec. III-F).
//
// Ownership / threading contract: a Trainer borrows the model and the
// graph cache (both must outlive it) and owns only the Adam state. All
// methods must be called from one thread — parallelism happens inside the
// tensor kernels on par::DefaultPool(). Per-phase timings (forward,
// backward, clip, step, epoch) and loss / grad-norm gauges are exported
// as `train.*` metrics (docs/OBSERVABILITY.md).
//
// Usage:
//   train::Trainer trainer(&model, &cache, {.max_epochs = 30});
//   std::vector<train::EpochRecord> curve = trainer.TrainGeneral();
//   eval::EvalResult test =
//       trainer.Evaluate(cache.dataset().test_times(), /*online=*/true);

#include <cstdint>
#include <vector>

#include "core/evolution_model.h"
#include "eval/evaluator.h"
#include "graph/graph_cache.h"
#include "nn/optimizer.h"

namespace retia::train {

struct TrainConfig {
  int64_t max_epochs = 30;
  // Early stopping: stop after this many consecutive epochs whose
  // validation score is below the historical best (Sec. IV-D1 uses 5).
  int64_t patience = 5;
  float lr = 1e-3f;
  float grad_clip = 1.0f;
  // Gradient steps per newly observed timestamp during online continuous
  // training (the time-variability strategy, Sec. III-F).
  int64_t online_steps = 1;
  float online_lr = 1e-3f;
  bool verbose = false;
};

// Per-epoch record of the general training process; the loss curves of
// Figs. 3/4 are these values.
struct EpochRecord {
  double joint_loss = 0.0;
  double entity_loss = 0.0;
  double relation_loss = 0.0;
  double valid_entity_mrr = 0.0;
  double seconds = 0.0;
};

// Trains and evaluates any core::EvolutionModel: general training with
// validation early stopping, and split evaluation with optional online
// continuous training. One timestamp is one batch (Sec. III-F).
class Trainer {
 public:
  Trainer(core::EvolutionModel* model, graph::GraphCache* cache,
          const TrainConfig& config);

  // General training on the train split. Returns the per-epoch records
  // (loss curve + validation MRR). The best-validation parameters are
  // restored before returning.
  std::vector<EpochRecord> TrainGeneral();

  // Evaluates the facts of `times`. With `online` true, the model is
  // fine-tuned on each timestamp's facts after that timestamp has been
  // evaluated (online continuous training). `result.predict_seconds`
  // excludes the online updates.
  eval::EvalResult Evaluate(const std::vector<int64_t>& times, bool online,
                            const eval::EvalOptions& options = {});

 private:
  // One optimisation step on the facts at `t` (predicting t from its
  // history). Returns the loss parts; no-op when t has no history.
  bool StepOnTimestamp(int64_t t, core::EvolutionModel::LossParts* parts);

  double ValidationEntityMrr();

  std::vector<std::vector<float>> SnapshotParams() const;
  void RestoreParams(const std::vector<std::vector<float>>& snapshot);

  core::EvolutionModel* model_;
  graph::GraphCache* cache_;
  TrainConfig config_;
  std::vector<tensor::Tensor> params_;
  nn::Adam optimizer_;
};

}  // namespace retia::train

#endif  // RETIA_TRAIN_TRAINER_H_
