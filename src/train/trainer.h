#ifndef RETIA_TRAIN_TRAINER_H_
#define RETIA_TRAIN_TRAINER_H_

// Training / evaluation driver for any core::EvolutionModel: the general
// training process with validation early stopping (Sec. IV-D1) and split
// evaluation with optional online continuous training (Sec. III-F).
//
// Ownership / threading contract: a Trainer borrows the model and the
// graph cache (both must outlive it) and owns only the Adam state. All
// methods must be called from one thread. Parallelism happens on
// par::DefaultPool(): intra-op inside the tensor kernels, and inter-op
// through a per-run par::TaskGraph that builds each timestamp's history
// snapshots concurrently ahead of the strictly-ordered gradient-step
// chain (DESIGN.md §12) — the steps themselves execute the exact serial
// math in the exact serial order, so training results (and checkpoint
// resume) stay bit-identical for every thread count. Per-phase timings
// (forward, backward, clip, step, epoch) and loss / grad-norm gauges are
// exported as `train.*` metrics (docs/OBSERVABILITY.md).
//
// Crash safety: when TrainConfig::checkpoint_path is set, the full
// training state — model parameters, Adam moments, the model's RNG
// stream, the epoch cursor, the best-validation parameters and the epoch
// records — is written as one atomic retia::ckpt artifact after every
// epoch. A killed run resumed with ResumeState() continues to
// bit-identical parameters and records (wall-clock `seconds` excepted);
// see docs/CHECKPOINTS.md.
//
// Usage:
//   train::Trainer trainer(&model, &cache, {.max_epochs = 30});
//   std::vector<train::EpochRecord> curve = trainer.TrainGeneral();
//   eval::EvalResult test =
//       trainer.Evaluate(cache.dataset().test_times(), /*online=*/true);

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/result.h"
#include "core/evolution_model.h"
#include "eval/evaluator.h"
#include "graph/graph_cache.h"
#include "nn/optimizer.h"

namespace retia::train {

struct TrainConfig {
  int64_t max_epochs = 30;
  // Early stopping: stop after this many consecutive epochs whose
  // validation score is below the historical best (Sec. IV-D1 uses 5).
  int64_t patience = 5;
  float lr = 1e-3f;
  float grad_clip = 1.0f;
  // Gradient steps per newly observed timestamp during online continuous
  // training (the time-variability strategy, Sec. III-F).
  int64_t online_steps = 1;
  float online_lr = 1e-3f;
  bool verbose = false;
  // When non-empty, TrainGeneral saves the full training state here after
  // every epoch (atomically; a crash leaves the previous epoch's state
  // intact). A save failure is a warning, not an abort.
  std::string checkpoint_path;
};

// Per-epoch record of the general training process; the loss curves of
// Figs. 3/4 are these values. `seconds` is wall clock and therefore the
// one field that is not bit-identical across a resumed run.
struct EpochRecord {
  double joint_loss = 0.0;
  double entity_loss = 0.0;
  double relation_loss = 0.0;
  double valid_entity_mrr = 0.0;
  double seconds = 0.0;
};

// Trains and evaluates any core::EvolutionModel: general training with
// validation early stopping, and split evaluation with optional online
// continuous training. One timestamp is one batch (Sec. III-F).
class Trainer {
 public:
  Trainer(core::EvolutionModel* model, graph::GraphCache* cache,
          const TrainConfig& config);

  // General training on the train split, starting from the current epoch
  // cursor (0 for a fresh trainer, the interrupted epoch after
  // ResumeState). Returns the per-epoch records of the whole run so far
  // (loss curve + validation MRR). The best-validation parameters are
  // restored before returning.
  std::vector<EpochRecord> TrainGeneral();

  // Evaluates the facts of `times`. With `online` true, the model is
  // fine-tuned on each timestamp's facts after that timestamp has been
  // evaluated (online continuous training). `result.predict_seconds`
  // excludes the online updates.
  eval::EvalResult Evaluate(const std::vector<int64_t>& times, bool online,
                            const eval::EvalOptions& options = {});

  // Incremental fine-tuning entry for the streaming path (retia::stream):
  // applies config.online_steps gradient steps at config.online_lr on each
  // timestamp of `times` (ascending), without evaluating anything. Exactly
  // the update rule Evaluate(online=true) applies after each evaluated
  // timestamp. Returns the number of gradient steps actually applied
  // (timestamps without facts or history are skipped).
  int64_t FineTuneOnTimes(const std::vector<int64_t>& times);

  // Writes the complete training state (model parameters, Adam moments,
  // model RNG stream, epoch cursor, best-validation parameters, epoch
  // records) as one atomic RETIACKPT2 artifact. `extra_sections` lets a
  // caller ride its own cursor along in the same atomic artifact (the
  // stream pipeline stores its ingest cursor this way); names must not
  // collide with the standard `ckpt::kSection*` names. ResumeState ignores
  // unknown sections, so callers read them back through ckpt::ArtifactReader.
  ckpt::Result SaveState(
      const std::string& path,
      const std::vector<std::pair<std::string, std::string>>& extra_sections =
          {}) const;

  // Restores a SaveState artifact into this trainer. The trainer must
  // wrap a model of the same architecture (parameter names and shapes are
  // validated; mismatches return kSchemaMismatch). On success the next
  // TrainGeneral() call continues exactly where the saved run stopped.
  [[nodiscard]] ckpt::Result ResumeState(const std::string& path);

  // Epoch the next TrainGeneral() call starts at (== epochs completed).
  int64_t next_epoch() const { return next_epoch_; }

  // Number of online fine-tuning updates applied by Evaluate so far.
  int64_t online_updates() const { return online_updates_; }

  const std::vector<EpochRecord>& records() const { return records_; }

 private:
  // One optimisation step on the facts at `t` (predicting t from its
  // history). Returns the loss parts; no-op when t has no history.
  bool StepOnTimestamp(int64_t t, core::EvolutionModel::LossParts* parts);

  // Runs body(t) for every timestamp of `times` in order, pipelined: the
  // bodies form a dependency chain (program order, so the RNG stream and
  // the parameter updates are untouched) while independent prefetch tasks
  // build each timestamp's history snapshots ahead of the chain.
  void ForEachTimePipelined(const std::vector<int64_t>& times,
                            const std::function<void(int64_t)>& body);

  double ValidationEntityMrr();

  std::vector<std::vector<float>> SnapshotParams() const;
  void RestoreParams(const std::vector<std::vector<float>>& snapshot);

  core::EvolutionModel* model_;
  graph::GraphCache* cache_;
  TrainConfig config_;
  std::vector<tensor::Tensor> params_;
  nn::Adam optimizer_;

  // Training cursor — everything TrainGeneral needs to continue mid-run.
  int64_t next_epoch_ = 0;
  double best_mrr_ = -1.0;
  int64_t below_best_ = 0;
  std::vector<std::vector<float>> best_params_;
  std::vector<EpochRecord> records_;
  int64_t online_updates_ = 0;
};

}  // namespace retia::train

#endif  // RETIA_TRAIN_TRAINER_H_
