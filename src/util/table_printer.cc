#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace retia::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  RETIA_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  if (value < 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      for (size_t p = row[i].size(); p < widths[i]; ++p) os << ' ';
      os << " | ";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t i = 0; i < header_.size(); ++i) {
    for (size_t p = 0; p < widths[i] + 2; ++p) os << '-';
    os << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace retia::util
