#ifndef RETIA_UTIL_TABLE_PRINTER_H_
#define RETIA_UTIL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace retia::util {

// Renders rows of strings as an aligned plain-text table. Every benchmark
// driver uses this to print its table/figure in the same row/column layout
// as the paper, so outputs can be compared side by side.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds one data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles to `precision` decimals; negative values
  // are rendered as "-" (the paper's marker for unavailable results).
  static std::string Num(double value, int precision = 2);

  // Writes the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace retia::util

#endif  // RETIA_UTIL_TABLE_PRINTER_H_
