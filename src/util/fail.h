#ifndef RETIA_UTIL_FAIL_H_
#define RETIA_UTIL_FAIL_H_

#include <cstdint>

// retia::fail — fault-injection hooks for the durable-write path.
//
// The ckpt artifact writer consults these hooks at every point where real
// storage can betray a process: each write(2) of payload bytes, the close
// after fsync (a filesystem may acknowledge a write it never persisted),
// and the commit rename. Arming a Plan lets tests and the check.sh
// kill-and-resume smoke prove the crash-safety guarantees end-to-end:
// a failed or torn save must never publish a loadable partial artifact,
// and a SIGKILL immediately after the commit rename must leave a fully
// valid artifact behind.
//
// Plans come from two places:
//   * programmatically (tests): fail::InstallPlan({...});
//   * the environment (the check.sh smoke):
//       RETIA_FAIL_WRITE_N=N             fail the Nth durable write (1-based)
//       RETIA_FAIL_TRUNCATE=B            truncate the file to B bytes on close
//       RETIA_FAIL_CRASH_AFTER_RENAME=N  SIGKILL self right after the Nth
//                                        commit rename (1-based)
// The env plan is read once, lazily, at the first durable write, and only
// when no programmatic plan is already installed.
//
// All hooks are thread-safe (atomic counters); the layer is a no-op when
// no plan is armed.
namespace retia::fail {

struct Plan {
  // 1-based index of the durable write(2) call to fail; 0 = never.
  int64_t fail_write_n = 0;
  // When >= 0, the artifact file is truncated to this many bytes right
  // before close, simulating a torn write the filesystem acknowledged.
  int64_t truncate_on_close = -1;
  // 1-based index of the commit rename after which the process SIGKILLs
  // itself; 0 = never. This is the harshest possible crash: no destructors,
  // no atexit, no flushing.
  int64_t crash_after_rename_n = 0;
};

// Installs `plan` and resets the write/rename counters.
void InstallPlan(const Plan& plan);

// Clears any installed plan (counters too). Call from test teardown.
void Clear();

// Parses a Plan from the RETIA_FAIL_* environment variables (all unset ->
// a disarmed plan). Exposed separately so the parsing is unit-testable.
Plan ReadPlanFromEnv();

// Installs ReadPlanFromEnv() once per process, unless a programmatic plan
// is already armed. The ckpt writer calls this before every durable write.
void InstallPlanFromEnvOnce();

// True when any fault is armed.
bool Armed();

// ---- Hooks consulted by the durable writer ------------------------------

// Counts one durable write; returns true when this write must fail.
bool ShouldFailWrite();

// Bytes to truncate the artifact to at close, or -1 to leave it alone.
int64_t TruncateOnCloseBytes();

// Counts one commit rename; SIGKILLs the process when the plan says so.
void MaybeCrashAfterRename();

}  // namespace retia::fail

#endif  // RETIA_UTIL_FAIL_H_
