#include "util/rng.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace retia::util {

std::string Rng::SaveStateString() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::LoadStateString(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 candidate;
  in >> candidate;
  if (in.fail()) return false;
  engine_ = candidate;
  return true;
}

int64_t Rng::Zipf(int64_t n, double alpha) {
  RETIA_CHECK(n > 0);
  // Inverse-CDF sampling with a rejection-free discrete distribution would
  // require O(n) setup per call; instead we use the standard two-uniform
  // rejection method for the Zipf distribution (Devroye 1986), which is O(1)
  // amortised and exact for alpha > 0.
  if (alpha <= 0.0) {
    return UniformInt(0, n - 1);
  }
  const double b = std::pow(2.0, alpha - 1.0 + 1e-9);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double u = Uniform(0.0f, 1.0f);
    const double v = Uniform(0.0f, 1.0f);
    const double x = std::floor(std::pow(u, -1.0 / std::max(alpha - 1.0 + 1e-9, 1e-9)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, alpha - 1.0 + 1e-9);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<int64_t>(x) - 1;
    }
  }
  // Extremely unlikely fallback: uniform draw keeps the generator total.
  return UniformInt(0, n - 1);
}

}  // namespace retia::util
