#ifndef RETIA_UTIL_TIMER_H_
#define RETIA_UTIL_TIMER_H_

#include <chrono>
#include <string>

namespace retia::util {

// Simple wall-clock stopwatch used for the run-time comparison experiments
// (Table VIII) and for training progress logs.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Formats a duration the way Table VIII of the paper prints it
// ("8.46 min", "3.93 h", "6.40 s", "2.26 d").
std::string FormatDuration(double seconds);

}  // namespace retia::util

#endif  // RETIA_UTIL_TIMER_H_
