#include "util/timer.h"

#include <cstdio>

namespace retia::util {

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f min", seconds / 60.0);
  } else if (seconds < 86400.0) {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f d", seconds / 86400.0);
  }
  return buf;
}

}  // namespace retia::util
