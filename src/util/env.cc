#include "util/env.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace retia::util {

namespace {

void WarnBadValue(const char* name, const char* value, const char* expected) {
  std::fprintf(stderr,
               "[env] ignoring %s='%s' (expected %s); using the default\n",
               name, value, expected);
}

bool EqualsIgnoreCase(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    const char ca = (*a >= 'A' && *a <= 'Z') ? *a - 'A' + 'a' : *a;
    const char cb = (*b >= 'A' && *b <= 'Z') ? *b - 'A' + 'a' : *b;
    if (ca != cb) return false;
  }
  return *a == '\0' && *b == '\0';
}

}  // namespace

const char* Env::Raw(const char* name) { return std::getenv(name); }

bool Env::IsSet(const char* name) {
  const char* v = Raw(name);
  return v != nullptr && *v != '\0';
}

std::string Env::StringOr(const char* name, const std::string& fallback) {
  const char* v = Raw(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

int64_t Env::IntOr(const char* name, int64_t fallback) {
  const char* v = Raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  int64_t parsed = 0;
  if (!ParseInt(v, &parsed)) {
    WarnBadValue(name, v, "an integer");
    return fallback;
  }
  return parsed;
}

int64_t Env::PositiveIntOr(const char* name, int64_t fallback) {
  const char* v = Raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  int64_t parsed = 0;
  if (!ParseInt(v, &parsed) || parsed < 1) {
    WarnBadValue(name, v, "a positive integer");
    return fallback;
  }
  return parsed;
}

bool Env::BoolOr(const char* name, bool fallback) {
  const char* v = Raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  bool parsed = false;
  if (!ParseBool(v, &parsed)) {
    WarnBadValue(name, v, "a boolean (1/0/true/false/yes/no/on/off)");
    return fallback;
  }
  return parsed;
}

double Env::FloatOr(const char* name, double fallback) {
  const char* v = Raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  double parsed = 0.0;
  if (!ParseFloat(v, &parsed)) {
    WarnBadValue(name, v, "a number");
    return fallback;
  }
  return parsed;
}

bool Env::ParseInt(const char* value, int64_t* out) {
  if (value == nullptr || *value == '\0') return false;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') return false;
  *out = static_cast<int64_t>(parsed);
  return true;
}

bool Env::ParseFloat(const char* value, double* out) {
  if (value == nullptr || *value == '\0') return false;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool Env::ParseBool(const char* value, bool* out) {
  if (value == nullptr || *value == '\0') return false;
  static const char* kTrue[] = {"1", "true", "yes", "on"};
  static const char* kFalse[] = {"0", "false", "no", "off"};
  for (const char* t : kTrue) {
    if (EqualsIgnoreCase(value, t)) {
      *out = true;
      return true;
    }
  }
  for (const char* f : kFalse) {
    if (EqualsIgnoreCase(value, f)) {
      *out = false;
      return true;
    }
  }
  return false;
}

}  // namespace retia::util
