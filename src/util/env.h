#ifndef RETIA_UTIL_ENV_H_
#define RETIA_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace retia::util {

// Single choke point for RETIA_* environment-variable configuration. Every
// subsystem that reads the environment (par's RETIA_NUM_THREADS, obs's
// RETIA_TRACE / RETIA_METRICS, bench's RETIA_BENCH_CACHE, ckpt's
// RETIA_RESUME and the RETIA_FAIL_* fault-injection knobs) goes through
// these helpers, so parsing and fallback behaviour are uniform and the
// README can document one table. Malformed values never abort: the typed
// accessors warn once to stderr and return the fallback.
class Env {
 public:
  // Raw value, or nullptr when the variable is unset.
  static const char* Raw(const char* name);

  // True when the variable is set to a non-empty value.
  static bool IsSet(const char* name);

  // Value of the variable, or `fallback` when unset or empty.
  static std::string StringOr(const char* name, const std::string& fallback);

  // Integer value; warns and returns `fallback` on junk ("", "abc", "4x").
  static int64_t IntOr(const char* name, int64_t fallback);

  // Like IntOr, but values < 1 also fall back (with a warning).
  static int64_t PositiveIntOr(const char* name, int64_t fallback);

  // Boolean value: 1/true/yes/on and 0/false/no/off (case-insensitive).
  static bool BoolOr(const char* name, bool fallback);

  // Floating-point value (e.g. RETIA_STREAM_LR); warns and returns
  // `fallback` on junk.
  static double FloatOr(const char* name, double fallback);

  // Pure parsing helpers (unit-testable without touching the process
  // environment). Return false when `value` is null, empty, or malformed;
  // `*out` is untouched on failure.
  static bool ParseInt(const char* value, int64_t* out);
  static bool ParseBool(const char* value, bool* out);
  static bool ParseFloat(const char* value, double* out);
};

}  // namespace retia::util

#endif  // RETIA_UTIL_ENV_H_
