#ifndef RETIA_UTIL_CHECK_H_
#define RETIA_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace retia::util {

// Aborts the program with a formatted message. Used by the RETIA_CHECK
// family below; call sites should prefer the macros so that the failing
// expression text and source location are captured.
[[noreturn]] inline void CheckFailure(const char* file, int line,
                                      const std::string& message) {
  std::cerr << "[CHECK FAILED] " << file << ":" << line << ": " << message
            << std::endl;
  std::abort();
}

}  // namespace retia::util

// Runtime invariant checks. These are enabled in all build types: the
// library is a research system where silent shape mismatches are far more
// costly than the branch, and all checked conditions are O(1).
#define RETIA_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::retia::util::CheckFailure(__FILE__, __LINE__, "expected " #cond); \
    }                                                                   \
  } while (0)

#define RETIA_CHECK_MSG(cond, msg)                                   \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream oss_;                                       \
      oss_ << "expected " #cond << ": " << msg;                      \
      ::retia::util::CheckFailure(__FILE__, __LINE__, oss_.str());   \
    }                                                                \
  } while (0)

#define RETIA_CHECK_EQ(a, b)                                          \
  do {                                                                \
    auto va_ = (a);                                                   \
    auto vb_ = (b);                                                   \
    if (!(va_ == vb_)) {                                              \
      std::ostringstream oss_;                                        \
      oss_ << "expected " #a " == " #b " (" << va_ << " vs " << vb_   \
           << ")";                                                    \
      ::retia::util::CheckFailure(__FILE__, __LINE__, oss_.str());    \
    }                                                                 \
  } while (0)

#define RETIA_CHECK_LT(a, b)                                          \
  do {                                                                \
    auto va_ = (a);                                                   \
    auto vb_ = (b);                                                   \
    if (!(va_ < vb_)) {                                               \
      std::ostringstream oss_;                                        \
      oss_ << "expected " #a " < " #b " (" << va_ << " vs " << vb_    \
           << ")";                                                    \
      ::retia::util::CheckFailure(__FILE__, __LINE__, oss_.str());    \
    }                                                                 \
  } while (0)

#define RETIA_CHECK_LE(a, b)                                          \
  do {                                                                \
    auto va_ = (a);                                                   \
    auto vb_ = (b);                                                   \
    if (!(va_ <= vb_)) {                                              \
      std::ostringstream oss_;                                        \
      oss_ << "expected " #a " <= " #b " (" << va_ << " vs " << vb_   \
           << ")";                                                    \
      ::retia::util::CheckFailure(__FILE__, __LINE__, oss_.str());    \
    }                                                                 \
  } while (0)

#endif  // RETIA_UTIL_CHECK_H_
