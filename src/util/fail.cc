#include "util/fail.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

#include "util/env.h"

namespace retia::fail {

namespace {

std::mutex g_mu;
Plan g_plan;                              // guarded by g_mu
bool g_installed = false;                 // guarded by g_mu
std::atomic<int64_t> g_writes_seen{0};
std::atomic<int64_t> g_renames_seen{0};
std::atomic<bool> g_armed{false};

}  // namespace

void InstallPlan(const Plan& plan) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan = plan;
  g_installed = true;
  g_writes_seen.store(0, std::memory_order_relaxed);
  g_renames_seen.store(0, std::memory_order_relaxed);
  g_armed.store(plan.fail_write_n > 0 || plan.truncate_on_close >= 0 ||
                    plan.crash_after_rename_n > 0,
                std::memory_order_release);
}

void Clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan = Plan{};
  g_installed = false;
  g_writes_seen.store(0, std::memory_order_relaxed);
  g_renames_seen.store(0, std::memory_order_relaxed);
  g_armed.store(false, std::memory_order_release);
}

Plan ReadPlanFromEnv() {
  Plan plan;
  plan.fail_write_n = util::Env::IntOr("RETIA_FAIL_WRITE_N", 0);
  plan.truncate_on_close = util::Env::IntOr("RETIA_FAIL_TRUNCATE", -1);
  plan.crash_after_rename_n =
      util::Env::IntOr("RETIA_FAIL_CRASH_AFTER_RENAME", 0);
  return plan;
}

void InstallPlanFromEnvOnce() {
  static const bool once = [] {
    const Plan plan = ReadPlanFromEnv();
    std::lock_guard<std::mutex> lock(g_mu);
    if (!g_installed && (plan.fail_write_n > 0 || plan.truncate_on_close >= 0 ||
                         plan.crash_after_rename_n > 0)) {
      g_plan = plan;
      g_installed = true;
      g_armed.store(true, std::memory_order_release);
    }
    return true;
  }();
  static_cast<void>(once);
}

bool Armed() { return g_armed.load(std::memory_order_acquire); }

bool ShouldFailWrite() {
  if (!Armed()) return false;
  const int64_t seen = g_writes_seen.fetch_add(1, std::memory_order_relaxed) + 1;
  std::lock_guard<std::mutex> lock(g_mu);
  return g_plan.fail_write_n > 0 && seen == g_plan.fail_write_n;
}

int64_t TruncateOnCloseBytes() {
  if (!Armed()) return -1;
  std::lock_guard<std::mutex> lock(g_mu);
  return g_plan.truncate_on_close;
}

void MaybeCrashAfterRename() {
  if (!Armed()) return;
  const int64_t seen =
      g_renames_seen.fetch_add(1, std::memory_order_relaxed) + 1;
  bool crash = false;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    crash = g_plan.crash_after_rename_n > 0 &&
            seen == g_plan.crash_after_rename_n;
  }
  if (crash) {
    // The real thing: an uncatchable, instant kill. The artifact just
    // renamed into place must survive; nothing else is allowed to matter.
    ::kill(::getpid(), SIGKILL);
    // kill(SIGKILL) cannot return to user code, but keep the compiler and
    // any exotic platform honest.
    ::_exit(137);
  }
}

}  // namespace retia::fail
