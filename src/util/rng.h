#ifndef RETIA_UTIL_RNG_H_
#define RETIA_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <string>

namespace retia::util {

// Deterministic random number generator used everywhere in the library so
// that experiments are reproducible from a single seed. Wraps std::mt19937_64
// with the distributions the code actually needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;

  // Uniform float in [lo, hi).
  float Uniform(float lo, float hi) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Standard normal scaled by `stddev`.
  float Normal(float stddev) {
    std::normal_distribution<float> dist(0.0f, stddev);
    return dist(engine_);
  }

  // Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  // Zipf-like draw over {0, ..., n-1}: index i has weight (i+1)^-alpha.
  // Used by the synthetic dataset generators to mimic the long-tailed
  // entity/relation popularity of the real TKG benchmarks.
  int64_t Zipf(int64_t n, double alpha);

  // Full engine state as text (std::mt19937_64 stream serialization),
  // for resume-exact training checkpoints (retia::ckpt). The engine is the
  // complete state: every distribution object is constructed per call, so
  // no hidden distribution state survives between draws.
  std::string SaveStateString() const;
  // Restores a SaveStateString() snapshot; returns false (leaving the
  // engine untouched) when the string is not a valid engine state.
  bool LoadStateString(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace retia::util

#endif  // RETIA_UTIL_RNG_H_
