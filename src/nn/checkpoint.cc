#include "nn/checkpoint.h"

#include <cstdint>
#include <fstream>

#include "util/check.h"

namespace retia::nn {

namespace {
constexpr char kMagic[] = "RETIACKPT1\n";
constexpr char kSidecarMagic[] = "RETIASIDE1";
}  // namespace

void SaveCheckpoint(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  RETIA_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(kMagic, sizeof(kMagic) - 1);
  const auto named = module.NamedParameters();
  const uint64_t count = named.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, t] : named) {
    const uint64_t name_len = name.size();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(name.data(), static_cast<std::streamsize>(name_len));
    const auto& shape = t.Shape();
    const uint64_t rank = shape.size();
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t dim : shape) {
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(t.Data()),
              static_cast<std::streamsize>(t.NumElements() * sizeof(float)));
  }
  RETIA_CHECK_MSG(out.good(), "write to " << path << " failed");
}

void LoadCheckpoint(Module* module, const std::string& path) {
  RETIA_CHECK(module != nullptr);
  std::ifstream in(path, std::ios::binary);
  RETIA_CHECK_MSG(in.good(), "cannot open " << path);
  char magic[sizeof(kMagic) - 1];
  in.read(magic, sizeof(magic));
  RETIA_CHECK_MSG(
      in.good() && std::string(magic, sizeof(magic)) == kMagic,
      path << " is not a RETIA checkpoint");
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  auto named = module->NamedParameters();
  RETIA_CHECK_MSG(count == named.size(),
                  "checkpoint has " << count << " parameters, model has "
                                    << named.size());
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    RETIA_CHECK_MSG(name == named[i].first,
                    "parameter order mismatch: checkpoint has '"
                        << name << "', model expects '" << named[i].first
                        << "'");
    uint64_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    std::vector<int64_t> shape(rank);
    for (uint64_t d = 0; d < rank; ++d) {
      in.read(reinterpret_cast<char*>(&shape[d]), sizeof(int64_t));
    }
    tensor::Tensor& t = named[i].second;
    RETIA_CHECK_MSG(shape == t.Shape(),
                    "shape mismatch for parameter '" << name << "'");
    in.read(reinterpret_cast<char*>(t.Data()),
            static_cast<std::streamsize>(t.NumElements() * sizeof(float)));
    RETIA_CHECK_MSG(in.good(), "truncated checkpoint at parameter '" << name
                                                                     << "'");
  }
}

void SaveSidecar(const std::string& path, const Sidecar& entries) {
  std::ofstream out(path);
  RETIA_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << kSidecarMagic << "\n";
  for (const auto& [key, value] : entries) {
    RETIA_CHECK_MSG(key.find_first_of("\t\n") == std::string::npos &&
                        value.find_first_of("\t\n") == std::string::npos,
                    "sidecar entry '" << key << "' contains a tab or newline");
    out << key << "\t" << value << "\n";
  }
  RETIA_CHECK_MSG(out.good(), "write to " << path << " failed");
}

Sidecar LoadSidecar(const std::string& path) {
  std::ifstream in(path);
  RETIA_CHECK_MSG(in.good(), "cannot open " << path);
  std::string line;
  RETIA_CHECK_MSG(std::getline(in, line) && line == kSidecarMagic,
                  path << " is not a RETIA sidecar");
  Sidecar entries;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    RETIA_CHECK_MSG(tab != std::string::npos,
                    path << " has a malformed sidecar line: " << line);
    entries.emplace_back(line.substr(0, tab), line.substr(tab + 1));
  }
  return entries;
}

const std::string& SidecarValue(const Sidecar& sidecar,
                                const std::string& key) {
  for (const auto& [k, v] : sidecar) {
    if (k == key) return v;
  }
  RETIA_CHECK_MSG(false, "sidecar has no key '" << key << "'");
  static const std::string kEmpty;
  return kEmpty;
}

}  // namespace retia::nn
