#include "nn/module.h"

#include <algorithm>

namespace retia::nn {

std::vector<tensor::Tensor> Module::Parameters() const {
  std::vector<std::pair<std::string, tensor::Tensor>> named = NamedParameters();
  std::vector<tensor::Tensor> out;
  out.reserve(named.size());
  for (auto& [name, t] : named) out.push_back(t);
  return out;
}

std::vector<std::pair<std::string, tensor::Tensor>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, tensor::Tensor>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, tensor::Tensor>>* out) const {
  for (const auto& [name, t] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, t);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

void Module::ZeroGrad() {
  for (tensor::Tensor& t : Parameters()) {
    if (t.HasGrad()) t.ZeroGrad();
  }
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const tensor::Tensor& t : Parameters()) n += t.NumElements();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

tensor::Tensor Module::RegisterParameter(const std::string& name,
                                         tensor::Tensor t) {
  t.SetRequiresGrad(true);
  params_.emplace_back(name, t);
  return t;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  RETIA_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

}  // namespace retia::nn
