#include "nn/linear.h"

#include "nn/init.h"

namespace retia::nn {

Linear::Linear(int64_t in_features, int64_t out_features, util::Rng* rng,
               bool with_bias) {
  weight_ = RegisterParameter(
      "weight", XavierUniform({out_features, in_features}, rng));
  if (with_bias) {
    bias_ = RegisterParameter("bias", tensor::Tensor::Zeros({out_features}));
  }
}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  tensor::Tensor y = tensor::MatMulTransposeB(x, weight_);
  if (bias_.defined()) y = tensor::AddRowBroadcast(y, bias_);
  return y;
}

Embedding::Embedding(int64_t count, int64_t dim, util::Rng* rng) {
  table_ = RegisterParameter("table", XavierUniform({count, dim}, rng));
}

tensor::Tensor Embedding::Forward(const std::vector<int64_t>& idx) const {
  return tensor::GatherRows(table_, idx);
}

}  // namespace retia::nn
