#ifndef RETIA_NN_RNN_CELLS_H_
#define RETIA_NN_RNN_CELLS_H_

#include "nn/module.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace retia::nn {

// Standard GRU cell (Cho et al. 2014) with independent input and hidden
// sizes. RETIA's R-GRU (Eq. 3 and 6) applies this cell with the RGCN
// aggregation output as input and the previous-step embeddings as hidden
// state, so input_size == hidden_size there; the TIM of RE-GCN-style
// baselines uses input_size == 2*hidden_size.
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, util::Rng* rng);

  // x:[B,input_size], h:[B,hidden_size] -> h':[B,hidden_size].
  tensor::Tensor Forward(const tensor::Tensor& x,
                         const tensor::Tensor& h) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  // Packed gate parameters, gate order r, z, n.
  tensor::Tensor w_x_;  // [3*hidden, input]
  tensor::Tensor w_h_;  // [3*hidden, hidden]
  tensor::Tensor b_x_;  // [3*hidden]
  tensor::Tensor b_h_;  // [3*hidden]
};

// Projected-cell LSTM used by the TIM (Eq. 8 and 10). The paper specifies
// hidden output R_Lstm in R^{2M x d} but cell state C in R^{2M x 2d} with
// C_0 = R_Mean^0 (a 2d-wide tensor); a textbook LSTM cannot satisfy both.
// This cell keeps gates and cell state at `cell_size` (= input width) and
// produces the hidden output through a learned projection:
//
//   i,f,g = gates([x;h]);  c' = f*c + i*g;  o = gate_o([x;h]);
//   h' = o * tanh(W_p c')                     with W_p: cell_size -> hidden.
//
// With cell_size == 2*hidden this matches every dimension stated in the
// paper. State is the pair (h, c).
class ProjectedLstmCell : public Module {
 public:
  struct State {
    tensor::Tensor h;  // [B, hidden_size]
    tensor::Tensor c;  // [B, cell_size]
  };

  ProjectedLstmCell(int64_t input_size, int64_t hidden_size, int64_t cell_size,
                    util::Rng* rng);

  // x:[B,input_size]; state tensors must match the declared sizes.
  State Forward(const tensor::Tensor& x, const State& state) const;

  int64_t hidden_size() const { return hidden_size_; }
  int64_t cell_size() const { return cell_size_; }

 private:
  int64_t hidden_size_;
  int64_t cell_size_;
  // Packed gate parameters, gate order i, f, g (cell_size each), o (hidden).
  tensor::Tensor w_x_;  // [3*cell + hidden, input]
  tensor::Tensor w_h_;  // [3*cell + hidden, hidden]
  tensor::Tensor b_;    // [3*cell + hidden]
  tensor::Tensor w_proj_;  // [hidden, cell]
};

}  // namespace retia::nn

#endif  // RETIA_NN_RNN_CELLS_H_
