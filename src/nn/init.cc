#include "nn/init.h"

#include <cmath>

namespace retia::nn {

namespace {

void FanInOut(const std::vector<int64_t>& shape, int64_t* fan_in,
              int64_t* fan_out) {
  RETIA_CHECK(!shape.empty());
  if (shape.size() == 1) {
    *fan_in = *fan_out = shape[0];
    return;
  }
  // Trailing dims beyond the first two are receptive-field multipliers
  // (convolution kernels).
  int64_t receptive = 1;
  for (size_t i = 2; i < shape.size(); ++i) receptive *= shape[i];
  *fan_out = shape[0] * receptive;
  *fan_in = shape[1] * receptive;
}

}  // namespace

tensor::Tensor XavierUniform(std::vector<int64_t> shape, util::Rng* rng) {
  int64_t fan_in = 0;
  int64_t fan_out = 0;
  FanInOut(shape, &fan_in, &fan_out);
  const float a =
      std::sqrt(6.0f / static_cast<float>(std::max<int64_t>(fan_in + fan_out, 1)));
  return UniformInit(std::move(shape), -a, a, rng);
}

tensor::Tensor NormalInit(std::vector<int64_t> shape, float stddev,
                          util::Rng* rng) {
  tensor::Tensor t = tensor::Tensor::Zeros(std::move(shape));
  float* p = t.Data();
  const int64_t n = t.NumElements();
  for (int64_t i = 0; i < n; ++i) p[i] = rng->Normal(stddev);
  return t;
}

tensor::Tensor UniformInit(std::vector<int64_t> shape, float lo, float hi,
                           util::Rng* rng) {
  tensor::Tensor t = tensor::Tensor::Zeros(std::move(shape));
  float* p = t.Data();
  const int64_t n = t.NumElements();
  for (int64_t i = 0; i < n; ++i) p[i] = rng->Uniform(lo, hi);
  return t;
}

}  // namespace retia::nn
