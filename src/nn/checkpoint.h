#ifndef RETIA_NN_CHECKPOINT_H_
#define RETIA_NN_CHECKPOINT_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace retia::nn {

// DEPRECATED — thin shims over retia::ckpt, kept for one release.
//
// These are the original v1 entry points (RETIACKPT1 binary parameter
// checkpoints + RETIASIDE1 text sidecars). They now delegate to the
// Result-returning implementations in ckpt/legacy.cc (linked from
// retia_ckpt) and keep the historical abort-on-error contract: any load
// failure CHECK-fails with the ckpt error detail. New code should use
// retia::ckpt directly —
//   * ckpt::SaveModelArtifact / LoadModelArtifact for model snapshots
//     (one crash-safe RETIACKPT2 file, config + params + static types);
//   * train::Trainer::SaveState / ResumeState for training state;
//   * ckpt::ArtifactWriter/Reader for custom sections —
// all of which report errors as ckpt::Result instead of aborting. See
// docs/CHECKPOINTS.md for the formats and the migration story.

// Writes the v1 parameter checkpoint (now atomically: tmp+fsync+rename).
void SaveCheckpoint(const Module& module, const std::string& path);

// Loads parameter values into `module` in place; aborts on any mismatch.
// Prefer ckpt::ReadLegacyCheckpointInto, which returns a ckpt::Result.
void LoadCheckpoint(Module* module, const std::string& path);

// Plain-text key/value sidecar (v1). Superseded by the "meta" section of
// RETIACKPT2 artifacts.
using Sidecar = std::vector<std::pair<std::string, std::string>>;

void SaveSidecar(const std::string& path, const Sidecar& entries);
Sidecar LoadSidecar(const std::string& path);

// Value of `key`; CHECK-fails when the key is absent. Prefer
// ckpt::SidecarLookup.
const std::string& SidecarValue(const Sidecar& sidecar, const std::string& key);

}  // namespace retia::nn

#endif  // RETIA_NN_CHECKPOINT_H_
