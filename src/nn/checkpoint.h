#ifndef RETIA_NN_CHECKPOINT_H_
#define RETIA_NN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"

namespace retia::nn {

// Binary checkpoint format for Module parameters.
//
// Layout: magic "RETIACKPT1\n", then per parameter one record:
//   name\n shape_rank shape... float payload
// Parameters are matched by name on load; shapes must agree. Loading a
// checkpoint from a differently configured model CHECK-fails with the
// offending parameter named.
void SaveCheckpoint(const Module& module, const std::string& path);

// Loads parameter values into `module` in place. Every parameter of the
// module must be present in the file (and vice versa).
void LoadCheckpoint(Module* module, const std::string& path);

}  // namespace retia::nn

#endif  // RETIA_NN_CHECKPOINT_H_
