#ifndef RETIA_NN_CHECKPOINT_H_
#define RETIA_NN_CHECKPOINT_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace retia::nn {

// Binary checkpoint format for Module parameters.
//
// Layout: magic "RETIACKPT1\n", then per parameter one record:
//   name\n shape_rank shape... float payload
// Parameters are matched by name on load; shapes must agree. Loading a
// checkpoint from a differently configured model CHECK-fails with the
// offending parameter named.
void SaveCheckpoint(const Module& module, const std::string& path);

// Loads parameter values into `module` in place. Every parameter of the
// module must be present in the file (and vice versa).
void LoadCheckpoint(Module* module, const std::string& path);

// Plain-text sidecar accompanying a checkpoint: ordered key/value lines
// under a "RETIASIDE1" magic header. A checkpoint alone cannot rebuild a
// model — the constructor arguments (config, vocabulary sizes) live here.
// Keys and values must be single-line and tab-free.
using Sidecar = std::vector<std::pair<std::string, std::string>>;

void SaveSidecar(const std::string& path, const Sidecar& entries);
Sidecar LoadSidecar(const std::string& path);

// Value of `key`; CHECK-fails when the key is absent.
const std::string& SidecarValue(const Sidecar& sidecar, const std::string& key);

}  // namespace retia::nn

#endif  // RETIA_NN_CHECKPOINT_H_
