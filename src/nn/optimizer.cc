#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace retia::nn {

Adam::Adam(std::vector<tensor::Tensor> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    const size_t n = params_[i].impl().data.size();
    m_[i].assign(n, 0.0f);
    v_[i].assign(n, 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    tensor::TensorImpl& impl = params_[i].impl();
    if (impl.grad.empty()) continue;
    const size_t n = impl.data.size();
    for (size_t j = 0; j < n; ++j) {
      float g = impl.grad[j];
      if (options_.weight_decay != 0.0f)
        g += options_.weight_decay * impl.data[j];
      m_[i][j] = options_.beta1 * m_[i][j] + (1.0f - options_.beta1) * g;
      v_[i][j] = options_.beta2 * v_[i][j] + (1.0f - options_.beta2) * g * g;
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      impl.data[j] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
    }
  }
}

void Adam::ZeroGrad() {
  for (tensor::Tensor& p : params_) {
    if (p.HasGrad()) p.ZeroGrad();
  }
}

float ClipGradNorm(std::vector<tensor::Tensor>& params, float max_norm) {
  double total = 0.0;
  for (tensor::Tensor& p : params) {
    if (!p.HasGrad()) continue;
    for (float g : p.impl().grad) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (tensor::Tensor& p : params) {
      if (!p.HasGrad()) continue;
      for (float& g : p.impl().grad) g *= scale;
    }
  }
  return norm;
}

}  // namespace retia::nn
