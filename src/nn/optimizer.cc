#include "nn/optimizer.h"

#include <cmath>
#include <utility>

#include "par/parallel_for.h"
#include "simd/simd.h"
#include "util/check.h"

namespace retia::nn {

namespace {
// Elements per Adam/clip shard; shard boundaries derive from the tensor
// size only (never from the thread count), so updates are bit-identical
// for every pool size — see par/parallel_for.h.
constexpr int64_t kElementGrain = 1 << 14;
}  // namespace

Adam::Adam(std::vector<tensor::Tensor> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    const size_t n = params_[i].impl().data.size();
    m_[i].assign(n, 0.0f);
    v_[i].assign(n, 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    tensor::TensorImpl& impl = params_[i].impl();
    if (impl.grad.empty()) continue;
    const int64_t n = static_cast<int64_t>(impl.data.size());
    float* data = impl.data.data();
    const float* grad = impl.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    // Element-parallel: every element's update is independent, so sharding
    // cannot change the result. The scalar backend's adam_update kernel is
    // the historical serial arithmetic verbatim.
    par::ParallelFor(n, kElementGrain, [&](int64_t j0, int64_t j1) {
      simd::Kernels().adam_update(data + j0, grad + j0, m + j0, v + j0,
                                  j1 - j0, options_.lr, options_.beta1,
                                  options_.beta2, options_.eps,
                                  options_.weight_decay, bc1, bc2);
    });
  }
}

void Adam::RestoreState(int64_t step_count, std::vector<std::vector<float>> m,
                        std::vector<std::vector<float>> v) {
  RETIA_CHECK(step_count >= 0);
  RETIA_CHECK_EQ(m.size(), params_.size());
  RETIA_CHECK_EQ(v.size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    RETIA_CHECK_EQ(m[i].size(), params_[i].impl().data.size());
    RETIA_CHECK_EQ(v[i].size(), params_[i].impl().data.size());
  }
  step_count_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
}

void Adam::ZeroGrad() {
  for (tensor::Tensor& p : params_) {
    if (p.HasGrad()) p.ZeroGrad();
  }
}

float ClipGradNorm(std::vector<tensor::Tensor>& params, float max_norm) {
  // Squared norm via DeterministicReduce: per-shard double partials folded
  // in shard order, shard boundaries a function of each tensor's size
  // only — the norm is bit-identical for every thread count.
  double total = 0.0;
  for (tensor::Tensor& p : params) {
    if (!p.HasGrad()) continue;
    const std::vector<float>& grad = p.impl().grad;
    const int64_t n = static_cast<int64_t>(grad.size());
    total = par::DeterministicReduce<double>(
        n, kElementGrain, total,
        [&](int64_t begin, int64_t end) {
          return simd::Kernels().sum_squares_f64(grad.data() + begin,
                                                 end - begin);
        },
        [](double acc, double partial) { return acc + partial; });
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (tensor::Tensor& p : params) {
      if (!p.HasGrad()) continue;
      std::vector<float>& grad = p.impl().grad;
      par::ParallelFor(static_cast<int64_t>(grad.size()), kElementGrain,
                       [&](int64_t j0, int64_t j1) {
                         simd::Kernels().scale(grad.data() + j0, scale,
                                               grad.data() + j0, j1 - j0);
                       });
    }
  }
  return norm;
}

}  // namespace retia::nn
