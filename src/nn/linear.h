#ifndef RETIA_NN_LINEAR_H_
#define RETIA_NN_LINEAR_H_

#include "nn/module.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace retia::nn {

// Affine map y = x W^T + b with W:[out,in], b:[out].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, util::Rng* rng,
         bool with_bias = true);

  // x:[B,in] -> [B,out].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  const tensor::Tensor& weight() const { return weight_; }

 private:
  tensor::Tensor weight_;
  tensor::Tensor bias_;  // undefined when with_bias == false
};

// Trainable lookup table; Forward gathers rows by index.
class Embedding : public Module {
 public:
  Embedding(int64_t count, int64_t dim, util::Rng* rng);

  // idx values in [0, count) -> [idx.size(), dim].
  tensor::Tensor Forward(const std::vector<int64_t>& idx) const;

  // The full table (used when the model consumes every row at once, e.g.
  // E_0 / R_0 / HR_0 in RETIA).
  const tensor::Tensor& table() const { return table_; }

 private:
  tensor::Tensor table_;
};

}  // namespace retia::nn

#endif  // RETIA_NN_LINEAR_H_
