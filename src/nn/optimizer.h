#ifndef RETIA_NN_OPTIMIZER_H_
#define RETIA_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace retia::nn {

// Adam (Kingma & Ba 2015) over a fixed parameter list. The paper trains all
// models with Adam at lr = 1e-3 (Sec. IV-A4).
class Adam {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;  // L2 added to the gradient
  };

  Adam(std::vector<tensor::Tensor> params, Options options);

  // Applies one update from the accumulated gradients. Parameters with no
  // gradient this step are skipped.
  void Step();

  // Zeroes all parameter gradients.
  void ZeroGrad();

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }

  // State exposure for retia::ckpt: resume-exact training must persist the
  // step count (bias correction) and both moment vectors.
  int64_t step_count() const { return step_count_; }
  const std::vector<std::vector<float>>& first_moments() const { return m_; }
  const std::vector<std::vector<float>>& second_moments() const { return v_; }

  // Restores serialized state. The moment vectors must match the parameter
  // list element-for-element (callers validate first; this CHECK-fails on
  // violation because a silently misaligned optimizer is unrecoverable).
  void RestoreState(int64_t step_count, std::vector<std::vector<float>> m,
                    std::vector<std::vector<float>> v);

 private:
  std::vector<tensor::Tensor> params_;
  Options options_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

// Rescales gradients in place so their global L2 norm is at most `max_norm`.
// Returns the pre-clip norm.
float ClipGradNorm(std::vector<tensor::Tensor>& params, float max_norm);

}  // namespace retia::nn

#endif  // RETIA_NN_OPTIMIZER_H_
