#ifndef RETIA_NN_MODULE_H_
#define RETIA_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace retia::nn {

// Base class for anything holding trainable parameters. Child modules are
// registered so Parameters() walks the whole tree; the optimizer consumes
// that flat list. Modules are neither copyable nor movable: parameter
// tensors are shared handles and accidental copies would silently alias
// optimizer state.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters of this module and its registered children.
  std::vector<tensor::Tensor> Parameters() const;

  // Named view of the same list (for checkpointing and debugging).
  std::vector<std::pair<std::string, tensor::Tensor>> NamedParameters() const;

  // Zeroes every parameter gradient (call before each backward pass).
  void ZeroGrad();

  // Total scalar parameter count.
  int64_t NumParameters() const;

  // Training-mode flag consumed by dropout/RReLU; propagates to children.
  void SetTraining(bool training);
  bool training() const { return training_; }

 protected:
  // Registers a parameter tensor (sets requires_grad) and returns it.
  tensor::Tensor RegisterParameter(const std::string& name, tensor::Tensor t);
  // Registers a child whose parameters are exposed through this module.
  // The child must outlive this module (typically it is a member).
  void RegisterModule(const std::string& name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, tensor::Tensor>>* out)
      const;

  std::vector<std::pair<std::string, tensor::Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace retia::nn

#endif  // RETIA_NN_MODULE_H_
