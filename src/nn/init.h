#ifndef RETIA_NN_INIT_H_
#define RETIA_NN_INIT_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace retia::nn {

// Xavier/Glorot uniform initialisation: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
// `shape` must be rank >= 1; fan_in/fan_out are derived from the trailing
// two dimensions (rank-1 tensors use fan_in = fan_out = size).
tensor::Tensor XavierUniform(std::vector<int64_t> shape, util::Rng* rng);

// N(0, stddev) initialisation.
tensor::Tensor NormalInit(std::vector<int64_t> shape, float stddev,
                          util::Rng* rng);

// U(lo, hi) initialisation.
tensor::Tensor UniformInit(std::vector<int64_t> shape, float lo, float hi,
                           util::Rng* rng);

}  // namespace retia::nn

#endif  // RETIA_NN_INIT_H_
