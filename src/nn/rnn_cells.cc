#include "nn/rnn_cells.h"

#include "nn/init.h"

namespace retia::nn {

using tensor::Tensor;

GruCell::GruCell(int64_t input_size, int64_t hidden_size, util::Rng* rng)
    : hidden_size_(hidden_size) {
  w_x_ = RegisterParameter("w_x",
                           XavierUniform({3 * hidden_size, input_size}, rng));
  w_h_ = RegisterParameter("w_h",
                           XavierUniform({3 * hidden_size, hidden_size}, rng));
  b_x_ = RegisterParameter("b_x", Tensor::Zeros({3 * hidden_size}));
  b_h_ = RegisterParameter("b_h", Tensor::Zeros({3 * hidden_size}));
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  RETIA_CHECK_EQ(h.Dim(1), hidden_size_);
  RETIA_CHECK_EQ(x.Dim(0), h.Dim(0));
  const int64_t hs = hidden_size_;
  Tensor gx = tensor::AddRowBroadcast(tensor::MatMulTransposeB(x, w_x_), b_x_);
  Tensor gh = tensor::AddRowBroadcast(tensor::MatMulTransposeB(h, w_h_), b_h_);
  Tensor r = tensor::Sigmoid(tensor::Add(tensor::SliceCols(gx, 0, hs),
                                         tensor::SliceCols(gh, 0, hs)));
  Tensor z = tensor::Sigmoid(tensor::Add(tensor::SliceCols(gx, hs, hs),
                                         tensor::SliceCols(gh, hs, hs)));
  Tensor n = tensor::Tanh(tensor::Add(
      tensor::SliceCols(gx, 2 * hs, hs),
      tensor::Mul(r, tensor::SliceCols(gh, 2 * hs, hs))));
  // h' = (1-z)*n + z*h.
  Tensor one_minus_z = tensor::Sub(Tensor::Full(z.Shape(), 1.0f), z);
  return tensor::Add(tensor::Mul(one_minus_z, n), tensor::Mul(z, h));
}

ProjectedLstmCell::ProjectedLstmCell(int64_t input_size, int64_t hidden_size,
                                     int64_t cell_size, util::Rng* rng)
    : hidden_size_(hidden_size), cell_size_(cell_size) {
  const int64_t gates = 3 * cell_size + hidden_size;
  w_x_ = RegisterParameter("w_x", XavierUniform({gates, input_size}, rng));
  w_h_ = RegisterParameter("w_h", XavierUniform({gates, hidden_size}, rng));
  b_ = RegisterParameter("b", Tensor::Zeros({gates}));
  w_proj_ =
      RegisterParameter("w_proj", XavierUniform({hidden_size, cell_size}, rng));
}

ProjectedLstmCell::State ProjectedLstmCell::Forward(const Tensor& x,
                                                    const State& state) const {
  RETIA_CHECK_EQ(state.h.Dim(1), hidden_size_);
  RETIA_CHECK_EQ(state.c.Dim(1), cell_size_);
  RETIA_CHECK_EQ(x.Dim(0), state.h.Dim(0));
  const int64_t cs = cell_size_;
  const int64_t hs = hidden_size_;
  Tensor pre = tensor::AddRowBroadcast(
      tensor::Add(tensor::MatMulTransposeB(x, w_x_),
                  tensor::MatMulTransposeB(state.h, w_h_)),
      b_);
  Tensor i = tensor::Sigmoid(tensor::SliceCols(pre, 0, cs));
  Tensor f = tensor::Sigmoid(tensor::SliceCols(pre, cs, cs));
  Tensor g = tensor::Tanh(tensor::SliceCols(pre, 2 * cs, cs));
  Tensor o = tensor::Sigmoid(tensor::SliceCols(pre, 3 * cs, hs));
  Tensor c_next = tensor::Add(tensor::Mul(f, state.c), tensor::Mul(i, g));
  Tensor h_next =
      tensor::Mul(o, tensor::Tanh(tensor::MatMulTransposeB(c_next, w_proj_)));
  return {h_next, c_next};
}

}  // namespace retia::nn
