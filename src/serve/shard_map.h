#ifndef RETIA_SERVE_SHARD_MAP_H_
#define RETIA_SERVE_SHARD_MAP_H_

// Consistent-hash ring mapping subject entities to replica shards
// (docs/SERVING_TOPOLOGY.md §Shard map). Each replica contributes
// `virtual_nodes` points on a 64-bit ring, placed by a deterministic
// splitmix64 mix of (shard id, vnode index) — NOT std::hash, whose value
// is implementation-defined and would silently reshuffle the fleet across
// compilers. A subject routes to the owner of the first ring point at or
// after mix(subject), wrapping at the top.
//
// The property the router buys with this: adding or removing one replica
// remaps only the keys that hashed into that replica's arcs; every other
// subject keeps its shard (serve_router_test pins this). Removing a dead
// replica is an operator decision — the ring itself keeps routing to it
// and the router reports kShardUnavailable, so failures are visible
// instead of silently shifting load.

#include <cstdint>
#include <vector>

namespace retia::serve {

class ShardMap {
 public:
  // `shard_ids` are the replica ids on the ring (need not be contiguous);
  // `virtual_nodes` is the number of ring points per replica.
  ShardMap(const std::vector<int64_t>& shard_ids, int64_t virtual_nodes);

  // Shard owning `subject`. Dies (CHECK) only on an empty ring, which is a
  // construction bug, not a runtime condition.
  int64_t ShardFor(int64_t subject) const;

  int64_t num_shards() const { return num_shards_; }

  // Deterministic 64-bit mix used for ring placement and key lookup;
  // exposed so tests can reason about arc boundaries.
  static uint64_t Mix(uint64_t x);

 private:
  struct Point {
    uint64_t position;
    int64_t shard;
  };
  std::vector<Point> ring_;  // sorted by position
  int64_t num_shards_;
};

}  // namespace retia::serve

#endif  // RETIA_SERVE_SHARD_MAP_H_
