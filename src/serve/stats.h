#ifndef RETIA_SERVE_STATS_H_
#define RETIA_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/lru_cache.h"
#include "util/timer.h"

namespace retia::serve {

// Point-in-time view of an engine's serving behaviour since the last
// ResetStats(). All latencies are end-to-end (submit to result, including
// queueing and batching delay).
struct ServeStats {
  int64_t completed = 0;       // requests answered
  double wall_seconds = 0.0;   // observation window
  double qps = 0.0;            // completed / wall_seconds
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;

  // Decomposition of the end-to-end latency for requests that reached the
  // batcher (cache hits have neither): time spent queued before a drain
  // tick picked the request up, and time spent inside the batched decode.
  double p50_queue_wait_ms = 0.0;
  double p99_queue_wait_ms = 0.0;
  double p50_compute_ms = 0.0;
  double p99_compute_ms = 0.0;

  // batch_size_histogram[b] = number of decode batches of size b (index 0
  // is unused; cache hits never reach the batcher).
  std::vector<int64_t> batch_size_histogram;
  int64_t batches = 0;
  double mean_batch_size = 0.0;

  CacheCounters cache;  // hits/misses/evictions since engine construction
  double cache_hit_rate = 0.0;

  // SwapSnapshot() installations since engine construction (not reset by
  // ResetStats: like the cache counters, it describes the engine, not the
  // observation window).
  int64_t snapshot_swaps = 0;

  // Single-line JSON rendering of every field above.
  std::string ToJson() const;
};

// Whose latency decomposition a StatsRecorder accounts for. The engine and
// the cluster router record the identical queue-wait vs compute split
// through the same methods (this is the single accounting site — callers
// never emit the serve.*queue_wait/compute histograms themselves); the
// scope only selects which obs metric names the samples land in.
enum class StatsScope : uint8_t {
  kEngine = 0,  // serve.queue_wait.us / serve.compute.us
  kRouter = 1,  // serve.router.queue_wait.us / serve.router.compute.us
};

// Thread-safe accumulator behind ServeEngine::Stats() and Router stats:
// callers record one latency per completed request, workers record one
// entry per decoded micro-batch (the router's "batches" are single
// requests: wait = connection checkout, compute = replica round-trip).
class StatsRecorder {
 public:
  explicit StatsRecorder(int64_t max_batch,
                         StatsScope scope = StatsScope::kEngine);

  void RecordRequest(double latency_ms);
  void RecordBatch(int64_t batch_size);
  // One sample per batched request: submission-to-decode-start wait. Also
  // feeds the scope's queue-wait obs histogram.
  void RecordQueueWait(double wait_ms);
  // One sample per decoded micro-batch: the batched decode duration. Also
  // feeds the scope's compute obs histogram.
  void RecordCompute(double compute_ms);

  // Snapshot over the window since construction or the last Reset();
  // `cache` is merged in verbatim (cache counters live in the cache).
  ServeStats Snapshot(const CacheCounters& cache) const;

  void Reset();

 private:
  mutable std::mutex mu_;
  StatsScope scope_;
  util::Timer timer_;
  std::vector<float> latencies_ms_;
  std::vector<float> queue_wait_ms_;
  std::vector<float> compute_ms_;
  std::vector<int64_t> batch_hist_;
};

}  // namespace retia::serve

#endif  // RETIA_SERVE_STATS_H_
