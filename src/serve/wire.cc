#include "serve/wire.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "util/check.h"

namespace retia::serve::wire {

namespace {

// ---- Little-endian primitives ---------------------------------------------

void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI64(int64_t v, std::vector<uint8_t>* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutF32(float v, std::vector<uint8_t>* out) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits, out);
}

// Bounds-checked reader over a body buffer. Every Read* returns false once
// the buffer is exhausted and the cursor stays put, so a decoder can bail
// with a single "truncated" error.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_++];
    return true;
  }

  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > size_) return false;
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t raw;
    if (!ReadU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }

  bool ReadF32(float* v) {
    uint32_t bits;
    if (!ReadU32(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadBytes(size_t n, std::string* out) {
    if (pos_ + n > size_) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t Remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

template <typename T>
Result<T> Malformed(const std::string& what) {
  return Result<T>::Error(StatusCode::kProtocolError, what);
}

}  // namespace

// ---- Frame layer -----------------------------------------------------------

void AppendFrame(MsgType type, const std::vector<uint8_t>& body,
                 std::vector<uint8_t>* out) {
  const auto payload_len = static_cast<uint32_t>(2 + body.size());
  PutU32(payload_len, out);
  PutU8(kVersion, out);
  PutU8(static_cast<uint8_t>(type), out);
  out->insert(out->end(), body.begin(), body.end());
}

DecodeStatus DecodeFrame(const uint8_t* data, size_t size, Frame* frame,
                         size_t* consumed, std::string* detail) {
  if (size < 4) return DecodeStatus::kNeedMore;
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(data[i]) << (8 * i);
  }
  if (payload_len < 2) {
    if (detail) *detail = "frame payload shorter than header";
    return DecodeStatus::kError;
  }
  if (payload_len > kMaxFrameBytes) {
    if (detail) *detail = "frame exceeds kMaxFrameBytes";
    return DecodeStatus::kError;
  }
  if (size < 4 + static_cast<size_t>(payload_len)) return DecodeStatus::kNeedMore;
  const uint8_t version = data[4];
  if (version != kVersion) {
    if (detail) *detail = "unsupported protocol version";
    return DecodeStatus::kError;
  }
  const uint8_t type = data[5];
  if (type < static_cast<uint8_t>(MsgType::kQuery) ||
      type > static_cast<uint8_t>(MsgType::kResultBatch)) {
    if (detail) *detail = "unknown message type";
    return DecodeStatus::kError;
  }
  frame->type = static_cast<MsgType>(type);
  frame->body.assign(data + 6, data + 4 + payload_len);
  *consumed = 4 + static_cast<size_t>(payload_len);
  return DecodeStatus::kFrame;
}

// ---- Body codecs -----------------------------------------------------------

std::vector<uint8_t> EncodeQuery(const Query& query) {
  std::vector<uint8_t> body;
  PutU8(static_cast<uint8_t>(query.kind), &body);
  PutI64(query.s, &body);
  PutI64(query.r_or_o, &body);
  PutI64(query.t, &body);
  PutI64(query.k, &body);
  return body;
}

Result<Query> DecodeQuery(const std::vector<uint8_t>& body) {
  Reader reader(body.data(), body.size());
  uint8_t kind = 0;
  Query query;
  if (!reader.ReadU8(&kind) || !reader.ReadI64(&query.s) ||
      !reader.ReadI64(&query.r_or_o) || !reader.ReadI64(&query.t) ||
      !reader.ReadI64(&query.k)) {
    return Malformed<Query>("truncated query body");
  }
  if (kind > static_cast<uint8_t>(QueryKind::kRelation)) {
    return Malformed<Query>("unknown query kind");
  }
  if (!reader.AtEnd()) return Malformed<Query>("trailing bytes after query");
  query.kind = static_cast<QueryKind>(kind);
  return query;
}

std::vector<uint8_t> EncodeQueryReply(const Result<QueryResult>& result) {
  std::vector<uint8_t> body;
  PutU8(static_cast<uint8_t>(result.code()), &body);
  if (result.ok()) {
    const QueryResult& value = result.value();
    PutI64(value.epoch, &body);
    PutU8(value.cache_hit ? 1 : 0, &body);
    PutU16(static_cast<uint16_t>(value.candidates.size()), &body);
    for (const ScoredCandidate& candidate : value.candidates) {
      PutI64(candidate.id, &body);
      PutF32(candidate.score, &body);
    }
  } else {
    const std::string& detail = result.detail();
    const auto len =
        static_cast<uint16_t>(std::min<size_t>(detail.size(), 0xffff));
    PutU16(len, &body);
    body.insert(body.end(), detail.begin(), detail.begin() + len);
  }
  return body;
}

Result<QueryResult> DecodeQueryReply(const std::vector<uint8_t>& body) {
  Reader reader(body.data(), body.size());
  uint8_t code = 0;
  if (!reader.ReadU8(&code)) {
    return Malformed<QueryResult>("empty query reply");
  }
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Malformed<QueryResult>("unknown status code in reply");
  }
  const auto status = static_cast<StatusCode>(code);
  if (status != StatusCode::kOk) {
    uint16_t len = 0;
    std::string detail;
    if (!reader.ReadU16(&len) || !reader.ReadBytes(len, &detail)) {
      return Malformed<QueryResult>("truncated error detail in reply");
    }
    return Result<QueryResult>::Error(status, detail);
  }
  QueryResult value;
  uint8_t cache_hit = 0;
  uint16_t count = 0;
  if (!reader.ReadI64(&value.epoch) || !reader.ReadU8(&cache_hit) ||
      !reader.ReadU16(&count)) {
    return Malformed<QueryResult>("truncated query reply header");
  }
  // Each candidate is 12 bytes; reject counts the body cannot hold before
  // reserving, so a hostile count cannot balloon memory.
  if (reader.Remaining() != static_cast<size_t>(count) * 12) {
    return Malformed<QueryResult>("candidate count mismatches body size");
  }
  value.cache_hit = cache_hit != 0;
  value.candidates.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    ScoredCandidate candidate;
    if (!reader.ReadI64(&candidate.id) || !reader.ReadF32(&candidate.score)) {
      return Malformed<QueryResult>("truncated candidate list");
    }
    value.candidates.push_back(candidate);
  }
  return value;
}

std::vector<uint8_t> EncodeQueryBatch(const std::vector<Query>& queries) {
  // Encoders cannot fail; the size bounds are caller invariants (the
  // router chunks at RouterConfig::max_wire_batch <= kMaxWireBatch).
  RETIA_CHECK(!queries.empty());
  RETIA_CHECK(queries.size() <= kMaxWireBatch);
  std::vector<uint8_t> body;
  body.reserve(2 + queries.size() * 33);
  PutU16(static_cast<uint16_t>(queries.size()), &body);
  for (const Query& query : queries) {
    PutU8(static_cast<uint8_t>(query.kind), &body);
    PutI64(query.s, &body);
    PutI64(query.r_or_o, &body);
    PutI64(query.t, &body);
    PutI64(query.k, &body);
  }
  return body;
}

Result<std::vector<Query>> DecodeQueryBatch(const std::vector<uint8_t>& body) {
  using Out = std::vector<Query>;
  Reader reader(body.data(), body.size());
  uint16_t count = 0;
  if (!reader.ReadU16(&count)) {
    return Malformed<Out>("truncated query batch header");
  }
  if (count == 0) return Malformed<Out>("empty query batch");
  if (count > kMaxWireBatch) return Malformed<Out>("query batch too large");
  // Each query record is 33 bytes (u8 kind + four i64 fields); reject
  // counts the body cannot hold before reserving.
  if (reader.Remaining() != static_cast<size_t>(count) * 33) {
    return Malformed<Out>("query count mismatches body size");
  }
  Out queries;
  queries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    uint8_t kind = 0;
    Query query;
    if (!reader.ReadU8(&kind) || !reader.ReadI64(&query.s) ||
        !reader.ReadI64(&query.r_or_o) || !reader.ReadI64(&query.t) ||
        !reader.ReadI64(&query.k)) {
      return Malformed<Out>("truncated query batch record");
    }
    if (kind > static_cast<uint8_t>(QueryKind::kRelation)) {
      return Malformed<Out>("unknown query kind in batch");
    }
    query.kind = static_cast<QueryKind>(kind);
    queries.push_back(query);
  }
  return queries;
}

std::vector<uint8_t> EncodeResultBatch(
    const std::vector<Result<QueryResult>>& results) {
  RETIA_CHECK(!results.empty());
  RETIA_CHECK(results.size() <= kMaxWireBatch);
  std::vector<uint8_t> body;
  PutU16(static_cast<uint16_t>(results.size()), &body);
  for (const Result<QueryResult>& result : results) {
    const std::vector<uint8_t> reply = EncodeQueryReply(result);
    PutU32(static_cast<uint32_t>(reply.size()), &body);
    body.insert(body.end(), reply.begin(), reply.end());
  }
  return body;
}

Result<std::vector<Result<QueryResult>>> DecodeResultBatch(
    const std::vector<uint8_t>& body) {
  using Out = std::vector<Result<QueryResult>>;
  Reader reader(body.data(), body.size());
  uint16_t count = 0;
  if (!reader.ReadU16(&count)) {
    return Malformed<Out>("truncated result batch header");
  }
  if (count == 0) return Malformed<Out>("empty result batch");
  if (count > kMaxWireBatch) return Malformed<Out>("result batch too large");
  Out results;
  results.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!reader.ReadU32(&len)) {
      return Malformed<Out>("truncated result batch entry header");
    }
    if (len > reader.Remaining()) {
      return Malformed<Out>("result batch entry overruns body");
    }
    std::string slice;
    reader.ReadBytes(len, &slice);
    const std::vector<uint8_t> reply(slice.begin(), slice.end());
    // DecodeQueryReply returns the embedded Result verbatim; a malformed
    // entry body becomes a kProtocolError entry, degrading only itself.
    results.push_back(DecodeQueryReply(reply));
  }
  if (!reader.AtEnd()) {
    return Malformed<Out>("trailing bytes after result batch");
  }
  return results;
}

std::vector<uint8_t> EncodeString(const std::string& value) {
  std::vector<uint8_t> body;
  PutU32(static_cast<uint32_t>(value.size()), &body);
  body.insert(body.end(), value.begin(), value.end());
  return body;
}

Result<std::string> DecodeString(const std::vector<uint8_t>& body) {
  Reader reader(body.data(), body.size());
  uint32_t len = 0;
  std::string value;
  if (!reader.ReadU32(&len) || !reader.ReadBytes(len, &value)) {
    return Malformed<std::string>("truncated string body");
  }
  if (!reader.AtEnd()) return Malformed<std::string>("trailing bytes");
  return value;
}

std::vector<uint8_t> EncodeSwap(const std::string& prefix) {
  std::vector<uint8_t> body;
  const auto len =
      static_cast<uint16_t>(std::min<size_t>(prefix.size(), 0xffff));
  PutU16(len, &body);
  body.insert(body.end(), prefix.begin(), prefix.begin() + len);
  return body;
}

Result<std::string> DecodeSwap(const std::vector<uint8_t>& body) {
  Reader reader(body.data(), body.size());
  uint16_t len = 0;
  std::string prefix;
  if (!reader.ReadU16(&len) || !reader.ReadBytes(len, &prefix)) {
    return Malformed<std::string>("truncated swap body");
  }
  if (!reader.AtEnd()) return Malformed<std::string>("trailing bytes");
  return prefix;
}

std::vector<uint8_t> EncodeSwapReply(StatusCode status, int64_t epoch,
                                     const std::string& detail) {
  std::vector<uint8_t> body;
  PutU8(static_cast<uint8_t>(status), &body);
  PutI64(epoch, &body);
  const auto len =
      static_cast<uint16_t>(std::min<size_t>(detail.size(), 0xffff));
  PutU16(len, &body);
  body.insert(body.end(), detail.begin(), detail.begin() + len);
  return body;
}

Result<int64_t> DecodeSwapReply(const std::vector<uint8_t>& body) {
  Reader reader(body.data(), body.size());
  uint8_t code = 0;
  int64_t epoch = 0;
  uint16_t len = 0;
  std::string detail;
  if (!reader.ReadU8(&code) || !reader.ReadI64(&epoch) ||
      !reader.ReadU16(&len) || !reader.ReadBytes(len, &detail)) {
    return Malformed<int64_t>("truncated swap reply");
  }
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Malformed<int64_t>("unknown status code in swap reply");
  }
  const auto status = static_cast<StatusCode>(code);
  if (status != StatusCode::kOk) return Result<int64_t>::Error(status, detail);
  return epoch;
}

std::vector<uint8_t> EncodePong(int64_t epoch) {
  std::vector<uint8_t> body;
  PutI64(epoch, &body);
  return body;
}

Result<int64_t> DecodePong(const std::vector<uint8_t>& body) {
  Reader reader(body.data(), body.size());
  int64_t epoch = 0;
  if (!reader.ReadI64(&epoch) || !reader.AtEnd()) {
    return Malformed<int64_t>("malformed pong body");
  }
  return epoch;
}

// ---- Blocking socket IO ----------------------------------------------------

Result<bool> WriteFrame(int fd, MsgType type,
                        const std::vector<uint8_t>& body) {
  std::vector<uint8_t> frame;
  frame.reserve(6 + body.size());
  AppendFrame(type, body, &frame);
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must yield EPIPE (and a
    // kShardUnavailable) — not a process-killing SIGPIPE.
    const ssize_t n =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Result<bool>::Error(
          StatusCode::kShardUnavailable,
          std::string("write failed: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

Result<Frame> ReadFrame(int fd) {
  std::vector<uint8_t> buffer;
  Frame frame;
  while (true) {
    size_t consumed = 0;
    std::string detail;
    switch (DecodeFrame(buffer.data(), buffer.size(), &frame, &consumed,
                        &detail)) {
      case DecodeStatus::kFrame:
        return frame;
      case DecodeStatus::kError:
        return Result<Frame>::Error(StatusCode::kProtocolError, detail);
      case DecodeStatus::kNeedMore:
        break;
    }
    uint8_t chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0) {
      return Result<Frame>::Error(StatusCode::kShardUnavailable,
                                  "peer closed connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK here means SO_RCVTIMEO fired: the peer is alive
      // but not answering within the deadline — same verdict as dead.
      return Result<Frame>::Error(
          StatusCode::kShardUnavailable,
          std::string("read failed: ") + std::strerror(errno));
    }
    buffer.insert(buffer.end(), chunk, chunk + n);
  }
}

}  // namespace retia::serve::wire
