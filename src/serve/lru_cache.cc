#include "serve/lru_cache.h"

#include "util/check.h"

namespace retia::serve {

PredictionCache::PredictionCache(int64_t capacity, int64_t num_shards) {
  RETIA_CHECK(num_shards > 0);
  RETIA_CHECK_LE(num_shards, capacity);
  shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int64_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PredictionCache::Shard& PredictionCache::ShardFor(const CacheKey& key) {
  return *shards_[CacheKeyHash{}(key) % shards_.size()];
}

bool PredictionCache::Get(const CacheKey& key,
                          std::vector<ScoredCandidate>* out, int64_t* epoch) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  if (out != nullptr) *out = it->second->value;
  if (epoch != nullptr) *epoch = it->second->epoch;
  return true;
}

void PredictionCache::Put(const CacheKey& key,
                          std::vector<ScoredCandidate> value, int64_t epoch,
                          uint64_t generation) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Generation fence, checked under the shard lock: either this Put's
  // insert happens before Clear() reaches the shard (and is dropped with
  // it), or the shard lock ordering guarantees the bumped generation is
  // visible here and the stale value is rejected. Both ways, no value
  // computed before a Clear survives it.
  if (generation != kAnyGeneration &&
      generation != generation_.load(std::memory_order_acquire)) {
    return;
  }
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    it->second->epoch = epoch;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return;
  }
  if (static_cast<int64_t>(shard.order.size()) >= shard_capacity_) {
    shard.index.erase(shard.order.back().key);
    shard.order.pop_back();
    ++shard.evictions;
  }
  shard.order.push_front(Entry{key, std::move(value), epoch});
  shard.index[key] = shard.order.begin();
}

CacheCounters PredictionCache::Counters() const {
  CacheCounters total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.entries += static_cast<int64_t>(shard->order.size());
  }
  return total;
}

void PredictionCache::Clear() {
  // Bump first: a fenced Put that sampled the old generation is rejected
  // from here on, so the per-shard sweep below cannot be undone by an
  // in-flight decode landing after its shard was swept.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->order.clear();
    shard->index.clear();
  }
}

}  // namespace retia::serve
