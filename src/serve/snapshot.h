#ifndef RETIA_SERVE_SNAPSHOT_H_
#define RETIA_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "ckpt/result.h"
#include "core/retia.h"

namespace retia::serve {

// A model snapshot is everything a serving process needs to rebuild a
// trained RetiaModel without the training program, stored as one
// crash-safe RETIACKPT2 artifact at <prefix>.ckpt: the full RetiaConfig
// and dataset name (meta section), the parameters, and — when
// SetEntityTypes() installed one — the static-constraint entity-type
// table as its own versioned section, so static-constraint models
// round-trip instead of failing at load. docs/CHECKPOINTS.md specifies
// the format.
//
// Both calls report failures as ckpt::Result instead of aborting, so a
// serving process can refuse a bad snapshot and keep running.

// Atomically writes <prefix>.ckpt (tmp + fsync + rename; a crash leaves
// either the old snapshot or the new one, never a torn file).
ckpt::Result SaveModelSnapshot(const core::RetiaModel& model,
                               const std::string& prefix,
                               const std::string& dataset_name = "");

// Quantized snapshot (docs/QUANTIZATION.md): same artifact shape, but the
// parameters ride the model.params.q8 / model.params.f16 dtype sections
// (~3.5x smaller files). LoadModelSnapshot reads both kinds transparently
// — quantized payloads are dequantized into the f32 model at load, so the
// serving path downstream is identical. Serving/eval only: a quantized
// snapshot cannot seed further training.
ckpt::Result SaveQuantizedModelSnapshot(const core::RetiaModel& model,
                                        const std::string& prefix,
                                        const std::string& dataset_name = "");

// Rebuilds the model from <prefix>.ckpt. Legacy v1 snapshot pairs
// (<prefix>.ckpt in RETIACKPT1 format + <prefix>.meta sidecar) are
// detected and loaded transparently. On success `*model` holds the model
// in eval mode (SetTraining(false)), ready for frozen scoring, and
// `dataset_name` (when non-null) receives the name stored at save time.
// On failure `*model` is untouched.
[[nodiscard]] ckpt::Result LoadModelSnapshot(
    const std::string& prefix, std::unique_ptr<core::RetiaModel>* model,
    std::string* dataset_name = nullptr);

}  // namespace retia::serve

#endif  // RETIA_SERVE_SNAPSHOT_H_
