#ifndef RETIA_SERVE_SNAPSHOT_H_
#define RETIA_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "core/retia.h"

namespace retia::serve {

// A model snapshot is the pair of files a serving process needs to rebuild
// a trained RetiaModel without the training program:
//   <prefix>.ckpt  binary parameters (nn::SaveCheckpoint format)
//   <prefix>.meta  nn::Sidecar describing the full RetiaConfig plus the
//                  dataset vocabulary sizes and name
//
// Limitation: the optional static-constraint entity-type table installed by
// SetEntityTypes() is not captured; loading such a snapshot CHECK-fails on
// the parameter-count mismatch rather than serving silently wrong results.
void SaveModelSnapshot(const core::RetiaModel& model,
                       const std::string& prefix,
                       const std::string& dataset_name = "");

// Rebuilds the model from <prefix>.meta and loads <prefix>.ckpt into it.
// The returned model is in eval mode (SetTraining(false)), ready for
// frozen scoring. `dataset_name`, when non-null, receives the name stored
// at save time.
std::unique_ptr<core::RetiaModel> LoadModelSnapshot(
    const std::string& prefix, std::string* dataset_name = nullptr);

}  // namespace retia::serve

#endif  // RETIA_SERVE_SNAPSHOT_H_
