#include "serve/replica.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/obs.h"
#include "util/check.h"

namespace retia::serve {

ReplicaServer::ReplicaServer(ServeEngine* engine, SnapshotLoader loader,
                             std::string socket_path)
    : engine_(engine),
      loader_(std::move(loader)),
      socket_path_(std::move(socket_path)) {
  RETIA_CHECK(engine_ != nullptr);
}

ReplicaServer::~ReplicaServer() { Stop(); }

Result<bool> ReplicaServer::Start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Result<bool>::Error(StatusCode::kInternal,
                               std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Result<bool>::Error(StatusCode::kInternal, "socket path too long");
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ::unlink(socket_path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, /*backlog=*/64) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Result<bool>::Error(StatusCode::kInternal,
                               "bind/listen " + socket_path_ + ": " + error);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void ReplicaServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by Stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void ReplicaServer::HandleConnection(int fd) {
  while (true) {
    Result<wire::Frame> frame = wire::ReadFrame(fd);
    if (!frame.ok()) {
      if (frame.code() == StatusCode::kProtocolError) {
        RETIA_OBS_COUNTER_ADD("serve.replica.protocol_errors", 1);
        // Framing is lost — tell the peer why, then drop the connection.
        (void)wire::WriteFrame(
            fd, wire::MsgType::kQueryReply,
            wire::EncodeQueryReply(Result<QueryResult>::Error(
                StatusCode::kProtocolError, frame.detail())));
      }
      break;  // EOF / io error / unframable stream
    }
    RETIA_OBS_COUNTER_ADD("serve.replica.frames", 1);
    if (!HandleFrame(fd, frame.value())) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  // The fd itself is closed by Stop() (which owns conn_fds_); closing it
  // here as well would race a concurrent Stop() shutting the same fd.
}

bool ReplicaServer::HandleFrame(int fd, const wire::Frame& frame) {
  switch (frame.type) {
    case wire::MsgType::kQuery: {
      Result<Query> query = wire::DecodeQuery(frame.body);
      Result<QueryResult> reply =
          query.ok() ? engine_->Submit(query.value())
                     : Result<QueryResult>::Error(query.code(), query.detail());
      if (!query.ok()) {
        RETIA_OBS_COUNTER_ADD("serve.replica.protocol_errors", 1);
      }
      return wire::WriteFrame(fd, wire::MsgType::kQueryReply,
                              wire::EncodeQueryReply(reply))
          .ok();
    }
    case wire::MsgType::kQueryBatch: {
      Result<std::vector<Query>> queries = wire::DecodeQueryBatch(frame.body);
      if (!queries.ok()) {
        // Frame-level damage (bad count, truncated record): the batch as a
        // whole is unanswerable, so reply with one kQueryReply error —
        // the router surfaces an unexpected-reply-type protocol error to
        // every query of the batch. Per-query failures never land here;
        // they ride inside the ResultBatch entries below.
        RETIA_OBS_COUNTER_ADD("serve.replica.protocol_errors", 1);
        return wire::WriteFrame(fd, wire::MsgType::kQueryReply,
                                wire::EncodeQueryReply(
                                    Result<QueryResult>::Error(
                                        queries.code(), queries.detail())))
            .ok();
      }
      const std::vector<Result<QueryResult>> replies =
          engine_->SubmitBatch(queries.value());
      return wire::WriteFrame(fd, wire::MsgType::kResultBatch,
                              wire::EncodeResultBatch(replies))
          .ok();
    }
    case wire::MsgType::kStats:
      return wire::WriteFrame(fd, wire::MsgType::kStatsReply,
                              wire::EncodeString(engine_->Stats().ToJson()))
          .ok();
    case wire::MsgType::kSwap: {
      Result<std::string> prefix = wire::DecodeSwap(frame.body);
      std::vector<uint8_t> body;
      if (!prefix.ok()) {
        RETIA_OBS_COUNTER_ADD("serve.replica.protocol_errors", 1);
        body = wire::EncodeSwapReply(prefix.code(), -1, prefix.detail());
      } else if (!loader_) {
        body = wire::EncodeSwapReply(StatusCode::kInternal, -1,
                                     "replica has no snapshot loader");
      } else {
        std::lock_guard<std::mutex> lock(swap_mu_);
        Result<EngineSnapshot> snapshot = loader_(prefix.value());
        if (!snapshot.ok()) {
          body = wire::EncodeSwapReply(snapshot.code(), -1, snapshot.detail());
        } else {
          engine_->SwapSnapshot(snapshot.take());
          body = wire::EncodeSwapReply(StatusCode::kOk,
                                       engine_->snapshot_swaps(), "");
        }
      }
      return wire::WriteFrame(fd, wire::MsgType::kSwapReply, body).ok();
    }
    case wire::MsgType::kPing:
      return wire::WriteFrame(fd, wire::MsgType::kPong,
                              wire::EncodePong(engine_->snapshot_swaps()))
          .ok();
    case wire::MsgType::kShutdown: {
      (void)wire::WriteFrame(fd, wire::MsgType::kShutdownReply, {});
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
      shutdown_cv_.notify_all();
      return false;
    }
    default:
      // A reply type arriving at the server is a peer bug; answer with a
      // protocol error and keep the connection (framing is intact).
      RETIA_OBS_COUNTER_ADD("serve.replica.protocol_errors", 1);
      return wire::WriteFrame(
                 fd, wire::MsgType::kQueryReply,
                 wire::EncodeQueryReply(Result<QueryResult>::Error(
                     StatusCode::kProtocolError,
                     "unexpected message type at server")))
          .ok();
  }
}

void ReplicaServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock,
                    [this] { return shutdown_requested_ || stopping_; });
}

void ReplicaServer::Stop() {
  std::vector<std::thread> threads;
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
    threads.swap(conn_threads_);
    fds.swap(conn_fds_);
  }
  if (listen_fd_ >= 0) {
    // shutdown() (not close()) is what wakes a thread blocked in accept()
    // on Linux; the fd itself is closed only after the accept thread has
    // joined, so it cannot be reused under a still-running accept call.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& thread : threads) thread.join();
  for (const int fd : fds) ::close(fd);
  ::unlink(socket_path_.c_str());
}

}  // namespace retia::serve
