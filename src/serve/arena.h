#ifndef RETIA_SERVE_ARENA_H_
#define RETIA_SERVE_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "obs/obs.h"

namespace retia::serve {

// Bump allocator for per-worker decode scratch (ServeEngine::ProcessBatch
// keeps one as a thread_local). Alloc() hands out pointers from the
// current block; when a request does not fit, a NEW block is appended and
// the old ones are kept alive, so pointers handed out earlier in the same
// Reset cycle stay valid. Reset() recycles the memory for the next batch:
// it consolidates everything into one block of the high-water capacity, so
// after a warm-up batch has sized the arena, the decode hot path performs
// no allocations for scratch — observable as the `serve.arena.growths`
// counter going quiet while `serve.arena.bytes` (the retained capacity
// gauge) holds steady (docs/OBSERVABILITY.md).
//
// Not thread-safe; one arena belongs to one worker thread.
class ScratchArena {
 public:
  // Returns uninitialized storage for n Ts (aligned for any T up to
  // max_align_t). Only trivially-destructible Ts — Reset never runs
  // destructors. Valid until the next Reset().
  template <typename T>
  T* Alloc(int64_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "ScratchArena never runs destructors");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    const size_t bytes = Align(static_cast<size_t>(n) * sizeof(T));
    if (blocks_.empty() || used_ + bytes > blocks_.back().size()) Grow(bytes);
    T* p = reinterpret_cast<T*>(blocks_.back().data() + used_);
    used_ += bytes;
    return p;
  }

  // Recycles all storage. Keeps (or consolidates to) a single block of the
  // total capacity seen so far and publishes it on the
  // `serve.arena.bytes` gauge.
  void Reset() {
    if (blocks_.size() > 1) {
      size_t total = 0;
      for (const std::vector<uint8_t>& block : blocks_) total += block.size();
      blocks_.clear();
      blocks_.emplace_back(total);
    }
    used_ = 0;
    RETIA_OBS_GAUGE_SET("serve.arena.bytes", static_cast<int64_t>(capacity()));
  }

  size_t capacity() const {
    size_t total = 0;
    for (const std::vector<uint8_t>& block : blocks_) total += block.size();
    return total;
  }

 private:
  static size_t Align(size_t bytes) {
    const size_t a = alignof(std::max_align_t);
    return (bytes + a - 1) / a * a;
  }

  void Grow(size_t bytes) {
    // Doubling growth with a floor keeps the number of warm-up growths
    // logarithmic in the steady-state working set.
    const size_t block = std::max({bytes, capacity(), size_t{1} << 10});
    blocks_.emplace_back(block);
    used_ = 0;
    RETIA_OBS_COUNTER_ADD("serve.arena.growths", 1);
  }

  std::vector<std::vector<uint8_t>> blocks_;
  size_t used_ = 0;  // bytes consumed from blocks_.back()
};

}  // namespace retia::serve

#endif  // RETIA_SERVE_ARENA_H_
