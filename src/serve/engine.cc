#include "serve/engine.h"

#include <sstream>
#include <utility>

#include "obs/obs.h"
#include "serve/arena.h"
#include "simd/simd.h"
#include "tensor/tensor.h"
#include "util/check.h"

namespace retia::serve {

std::shared_ptr<const ServeEngine::FrozenStateStore::Entry>
ServeEngine::FrozenStateStore::EntryFor(int64_t t) {
  std::shared_ptr<Entry> entry;
  bool creator = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = states.try_emplace(t);
    if (inserted) it->second = std::make_shared<Entry>();
    creator = inserted;
    entry = it->second;
  }
  if (creator) {
    // The creator evolves OUTSIDE the store lock: batches for other
    // serving timestamps insert and evolve their own entries concurrently
    // (GraphCache and the inter-op TaskGraph inside Evolve are
    // concurrent-safe; the frozen model is read-only in eval mode).
    std::shared_ptr<const std::vector<core::EvolutionModel::StepState>>
        evolved;
    std::shared_ptr<const std::vector<quant::QuantizedRows>> qcands;
    std::exception_ptr error;
    try {
      tensor::NoGradGuard guard;
      evolved = std::make_shared<
          const std::vector<core::EvolutionModel::StepState>>(model->Evolve(
          *graph_cache, graph_cache->HistoryBefore(t, model->history_len())));
      if (quantize) {
        // Quantize each evolved state's entity candidates once, shared by
        // every batch that decodes against this timestamp.
        auto q = std::make_shared<std::vector<quant::QuantizedRows>>();
        q->reserve(evolved->size());
        for (const auto& st : *evolved) {
          q->push_back(quant::QuantizeTensorRows(st.entities));
        }
        qcands = std::move(q);
      }
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      entry->states = std::move(evolved);
      entry->qcands = std::move(qcands);
      entry->error = error;
      entry->ready = true;
    }
    entry->cv.notify_all();
    if (error != nullptr) std::rethrow_exception(error);
    return entry;
  }
  std::unique_lock<std::mutex> lock(entry->mu);
  entry->cv.wait(lock, [&entry] { return entry->ready; });
  if (entry->error != nullptr) std::rethrow_exception(entry->error);
  return entry;
}

ServeEngine::ServeEngine(eval::ObjectScoreFn object_fn,
                         eval::RelationScoreFn relation_fn,
                         const ServeConfig& config)
    : config_(config),
      object_fn_(std::move(object_fn)),
      relation_fn_(std::move(relation_fn)),
      stats_(config.max_batch) {
  RETIA_CHECK(config_.num_threads > 0);
  RETIA_CHECK(config_.max_batch > 0);
  RETIA_CHECK(config_.max_k > 0);
  if (config_.enable_cache) {
    cache_ = std::make_unique<PredictionCache>(config_.cache_capacity,
                                               config_.cache_shards);
  }
  pool_ = config_.pool != nullptr ? config_.pool : par::DefaultPool();
}

ServeEngine::ServeEngine(core::RetiaModel* model,
                         graph::GraphCache* graph_cache,
                         const ServeConfig& config)
    : ServeEngine(
          [model, graph_cache] {
            RETIA_CHECK(model != nullptr);
            RETIA_CHECK(graph_cache != nullptr);
            model->SetTraining(false);
            auto store = std::make_shared<FrozenStateStore>();
            store->model = model;
            store->graph_cache = graph_cache;
            return store;
          }(),
          config) {}

ServeEngine::ServeEngine(EngineSnapshot snapshot, const ServeConfig& config)
    : ServeEngine(MakeStore(std::move(snapshot)), config) {}

ServeEngine::ServeEngine(std::shared_ptr<FrozenStateStore> store,
                         const ServeConfig& config)
    : ServeEngine(eval::ObjectScoreFn(), eval::RelationScoreFn(), config) {
  store->quantize =
      config_.ResolvesQuantized(store->model->config().num_entities);
  state_store_ = std::move(store);
}

std::shared_ptr<ServeEngine::FrozenStateStore> ServeEngine::MakeStore(
    EngineSnapshot snapshot) {
  RETIA_CHECK(snapshot.model != nullptr);
  RETIA_CHECK(snapshot.graph_cache != nullptr);
  snapshot.model->SetTraining(false);
  auto store = std::make_shared<FrozenStateStore>();
  store->model = snapshot.model.get();
  store->graph_cache = snapshot.graph_cache.get();
  store->owned_model = std::move(snapshot.model);
  store->owned_dataset = std::move(snapshot.dataset);
  store->owned_cache = std::move(snapshot.graph_cache);
  return store;
}

std::shared_ptr<ServeEngine::FrozenStateStore> ServeEngine::PinStore() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return state_store_;
}

void ServeEngine::SwapSnapshot(EngineSnapshot snapshot) {
  RETIA_CHECK_MSG(PinStore() != nullptr,
                  "SwapSnapshot on a generic (score-fn) engine");
  std::shared_ptr<FrozenStateStore> store = MakeStore(std::move(snapshot));
  store->quantize =
      config_.ResolvesQuantized(store->model->config().num_entities);
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    // The old store is not freed here: any in-flight batch still holds its
    // pin and finishes against the old snapshot (old-or-new, never torn).
    store->epoch = snapshot_swaps_.load(std::memory_order_relaxed) + 1;
    state_store_.swap(store);
  }
  // Cached predictions were decoded by the previous snapshot; drop them so
  // a key is never answered by a mix of epochs. Clear() also bumps the
  // cache generation, and ProcessBatch fences its Puts on the generation
  // it sampled before pinning the store — so an in-flight decode racing
  // this swap cannot re-insert a pre-swap prediction afterwards.
  if (cache_ != nullptr) cache_->Clear();
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);
  RETIA_OBS_COUNTER_ADD("serve.snapshot_swaps", 1);
}

int64_t ServeEngine::snapshot_swaps() const {
  return snapshot_swaps_.load(std::memory_order_relaxed);
}

ServeEngine::~ServeEngine() {
  // Every queued request has a tick scheduled for it (SubmitBatch pairs
  // each enqueue critical-section with one pool_->Submit), so waiting for
  // inflight_ticks_ == 0 also guarantees the queue has been drained and
  // no pool task still references this engine.
  std::unique_lock<std::mutex> lock(queue_mu_);
  stopping_ = true;
  drained_cv_.wait(lock,
                   [this] { return inflight_ticks_ == 0 && queue_.empty(); });
}

TopKResult ServeEngine::TopK(int64_t s, int64_t r, int64_t t, int64_t k) {
  std::vector<Result<QueryResult>> results =
      SubmitBatch({Query::Entity(s, r, t, k)});
  Result<QueryResult>& result = results.front();
  RETIA_CHECK_MSG(result.ok(), result.ToString());
  return {std::move(result.value().candidates), result.value().cache_hit};
}

TopKResult ServeEngine::TopKRelation(int64_t s, int64_t o, int64_t t,
                                     int64_t k) {
  std::vector<Result<QueryResult>> results =
      SubmitBatch({Query::Relation(s, o, t, k)});
  Result<QueryResult>& result = results.front();
  RETIA_CHECK_MSG(result.ok(), result.ToString());
  return {std::move(result.value().candidates), result.value().cache_hit};
}

void ServeEngine::Warmup(int64_t t) {
  if (std::shared_ptr<FrozenStateStore> store = PinStore(); store != nullptr) {
    store->StatesFor(t);
  }
}

ServeStats ServeEngine::Stats() const {
  ServeStats stats = stats_.Snapshot(cache_ != nullptr ? cache_->Counters()
                                                       : CacheCounters{});
  stats.snapshot_swaps = snapshot_swaps();
  return stats;
}

void ServeEngine::ResetStats() { stats_.Reset(); }

StatusCode ServeEngine::Validate(const Query& query,
                                 const FrozenStateStore* store,
                                 std::string* detail) const {
  std::ostringstream out;
  if (query.k <= 0 || query.k > config_.max_k) {
    out << "k=" << query.k << " outside (0, " << config_.max_k << "]";
    *detail = out.str();
    return StatusCode::kInvalidArgument;
  }
  if (query.t < 0) {
    out << "t=" << query.t << " is negative";
    *detail = out.str();
    return StatusCode::kBadTimestamp;
  }
  // Id validation needs a vocabulary; generic score-fn engines have none
  // and pass ids straight through to the caller-supplied scorers.
  if (store != nullptr) {
    const core::RetiaConfig& mc = store->model->config();
    if (query.s < 0 || query.s >= mc.num_entities) {
      out << "subject " << query.s << " outside [0, " << mc.num_entities
          << ")";
      *detail = out.str();
      return StatusCode::kUnknownEntity;
    }
    if (query.kind == QueryKind::kEntity) {
      if (query.r_or_o < 0 || query.r_or_o >= 2 * mc.num_relations) {
        out << "relation " << query.r_or_o << " outside [0, "
            << 2 * mc.num_relations << ") (inverse directions included)";
        *detail = out.str();
        return StatusCode::kUnknownRelation;
      }
    } else if (query.r_or_o < 0 || query.r_or_o >= mc.num_entities) {
      out << "object " << query.r_or_o << " outside [0, " << mc.num_entities
          << ")";
      *detail = out.str();
      return StatusCode::kUnknownEntity;
    }
  }
  return StatusCode::kOk;
}

std::optional<Result<QueryResult>> ServeEngine::AnswerWithoutDecode(
    const Query& query, const FrozenStateStore* store) {
  std::string detail;
  if (StatusCode code = Validate(query, store, &detail);
      code != StatusCode::kOk) {
    return Result<QueryResult>::Error(code, detail);
  }
  if (cache_ != nullptr) {
    const CacheKey key{query.t, query.s, query.r_or_o, query.kind};
    QueryResult cached;
    if (cache_->Get(key, &cached.candidates, &cached.epoch)) {
      RETIA_OBS_COUNTER_ADD("serve.cache.hits", 1);
      cached.cache_hit = true;
      if (static_cast<int64_t>(cached.candidates.size()) > query.k) {
        cached.candidates.resize(query.k);
      }
      return Result<QueryResult>(std::move(cached));
    }
    RETIA_OBS_COUNTER_ADD("serve.cache.misses", 1);
  }
  return std::nullopt;
}

Result<QueryResult> ServeEngine::Submit(const Query& query) {
  std::vector<Result<QueryResult>> results = SubmitBatch({query});
  return std::move(results.front());
}

std::vector<Result<QueryResult>> ServeEngine::SubmitBatch(
    const std::vector<Query>& queries) {
  RETIA_OBS_COUNTER_ADD("serve.requests",
                        static_cast<int64_t>(queries.size()));
  util::Timer timer;
  const std::shared_ptr<FrozenStateStore> store = PinStore();
  // Answers by input slot; nullopt marks a query still waiting on the
  // decode queue.
  std::vector<std::optional<Result<QueryResult>>> answers(queries.size());
  struct Pending {
    size_t slot;
    std::future<Result<QueryResult>> future;
  };
  std::vector<Pending> pending;
  std::vector<Request> misses;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (std::optional<Result<QueryResult>> immediate =
            AnswerWithoutDecode(queries[i], store.get())) {
      // Cache hits record an end-to-end sample like Submit always did;
      // validation errors never reached the recorder and still don't.
      if (immediate->ok()) stats_.RecordRequest(timer.Millis());
      answers[i] = std::move(immediate);
      continue;
    }
    Request request;
    request.key = CacheKey{queries[i].t, queries[i].s, queries[i].r_or_o,
                           queries[i].kind};
    request.k = queries[i].k;
    request.timer = timer;
    pending.push_back({i, request.promise.get_future()});
    misses.push_back(std::move(request));
  }
  if (!misses.empty()) {
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (!stopping_) {
        for (Request& request : misses) queue_.push_back(std::move(request));
        // ONE tick for the whole batch: the enqueue is a single critical
        // section, and the tick's drainer sweeps every compatible
        // (timestamp, kind) group into fused decodes.
        ++inflight_ticks_;
        enqueued = true;
      }
    }
    if (enqueued) {
      // Either the tick becomes an active drainer, or an already-active
      // drainer's queue sweep answers the requests and the tick returns
      // immediately. On a pool with no workers the tick runs inline here,
      // before the future.get()s, so the engine never deadlocks.
      pool_->Submit([this] { DrainTask(); });
      for (Pending& p : pending) {
        answers[p.slot] = p.future.get();
        // The completion-accounting site: every answered request — cache
        // hit (above), decoded, or failed — records exactly one
        // end-to-end latency sample.
        stats_.RecordRequest(timer.Millis());
      }
    } else {
      for (Pending& p : pending) {
        answers[p.slot] = Result<QueryResult>::Error(
            StatusCode::kShuttingDown,
            "query submitted to a stopping ServeEngine");
      }
    }
  }
  std::vector<Result<QueryResult>> results;
  results.reserve(answers.size());
  for (std::optional<Result<QueryResult>>& answer : answers) {
    results.push_back(std::move(*answer));
  }
  return results;
}

void ServeEngine::DrainTask() {
  // Grad mode is thread-local (see tensor.h): each tick installs its own
  // guard so concurrent decodes never record autograd edges against the
  // shared frozen parameters.
  tensor::NoGradGuard guard;
  std::unique_lock<std::mutex> lock(queue_mu_);
  if (active_ticks_ < config_.num_threads) {
    RETIA_OBS_TIMED_SCOPE("serve.tick.us");
    ++active_ticks_;
    while (!queue_.empty()) {
      // Micro-batch: everything queued for the front request's
      // (timestamp, kind), up to max_batch. Queries for other timestamps
      // or kinds stay queued for a later sweep / another tick.
      std::vector<Request> batch;
      const CacheKey front = queue_.front().key;
      for (auto it = queue_.begin();
           it != queue_.end() &&
           static_cast<int64_t>(batch.size()) < config_.max_batch;) {
        if (it->key.t == front.t && it->key.kind == front.kind) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      lock.unlock();
      ProcessBatch(std::move(batch));
      lock.lock();
    }
    --active_ticks_;
  }
  --inflight_ticks_;
  if (inflight_ticks_ == 0 && queue_.empty()) drained_cv_.notify_all();
}

void ServeEngine::ProcessBatch(std::vector<Request> batch) {
  RETIA_OBS_TRACE_SPAN("serve.batch");
  const int64_t t = batch.front().key.t;
  const QueryKind kind = batch.front().key.kind;
  std::vector<std::pair<int64_t, int64_t>> queries;
  queries.reserve(batch.size());
  for (const Request& request : batch) {
    queries.emplace_back(request.key.a, request.key.b);
    // Each request's timer started at submission, so at this point it has
    // measured exactly the time spent queued. The recorder owns the
    // queue-wait accounting (sample + obs histogram) for engine and
    // router alike — no second call site.
    stats_.RecordQueueWait(request.timer.Millis());
  }
  util::Timer compute_timer;
  // Sample the cache generation *before* pinning the snapshot: if a swap
  // (Clear) lands anywhere after this point, the fenced Puts below become
  // no-ops instead of re-inserting predictions from the replaced snapshot.
  const uint64_t cache_gen = cache_ != nullptr ? cache_->generation() : 0;
  // Pin the snapshot epoch for the whole batched decode: a concurrent
  // SwapSnapshot cannot free the model or states under this batch, and
  // every row of the batch is answered by one consistent snapshot.
  const std::shared_ptr<FrozenStateStore> store = PinStore();
  tensor::Tensor scores;
  try {
    if (store != nullptr) {
      const std::shared_ptr<const FrozenStateStore::Entry> entry =
          store->EntryFor(t);
      if (kind == QueryKind::kEntity) {
        // Relation decodes stay f32: the M-row relation candidate table is
        // far below the quantization floor (see ServeConfig).
        scores =
            entry->qcands != nullptr
                ? store->model->ScoreObjectsFrozenQuantized(
                      *entry->states, *entry->qcands, queries)
                : store->model->ScoreObjectsFrozen(*entry->states, queries);
      } else {
        scores = store->model->ScoreRelationsFrozen(*entry->states, queries);
      }
    } else {
      scores = kind == QueryKind::kEntity ? object_fn_(t, queries)
                                          : relation_fn_(t, queries);
    }
    RETIA_CHECK_EQ(scores.Dim(0), static_cast<int64_t>(batch.size()));
  } catch (const std::exception& e) {
    // A throwing decode (a scorer raised, or history evolution failed)
    // fails this batch's requests with a reported error instead of
    // unwinding through the pool task and aborting the process.
    for (Request& request : batch) {
      request.promise.set_value(Result<QueryResult>::Error(
          StatusCode::kInternal, std::string("decode failed: ") + e.what()));
    }
    return;
  } catch (...) {
    for (Request& request : batch) {
      request.promise.set_value(Result<QueryResult>::Error(
          StatusCode::kInternal, "decode failed: non-standard exception"));
    }
    return;
  }
  const int64_t n = scores.Dim(1);
  stats_.RecordCompute(compute_timer.Millis());
  RETIA_OBS_HIST_RECORD("serve.batch_size",
                        static_cast<int64_t>(batch.size()));
  stats_.RecordBatch(static_cast<int64_t>(batch.size()));
  const int64_t epoch = store != nullptr ? store->epoch : 0;
  // Per-worker scratch for the selection indices: the partial top-k
  // kernel replaces the historical full-sort (same unique order — see
  // simd::KernelTable::topk_select_f32), and the arena makes the scratch
  // allocation-free once a warm-up batch has sized it (the caller-visible
  // candidate vectors are the only remaining allocations).
  static thread_local ScratchArena arena;
  arena.Reset();
  int64_t* topk_idx = arena.Alloc<int64_t>(config_.max_k);
  for (size_t i = 0; i < batch.size(); ++i) {
    const float* row = scores.Data() + static_cast<int64_t>(i) * n;
    const int64_t took = simd::TopKSelectF32(row, n, config_.max_k, topk_idx);
    std::vector<ScoredCandidate> ranked;
    ranked.reserve(took);
    for (int64_t j = 0; j < took; ++j) {
      ranked.push_back({topk_idx[j], row[topk_idx[j]]});
    }
    if (cache_ != nullptr) cache_->Put(batch[i].key, ranked, epoch, cache_gen);
    if (static_cast<int64_t>(ranked.size()) > batch[i].k) {
      ranked.resize(batch[i].k);
    }
    QueryResult result;
    result.candidates = std::move(ranked);
    result.cache_hit = false;
    result.epoch = epoch;
    batch[i].promise.set_value(std::move(result));
  }
}

}  // namespace retia::serve
