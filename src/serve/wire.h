#ifndef RETIA_SERVE_WIRE_H_
#define RETIA_SERVE_WIRE_H_

// Versioned length-prefixed binary wire protocol of the serving tier
// (docs/SERVING_TOPOLOGY.md). One frame on the wire is
//
//   [u32 payload_len (LE)] [u8 version] [u8 type] [body ...]
//
// where payload_len counts the version byte, the type byte, and the body
// (so payload_len >= 2), and is capped at kMaxFrameBytes. All integers
// are little-endian fixed-width; floats are IEEE-754 bit patterns. The
// unit serialized for a query frame is exactly serve::Query, and a reply
// frame carries serve::Result<QueryResult> — the typed API and the wire
// speak the same structs.
//
// Every decoder is total: malformed, truncated, wrong-version, or
// oversized bytes come back as StatusCode::kProtocolError with a detail
// string, never a CHECK failure — a socket peer cannot crash a serving
// process (serve_router_test fuzzes this). Encoders cannot fail.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/query.h"

namespace retia::serve::wire {

inline constexpr uint8_t kVersion = 1;
// Hard ceiling on one frame's payload: a QueryReply carrying max_k
// candidates is tiny; stats JSON is the largest legitimate payload.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

enum class MsgType : uint8_t {
  kQuery = 1,          // body: Query
  kQueryReply = 2,     // body: Result<QueryResult>
  kStats = 3,          // body: empty
  kStatsReply = 4,     // body: u32 len + JSON bytes
  kSwap = 5,           // body: u16 len + snapshot-prefix bytes
  kSwapReply = 6,      // body: u8 status, i64 epoch, u16 len + detail
  kPing = 7,           // body: empty
  kPong = 8,           // body: i64 epoch
  kShutdown = 9,       // body: empty; replica acks with kShutdownReply
  kShutdownReply = 10,  // body: empty
  kQueryBatch = 11,     // body: u16 count + count fixed-width Query records
  kResultBatch = 12     // body: u16 count + count (u32 len + reply body)
};

// One parsed frame: the type byte plus the raw body bytes (payload minus
// the version/type header).
struct Frame {
  MsgType type = MsgType::kQuery;
  std::vector<uint8_t> body;
};

// ---- Frame layer -----------------------------------------------------------

// Appends one whole frame (length prefix + version + type + body) to *out.
void AppendFrame(MsgType type, const std::vector<uint8_t>& body,
                 std::vector<uint8_t>* out);

// Outcome of DecodeFrame over a byte buffer.
enum class DecodeStatus : uint8_t {
  kFrame = 0,     // *frame holds a complete frame; *consumed advanced
  kNeedMore = 1,  // the buffer ends mid-frame; feed more bytes
  kError = 2,     // malformed (bad length, version, or type); *detail set
};

// Decodes the first frame of data[0, size). On kFrame, *consumed is the
// total bytes of the frame (prefix included). Never reads past `size`.
DecodeStatus DecodeFrame(const uint8_t* data, size_t size, Frame* frame,
                         size_t* consumed, std::string* detail);

// ---- Body codecs -----------------------------------------------------------

std::vector<uint8_t> EncodeQuery(const Query& query);
Result<Query> DecodeQuery(const std::vector<uint8_t>& body);

// A reply body embeds the full Result: status byte, then either the
// QueryResult fields (kOk) or the detail string. DecodeQueryReply returns
// the embedded Result verbatim — remote errors keep their original code —
// or kProtocolError when the body itself is malformed.
std::vector<uint8_t> EncodeQueryReply(const Result<QueryResult>& result);
Result<QueryResult> DecodeQueryReply(const std::vector<uint8_t>& body);

// Coalesced query batch: u16 count (1..kMaxWireBatch) followed by `count`
// fixed 33-byte Query records (the EncodeQuery body). The decoder
// cross-checks count against the body size before reserving, so a hostile
// count can neither balloon memory nor smuggle trailing bytes.
inline constexpr size_t kMaxWireBatch = 4096;
std::vector<uint8_t> EncodeQueryBatch(const std::vector<Query>& queries);
Result<std::vector<Query>> DecodeQueryBatch(const std::vector<uint8_t>& body);

// Batched replies: u16 count followed by `count` u32-length-prefixed
// EncodeQueryReply bodies, one per query in submission order. Per-entry
// statuses ride inside each embedded reply, so one failed query degrades
// only its own slot; a structurally malformed entry decodes to a
// kProtocolError entry the same way. Frame-level damage (bad count,
// truncated length prefix, trailing bytes) fails the whole decode.
std::vector<uint8_t> EncodeResultBatch(
    const std::vector<Result<QueryResult>>& results);
Result<std::vector<Result<QueryResult>>> DecodeResultBatch(
    const std::vector<uint8_t>& body);

std::vector<uint8_t> EncodeString(const std::string& value);  // u32 len + bytes
Result<std::string> DecodeString(const std::vector<uint8_t>& body);

std::vector<uint8_t> EncodeSwap(const std::string& prefix);
Result<std::string> DecodeSwap(const std::vector<uint8_t>& body);

// Swap acknowledgement: the replica's status plus its post-swap epoch.
std::vector<uint8_t> EncodeSwapReply(StatusCode status, int64_t epoch,
                                     const std::string& detail);
Result<int64_t> DecodeSwapReply(const std::vector<uint8_t>& body);

std::vector<uint8_t> EncodePong(int64_t epoch);
Result<int64_t> DecodePong(const std::vector<uint8_t>& body);

// ---- Blocking socket IO ----------------------------------------------------

// Writes one frame to `fd`, retrying on EINTR/partial writes. Returns
// kShardUnavailable on a closed or failing peer.
Result<bool> WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& body);

// Reads exactly one frame from `fd` (blocking; honours any SO_RCVTIMEO on
// the socket). kShardUnavailable on EOF/io-error/timeout, kProtocolError
// on malformed bytes.
Result<Frame> ReadFrame(int fd);

}  // namespace retia::serve::wire

#endif  // RETIA_SERVE_WIRE_H_
