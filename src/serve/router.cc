#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <sstream>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/obs.h"
#include "util/check.h"
#include "util/timer.h"

namespace retia::serve {

// ---- LocalChannel ----------------------------------------------------------

LocalChannel::LocalChannel(ServeEngine* engine, SnapshotLoader loader)
    : engine_(engine), loader_(std::move(loader)) {
  RETIA_CHECK(engine_ != nullptr);
}

Result<QueryResult> LocalChannel::Submit(const Query& query) {
  return engine_->Submit(query);
}

std::vector<Result<QueryResult>> LocalChannel::SubmitBatch(
    const std::vector<Query>& queries) {
  return engine_->SubmitBatch(queries);
}

Result<int64_t> LocalChannel::Swap(const std::string& prefix) {
  if (!loader_) {
    return Result<int64_t>::Error(StatusCode::kInternal,
                                  "replica has no snapshot loader");
  }
  // Serialized so two concurrent SwapAll rounds cannot interleave their
  // load/install pairs and leave replicas on different epochs.
  std::lock_guard<std::mutex> lock(swap_mu_);
  Result<EngineSnapshot> snapshot = loader_(prefix);
  if (!snapshot.ok()) {
    return Result<int64_t>::Error(snapshot.code(), snapshot.detail());
  }
  engine_->SwapSnapshot(snapshot.take());
  return engine_->snapshot_swaps();
}

Result<std::string> LocalChannel::StatsJson() {
  return engine_->Stats().ToJson();
}

Result<int64_t> LocalChannel::Ping() { return engine_->snapshot_swaps(); }

// ---- SocketChannel ---------------------------------------------------------

namespace {

// Dials an AF_UNIX stream socket at `path`. Returns -1 with *error set.
int DialUnix(const std::string& path, int64_t timeout_ms, std::string* error) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    *error = "socket path too long";
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    *error = std::string("connect ") + path + ": " + std::strerror(errno);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

void SetRecvTimeout(int fd, int64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

SocketChannel::SocketChannel(std::string socket_path,
                             const RouterConfig& config)
    : socket_path_(std::move(socket_path)), config_(config) {}

SocketChannel::~SocketChannel() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const int fd : idle_) ::close(fd);
  idle_.clear();
}

int SocketChannel::Checkout(std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      const int fd = idle_.back();
      idle_.pop_back();
      ++outstanding_;
      return fd;
    }
    if (outstanding_ >= config_.connections_per_replica) {
      // Pool exhausted: dial an overflow connection rather than block — a
      // slow replica already shows up as latency, and the overflow socket
      // is simply closed on return instead of pooled.
      const int fd = DialUnix(socket_path_, config_.timeout_ms, error);
      if (fd >= 0) ++outstanding_;
      return fd;
    }
    ++outstanding_;
  }
  const int fd = DialUnix(socket_path_, config_.timeout_ms, error);
  if (fd < 0) {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
  }
  return fd;
}

void SocketChannel::Return(int fd, bool healthy) {
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  if (healthy &&
      static_cast<int64_t>(idle_.size()) < config_.connections_per_replica) {
    SetRecvTimeout(fd, config_.timeout_ms);  // restore after untimed swaps
    idle_.push_back(fd);
  } else {
    ::close(fd);
  }
}

Result<wire::Frame> SocketChannel::RoundTrip(wire::MsgType type,
                                             const std::vector<uint8_t>& body,
                                             wire::MsgType expect, bool timed) {
  std::string dial_error;
  const int fd = Checkout(&dial_error);
  if (fd < 0) {
    return Result<wire::Frame>::Error(StatusCode::kShardUnavailable,
                                      dial_error);
  }
  if (!timed) SetRecvTimeout(fd, 0);  // 0 = block until the reply lands
  Result<bool> wrote = wire::WriteFrame(fd, type, body);
  if (!wrote.ok()) {
    Return(fd, false);
    return Result<wire::Frame>::Error(wrote.code(), wrote.detail());
  }
  Result<wire::Frame> reply = wire::ReadFrame(fd);
  if (!reply.ok()) {
    Return(fd, false);
    return reply;
  }
  if (reply.value().type != expect) {
    Return(fd, false);
    return Result<wire::Frame>::Error(StatusCode::kProtocolError,
                                      "unexpected reply type");
  }
  Return(fd, true);
  return reply;
}

Result<QueryResult> SocketChannel::Submit(const Query& query) {
  Result<wire::Frame> reply = RoundTrip(
      wire::MsgType::kQuery, wire::EncodeQuery(query), wire::MsgType::kQueryReply);
  if (!reply.ok()) {
    return Result<QueryResult>::Error(reply.code(), reply.detail());
  }
  return wire::DecodeQueryReply(reply.value().body);
}

std::vector<Result<QueryResult>> SocketChannel::SubmitBatch(
    const std::vector<Query>& queries) {
  if (queries.empty()) return {};
  const auto fail = [&queries](StatusCode code, const std::string& detail) {
    std::vector<Result<QueryResult>> out;
    out.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      out.push_back(Result<QueryResult>::Error(code, detail));
    }
    return out;
  };
  Result<wire::Frame> reply =
      RoundTrip(wire::MsgType::kQueryBatch, wire::EncodeQueryBatch(queries),
                wire::MsgType::kResultBatch);
  if (!reply.ok()) return fail(reply.code(), reply.detail());
  Result<std::vector<Result<QueryResult>>> decoded =
      wire::DecodeResultBatch(reply.value().body);
  if (!decoded.ok()) return fail(decoded.code(), decoded.detail());
  if (decoded.value().size() != queries.size()) {
    return fail(StatusCode::kProtocolError,
                "result batch count mismatches query batch");
  }
  return decoded.take();
}

Result<int64_t> SocketChannel::Swap(const std::string& prefix) {
  // Snapshot loading legitimately exceeds the per-query timeout; swap
  // round-trips block until the replica acks.
  Result<wire::Frame> reply =
      RoundTrip(wire::MsgType::kSwap, wire::EncodeSwap(prefix),
                wire::MsgType::kSwapReply, /*timed=*/false);
  if (!reply.ok()) return Result<int64_t>::Error(reply.code(), reply.detail());
  return wire::DecodeSwapReply(reply.value().body);
}

Result<std::string> SocketChannel::StatsJson() {
  Result<wire::Frame> reply = RoundTrip(wire::MsgType::kStats, {},
                                        wire::MsgType::kStatsReply);
  if (!reply.ok()) {
    return Result<std::string>::Error(reply.code(), reply.detail());
  }
  return wire::DecodeString(reply.value().body);
}

Result<int64_t> SocketChannel::Ping() {
  Result<wire::Frame> reply =
      RoundTrip(wire::MsgType::kPing, {}, wire::MsgType::kPong);
  if (!reply.ok()) return Result<int64_t>::Error(reply.code(), reply.detail());
  return wire::DecodePong(reply.value().body);
}

void SocketChannel::Shutdown() {
  std::string dial_error;
  const int fd = Checkout(&dial_error);
  if (fd < 0) return;
  (void)wire::WriteFrame(fd, wire::MsgType::kShutdown, {});
  (void)wire::ReadFrame(fd);  // wait for the ack (or EOF) so exit is clean
  Return(fd, false);
}

// ---- Router ----------------------------------------------------------------

namespace {

std::vector<int64_t> ShardIds(size_t n) {
  std::vector<int64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

}  // namespace

Router::Router(std::vector<std::unique_ptr<ReplicaChannel>> replicas,
               const RouterConfig& config)
    : config_(config),
      replicas_(std::move(replicas)),
      shard_map_(ShardIds(replicas_.size()), config.virtual_nodes),
      stats_(/*max_batch=*/std::max<int64_t>(config.max_wire_batch, 1),
             StatsScope::kRouter) {
  RETIA_CHECK_MSG(!replicas_.empty(), "router needs at least one replica");
  RETIA_CHECK_MSG(config_.max_wire_batch > 0 &&
                      config_.max_wire_batch <=
                          static_cast<int64_t>(wire::kMaxWireBatch),
                  "max_wire_batch outside (0, wire::kMaxWireBatch]");
  coalescers_.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    coalescers_.push_back(std::make_unique<Coalescer>());
  }
}

Result<QueryResult> Router::Route(const Query& query) {
  RETIA_OBS_COUNTER_ADD("serve.router.requests", 1);
  util::Timer timer;
  const int64_t shard = shard_map_.ShardFor(query.s);
  // Shard selection is the router's (tiny) queue-wait analog; the channel
  // round-trip is its compute. Recording through the same StatsRecorder
  // the engine uses keeps the accounting split defined in exactly one
  // place (stats.cc).
  stats_.RecordQueueWait(timer.Millis());
  if (config_.batch_window_us > 0) {
    Result<QueryResult> result = CoalescedRoute(query, shard);
    stats_.RecordRequest(timer.Millis());
    return result;
  }
  util::Timer channel_timer;
  Result<QueryResult> result = replicas_[shard]->Submit(query);
  stats_.RecordCompute(channel_timer.Millis());
  stats_.RecordRequest(timer.Millis());
  stats_.RecordBatch(1);
  if (!result.ok()) {
    if (result.code() == StatusCode::kShardUnavailable) {
      RETIA_OBS_COUNTER_ADD("serve.router.unavailable", 1);
    }
    return result;
  }
  result.value().shard = shard;
  return result;
}

void Router::ShipToShard(int64_t shard, const std::vector<Query>& queries,
                         const std::vector<size_t>& slots,
                         std::vector<std::optional<Result<QueryResult>>>* out) {
  for (size_t begin = 0; begin < queries.size();
       begin += static_cast<size_t>(config_.max_wire_batch)) {
    const size_t end = std::min(
        queries.size(), begin + static_cast<size_t>(config_.max_wire_batch));
    const std::vector<Query> chunk(queries.begin() + begin,
                                   queries.begin() + end);
    RETIA_OBS_COUNTER_ADD("serve.router.batch.frames", 1);
    RETIA_OBS_COUNTER_ADD("serve.router.batch.queries",
                          static_cast<int64_t>(chunk.size()));
    RETIA_OBS_HIST_RECORD("serve.router.batch.size",
                          static_cast<int64_t>(chunk.size()));
    util::Timer channel_timer;
    std::vector<Result<QueryResult>> replies =
        replicas_[shard]->SubmitBatch(chunk);
    stats_.RecordCompute(channel_timer.Millis());
    stats_.RecordBatch(static_cast<int64_t>(chunk.size()));
    RETIA_CHECK_EQ(replies.size(), chunk.size());
    for (size_t i = 0; i < replies.size(); ++i) {
      Result<QueryResult>& reply = replies[i];
      if (reply.ok()) {
        reply.value().shard = shard;
      } else if (reply.code() == StatusCode::kShardUnavailable) {
        RETIA_OBS_COUNTER_ADD("serve.router.unavailable", 1);
      }
      (*out)[slots[begin + i]] = std::move(reply);
    }
  }
}

std::vector<Result<QueryResult>> Router::RouteBatch(
    const std::vector<Query>& queries) {
  RETIA_OBS_COUNTER_ADD("serve.router.requests",
                        static_cast<int64_t>(queries.size()));
  util::Timer timer;
  std::vector<std::optional<Result<QueryResult>>> answers(queries.size());
  // Group by shard, preserving submission order within each group.
  std::vector<std::vector<Query>> by_shard(replicas_.size());
  std::vector<std::vector<size_t>> slots(replicas_.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t shard = shard_map_.ShardFor(queries[i].s);
    by_shard[shard].push_back(queries[i]);
    slots[shard].push_back(i);
  }
  stats_.RecordQueueWait(timer.Millis());
  for (size_t shard = 0; shard < by_shard.size(); ++shard) {
    if (by_shard[shard].empty()) continue;
    ShipToShard(static_cast<int64_t>(shard), by_shard[shard], slots[shard],
                &answers);
  }
  std::vector<Result<QueryResult>> results;
  results.reserve(answers.size());
  for (std::optional<Result<QueryResult>>& answer : answers) {
    stats_.RecordRequest(timer.Millis());
    results.push_back(std::move(*answer));
  }
  return results;
}

Result<QueryResult> Router::CoalescedRoute(const Query& query, int64_t shard) {
  Coalescer& c = *coalescers_[shard];
  std::future<Result<QueryResult>> future;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(c.mu);
    c.queries.push_back(query);
    std::promise<Result<QueryResult>> promise;
    future = promise.get_future();
    c.promises.push_back(std::move(promise));
    if (!c.leader_active) {
      c.leader_active = true;
      leader = true;
    } else if (static_cast<int64_t>(c.queries.size()) >=
               config_.max_wire_batch) {
      // The window is full; wake the leader early.
      c.cv.notify_all();
    }
  }
  if (leader) {
    std::unique_lock<std::mutex> lock(c.mu);
    c.cv.wait_for(lock, std::chrono::microseconds(config_.batch_window_us),
                  [this, &c] {
                    return static_cast<int64_t>(c.queries.size()) >=
                           config_.max_wire_batch;
                  });
    std::vector<Query> batch = std::move(c.queries);
    std::vector<std::promise<Result<QueryResult>>> promises =
        std::move(c.promises);
    c.queries.clear();
    c.promises.clear();
    // A caller arriving from here on starts (and leads) the next window;
    // the swapped-out batch belongs to this leader alone.
    c.leader_active = false;
    lock.unlock();
    std::vector<std::optional<Result<QueryResult>>> answers(batch.size());
    std::vector<size_t> slots(batch.size());
    for (size_t i = 0; i < slots.size(); ++i) slots[i] = i;
    ShipToShard(shard, batch, slots, &answers);
    for (size_t i = 0; i < promises.size(); ++i) {
      promises[i].set_value(std::move(*answers[i]));
    }
  }
  return future.get();
}

Result<int64_t> Router::SwapAll(const std::string& prefix) {
  RETIA_OBS_COUNTER_ADD("serve.router.swaps", 1);
  int64_t epoch = -1;
  for (size_t shard = 0; shard < replicas_.size(); ++shard) {
    Result<int64_t> swapped = replicas_[shard]->Swap(prefix);
    if (!swapped.ok()) {
      return Result<int64_t>::Error(
          swapped.code(), "shard " + std::to_string(shard) +
                              " swap failed: " + swapped.detail());
    }
    if (epoch < 0) {
      epoch = swapped.value();
    } else if (swapped.value() != epoch) {
      return Result<int64_t>::Error(
          StatusCode::kInternal,
          "shard " + std::to_string(shard) + " swapped to epoch " +
              std::to_string(swapped.value()) + ", fleet is on " +
              std::to_string(epoch));
    }
  }
  return epoch;
}

std::vector<Result<int64_t>> Router::PingAll() {
  std::vector<Result<int64_t>> epochs;
  epochs.reserve(replicas_.size());
  for (auto& replica : replicas_) epochs.push_back(replica->Ping());
  return epochs;
}

std::string Router::StatsJson() {
  std::ostringstream out;
  out << "{\"router\":" << stats_.Snapshot(CacheCounters{}).ToJson()
      << ",\"replicas\":[";
  for (size_t shard = 0; shard < replicas_.size(); ++shard) {
    if (shard > 0) out << ",";
    Result<std::string> stats = replicas_[shard]->StatsJson();
    if (stats.ok()) {
      out << stats.value();
    } else {
      out << "{\"error\":\"" << StatusCodeName(stats.code()) << "\"}";
    }
  }
  out << "]}";
  return out.str();
}

}  // namespace retia::serve
