#include "serve/shard_map.h"

#include <algorithm>

#include "util/check.h"

namespace retia::serve {

uint64_t ShardMap::Mix(uint64_t x) {
  // splitmix64 finalizer: cheap, deterministic across platforms, and
  // avalanches enough that sequential entity ids spread over the ring.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ShardMap::ShardMap(const std::vector<int64_t>& shard_ids,
                   int64_t virtual_nodes)
    : num_shards_(static_cast<int64_t>(shard_ids.size())) {
  RETIA_CHECK_MSG(!shard_ids.empty(), "shard map needs at least one replica");
  RETIA_CHECK(virtual_nodes > 0);
  ring_.reserve(shard_ids.size() * static_cast<size_t>(virtual_nodes));
  for (const int64_t shard : shard_ids) {
    for (int64_t vnode = 0; vnode < virtual_nodes; ++vnode) {
      // Mix the pair (shard, vnode) into one ring position. The nested mix
      // decorrelates the two coordinates so vnodes of one shard don't
      // cluster.
      const uint64_t position =
          Mix(Mix(static_cast<uint64_t>(shard)) ^ static_cast<uint64_t>(vnode));
      ring_.push_back(Point{position, shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Tie-break on shard id so equal positions (vanishingly rare) still
    // order deterministically.
    return a.position != b.position ? a.position < b.position
                                    : a.shard < b.shard;
  });
}

int64_t ShardMap::ShardFor(int64_t subject) const {
  RETIA_CHECK(!ring_.empty());
  const uint64_t key = Mix(static_cast<uint64_t>(subject));
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const Point& p, uint64_t k) { return p.position < k; });
  return it == ring_.end() ? ring_.front().shard : it->shard;
}

}  // namespace retia::serve
