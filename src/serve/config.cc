// Environment-driven construction of the serving-tier configs. Every
// RETIA_SERVE_* knob is parsed exactly once, here, through util::Env, and
// the defaults in the struct declarations are the single source of truth
// (docs/SERVING_TOPOLOGY.md and the README env table document this file).
// engine.cc / router.cc contain no environment reads of their own.

#include <algorithm>

#include "quant/quant.h"
#include "serve/engine.h"
#include "serve/router.h"
#include "serve/wire.h"
#include "util/env.h"

namespace retia::serve {

ServeConfig ServeConfig::FromEnv() {
  ServeConfig config;
  config.num_threads =
      util::Env::PositiveIntOr("RETIA_SERVE_THREADS", config.num_threads);
  config.max_batch =
      util::Env::PositiveIntOr("RETIA_SERVE_MAX_BATCH", config.max_batch);
  config.max_k = util::Env::PositiveIntOr("RETIA_SERVE_MAX_K", config.max_k);
  config.enable_cache =
      util::Env::BoolOr("RETIA_SERVE_CACHE", config.enable_cache);
  config.cache_capacity = util::Env::PositiveIntOr(
      "RETIA_SERVE_CACHE_CAPACITY", config.cache_capacity);
  config.cache_shards = util::Env::PositiveIntOr("RETIA_SERVE_CACHE_SHARDS",
                                                 config.cache_shards);
  // quantized_decode stays -1: the RETIA_QUANT / RETIA_QUANT_MIN_ROWS
  // knobs are owned by retia::quant and resolved in ResolvesQuantized.
  return config;
}

bool ServeConfig::ResolvesQuantized(int64_t num_entities) const {
  const bool want =
      quantized_decode >= 0 ? quantized_decode != 0 : quant::QuantEnabled();
  return want && num_entities >= quant::QuantMinRows();
}

RouterConfig RouterConfig::FromEnv() {
  RouterConfig config;
  config.virtual_nodes =
      util::Env::PositiveIntOr("RETIA_SERVE_VNODES", config.virtual_nodes);
  config.connections_per_replica = util::Env::PositiveIntOr(
      "RETIA_SERVE_CONNECTIONS", config.connections_per_replica);
  config.timeout_ms =
      util::Env::PositiveIntOr("RETIA_SERVE_TIMEOUT_MS", config.timeout_ms);
  // 0 disables the window (the default), so plain IntOr with a floor of 0
  // instead of PositiveIntOr.
  config.batch_window_us = std::max<int64_t>(
      util::Env::IntOr("RETIA_SERVE_BATCH_WINDOW_US", config.batch_window_us),
      0);
  config.max_wire_batch = std::min<int64_t>(
      util::Env::PositiveIntOr("RETIA_SERVE_MAX_WIRE_BATCH",
                               config.max_wire_batch),
      static_cast<int64_t>(wire::kMaxWireBatch));
  return config;
}

}  // namespace retia::serve
