#ifndef RETIA_SERVE_ENGINE_H_
#define RETIA_SERVE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/retia.h"
#include "eval/evaluator.h"
#include "graph/graph_cache.h"
#include "serve/lru_cache.h"
#include "serve/stats.h"

namespace retia::serve {

struct ServeConfig {
  // Worker threads running the batched decodes.
  int64_t num_threads = 4;
  // Micro-batch cap: one decode tick coalesces at most this many queued
  // queries sharing a (timestamp, kind).
  int64_t max_batch = 32;
  // Ranking depth stored per cache entry; requests may ask for any
  // k <= max_k and are served from the cached prefix.
  int64_t max_k = 10;
  bool enable_cache = true;
  int64_t cache_capacity = 1 << 16;  // total entries across shards
  int64_t cache_shards = 8;
};

// Answer to one TopK / TopKRelation call: the k best candidates, best
// first, plus whether the prediction cache supplied them.
struct TopKResult {
  std::vector<ScoredCandidate> candidates;
  bool cache_hit = false;
};

// Concurrent batched inference engine over a frozen extrapolation model.
//
// Architecture: callers block in TopK()/TopKRelation(). A cache-enabled
// engine first probes the sharded LRU prediction cache on the caller's
// thread (hits never touch the queue). Misses are enqueued; worker threads
// drain the queue in micro-batches — all pending queries sharing the
// front request's (timestamp, kind), up to max_batch — and answer each
// batch with ONE [B, num_candidates] decode through the same
// eval::ObjectScoreFn / eval::RelationScoreFn-shaped path the evaluator
// uses. Evolved StepStates are memoized per timestamp behind a lock, so
// each serving timestamp pays its history evolution once.
//
// Determinism: decodes are row-independent pure float math over frozen
// parameters, so results are bit-identical regardless of thread count,
// batch composition, or cache state (serve_test asserts this).
class ServeEngine {
 public:
  // Generic engine over caller-supplied scorers. The score fns must be
  // thread-safe: workers invoke them concurrently, each under its own
  // tensor::NoGradGuard (grad mode is thread-local; see tensor.h).
  ServeEngine(eval::ObjectScoreFn object_fn, eval::RelationScoreFn relation_fn,
              const ServeConfig& config);

  // Engine over a frozen RetiaModel: scorers are bound to the model's
  // const ScoreObjectsFrozen / ScoreRelationsFrozen entry points against
  // states evolved from `graph_cache`'s history (memoized per timestamp).
  // The model is put in eval mode; model and graph_cache must outlive the
  // engine and must not be mutated while it is running.
  ServeEngine(core::RetiaModel* model, graph::GraphCache* graph_cache,
              const ServeConfig& config);

  // Drains outstanding requests, then stops and joins the workers.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // Top-k objects for the entity query (s, r, ?) at serving timestamp t.
  // r in [0, 2M): pass r + M for the inverse (subject) direction. Blocks
  // until the result is available. k must be <= config.max_k.
  TopKResult TopK(int64_t s, int64_t r, int64_t t, int64_t k);

  // Top-k relations for the query (s, ?, o) at serving timestamp t.
  TopKResult TopKRelation(int64_t s, int64_t o, int64_t t, int64_t k);

  // Pre-evolves (and pins) the states for timestamp t so the first query
  // does not pay the evolution latency. Only meaningful for model-backed
  // engines; a no-op for the generic constructor.
  void Warmup(int64_t t);

  ServeStats Stats() const;
  void ResetStats();
  const ServeConfig& config() const { return config_; }

 private:
  struct Request {
    CacheKey key;
    int64_t k = 0;
    util::Timer timer;  // started at submission
    std::promise<TopKResult> promise;
  };

  // Memoized per-timestamp evolution for the model-backed constructor.
  struct FrozenStateStore {
    core::RetiaModel* model = nullptr;
    graph::GraphCache* graph_cache = nullptr;
    std::mutex mu;
    std::map<int64_t,
             std::shared_ptr<const std::vector<core::EvolutionModel::StepState>>>
        states;

    std::shared_ptr<const std::vector<core::EvolutionModel::StepState>>
    StatesFor(int64_t t);
  };

  // Binds both score fns to one shared state store (a single store means a
  // single evolution per timestamp and a single lock around the non
  // thread-safe GraphCache).
  ServeEngine(std::shared_ptr<FrozenStateStore> store,
              const ServeConfig& config);

  TopKResult Submit(const CacheKey& key, int64_t k);
  void WorkerLoop();
  void ProcessBatch(std::vector<Request> batch);

  ServeConfig config_;
  eval::ObjectScoreFn object_fn_;
  eval::RelationScoreFn relation_fn_;
  std::shared_ptr<FrozenStateStore> state_store_;  // null for generic engines

  std::unique_ptr<PredictionCache> cache_;  // null when disabled
  StatsRecorder stats_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace retia::serve

#endif  // RETIA_SERVE_ENGINE_H_
