#ifndef RETIA_SERVE_ENGINE_H_
#define RETIA_SERVE_ENGINE_H_

// retia::serve::ServeEngine — concurrent batched top-k inference over a
// frozen extrapolation model (micro-batching, sharded LRU prediction
// cache, per-timestamp state memoization).
//
// Ownership / threading contract: the engine owns no threads — drain
// ticks run as tasks on the shared par::DefaultPool() (or config.pool,
// which must outlive the engine). TopK()/TopKRelation() are safe to call
// from any number of client threads concurrently; the borrowed model and
// GraphCache must outlive the engine and stay frozen while it runs. The
// destructor blocks until every outstanding request is answered.
// Request/cache counters, batch-size and queue-wait/compute histograms
// are exported as `serve.*` metrics (docs/OBSERVABILITY.md) and merged
// into Stats().ToJson().
//
// Usage:
//   serve::ServeConfig config;
//   serve::ServeEngine engine(&model, &graph_cache, config);
//   engine.Warmup(t);
//   serve::TopKResult top = engine.TopK(subject, relation, t, /*k=*/10);
//   std::cout << engine.Stats().ToJson() << "\n";

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/retia.h"
#include "eval/evaluator.h"
#include "graph/graph_cache.h"
#include "par/thread_pool.h"
#include "serve/lru_cache.h"
#include "serve/stats.h"

namespace retia::serve {

struct ServeConfig {
  // Maximum number of drain ticks (batched decodes) running concurrently
  // on the shared pool. The engine owns no threads of its own: decode work
  // runs as tasks on `pool` (par::DefaultPool() when null), so one process
  // hosts many engines without stacking worker fleets.
  int64_t num_threads = 4;
  // Pool the decode ticks run on; null means par::DefaultPool(). Must
  // outlive the engine.
  par::ThreadPool* pool = nullptr;
  // Micro-batch cap: one decode tick coalesces at most this many queued
  // queries sharing a (timestamp, kind).
  int64_t max_batch = 32;
  // Ranking depth stored per cache entry; requests may ask for any
  // k <= max_k and are served from the cached prefix.
  int64_t max_k = 10;
  bool enable_cache = true;
  int64_t cache_capacity = 1 << 16;  // total entries across shards
  int64_t cache_shards = 8;
};

// Answer to one TopK / TopKRelation call: the k best candidates, best
// first, plus whether the prediction cache supplied them.
struct TopKResult {
  std::vector<ScoredCandidate> candidates;
  bool cache_hit = false;
};

// Concurrent batched inference engine over a frozen extrapolation model.
//
// Architecture: callers block in TopK()/TopKRelation(). A cache-enabled
// engine first probes the sharded LRU prediction cache on the caller's
// thread (hits never touch the queue). Misses are enqueued, and each
// submission schedules a drain tick on the shared par::ThreadPool; at most
// config.num_threads ticks run at once, and a running tick keeps draining
// micro-batches — all pending queries sharing the front request's
// (timestamp, kind), up to max_batch — until the queue is empty. Each
// batch is answered with ONE [B, num_candidates] decode through the same
// eval::ObjectScoreFn / eval::RelationScoreFn-shaped path the evaluator
// uses. Evolved StepStates are memoized per timestamp behind a lock, so
// each serving timestamp pays its history evolution once.
//
// The engine spawns no threads of its own: decode ticks share
// par::DefaultPool() (or config.pool) with the intra-op tensor kernels.
// On a pool with no workers (RETIA_NUM_THREADS=1) ticks run inline on the
// submitting caller, which keeps the engine deadlock-free even when every
// pool worker is busy.
//
// Determinism: decodes are row-independent pure float math over frozen
// parameters, and the parallel tensor kernels use fixed problem-derived
// shards (see par/parallel_for.h), so results are bit-identical regardless
// of thread count, batch composition, or cache state (serve_test asserts
// this, including with more clients than pool workers).
class ServeEngine {
 public:
  // Generic engine over caller-supplied scorers. The score fns must be
  // thread-safe: workers invoke them concurrently, each under its own
  // tensor::NoGradGuard (grad mode is thread-local; see tensor.h).
  ServeEngine(eval::ObjectScoreFn object_fn, eval::RelationScoreFn relation_fn,
              const ServeConfig& config);

  // Engine over a frozen RetiaModel: scorers are bound to the model's
  // const ScoreObjectsFrozen / ScoreRelationsFrozen entry points against
  // states evolved from `graph_cache`'s history (memoized per timestamp).
  // The model is put in eval mode; model and graph_cache must outlive the
  // engine and must not be mutated while it is running.
  ServeEngine(core::RetiaModel* model, graph::GraphCache* graph_cache,
              const ServeConfig& config);

  // Blocks until every outstanding request has been answered and every
  // scheduled drain tick has finished, then detaches from the pool.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // Top-k objects for the entity query (s, r, ?) at serving timestamp t.
  // r in [0, 2M): pass r + M for the inverse (subject) direction. Blocks
  // until the result is available. k must be <= config.max_k.
  TopKResult TopK(int64_t s, int64_t r, int64_t t, int64_t k);

  // Top-k relations for the query (s, ?, o) at serving timestamp t.
  TopKResult TopKRelation(int64_t s, int64_t o, int64_t t, int64_t k);

  // Pre-evolves (and pins) the states for timestamp t so the first query
  // does not pay the evolution latency. Only meaningful for model-backed
  // engines; a no-op for the generic constructor.
  void Warmup(int64_t t);

  ServeStats Stats() const;
  void ResetStats();
  const ServeConfig& config() const { return config_; }

 private:
  struct Request {
    CacheKey key;
    int64_t k = 0;
    util::Timer timer;  // started at submission
    std::promise<TopKResult> promise;
  };

  // Memoized per-timestamp evolution for the model-backed constructor.
  struct FrozenStateStore {
    core::RetiaModel* model = nullptr;
    graph::GraphCache* graph_cache = nullptr;
    std::mutex mu;
    std::map<int64_t,
             std::shared_ptr<const std::vector<core::EvolutionModel::StepState>>>
        states;

    std::shared_ptr<const std::vector<core::EvolutionModel::StepState>>
    StatesFor(int64_t t);
  };

  // Binds both score fns to one shared state store (a single store means a
  // single evolution per timestamp and a single lock around the non
  // thread-safe GraphCache).
  ServeEngine(std::shared_ptr<FrozenStateStore> store,
              const ServeConfig& config);

  TopKResult Submit(const CacheKey& key, int64_t k);
  // One scheduled tick: becomes an active drainer if the concurrency cap
  // allows, then drains micro-batches until the queue is empty.
  void DrainTask();
  void ProcessBatch(std::vector<Request> batch);

  ServeConfig config_;
  eval::ObjectScoreFn object_fn_;
  eval::RelationScoreFn relation_fn_;
  std::shared_ptr<FrozenStateStore> state_store_;  // null for generic engines

  std::unique_ptr<PredictionCache> cache_;  // null when disabled
  StatsRecorder stats_;
  par::ThreadPool* pool_ = nullptr;

  std::mutex queue_mu_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  // Drain ticks currently holding a concurrency slot / still running
  // (both guarded by queue_mu_). The destructor waits on drained_cv_ for
  // inflight_ticks_ to hit zero so no task outlives the engine.
  int64_t active_ticks_ = 0;
  int64_t inflight_ticks_ = 0;
  std::condition_variable drained_cv_;
};

}  // namespace retia::serve

#endif  // RETIA_SERVE_ENGINE_H_
