#ifndef RETIA_SERVE_ENGINE_H_
#define RETIA_SERVE_ENGINE_H_

// retia::serve::ServeEngine — concurrent batched top-k inference over a
// frozen extrapolation model (micro-batching, sharded LRU prediction
// cache, per-timestamp state memoization).
//
// Ownership / threading contract: the engine owns no threads — drain
// ticks run as tasks on the shared par::DefaultPool() (or config.pool,
// which must outlive the engine). Submit() (and the deprecated
// TopK()/TopKRelation() shims) are safe to call from any number of client
// threads concurrently; a borrowed model and GraphCache must outlive the
// engine and stay frozen while it runs (an EngineSnapshot-constructed or
// SwapSnapshot-installed snapshot is owned by the engine instead).
// SwapSnapshot() replaces the served snapshot with zero downtime:
// in-flight batches finish on the epoch they pinned, everything later
// decodes against the new one. The destructor blocks until every
// outstanding request is answered.
// Request/cache counters, batch-size and queue-wait/compute histograms
// are exported as `serve.*` metrics (docs/OBSERVABILITY.md) and merged
// into Stats().ToJson().
//
// Usage:
//   serve::ServeConfig config = serve::ServeConfig::FromEnv();
//   serve::ServeEngine engine(&model, &graph_cache, config);
//   engine.Warmup(t);
//   serve::Result<serve::QueryResult> top =
//       engine.Submit(serve::Query::Entity(subject, relation, t, /*k=*/10));
//   if (top.ok()) Use(top.value().candidates);
//   std::cout << engine.Stats().ToJson() << "\n";

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/retia.h"
#include "eval/evaluator.h"
#include "graph/graph_cache.h"
#include "par/thread_pool.h"
#include "serve/lru_cache.h"
#include "serve/query.h"
#include "serve/stats.h"

namespace retia::serve {

// Engine knobs. Construct directly for explicit control, or through
// FromEnv() which parses every knob from its RETIA_SERVE_* environment
// variable exactly once through util::Env (the knob table in
// docs/SERVING_TOPOLOGY.md and the README is generated from FromEnv's
// defaults — config.cc is the single place they live).
struct ServeConfig {
  // Maximum number of drain ticks (batched decodes) running concurrently
  // on the shared pool. The engine owns no threads of its own: decode work
  // runs as tasks on `pool` (par::DefaultPool() when null), so one process
  // hosts many engines without stacking worker fleets.
  int64_t num_threads = 4;
  // Pool the decode ticks run on; null means par::DefaultPool(). Must
  // outlive the engine.
  par::ThreadPool* pool = nullptr;
  // Micro-batch cap: one decode tick coalesces at most this many queued
  // queries sharing a (timestamp, kind).
  int64_t max_batch = 32;
  // Ranking depth stored per cache entry; requests may ask for any
  // k <= max_k and are served from the cached prefix.
  int64_t max_k = 10;
  bool enable_cache = true;
  int64_t cache_capacity = 1 << 16;  // total entries across shards
  int64_t cache_shards = 8;
  // Quantized entity decode (docs/QUANTIZATION.md): -1 follows the
  // RETIA_QUANT env knob (the default), 0 forces f32, 1 forces int8.
  // When on, each evolved timestamp's entity candidates are quantized once
  // (per-row symmetric int8) and entity queries decode through the
  // exact-int32 int8 GEMM; relation decodes and models smaller than
  // RETIA_QUANT_MIN_ROWS entities stay f32. Tolerance-bound vs f32
  // serving (the EXPERIMENTS.md MRR delta); bit-exact across backends
  // and thread counts like the rest of the engine.
  int quantized_decode = -1;

  // Parses every knob above from the environment (RETIA_SERVE_THREADS,
  // RETIA_SERVE_MAX_BATCH, RETIA_SERVE_MAX_K, RETIA_SERVE_CACHE,
  // RETIA_SERVE_CACHE_CAPACITY, RETIA_SERVE_CACHE_SHARDS) through
  // util::Env, falling back to the defaults declared here. `pool` stays
  // null (the shared default pool) and `quantized_decode` stays -1 (the
  // RETIA_QUANT knob, resolved per store by ResolvesQuantized).
  static ServeConfig FromEnv();

  // Whether a store over `num_entities` candidates decodes through the
  // int8 path: the explicit quantized_decode override first, RETIA_QUANT
  // otherwise, and never below the RETIA_QUANT_MIN_ROWS floor. The single
  // quantization-policy site for the serving tier (config.cc).
  bool ResolvesQuantized(int64_t num_entities) const;
};

// Answer to one TopK / TopKRelation shim call: the k best candidates,
// best first, plus whether the prediction cache supplied them. New code
// should use Submit(Query) and QueryResult instead.
struct TopKResult {
  std::vector<ScoredCandidate> candidates;
  bool cache_hit = false;
};

// A self-contained frozen snapshot handed to SwapSnapshot(): the engine
// takes ownership of all three pieces, so the publisher (retia::stream's
// pipeline) can keep mutating its live model/dataset while the engine
// serves the copy. `dataset` may be null when `graph_cache` borrows a
// dataset that outlives the engine; when set, `graph_cache` must be built
// over it.
struct EngineSnapshot {
  std::unique_ptr<core::RetiaModel> model;
  std::unique_ptr<tkg::TkgDataset> dataset;
  std::unique_ptr<graph::GraphCache> graph_cache;
};

// Rebuilds an EngineSnapshot from a snapshot prefix (the payload of a
// wire-protocol swap request). The replica server and the router's
// in-process channel both take one: the host decides how a prefix maps to
// model + dataset + graph cache (serve::LoadModelSnapshot plus whatever
// dataset source the deployment uses). Must be thread-safe.
using SnapshotLoader =
    std::function<Result<EngineSnapshot>(const std::string& prefix)>;

// Concurrent batched inference engine over a frozen extrapolation model.
//
// Architecture: callers block in TopK()/TopKRelation(). A cache-enabled
// engine first probes the sharded LRU prediction cache on the caller's
// thread (hits never touch the queue). Misses are enqueued, and each
// submission schedules a drain tick on the shared par::ThreadPool; at most
// config.num_threads ticks run at once, and a running tick keeps draining
// micro-batches — all pending queries sharing the front request's
// (timestamp, kind), up to max_batch — until the queue is empty. Each
// batch is answered with ONE [B, num_candidates] decode through the same
// eval::ObjectScoreFn / eval::RelationScoreFn-shaped path the evaluator
// uses. Evolved StepStates are memoized per timestamp with once-semantics:
// the first batch for a timestamp evolves it (outside any store-wide lock,
// so distinct timestamps evolve concurrently), and every later batch for
// that timestamp shares the published states.
//
// The engine spawns no threads of its own: decode ticks share
// par::DefaultPool() (or config.pool) with the intra-op tensor kernels.
// On a pool with no workers (RETIA_NUM_THREADS=1) ticks run inline on the
// submitting caller, which keeps the engine deadlock-free even when every
// pool worker is busy.
//
// Determinism: decodes are row-independent pure float math over frozen
// parameters, and the parallel tensor kernels use fixed problem-derived
// shards (see par/parallel_for.h), so results are bit-identical regardless
// of thread count, batch composition, or cache state (serve_test asserts
// this, including with more clients than pool workers).
class ServeEngine {
 public:
  // Generic engine over caller-supplied scorers. The score fns must be
  // thread-safe: workers invoke them concurrently, each under its own
  // tensor::NoGradGuard (grad mode is thread-local; see tensor.h).
  ServeEngine(eval::ObjectScoreFn object_fn, eval::RelationScoreFn relation_fn,
              const ServeConfig& config);

  // Engine over a frozen RetiaModel: scorers are bound to the model's
  // const ScoreObjectsFrozen / ScoreRelationsFrozen entry points against
  // states evolved from `graph_cache`'s history (memoized per timestamp).
  // The model is put in eval mode; model and graph_cache must outlive the
  // engine and must not be mutated while it is running (until the first
  // SwapSnapshot(), after which they are no longer referenced).
  ServeEngine(core::RetiaModel* model, graph::GraphCache* graph_cache,
              const ServeConfig& config);

  // Engine that owns its snapshot from the start (the streaming pipeline's
  // construction path). Requires snapshot.model and snapshot.graph_cache.
  ServeEngine(EngineSnapshot snapshot, const ServeConfig& config);

  // Blocks until every outstanding request has been answered and every
  // scheduled drain tick has finished, then detaches from the pool.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // Answers one typed query, blocking until the result is available.
  // Malformed queries are REPORTED, never fatal: kInvalidArgument for a k
  // outside (0, config.max_k], kBadTimestamp for t < 0, kUnknownEntity /
  // kUnknownRelation for out-of-vocabulary ids (validated against the
  // pinned snapshot's model; generic score-fn engines cannot validate ids
  // and pass them through), kShuttingDown when the engine is draining,
  // and kInternal when the decode itself threw. This is the one entry
  // point the wire protocol deserializes onto, so nothing reachable from
  // a socket can CHECK-fail the process.
  Result<QueryResult> Submit(const Query& query);

  // Answers a batch of typed queries, blocking until every result is
  // available; results align with `queries` by index. Per-query semantics
  // match Submit() exactly — same validation taxonomy, same cache
  // probing, and bit-identical answers regardless of batch composition —
  // so a malformed query degrades only its own slot. The batch differs
  // only in cost: every cache miss is enqueued under one queue lock with
  // a single drain tick, so misses sharing a (timestamp, kind) decode as
  // ONE fused [B, num_candidates] GEMM over the shared candidate matrix
  // instead of B independent GEMVs. This is the execution path behind the
  // wire-protocol QueryBatch frame and Router::RouteBatch. Submit() and
  // the deprecated shims are thin wrappers over a batch of one.
  std::vector<Result<QueryResult>> SubmitBatch(
      const std::vector<Query>& queries);

  // Deprecated positional shims over SubmitBatch(). They keep the
  // pre-typed-API contract: malformed arguments CHECK-fail instead of
  // returning a code.
  // New code should call Submit(Query::Entity(...)) / (Query::Relation(...)).
  TopKResult TopK(int64_t s, int64_t r, int64_t t, int64_t k);
  TopKResult TopKRelation(int64_t s, int64_t o, int64_t t, int64_t k);

  // Pre-evolves (and pins) the states for timestamp t so the first query
  // does not pay the evolution latency. Only meaningful for model-backed
  // engines; a no-op for the generic constructor.
  void Warmup(int64_t t);

  // Zero-downtime snapshot replacement for model-backed engines. The new
  // snapshot is installed atomically: in-flight batches keep decoding
  // against the snapshot they pinned at batch start (a shared_ptr epoch —
  // the old model/cache stay alive until the last pinned batch finishes),
  // queued and future requests decode against the new one, and no request
  // is ever dropped or answered from a half-installed snapshot
  // (old-or-new, never torn). The prediction cache is cleared so no stale
  // prediction survives the swap. Safe to call from any thread, including
  // concurrently with TopK/TopKRelation; CHECK-fails on a generic
  // (score-fn) engine, which has no snapshot to replace.
  void SwapSnapshot(EngineSnapshot snapshot);

  // Number of SwapSnapshot() installations so far (0 until the first swap).
  int64_t snapshot_swaps() const;

  ServeStats Stats() const;
  void ResetStats();
  const ServeConfig& config() const { return config_; }

 private:
  struct Request {
    CacheKey key;
    int64_t k = 0;
    util::Timer timer;  // started at submission
    std::promise<Result<QueryResult>> promise;
  };

  // Memoized per-timestamp evolution for the model-backed constructors.
  // One store is one immutable snapshot epoch: batches pin it with a
  // shared_ptr for the duration of their decode, and SwapSnapshot replaces
  // the engine's current store wholesale, so a store's model/cache/states
  // never change after installation. The `owned_*` members keep a
  // swapped-in snapshot alive exactly as long as its store; they stay null
  // for the borrowing constructor.
  //
  // Per-timestamp evolution has once-semantics: the first caller of a
  // timestamp becomes its creator and evolves OUTSIDE the store lock
  // (GraphCache and the inter-op TaskGraph inside Evolve are
  // concurrent-safe), so batched queries for different serving timestamps
  // run their encoder work in parallel instead of serializing behind one
  // store-wide lock. Later callers of the same timestamp block on the
  // entry until the creator publishes — each timestamp pays its history
  // evolution exactly once, shared by every batch that needs it.
  struct FrozenStateStore {
    struct Entry {
      std::mutex mu;
      std::condition_variable cv;
      bool ready = false;
      std::shared_ptr<const std::vector<core::EvolutionModel::StepState>>
          states;
      // Per-state quantized entity candidates, built by the creator right
      // after evolving when `quantize` is set (null otherwise), so every
      // batch for the timestamp shares one quantization pass.
      std::shared_ptr<const std::vector<quant::QuantizedRows>> qcands;
      std::exception_ptr error;
    };

    core::RetiaModel* model = nullptr;
    graph::GraphCache* graph_cache = nullptr;
    // Entity decodes run the int8 path (resolved from ServeConfig and the
    // RETIA_QUANT knobs at store installation, before any StatesFor call).
    bool quantize = false;
    // Snapshot epoch of this store: snapshot_swaps() at installation.
    // Stamped on every QueryResult the store's batches answer, so a
    // response's provenance is auditable across hot-swaps.
    int64_t epoch = 0;
    std::unique_ptr<core::RetiaModel> owned_model;
    std::unique_ptr<tkg::TkgDataset> owned_dataset;
    std::unique_ptr<graph::GraphCache> owned_cache;
    std::mutex mu;  // guards the map only, never held across an Evolve
    std::map<int64_t, std::shared_ptr<Entry>> states;

    // Blocks until timestamp t's entry is evolved (once-semantics; the
    // first caller becomes the creator). The returned entry is immutable.
    std::shared_ptr<const Entry> EntryFor(int64_t t);
    std::shared_ptr<const std::vector<core::EvolutionModel::StepState>>
    StatesFor(int64_t t) {
      return EntryFor(t)->states;
    }
  };

  // Installs `store` as the initial snapshot epoch (a single store means a
  // single evolution per timestamp, shared by every batch that pins it).
  ServeEngine(std::shared_ptr<FrozenStateStore> store,
              const ServeConfig& config);

  static std::shared_ptr<FrozenStateStore> MakeStore(EngineSnapshot snapshot);

  // The current snapshot epoch (null for generic engines). Callers hold
  // the returned shared_ptr across their whole decode so a concurrent swap
  // cannot free the model under them.
  std::shared_ptr<FrozenStateStore> PinStore() const;

  // Validation half of Submit(): returns kOk or the taxonomy code for a
  // malformed query (id validation needs the pinned store's model config).
  StatusCode Validate(const Query& query, const FrozenStateStore* store,
                      std::string* detail) const;
  // Validation + cache probe shared by Submit and SubmitBatch: returns
  // the answer when the query never needs the decode queue (validation
  // error or cache hit), nullopt when it must be enqueued.
  std::optional<Result<QueryResult>> AnswerWithoutDecode(
      const Query& query, const FrozenStateStore* store);
  // One scheduled tick: becomes an active drainer if the concurrency cap
  // allows, then drains micro-batches until the queue is empty.
  void DrainTask();
  void ProcessBatch(std::vector<Request> batch);

  ServeConfig config_;
  eval::ObjectScoreFn object_fn_;    // null for model-backed engines
  eval::RelationScoreFn relation_fn_;
  // Current snapshot epoch; null for generic engines. Guarded by
  // store_mu_: readers copy the shared_ptr under the lock (the pin),
  // SwapSnapshot replaces it under the same lock.
  std::shared_ptr<FrozenStateStore> state_store_;
  mutable std::mutex store_mu_;
  std::atomic<int64_t> snapshot_swaps_{0};

  std::unique_ptr<PredictionCache> cache_;  // null when disabled
  StatsRecorder stats_;
  par::ThreadPool* pool_ = nullptr;

  std::mutex queue_mu_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  // Drain ticks currently holding a concurrency slot / still running
  // (both guarded by queue_mu_). The destructor waits on drained_cv_ for
  // inflight_ticks_ to hit zero so no task outlives the engine.
  int64_t active_ticks_ = 0;
  int64_t inflight_ticks_ = 0;
  std::condition_variable drained_cv_;
};

}  // namespace retia::serve

#endif  // RETIA_SERVE_ENGINE_H_
