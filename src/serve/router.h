#ifndef RETIA_SERVE_ROUTER_H_
#define RETIA_SERVE_ROUTER_H_

// retia::serve::Router — the sharded serving tier's front door
// (docs/SERVING_TOPOLOGY.md). A Router owns one ReplicaChannel per model
// replica and a consistent-hash ShardMap over the subject entity: every
// query routes to exactly one replica, so a response is always answered
// by a single snapshot epoch (old-or-new across a hot-swap, never mixed).
//
// Channels come in two flavours with identical semantics: LocalChannel
// calls a ServeEngine in-process (the unit-test and single-process path),
// SocketChannel speaks the serve::wire binary protocol over an AF_UNIX
// stream socket to a ReplicaServer in another process. The router treats
// them uniformly; serve_router_test pins that the two answer bit-identical
// results for the same snapshot.
//
// Failure model: a replica that cannot be reached (connect/io/timeout
// failure) degrades its arc of the ring to kShardUnavailable. The router
// performs no failover — a dead shard is a visible error, not silent load
// shift — and reconnects lazily, so a restarted replica heals without
// router intervention.
//
// Coordinated hot-swap: SwapAll() pushes one snapshot prefix to every
// replica and succeeds only when all of them installed it and agree on the
// resulting epoch. Each replica's own SwapSnapshot is zero-downtime, so no
// request is dropped while the fleet transitions; during the transition a
// response comes from whichever epoch its one replica is on.

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/engine.h"
#include "serve/query.h"
#include "serve/shard_map.h"
#include "serve/stats.h"
#include "serve/wire.h"

namespace retia::serve {

// Router knobs, parsed once from the environment by FromEnv (config.cc);
// the defaults here are the single source of truth.
struct RouterConfig {
  // Ring points per replica on the consistent-hash ring. More vnodes
  // smooth the key distribution at the cost of a larger (still tiny) ring.
  int64_t virtual_nodes = 64;
  // Pooled sockets per SocketChannel replica; concurrent queries beyond
  // this block for a free connection.
  int64_t connections_per_replica = 4;
  // SO_RCVTIMEO per reply read: a replica that takes longer (or was
  // SIGKILLed mid-request) resolves to kShardUnavailable instead of
  // hanging the router.
  int64_t timeout_ms = 5000;
  // Submission-window coalescing for Route(): when > 0, concurrent
  // same-shard queries arriving within this many microseconds are
  // coalesced into one QueryBatch wire frame instead of one round-trip
  // each. 0 (the default) keeps the historical direct per-query path —
  // existing single-threaded callers see zero added latency. Explicit
  // RouteBatch() calls always batch, regardless of this knob.
  int64_t batch_window_us = 0;
  // Cap on queries per QueryBatch frame (both for the window coalescer
  // and for RouteBatch chunking). Bounded by wire::kMaxWireBatch.
  int64_t max_wire_batch = 64;

  // Parses RETIA_SERVE_VNODES, RETIA_SERVE_CONNECTIONS,
  // RETIA_SERVE_TIMEOUT_MS, RETIA_SERVE_BATCH_WINDOW_US,
  // RETIA_SERVE_MAX_WIRE_BATCH through util::Env.
  static RouterConfig FromEnv();
};

// One replica as the router sees it. Implementations must be safe to call
// from many router threads concurrently.
class ReplicaChannel {
 public:
  virtual ~ReplicaChannel() = default;

  // Answers one typed query on this replica.
  virtual Result<QueryResult> Submit(const Query& query) = 0;

  // Answers a batch of typed queries in one exchange; results align with
  // `queries` by index, and per-query failures degrade only their own
  // slot (a whole-channel failure replicates its error into every slot).
  // `queries` must not exceed wire::kMaxWireBatch — the router chunks.
  virtual std::vector<Result<QueryResult>> SubmitBatch(
      const std::vector<Query>& queries) = 0;

  // Installs the snapshot at `prefix` and returns the replica's post-swap
  // epoch.
  virtual Result<int64_t> Swap(const std::string& prefix) = 0;

  // The replica's ServeStats JSON blob.
  virtual Result<std::string> StatsJson() = 0;

  // Liveness probe; returns the replica's current snapshot epoch.
  virtual Result<int64_t> Ping() = 0;
};

// In-process channel over a ServeEngine the caller owns. `loader` rebuilds
// an EngineSnapshot from a swap request's prefix (may be null, in which
// case Swap reports kInternal). Engine must outlive the channel.
class LocalChannel : public ReplicaChannel {
 public:
  LocalChannel(ServeEngine* engine, SnapshotLoader loader = nullptr);

  Result<QueryResult> Submit(const Query& query) override;
  std::vector<Result<QueryResult>> SubmitBatch(
      const std::vector<Query>& queries) override;
  Result<int64_t> Swap(const std::string& prefix) override;
  Result<std::string> StatsJson() override;
  Result<int64_t> Ping() override;

 private:
  ServeEngine* engine_;
  SnapshotLoader loader_;
  std::mutex swap_mu_;  // serializes loader + SwapSnapshot pairs
};

// Channel to a ReplicaServer over an AF_UNIX stream socket, speaking the
// serve::wire protocol. Maintains a lazy pool of
// config.connections_per_replica sockets; a failed connection is closed
// and re-dialed on the next checkout, so a restarted replica heals
// transparently. Every reply read is bounded by config.timeout_ms.
class SocketChannel : public ReplicaChannel {
 public:
  SocketChannel(std::string socket_path, const RouterConfig& config);
  ~SocketChannel() override;

  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  Result<QueryResult> Submit(const Query& query) override;
  // One kQueryBatch round-trip over a pooled connection; the replica's
  // kResultBatch reply carries per-query statuses. A channel failure (or
  // a reply whose entry count mismatches) degrades every slot.
  std::vector<Result<QueryResult>> SubmitBatch(
      const std::vector<Query>& queries) override;
  Result<int64_t> Swap(const std::string& prefix) override;
  Result<std::string> StatsJson() override;
  Result<int64_t> Ping() override;

  // Sends a shutdown frame (best-effort) so the replica can exit cleanly.
  void Shutdown();

 private:
  // One round-trip: checkout a connection, write `request`, read one
  // reply frame of type `expect`. On any channel error the connection is
  // discarded. Swap round-trips disable the read timeout (snapshot loads
  // legitimately exceed it).
  Result<wire::Frame> RoundTrip(wire::MsgType type,
                                const std::vector<uint8_t>& body,
                                wire::MsgType expect, bool timed = true);

  int Checkout(std::string* error);  // -1 on failure
  void Return(int fd, bool healthy);

  std::string socket_path_;
  RouterConfig config_;
  std::mutex mu_;
  std::vector<int> idle_;    // pooled healthy connections
  int64_t outstanding_ = 0;  // checked-out connections
};

// The shard router. Thread-safe: Route/SwapAll/StatsJson/PingAll may be
// called concurrently from any threads.
class Router {
 public:
  // `replicas[i]` serves shard id i on the ring.
  Router(std::vector<std::unique_ptr<ReplicaChannel>> replicas,
         const RouterConfig& config);

  // Routes the query to ShardFor(query.s) and returns that replica's
  // answer with QueryResult::shard stamped. Validation errors come back
  // from the replica's engine with the usual taxonomy; channel failures
  // surface as kShardUnavailable. With config.batch_window_us > 0 the
  // call joins its shard's submission window: the first arrival leads,
  // waits up to the window (or until max_wire_batch queries pile up) for
  // concurrent same-shard callers, and flushes everyone in coalesced
  // QueryBatch frames — per-query answers are bit-identical to the
  // direct path, only the wire framing changes.
  Result<QueryResult> Route(const Query& query);

  // Routes a caller-assembled batch: queries are grouped by shard, each
  // group ships in QueryBatch frames of at most config.max_wire_batch,
  // and the answers come back aligned with `queries` by index (shard
  // stamped, same per-query semantics as Route). One frame per
  // same-shard group instead of one round-trip per query is the serving
  // tier's high-throughput path (see docs/SERVING_TOPOLOGY.md).
  std::vector<Result<QueryResult>> RouteBatch(
      const std::vector<Query>& queries);

  // Coordinated hot-swap: pushes `prefix` to every replica (serially, so
  // a failure aborts before touching the remaining fleet) and returns the
  // common post-swap epoch. Fails with the first replica's error, or
  // kInternal if replicas disagree on the epoch afterwards.
  Result<int64_t> SwapAll(const std::string& prefix);

  // Per-replica liveness probe; element i is replica i's epoch.
  std::vector<Result<int64_t>> PingAll();

  // {"router": {...aggregated router stats...}, "replicas": [...]} — the
  // replicas array holds each replica's own ServeStats JSON (or an error
  // string for unreachable ones).
  std::string StatsJson();

  int64_t num_shards() const { return shard_map_.num_shards(); }
  int64_t ShardFor(int64_t subject) const {
    return shard_map_.ShardFor(subject);
  }

 private:
  // Per-shard submission window (active only when batch_window_us > 0).
  // The first Route() caller to find no leader becomes the leader: it
  // waits out the window, then swaps the pending queries/promises out
  // under the lock and flushes them through SubmitBatch, fulfilling every
  // waiter's promise. Queries only join or leave the window under `mu`,
  // so a query is always flushed by exactly one leader.
  struct Coalescer {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Query> queries;
    std::vector<std::promise<Result<QueryResult>>> promises;
    bool leader_active = false;
  };

  // Ships one shard's queries in frames of at most max_wire_batch and
  // stamps the shard on ok results. `out[slots[i]]` receives query i's
  // answer.
  void ShipToShard(int64_t shard, const std::vector<Query>& queries,
                   const std::vector<size_t>& slots,
                   std::vector<std::optional<Result<QueryResult>>>* out);
  Result<QueryResult> CoalescedRoute(const Query& query, int64_t shard);

  RouterConfig config_;
  std::vector<std::unique_ptr<ReplicaChannel>> replicas_;
  ShardMap shard_map_;
  std::vector<std::unique_ptr<Coalescer>> coalescers_;  // one per shard
  StatsRecorder stats_;  // StatsScope::kRouter
};

}  // namespace retia::serve

#endif  // RETIA_SERVE_ROUTER_H_
