#include "serve/stats.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/obs.h"
#include "util/check.h"

namespace retia::serve {

namespace {

// Latency at quantile `q` in [0, 1] of an unsorted sample (nearest-rank).
double Quantile(std::vector<float> sample, double q) {
  if (sample.empty()) return 0.0;
  const auto rank = static_cast<size_t>(q * (sample.size() - 1));
  std::nth_element(sample.begin(), sample.begin() + rank, sample.end());
  return sample[rank];
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string ServeStats::ToJson() const {
  std::ostringstream out;
  out << "{\"completed\":" << completed
      << ",\"wall_seconds\":" << FormatDouble(wall_seconds)
      << ",\"qps\":" << FormatDouble(qps)
      << ",\"p50_latency_ms\":" << FormatDouble(p50_latency_ms)
      << ",\"p99_latency_ms\":" << FormatDouble(p99_latency_ms)
      << ",\"p50_queue_wait_ms\":" << FormatDouble(p50_queue_wait_ms)
      << ",\"p99_queue_wait_ms\":" << FormatDouble(p99_queue_wait_ms)
      << ",\"p50_compute_ms\":" << FormatDouble(p50_compute_ms)
      << ",\"p99_compute_ms\":" << FormatDouble(p99_compute_ms)
      << ",\"batches\":" << batches
      << ",\"mean_batch_size\":" << FormatDouble(mean_batch_size)
      << ",\"batch_size_histogram\":[";
  for (size_t b = 1; b < batch_size_histogram.size(); ++b) {
    if (b > 1) out << ",";
    out << batch_size_histogram[b];
  }
  out << "],\"cache\":{\"hits\":" << cache.hits
      << ",\"misses\":" << cache.misses
      << ",\"evictions\":" << cache.evictions
      << ",\"entries\":" << cache.entries
      << ",\"hit_rate\":" << FormatDouble(cache_hit_rate) << "}"
      << ",\"snapshot_swaps\":" << snapshot_swaps << "}";
  return out.str();
}

StatsRecorder::StatsRecorder(int64_t max_batch, StatsScope scope)
    : scope_(scope), batch_hist_(static_cast<size_t>(max_batch) + 1, 0) {
  RETIA_CHECK(max_batch > 0);
}

void StatsRecorder::RecordRequest(double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  latencies_ms_.push_back(static_cast<float>(latency_ms));
}

void StatsRecorder::RecordQueueWait(double wait_ms) {
  const auto us = static_cast<int64_t>(wait_ms * 1000.0);
  if (scope_ == StatsScope::kEngine) {
    RETIA_OBS_HIST_RECORD("serve.queue_wait.us", us);
  } else {
    RETIA_OBS_HIST_RECORD("serve.router.queue_wait.us", us);
  }
  std::lock_guard<std::mutex> lock(mu_);
  queue_wait_ms_.push_back(static_cast<float>(wait_ms));
}

void StatsRecorder::RecordCompute(double compute_ms) {
  const auto us = static_cast<int64_t>(compute_ms * 1000.0);
  if (scope_ == StatsScope::kEngine) {
    RETIA_OBS_HIST_RECORD("serve.compute.us", us);
  } else {
    RETIA_OBS_HIST_RECORD("serve.router.compute.us", us);
  }
  std::lock_guard<std::mutex> lock(mu_);
  compute_ms_.push_back(static_cast<float>(compute_ms));
}

void StatsRecorder::RecordBatch(int64_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  RETIA_CHECK(batch_size > 0);
  RETIA_CHECK_LT(batch_size, static_cast<int64_t>(batch_hist_.size()));
  ++batch_hist_[batch_size];
}

ServeStats StatsRecorder::Snapshot(const CacheCounters& cache) const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats stats;
  stats.completed = static_cast<int64_t>(latencies_ms_.size());
  stats.wall_seconds = timer_.Seconds();
  stats.qps = stats.wall_seconds > 0.0 ? stats.completed / stats.wall_seconds
                                       : 0.0;
  stats.p50_latency_ms = Quantile(latencies_ms_, 0.50);
  stats.p99_latency_ms = Quantile(latencies_ms_, 0.99);
  stats.p50_queue_wait_ms = Quantile(queue_wait_ms_, 0.50);
  stats.p99_queue_wait_ms = Quantile(queue_wait_ms_, 0.99);
  stats.p50_compute_ms = Quantile(compute_ms_, 0.50);
  stats.p99_compute_ms = Quantile(compute_ms_, 0.99);
  stats.batch_size_histogram = batch_hist_;
  int64_t weighted = 0;
  for (size_t b = 1; b < batch_hist_.size(); ++b) {
    stats.batches += batch_hist_[b];
    weighted += static_cast<int64_t>(b) * batch_hist_[b];
  }
  stats.mean_batch_size =
      stats.batches > 0 ? static_cast<double>(weighted) / stats.batches : 0.0;
  stats.cache = cache;
  stats.cache_hit_rate = cache.HitRate();
  return stats;
}

void StatsRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  timer_.Reset();
  latencies_ms_.clear();
  queue_wait_ms_.clear();
  compute_ms_.clear();
  std::fill(batch_hist_.begin(), batch_hist_.end(), 0);
}

}  // namespace retia::serve
