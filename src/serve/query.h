#ifndef RETIA_SERVE_QUERY_H_
#define RETIA_SERVE_QUERY_H_

// Typed query surface of retia::serve (docs/SERVING_TOPOLOGY.md).
//
// One struct — serve::Query — is the unit of work everywhere in the
// serving tier: in-process callers hand it to ServeEngine::Submit, the
// router consistent-hashes on its subject to pick a replica, and the wire
// protocol serializes exactly its fields. Answers come back as
// serve::Result<QueryResult>: malformed or unroutable queries are reported
// through the StatusCode taxonomy instead of CHECK-failing, so a bad id
// arriving over a socket can never take a serving process down.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace retia::serve {

// One ranked prediction candidate (entity or relation id).
struct ScoredCandidate {
  int64_t id = 0;
  float score = 0.0f;

  friend bool operator==(const ScoredCandidate&,
                         const ScoredCandidate&) = default;
};

// Which decode path a query (or cached prediction) takes.
enum class QueryKind : uint8_t {
  kEntity = 0,    // (s, r, ?) -> entities
  kRelation = 1,  // (s, ?, o) -> relations
};

// Error taxonomy of the serving tier. Engine-level validation yields the
// kUnknown*/kBadTimestamp/kInvalidArgument codes; the distributed layer
// adds kShuttingDown (engine draining), kShardUnavailable (replica dead or
// unreachable), and kProtocolError (malformed wire frame). kInternal
// covers a decode that threw — reported, never rethrown across the API.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // k <= 0 or k > ServeConfig::max_k
  kUnknownEntity,     // subject/object id outside [0, num_entities)
  kUnknownRelation,   // relation id outside [0, 2 * num_relations)
  kBadTimestamp,      // negative serving timestamp
  kShuttingDown,      // engine is draining; request was not accepted
  kShardUnavailable,  // owning replica is down / unreachable / timed out
  kProtocolError,     // malformed, truncated, or wrong-version wire frame
  kInternal,          // decode raised; detail carries the message
};

// Stable short name of a code ("ok", "unknown_entity", ...), for logs,
// JSON stats, and tests.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kUnknownEntity: return "unknown_entity";
    case StatusCode::kUnknownRelation: return "unknown_relation";
    case StatusCode::kBadTimestamp: return "bad_timestamp";
    case StatusCode::kShuttingDown: return "shutting_down";
    case StatusCode::kShardUnavailable: return "shard_unavailable";
    case StatusCode::kProtocolError: return "protocol_error";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

// One serving query. `s` is always the subject entity — the routing key
// the cluster router consistent-hashes on. `r_or_o` is the relation id
// (kEntity, in [0, 2M): pass r + M for the inverse direction) or the
// object entity id (kRelation). `t` is the serving timestamp and `k` the
// requested ranking depth (<= ServeConfig::max_k).
struct Query {
  QueryKind kind = QueryKind::kEntity;
  int64_t s = 0;
  int64_t r_or_o = 0;
  int64_t t = 0;
  int64_t k = 1;

  static Query Entity(int64_t s, int64_t r, int64_t t, int64_t k) {
    return {QueryKind::kEntity, s, r, t, k};
  }
  static Query Relation(int64_t s, int64_t o, int64_t t, int64_t k) {
    return {QueryKind::kRelation, s, o, t, k};
  }

  friend bool operator==(const Query&, const Query&) = default;
};

// Answer to one Query: the k best candidates, best first. `epoch` is the
// snapshot epoch (ServeEngine::snapshot_swaps() at decode time) that
// produced the candidates — every candidate of one result comes from that
// single epoch, never a mix (the hot-swap contract). `shard` is filled by
// the router with the answering replica's index; -1 for in-process calls.
struct QueryResult {
  std::vector<ScoredCandidate> candidates;
  bool cache_hit = false;
  int64_t epoch = 0;
  int32_t shard = -1;
};

// Status-or-value of one serving operation. [[nodiscard]] so no error can
// be silently dropped: check ok() before touching value().
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from a value, so `return QueryResult{...};` reads naturally.
  Result(T value) : code_(StatusCode::kOk), value_(std::move(value)) {}

  static Result Error(StatusCode code, std::string detail) {
    Result r;
    r.code_ = code;
    r.detail_ = std::move(detail);
    return r;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& detail() const { return detail_; }

  // value() requires ok(); an error Result has no value.
  const T& value() const { return *value_; }
  T& value() { return *value_; }
  T&& take() { return std::move(*value_); }

  // "ok", or "<code_name>: <detail>".
  std::string ToString() const {
    if (ok()) return "ok";
    return std::string(StatusCodeName(code_)) + ": " + detail_;
  }

 private:
  Result() : code_(StatusCode::kInternal) {}

  StatusCode code_;
  std::string detail_;
  std::optional<T> value_;
};

}  // namespace retia::serve

#endif  // RETIA_SERVE_QUERY_H_
