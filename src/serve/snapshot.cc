#include "serve/snapshot.h"

#include <string>
#include <utility>

#include "ckpt/legacy.h"
#include "ckpt/model_io.h"

namespace retia::serve {

namespace {

// Loads the legacy snapshot pair: <prefix>.ckpt in RETIACKPT1 format plus
// the <prefix>.meta sidecar. The sidecar keys match the meta section of
// v2 artifacts, so the config decoder is shared.
ckpt::Result LoadLegacySnapshot(const std::string& prefix,
                                std::unique_ptr<core::RetiaModel>* model,
                                std::string* dataset_name) {
  ckpt::Sidecar sidecar;
  RETIA_CKPT_RETURN_IF_ERROR(
      ckpt::ReadLegacySidecar(prefix + ".meta", &sidecar));
  std::string version;
  RETIA_CKPT_RETURN_IF_ERROR(
      ckpt::SidecarLookup(sidecar, "format_version", &version));
  if (version != "1") {
    return ckpt::Result::Error(
        ckpt::ErrorCode::kBadVersion,
        "unsupported snapshot format_version '" + version + "' in " + prefix +
            ".meta");
  }
  core::RetiaConfig config;
  RETIA_CKPT_RETURN_IF_ERROR(ckpt::RetiaConfigFromMeta(sidecar, &config));

  auto loaded = std::make_unique<core::RetiaModel>(config);
  RETIA_CKPT_RETURN_IF_ERROR(
      ckpt::ReadLegacyCheckpointInto(loaded.get(), prefix + ".ckpt"));

  if (dataset_name != nullptr) {
    RETIA_CKPT_RETURN_IF_ERROR(
        ckpt::SidecarLookup(sidecar, "dataset_name", dataset_name));
  }
  *model = std::move(loaded);
  return ckpt::Result::Ok();
}

}  // namespace

ckpt::Result SaveModelSnapshot(const core::RetiaModel& model,
                               const std::string& prefix,
                               const std::string& dataset_name) {
  return ckpt::SaveModelArtifact(model, prefix + ".ckpt", dataset_name);
}

ckpt::Result SaveQuantizedModelSnapshot(const core::RetiaModel& model,
                                        const std::string& prefix,
                                        const std::string& dataset_name) {
  return ckpt::SaveQuantizedModelArtifact(model, prefix + ".ckpt",
                                          dataset_name);
}

ckpt::Result LoadModelSnapshot(const std::string& prefix,
                               std::unique_ptr<core::RetiaModel>* model,
                               std::string* dataset_name) {
  std::unique_ptr<core::RetiaModel> loaded;
  ckpt::Result r =
      ckpt::LoadModelArtifact(prefix + ".ckpt", &loaded, dataset_name);
  if (r.code() == ckpt::ErrorCode::kLegacyFormat) {
    r = LoadLegacySnapshot(prefix, &loaded, dataset_name);
  }
  RETIA_CKPT_RETURN_IF_ERROR(std::move(r));
  loaded->SetTraining(false);
  *model = std::move(loaded);
  return ckpt::Result::Ok();
}

}  // namespace retia::serve
