#include "serve/snapshot.h"

#include <cstdio>
#include <string>

#include "nn/checkpoint.h"
#include "util/check.h"

namespace retia::serve {

namespace {

constexpr char kFormatVersion[] = "1";

std::string FloatString(float v) {
  char buf[32];
  // %.9g round-trips any float32 exactly.
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

int64_t IntValue(const nn::Sidecar& sidecar, const std::string& key) {
  return std::stoll(nn::SidecarValue(sidecar, key));
}

float FloatValue(const nn::Sidecar& sidecar, const std::string& key) {
  return std::stof(nn::SidecarValue(sidecar, key));
}

bool BoolValue(const nn::Sidecar& sidecar, const std::string& key) {
  const std::string& v = nn::SidecarValue(sidecar, key);
  RETIA_CHECK_MSG(v == "0" || v == "1", "bad bool sidecar value for " << key);
  return v == "1";
}

}  // namespace

void SaveModelSnapshot(const core::RetiaModel& model,
                       const std::string& prefix,
                       const std::string& dataset_name) {
  const core::RetiaConfig& c = model.config();
  nn::Sidecar sidecar = {
      {"format_version", kFormatVersion},
      {"dataset_name", dataset_name},
      {"num_entities", std::to_string(c.num_entities)},
      {"num_relations", std::to_string(c.num_relations)},
      {"dim", std::to_string(c.dim)},
      {"history_len", std::to_string(c.history_len)},
      {"rgcn_layers", std::to_string(c.rgcn_layers)},
      {"num_bases", std::to_string(c.num_bases)},
      {"conv_kernels", std::to_string(c.conv_kernels)},
      {"conv_kernel_size", std::to_string(c.conv_kernel_size)},
      {"dropout", FloatString(c.dropout)},
      {"lambda_entity", FloatString(c.lambda_entity)},
      {"use_eam", c.use_eam ? "1" : "0"},
      {"use_ram", c.use_ram ? "1" : "0"},
      {"use_tim", c.use_tim ? "1" : "0"},
      {"hyper_mode", std::to_string(static_cast<int>(c.hyper_mode))},
      {"relation_mode", std::to_string(static_cast<int>(c.relation_mode))},
      {"time_variability_decode", c.time_variability_decode ? "1" : "0"},
      {"use_static_constraint", c.use_static_constraint ? "1" : "0"},
      {"static_angle_step_deg", FloatString(c.static_angle_step_deg)},
      {"static_weight", FloatString(c.static_weight)},
      // The seed reproduces the frozen (non-parameter) ablation embeddings,
      // which are derived from the RNG at construction.
      {"seed", std::to_string(c.seed)},
  };
  nn::SaveSidecar(prefix + ".meta", sidecar);
  nn::SaveCheckpoint(model, prefix + ".ckpt");
}

std::unique_ptr<core::RetiaModel> LoadModelSnapshot(
    const std::string& prefix, std::string* dataset_name) {
  const nn::Sidecar sidecar = nn::LoadSidecar(prefix + ".meta");
  RETIA_CHECK_MSG(
      nn::SidecarValue(sidecar, "format_version") == kFormatVersion,
      "unsupported snapshot format in " << prefix << ".meta");
  if (dataset_name != nullptr) {
    *dataset_name = nn::SidecarValue(sidecar, "dataset_name");
  }
  core::RetiaConfig config;
  config.num_entities = IntValue(sidecar, "num_entities");
  config.num_relations = IntValue(sidecar, "num_relations");
  config.dim = IntValue(sidecar, "dim");
  config.history_len = IntValue(sidecar, "history_len");
  config.rgcn_layers = IntValue(sidecar, "rgcn_layers");
  config.num_bases = IntValue(sidecar, "num_bases");
  config.conv_kernels = IntValue(sidecar, "conv_kernels");
  config.conv_kernel_size = IntValue(sidecar, "conv_kernel_size");
  config.dropout = FloatValue(sidecar, "dropout");
  config.lambda_entity = FloatValue(sidecar, "lambda_entity");
  config.use_eam = BoolValue(sidecar, "use_eam");
  config.use_ram = BoolValue(sidecar, "use_ram");
  config.use_tim = BoolValue(sidecar, "use_tim");
  config.hyper_mode =
      static_cast<core::HyperMode>(IntValue(sidecar, "hyper_mode"));
  config.relation_mode =
      static_cast<core::RelationMode>(IntValue(sidecar, "relation_mode"));
  config.time_variability_decode =
      BoolValue(sidecar, "time_variability_decode");
  config.use_static_constraint = BoolValue(sidecar, "use_static_constraint");
  config.static_angle_step_deg = FloatValue(sidecar, "static_angle_step_deg");
  config.static_weight = FloatValue(sidecar, "static_weight");
  config.seed = static_cast<uint64_t>(IntValue(sidecar, "seed"));

  auto model = std::make_unique<core::RetiaModel>(config);
  nn::LoadCheckpoint(model.get(), prefix + ".ckpt");
  model->SetTraining(false);
  return model;
}

}  // namespace retia::serve
