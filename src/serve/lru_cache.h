#ifndef RETIA_SERVE_LRU_CACHE_H_
#define RETIA_SERVE_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/query.h"

namespace retia::serve {

// Cache key of one prediction: the serving timestamp plus the two query
// ids (subject+relation for entity queries, subject+object for relation
// queries). Because serving decodes against frozen snapshot states, a key
// fully determines the prediction, so cached entries never go stale until
// the snapshot itself is replaced.
struct CacheKey {
  int64_t t = 0;
  int64_t a = 0;
  int64_t b = 0;
  QueryKind kind = QueryKind::kEntity;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const {
    // splitmix64-style mixing of the four fields.
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (uint64_t v :
         {static_cast<uint64_t>(k.t), static_cast<uint64_t>(k.a),
          static_cast<uint64_t>(k.b), static_cast<uint64_t>(k.kind)}) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 27;
    }
    return static_cast<size_t>(h);
  }
};

// Point-in-time counter snapshot of a PredictionCache.
struct CacheCounters {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t entries = 0;

  double HitRate() const {
    const int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

// Sharded LRU map from CacheKey to a ranked candidate list. Each shard is
// an independent (mutex, list, index) triple, so concurrent lookups of
// different keys mostly touch different locks; eviction is LRU *per shard*
// with capacity split evenly across shards.
class PredictionCache {
 public:
  // `capacity` is the total entry budget (>= num_shards); `num_shards`
  // must be > 0. Use one shard when exact global LRU order matters.
  PredictionCache(int64_t capacity, int64_t num_shards = 8);

  // Copies the cached candidates into `*out` and promotes the entry to
  // most-recently-used. Counts one hit or one miss. When `epoch` is
  // non-null it receives the snapshot epoch recorded at Put time.
  bool Get(const CacheKey& key, std::vector<ScoredCandidate>* out,
           int64_t* epoch = nullptr);

  // Inserts or overwrites as most-recently-used, evicting the shard's LRU
  // entry when the shard is at capacity. `epoch` tags the entry with the
  // snapshot epoch that decoded it (SwapSnapshot clears the cache, so a
  // hit's epoch is the serving epoch — the tag makes that auditable).
  //
  // `generation` fences the insert against Clear(): pass the value of
  // generation() observed *before* computing `value`, and the Put becomes
  // a no-op if a Clear ran in between — checked under the shard lock, so
  // an in-flight decode that raced a snapshot swap can never re-insert a
  // stale prediction after the swap's Clear. kAnyGeneration skips the
  // fence (direct cache users with no swap concept).
  static constexpr uint64_t kAnyGeneration = ~0ull;
  void Put(const CacheKey& key, std::vector<ScoredCandidate> value,
           int64_t epoch = 0, uint64_t generation = kAnyGeneration);

  // Monotonic count of Clear() calls; see Put.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // Summed counters across shards.
  CacheCounters Counters() const;

  // Drops all entries (counters are kept).
  void Clear();

  int64_t num_shards() const { return static_cast<int64_t>(shards_.size()); }

 private:
  struct Entry {
    CacheKey key;
    std::vector<ScoredCandidate> value;
    int64_t epoch = 0;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> order;  // front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  Shard& ShardFor(const CacheKey& key);

  int64_t shard_capacity_;
  std::atomic<uint64_t> generation_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace retia::serve

#endif  // RETIA_SERVE_LRU_CACHE_H_
