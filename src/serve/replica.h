#ifndef RETIA_SERVE_REPLICA_H_
#define RETIA_SERVE_REPLICA_H_

// retia::serve::ReplicaServer — one model replica's wire-protocol
// endpoint (docs/SERVING_TOPOLOGY.md). Listens on an AF_UNIX stream
// socket, decodes serve::wire frames, and answers them against a
// ServeEngine the host owns: queries go through ServeEngine::Submit (the
// typed, never-CHECK-failing entry point), swap requests run the host's
// SnapshotLoader and ServeEngine::SwapSnapshot, stats and ping report the
// engine's counters and epoch.
//
// Robustness contract: nothing a peer can put on the socket crashes the
// process. Malformed frames are answered with a kProtocolError reply
// (when the stream is still framable) or the connection is dropped; both
// bump `serve.replica.protocol_errors`. One thread per accepted
// connection — the router pools a handful of connections per replica, so
// the thread count stays small and requests on separate connections batch
// together inside the engine as usual.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/engine.h"
#include "serve/query.h"
#include "serve/wire.h"

namespace retia::serve {

class ReplicaServer {
 public:
  // `engine` must outlive the server; `loader` (nullable) rebuilds an
  // EngineSnapshot from a swap request's prefix. The socket path is
  // unlinked before binding, so a stale socket from a killed predecessor
  // does not block startup.
  ReplicaServer(ServeEngine* engine, SnapshotLoader loader,
                std::string socket_path);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  // Binds, listens, and starts the accept loop. Returns an error (rather
  // than dying) when the socket cannot be created.
  Result<bool> Start();

  // Blocks until a peer sends a kShutdown frame or Stop() is called.
  void WaitForShutdown();

  // Stops accepting, closes every connection, joins all threads, and
  // unlinks the socket. Idempotent; also run by the destructor.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  // Answers one decoded frame on `fd`. Returns false when the connection
  // should close (shutdown frame or unframable stream).
  bool HandleFrame(int fd, const wire::Frame& frame);

  ServeEngine* engine_;
  SnapshotLoader loader_;
  std::string socket_path_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;  // guards conn_threads_, conn_fds_, stopping/shutdown flags
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  std::mutex swap_mu_;  // serializes loader + SwapSnapshot pairs
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  std::condition_variable shutdown_cv_;
};

}  // namespace retia::serve

#endif  // RETIA_SERVE_REPLICA_H_
