#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "grad_check.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace retia::tensor {
namespace {

using ::retia::testing::CheckGradients;
using ::retia::testing::TestTensor;

// ---------------------------------------------------------------------------
// Construction and introspection.

TEST(TensorTest, ZerosHasCorrectShapeAndData) {
  Tensor t = Tensor::Zeros({3, 4});
  EXPECT_EQ(t.Rank(), 2);
  EXPECT_EQ(t.Dim(0), 3);
  EXPECT_EQ(t.Dim(1), 4);
  EXPECT_EQ(t.NumElements(), 12);
  for (int64_t i = 0; i < 12; ++i) EXPECT_EQ(t.Data()[i], 0.0f);
}

TEST(TensorTest, FromVectorChecksElementCount) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.At(0, 1), 2.0f);
  EXPECT_EQ(t.At(1, 0), 3.0f);
  EXPECT_DEATH(Tensor::FromVector({2, 2}, {1, 2, 3}), "expected");
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(2.5f).Item(), 2.5f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({5}, -1.5f);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t.Data()[i], -1.5f);
}

TEST(TensorTest, UndefinedTensorIsNotDefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, DetachDropsAutogradHistory) {
  Tensor a = TestTensor({2, 2}, 1);
  Tensor b = Add(a, a);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.RequiresGrad());
  EXPECT_EQ(d.At(0, 0), b.At(0, 0));
  // Mutating the detached copy must not change the original.
  d.At(0, 0) += 1.0f;
  EXPECT_NE(d.At(0, 0), b.At(0, 0));
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor::Zeros({2, 3}).ShapeString(), "[2, 3]");
}

// ---------------------------------------------------------------------------
// Forward correctness of elementwise arithmetic.

TEST(OpsForwardTest, AddSubMulElementwise) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  EXPECT_EQ(Add(a, b).At(1, 1), 44.0f);
  EXPECT_EQ(Sub(b, a).At(0, 0), 9.0f);
  EXPECT_EQ(Mul(a, b).At(1, 0), 90.0f);
}

TEST(OpsForwardTest, ShapeMismatchDies) {
  Tensor a = Tensor::Zeros({2, 2});
  Tensor b = Tensor::Zeros({2, 3});
  EXPECT_DEATH(Add(a, b), "shape mismatch");
}

TEST(OpsForwardTest, AddRowBroadcast) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = AddRowBroadcast(a, bias);
  EXPECT_EQ(c.At(0, 0), 11.0f);
  EXPECT_EQ(c.At(1, 2), 36.0f);
}

TEST(OpsForwardTest, ScaleAndNeg) {
  Tensor a = Tensor::FromVector({3}, {1, -2, 3});
  EXPECT_EQ(Scale(a, 2.0f).Data()[1], -4.0f);
  EXPECT_EQ(Neg(a).Data()[2], -3.0f);
}

TEST(OpsForwardTest, ActivationsMatchClosedForms) {
  Tensor a = Tensor::FromVector({4}, {-2.0f, -0.5f, 0.0f, 1.5f});
  Tensor sig = Sigmoid(a);
  Tensor tanh = Tanh(a);
  Tensor relu = Relu(a);
  for (int64_t i = 0; i < 4; ++i) {
    const float x = a.Data()[i];
    EXPECT_NEAR(sig.Data()[i], 1.0f / (1.0f + std::exp(-x)), 1e-6f);
    EXPECT_NEAR(tanh.Data()[i], std::tanh(x), 1e-6f);
    EXPECT_EQ(relu.Data()[i], x > 0 ? x : 0.0f);
  }
}

TEST(OpsForwardTest, CosSin) {
  Tensor a = Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_NEAR(Cos(a).Data()[0], 1.0f, 1e-6f);
  EXPECT_NEAR(Sin(a).Data()[1], std::sin(1.0f), 1e-6f);
}

TEST(OpsForwardTest, RReluEvalUsesMeanSlope) {
  Tensor a = Tensor::FromVector({2}, {-1.0f, 2.0f});
  Tensor out = RRelu(a, 0.2f, 0.4f, /*training=*/false, nullptr);
  EXPECT_NEAR(out.Data()[0], -0.3f, 1e-6f);
  EXPECT_EQ(out.Data()[1], 2.0f);
}

TEST(OpsForwardTest, RReluTrainingSlopeWithinRange) {
  util::Rng rng(3);
  Tensor a = Tensor::Full({100}, -1.0f);
  Tensor out = RRelu(a, 1.0f / 8.0f, 1.0f / 3.0f, /*training=*/true, &rng);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_LE(out.Data()[i], -1.0f / 8.0f + 1e-6f);
    EXPECT_LE(-1.0f / 3.0f - 1e-6f, out.Data()[i]);
  }
}

TEST(OpsForwardTest, DropoutEvalIsIdentity) {
  Tensor a = TestTensor({3, 3}, 7, /*requires_grad=*/false);
  Tensor out = Dropout(a, 0.5f, /*training=*/false, nullptr);
  for (int64_t i = 0; i < 9; ++i) EXPECT_EQ(out.Data()[i], a.Data()[i]);
}

TEST(OpsForwardTest, DropoutTrainingZeroesAndRescales) {
  util::Rng rng(5);
  Tensor a = Tensor::Full({1000}, 1.0f);
  Tensor out = Dropout(a, 0.5f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    if (out.Data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(out.Data()[i], 2.0f, 1e-6f);  // inverted dropout scaling
    }
  }
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
}

TEST(OpsForwardTest, SumAndMean) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).Item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).Item(), 2.5f);
}

// ---------------------------------------------------------------------------
// Matrix multiplication.

TEST(OpsForwardTest, MatMulKnownResult) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(OpsForwardTest, MatMulTransposeBMatchesMatMul) {
  Tensor a = TestTensor({4, 5}, 11, false);
  Tensor b = TestTensor({3, 5}, 12, false);
  Tensor direct = MatMulTransposeB(a, b);
  // Compare against MatMul with a manually transposed b.
  std::vector<float> bt(5 * 3);
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 5; ++j) bt[j * 3 + i] = b.At(i, j);
  Tensor ref = MatMul(a, Tensor::FromVector({5, 3}, bt));
  for (int64_t i = 0; i < 12; ++i)
    EXPECT_NEAR(direct.Data()[i], ref.Data()[i], 1e-5f);
}

TEST(OpsForwardTest, MatMulInnerDimMismatchDies) {
  EXPECT_DEATH(MatMul(Tensor::Zeros({2, 3}), Tensor::Zeros({4, 2})),
               "expected");
}

// ---------------------------------------------------------------------------
// Indexing / structure ops.

TEST(OpsForwardTest, GatherRows) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.Dim(0), 3);
  EXPECT_EQ(g.At(0, 0), 5.0f);
  EXPECT_EQ(g.At(1, 1), 2.0f);
  EXPECT_EQ(g.At(2, 1), 6.0f);
}

TEST(OpsForwardTest, GatherRowsOutOfRangeDies) {
  Tensor a = Tensor::Zeros({3, 2});
  EXPECT_DEATH(GatherRows(a, {3}), "expected");
}

TEST(OpsForwardTest, ScatterAddRowsAccumulatesDuplicates) {
  Tensor src = Tensor::FromVector({3, 2}, {1, 1, 2, 2, 3, 3});
  Tensor out = ScatterAddRows(src, {1, 1, 0}, 3);
  EXPECT_EQ(out.At(0, 0), 3.0f);
  EXPECT_EQ(out.At(1, 0), 3.0f);  // 1 + 2
  EXPECT_EQ(out.At(2, 0), 0.0f);
}

TEST(OpsForwardTest, ScaleRowsPerRow) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor out = ScaleRows(a, {2.0f, 0.5f});
  EXPECT_EQ(out.At(0, 1), 4.0f);
  EXPECT_EQ(out.At(1, 0), 1.5f);
}

TEST(OpsForwardTest, MulColBroadcast) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::FromVector({2, 1}, {10, -1});
  Tensor out = MulColBroadcast(a, s);
  EXPECT_EQ(out.At(0, 1), 20.0f);
  EXPECT_EQ(out.At(1, 0), -3.0f);
}

TEST(OpsForwardTest, ConcatColsAndRows) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor cc = ConcatCols(a, b);
  EXPECT_EQ(cc.Dim(1), 3);
  EXPECT_EQ(cc.At(0, 1), 3.0f);
  EXPECT_EQ(cc.At(1, 0), 2.0f);
  Tensor c = Tensor::FromVector({1, 1}, {7});
  Tensor cr = ConcatRows(a, c);
  EXPECT_EQ(cr.Dim(0), 3);
  EXPECT_EQ(cr.At(2, 0), 7.0f);
}

TEST(OpsForwardTest, SliceColsAndRows) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor sc = SliceCols(a, 1, 2);
  EXPECT_EQ(sc.At(0, 0), 2.0f);
  EXPECT_EQ(sc.At(1, 1), 6.0f);
  Tensor sr = SliceRows(a, 1, 1);
  EXPECT_EQ(sr.Dim(0), 1);
  EXPECT_EQ(sr.At(0, 2), 6.0f);
}

TEST(OpsForwardTest, ReshapePreservesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.At(2, 1), 6.0f);
  EXPECT_DEATH(Reshape(a, {4, 2}), "expected");
}

// ---------------------------------------------------------------------------
// Softmax and losses.

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Tensor a = TestTensor({4, 7}, 21, false);
  Tensor s = Softmax(a);
  for (int64_t i = 0; i < 4; ++i) {
    double total = 0.0;
    for (int64_t j = 0; j < 7; ++j) {
      total += s.At(i, j);
      EXPECT_GT(s.At(i, j), 0.0f);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(OpsForwardTest, SoftmaxInvariantToRowShift) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({1, 3}, {101, 102, 103});
  Tensor sa = Softmax(a);
  Tensor sb = Softmax(b);
  for (int64_t j = 0; j < 3; ++j)
    EXPECT_NEAR(sa.At(0, j), sb.At(0, j), 1e-6f);
}

TEST(OpsForwardTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = TestTensor({3, 5}, 23, false);
  Tensor ls = LogSoftmax(a);
  Tensor s = Softmax(a);
  for (int64_t i = 0; i < 15; ++i)
    EXPECT_NEAR(ls.Data()[i], std::log(s.Data()[i]), 1e-5f);
}

TEST(OpsForwardTest, CrossEntropyLogitsMatchesManual) {
  Tensor logits = Tensor::FromVector({2, 3}, {1, 2, 3, 3, 2, 1});
  Tensor loss = CrossEntropyLogits(logits, {2, 0});
  Tensor ls = LogSoftmax(logits);
  const float expected = -(ls.At(0, 2) + ls.At(1, 0)) / 2.0f;
  EXPECT_NEAR(loss.Item(), expected, 1e-5f);
}

TEST(OpsForwardTest, NllFromProbsPerfectPredictionNearZero) {
  Tensor p = Tensor::FromVector({1, 3}, {0.0f, 1.0f, 0.0f});
  EXPECT_NEAR(NllFromProbs(p, {1}).Item(), 0.0f, 1e-5f);
  EXPECT_GT(NllFromProbs(p, {0}).Item(), 10.0f);  // wrong target blows up
}

// ---------------------------------------------------------------------------
// Convolutions.

TEST(OpsForwardTest, Conv1dIdentityKernel) {
  // One input channel, kernel [0,1,0] with pad 1 reproduces the input.
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromVector({1, 1, 3}, {0, 1, 0});
  Tensor out = Conv1d(x, w, Tensor(), 1);
  ASSERT_EQ(out.Dim(2), 4);
  for (int64_t i = 0; i < 4; ++i)
    EXPECT_FLOAT_EQ(out.Data()[i], x.Data()[i]);
}

TEST(OpsForwardTest, Conv1dShiftKernelAndPadding) {
  // Kernel [1,0,0] with pad 1 shifts the signal right by one (zero-padded).
  Tensor x = Tensor::FromVector({1, 1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromVector({1, 1, 3}, {1, 0, 0});
  Tensor out = Conv1d(x, w, Tensor(), 1);
  EXPECT_FLOAT_EQ(out.Data()[0], 0.0f);
  EXPECT_FLOAT_EQ(out.Data()[1], 1.0f);
  EXPECT_FLOAT_EQ(out.Data()[3], 3.0f);
}

TEST(OpsForwardTest, Conv1dTwoChannelsSum) {
  Tensor x = Tensor::FromVector({1, 2, 2}, {1, 2, 10, 20});
  Tensor w = Tensor::FromVector({1, 2, 1}, {1, 1});
  Tensor out = Conv1d(x, w, Tensor(), 0);
  EXPECT_FLOAT_EQ(out.Data()[0], 11.0f);
  EXPECT_FLOAT_EQ(out.Data()[1], 22.0f);
}

TEST(OpsForwardTest, Conv1dBias) {
  Tensor x = Tensor::FromVector({1, 1, 2}, {0, 0});
  Tensor w = Tensor::FromVector({2, 1, 1}, {1, 1});
  Tensor bias = Tensor::FromVector({2}, {5, -3});
  Tensor out = Conv1d(x, w, bias, 0);
  EXPECT_FLOAT_EQ(out.Data()[0], 5.0f);
  EXPECT_FLOAT_EQ(out.Data()[2], -3.0f);
}

TEST(OpsForwardTest, Conv2dIdentityKernel) {
  Tensor x = Tensor::FromVector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor w = Tensor::FromVector({1, 1, 3, 3}, {0, 0, 0, 0, 1, 0, 0, 0, 0});
  Tensor out = Conv2d(x, w, Tensor(), 1);
  ASSERT_EQ(out.Dim(2), 2);
  ASSERT_EQ(out.Dim(3), 2);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out.Data()[i], x.Data()[i]);
}

TEST(OpsForwardTest, Conv2dBoxSum) {
  Tensor x = Tensor::Full({1, 1, 3, 3}, 1.0f);
  Tensor w = Tensor::Full({1, 1, 3, 3}, 1.0f);
  Tensor out = Conv2d(x, w, Tensor(), 1);
  // Center sees all 9 ones; corners see 4.
  EXPECT_FLOAT_EQ(out.Data()[4], 9.0f);
  EXPECT_FLOAT_EQ(out.Data()[0], 4.0f);
}

// ---------------------------------------------------------------------------
// Pairwise kernels.

TEST(OpsForwardTest, PairwiseNegL1KnownValues) {
  Tensor a = Tensor::FromVector({1, 2}, {0, 0});
  Tensor b = Tensor::FromVector({2, 2}, {1, 1, -2, 0});
  Tensor out = PairwiseNegL1(a, b);
  EXPECT_FLOAT_EQ(out.At(0, 0), -2.0f);
  EXPECT_FLOAT_EQ(out.At(0, 1), -2.0f);
}

TEST(OpsForwardTest, PairwiseComplexNegDistZeroDistanceGivesGamma) {
  Tensor q = Tensor::FromVector({1, 2}, {0.5f, -0.5f});
  Tensor out = PairwiseComplexNegDist(q, q, q, q, 3.0f);
  EXPECT_NEAR(out.At(0, 0), 3.0f, 1e-3f);
}

// ---------------------------------------------------------------------------
// Autograd: numerical gradient checks for every differentiable op.

TEST(GradTest, Add) {
  Tensor a = TestTensor({3, 4}, 31);
  Tensor b = TestTensor({3, 4}, 32);
  CheckGradients([&] { return Sum(Add(a, b)); }, {a, b});
}

TEST(GradTest, Sub) {
  Tensor a = TestTensor({3, 4}, 33);
  Tensor b = TestTensor({3, 4}, 34);
  CheckGradients([&] { return Sum(Sub(a, b)); }, {a, b});
}

TEST(GradTest, Mul) {
  Tensor a = TestTensor({3, 4}, 35);
  Tensor b = TestTensor({3, 4}, 36);
  CheckGradients([&] { return Sum(Mul(a, b)); }, {a, b});
}

TEST(GradTest, AddRowBroadcast) {
  Tensor a = TestTensor({3, 4}, 37);
  Tensor bias = TestTensor({4}, 38);
  CheckGradients([&] { return Sum(AddRowBroadcast(a, bias)); }, {a, bias});
}

TEST(GradTest, ScaleAndMean) {
  Tensor a = TestTensor({2, 5}, 39);
  CheckGradients([&] { return Mean(Scale(a, -2.5f)); }, {a});
}

TEST(GradTest, Sigmoid) {
  Tensor a = TestTensor({2, 3}, 41);
  CheckGradients([&] { return Sum(Sigmoid(a)); }, {a});
}

TEST(GradTest, Tanh) {
  Tensor a = TestTensor({2, 3}, 42);
  CheckGradients([&] { return Sum(Tanh(a)); }, {a});
}

TEST(GradTest, CosSin) {
  Tensor a = TestTensor({2, 3}, 43);
  CheckGradients([&] { return Sum(Add(Cos(a), Sin(a))); }, {a});
}

TEST(GradTest, RReluEvalMode) {
  Tensor a = TestTensor({2, 4}, 44);
  CheckGradients(
      [&] { return Sum(RRelu(a, 0.125f, 0.333f, false, nullptr)); }, {a});
}

TEST(GradTest, MatMul) {
  Tensor a = TestTensor({3, 4}, 45);
  Tensor b = TestTensor({4, 2}, 46);
  // Weight the output so the gradient is not uniform.
  Tensor w = TestTensor({3, 2}, 47, false);
  CheckGradients([&] { return Sum(Mul(MatMul(a, b), w)); }, {a, b});
}

TEST(GradTest, MatMulTransposeB) {
  Tensor a = TestTensor({3, 4}, 48);
  Tensor b = TestTensor({5, 4}, 49);
  Tensor w = TestTensor({3, 5}, 50, false);
  CheckGradients([&] { return Sum(Mul(MatMulTransposeB(a, b), w)); }, {a, b});
}

TEST(GradTest, GatherRows) {
  Tensor a = TestTensor({5, 3}, 51);
  Tensor w = TestTensor({4, 3}, 52, false);
  std::vector<int64_t> idx = {0, 2, 2, 4};
  CheckGradients([&] { return Sum(Mul(GatherRows(a, idx), w)); }, {a});
}

TEST(GradTest, ScatterAddRows) {
  Tensor a = TestTensor({4, 3}, 53);
  Tensor w = TestTensor({3, 3}, 54, false);
  std::vector<int64_t> idx = {1, 1, 0, 2};
  CheckGradients([&] { return Sum(Mul(ScatterAddRows(a, idx, 3), w)); }, {a});
}

TEST(GradTest, ScaleRows) {
  Tensor a = TestTensor({3, 4}, 55);
  std::vector<float> s = {0.5f, -1.0f, 2.0f};
  CheckGradients([&] { return Sum(ScaleRows(a, s)); }, {a});
}

TEST(GradTest, MulColBroadcast) {
  Tensor a = TestTensor({3, 4}, 56);
  Tensor s = TestTensor({3, 1}, 57);
  CheckGradients([&] { return Sum(MulColBroadcast(a, s)); }, {a, s});
}

TEST(GradTest, ConcatColsSliceCols) {
  Tensor a = TestTensor({2, 3}, 58);
  Tensor b = TestTensor({2, 2}, 59);
  Tensor w = TestTensor({2, 2}, 60, false);
  CheckGradients(
      [&] { return Sum(Mul(SliceCols(ConcatCols(a, b), 2, 2), w)); }, {a, b});
}

TEST(GradTest, ConcatRowsSliceRows) {
  Tensor a = TestTensor({2, 3}, 61);
  Tensor b = TestTensor({3, 3}, 62);
  Tensor w = TestTensor({2, 3}, 63, false);
  CheckGradients(
      [&] { return Sum(Mul(SliceRows(ConcatRows(a, b), 1, 2), w)); }, {a, b});
}

TEST(GradTest, Reshape) {
  Tensor a = TestTensor({2, 6}, 64);
  Tensor w = TestTensor({4, 3}, 65, false);
  CheckGradients([&] { return Sum(Mul(Reshape(a, {4, 3}), w)); }, {a});
}

TEST(GradTest, Softmax) {
  Tensor a = TestTensor({2, 4}, 66);
  Tensor w = TestTensor({2, 4}, 67, false);
  CheckGradients([&] { return Sum(Mul(Softmax(a), w)); }, {a});
}

TEST(GradTest, LogSoftmax) {
  Tensor a = TestTensor({2, 4}, 68);
  Tensor w = TestTensor({2, 4}, 69, false);
  CheckGradients([&] { return Sum(Mul(LogSoftmax(a), w)); }, {a});
}

TEST(GradTest, CrossEntropyLogits) {
  Tensor a = TestTensor({3, 5}, 70);
  std::vector<int64_t> targets = {0, 3, 4};
  CheckGradients([&] { return CrossEntropyLogits(a, targets); }, {a});
}

TEST(GradTest, NllFromProbsViaSoftmax) {
  Tensor a = TestTensor({3, 5}, 71);
  std::vector<int64_t> targets = {1, 2, 0};
  CheckGradients([&] { return NllFromProbs(Softmax(a), targets); }, {a});
}

TEST(GradTest, Conv1d) {
  Tensor x = TestTensor({2, 2, 5}, 72);
  Tensor w = TestTensor({3, 2, 3}, 73);
  Tensor bias = TestTensor({3}, 74);
  Tensor mask = TestTensor({2 * 3 * 5}, 75, false);
  CheckGradients(
      [&] {
        Tensor out = Conv1d(x, w, bias, 1);
        return Sum(Mul(Reshape(out, {1, out.NumElements()}),
                       Reshape(mask, {1, mask.NumElements()})));
      },
      {x, w, bias});
}

TEST(GradTest, Conv2d) {
  Tensor x = TestTensor({1, 2, 4, 3}, 76);
  Tensor w = TestTensor({2, 2, 3, 3}, 77);
  Tensor bias = TestTensor({2}, 78);
  Tensor mask = TestTensor({2 * 4 * 3}, 79, false);
  CheckGradients(
      [&] {
        Tensor out = Conv2d(x, w, bias, 1);
        return Sum(Mul(Reshape(out, {1, out.NumElements()}),
                       Reshape(mask, {1, mask.NumElements()})));
      },
      {x, w, bias});
}

TEST(GradTest, PairwiseNegL1) {
  // Keep values well separated from ties so |.| is differentiable.
  Tensor a = Tensor::FromVector({2, 3}, {0.9f, -0.7f, 0.3f, -0.2f, 0.8f, -0.6f},
                                true);
  Tensor b = Tensor::FromVector({2, 3}, {0.1f, 0.4f, -0.9f, 0.6f, -0.3f, 0.2f},
                                true);
  Tensor w = TestTensor({2, 2}, 80, false);
  CheckGradients([&] { return Sum(Mul(PairwiseNegL1(a, b), w)); }, {a, b});
}

TEST(GradTest, PairwiseComplexNegDist) {
  Tensor qre = TestTensor({2, 3}, 81);
  Tensor qim = TestTensor({2, 3}, 82);
  Tensor ore = TestTensor({2, 3}, 83);
  Tensor oim = TestTensor({2, 3}, 84);
  Tensor w = TestTensor({2, 2}, 85, false);
  CheckGradients(
      [&] {
        return Sum(Mul(PairwiseComplexNegDist(qre, qim, ore, oim, 2.0f), w));
      },
      {qre, qim, ore, oim});
}

// ---------------------------------------------------------------------------
// Autograd machinery.

TEST(AutogradTest, GradAccumulatesWhenTensorUsedTwice) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2}, true);
  Tensor out = Sum(Add(a, a));
  out.Backward();
  EXPECT_FLOAT_EQ(a.Grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(a.Grad()[1], 2.0f);
}

TEST(AutogradTest, DiamondGraphBackward) {
  // out = sum(a*a + a): d/da = 2a + 1.
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3}, true);
  Sum(Add(Mul(a, a), a)).Backward();
  EXPECT_FLOAT_EQ(a.Grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(a.Grad()[1], 5.0f);
  EXPECT_FLOAT_EQ(a.Grad()[2], 7.0f);
}

TEST(AutogradTest, NoGradGuardDisablesRecording) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2}, true);
  {
    tensor::NoGradGuard guard;
    Tensor out = Add(a, a);
    EXPECT_FALSE(out.RequiresGrad());
  }
  Tensor out = Add(a, a);
  EXPECT_TRUE(out.RequiresGrad());
}

TEST(AutogradTest, NoGradGuardNests) {
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard g1;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard g2;
      EXPECT_FALSE(GradModeEnabled());
    }
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
}

TEST(AutogradTest, ConstantInputsGetNoGradient) {
  Tensor a = TestTensor({2, 2}, 90, /*requires_grad=*/true);
  Tensor c = TestTensor({2, 2}, 91, /*requires_grad=*/false);
  Sum(Mul(a, c)).Backward();
  EXPECT_TRUE(a.HasGrad());
  EXPECT_FALSE(c.HasGrad());
}

TEST(AutogradTest, ZeroGradClears) {
  Tensor a = TestTensor({2, 2}, 92);
  Sum(a).Backward();
  EXPECT_FLOAT_EQ(a.Grad()[0], 1.0f);
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.Grad()[0], 0.0f);
}

TEST(AutogradTest, BackwardFromNonScalarSeedsOnes) {
  Tensor a = TestTensor({2, 2}, 93);
  Tensor out = Scale(a, 3.0f);
  out.Backward();
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a.Grad()[i], 3.0f);
}

// Deep chains must not overflow the stack (iterative DFS).
TEST(AutogradTest, DeepChainBackward) {
  Tensor a = Tensor::Scalar(1.0f, true);
  Tensor x = a;
  for (int i = 0; i < 5000; ++i) x = Scale(x, 1.0f);
  Sum(x).Backward();
  EXPECT_FLOAT_EQ(a.Grad()[0], 1.0f);
}

// ---------------------------------------------------------------------------
// Property-style parameterized sweep: softmax rows sum to one and gradients
// check out across many shapes.

class SoftmaxShapeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(SoftmaxShapeTest, RowsSumToOne) {
  const auto [rows, cols] = GetParam();
  Tensor a = TestTensor({rows, cols}, 1000 + rows * 31 + cols, false);
  Tensor s = Softmax(a);
  for (int64_t i = 0; i < rows; ++i) {
    double total = 0.0;
    for (int64_t j = 0; j < cols; ++j) total += s.At(i, j);
    EXPECT_NEAR(total, 1.0, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SoftmaxShapeTest,
    ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                      std::pair<int64_t, int64_t>{1, 17},
                      std::pair<int64_t, int64_t>{8, 3},
                      std::pair<int64_t, int64_t>{5, 64},
                      std::pair<int64_t, int64_t>{32, 5},
                      std::pair<int64_t, int64_t>{2, 301}));

class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(MatMulShapeTest, GradientChecks) {
  const auto [m, k, n] = GetParam();
  Tensor a = TestTensor({m, k}, 2000 + m * 7 + k, true);
  Tensor b = TestTensor({k, n}, 3000 + k * 7 + n, true);
  CheckGradients([&] { return Mean(MatMul(a, b)); }, {a, b});
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapeTest,
                         ::testing::Values(std::tuple<int64_t, int64_t, int64_t>{1, 1, 1},
                                           std::tuple<int64_t, int64_t, int64_t>{2, 3, 4},
                                           std::tuple<int64_t, int64_t, int64_t>{5, 1, 5},
                                           std::tuple<int64_t, int64_t, int64_t>{1, 8, 2},
                                           std::tuple<int64_t, int64_t, int64_t>{6, 6, 6}));

}  // namespace
}  // namespace retia::tensor
