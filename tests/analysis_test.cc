// Tests for the TKG analysis module and the LayerNorm op / decoder option.

#include <cmath>

#include <gtest/gtest.h>

#include "core/decoder.h"
#include "grad_check.h"
#include "tensor/ops.h"
#include "tkg/analysis.h"
#include "tkg/synthetic.h"

namespace retia {
namespace {

using tensor::Tensor;
using ::retia::testing::CheckGradients;
using ::retia::testing::TestTensor;

// ---------------------------------------------------------------------------
// AnalyzeTemporal.

TEST(AnalyzeTemporalTest, FullyRepeatingGraph) {
  // The same two facts at every timestamp.
  std::vector<tkg::Quadruple> train;
  for (int64_t t = 0; t < 8; ++t) {
    train.push_back({0, 0, 1, t});
    train.push_back({1, 1, 2, t});
  }
  tkg::TkgDataset ds("repeat", 3, 2, train, {{0, 0, 1, 8}}, {{0, 0, 1, 9}});
  tkg::TemporalStats s = tkg::AnalyzeTemporal(ds);
  // Everything after the first timestamp is a repetition.
  EXPECT_NEAR(s.repetition_rate, 16.0 / 18.0, 1e-9);
  EXPECT_NEAR(s.consecutive_overlap, (7.0 + 2.0 * (1.0 / 2.0)) / 9.0, 0.35);
  EXPECT_EQ(s.distinct_triples, 2);
  EXPECT_NEAR(s.mean_facts_per_timestamp, 1.8, 1e-9);
}

TEST(AnalyzeTemporalTest, FullyNovelGraphHasZeroRepetition) {
  std::vector<tkg::Quadruple> train;
  for (int64_t t = 0; t < 6; ++t) train.push_back({t, 0, t + 1, t});
  tkg::TkgDataset ds("novel", 8, 1, train, {{6, 0, 7, 6}}, {{7, 0, 0, 7}});
  tkg::TemporalStats s = tkg::AnalyzeTemporal(ds);
  EXPECT_EQ(s.repetition_rate, 0.0);
  EXPECT_EQ(s.consecutive_overlap, 0.0);
  EXPECT_EQ(s.distinct_triples, 8);
}

TEST(AnalyzeTemporalTest, RelationDriftDetectsCyclingRelations) {
  // Same (s, o) pair with a different relation each timestamp.
  std::vector<tkg::Quadruple> train = {
      {0, 0, 1, 0}, {0, 1, 1, 1}, {0, 2, 1, 2}, {0, 0, 1, 3}};
  tkg::TkgDataset ds("drift", 2, 3, train, {{0, 1, 1, 4}}, {{0, 2, 1, 5}});
  tkg::TemporalStats s = tkg::AnalyzeTemporal(ds);
  // Every fact after the first sees the pair with some other relation.
  EXPECT_GT(s.relation_drift_rate, 0.5);
}

TEST(AnalyzeTemporalTest, RelationEntropySingleRelationIsZero) {
  std::vector<tkg::Quadruple> train = {{0, 0, 1, 0}, {1, 0, 2, 1}};
  tkg::TkgDataset ds("ent", 3, 1, train, {{0, 0, 1, 2}}, {{0, 0, 1, 3}});
  EXPECT_NEAR(tkg::AnalyzeTemporal(ds).relation_entropy, 0.0, 1e-9);
}

// The generators must produce the paper's cross-dataset contrast: YAGO-like
// repeats and overlaps far more than ICEWS-like, and ICEWS-like has higher
// relation drift (the cycling schemas).
TEST(AnalyzeTemporalTest, ProfilesReproducePaperContrast) {
  tkg::TemporalStats yago = tkg::AnalyzeTemporal(
      tkg::GenerateSynthetic(tkg::SyntheticConfig::YagoLike()));
  tkg::TemporalStats icews = tkg::AnalyzeTemporal(
      tkg::GenerateSynthetic(tkg::SyntheticConfig::Icews18Like()));
  EXPECT_GT(yago.repetition_rate, icews.repetition_rate + 0.1);
  EXPECT_GT(yago.consecutive_overlap, icews.consecutive_overlap);
  EXPECT_GT(icews.relation_entropy, yago.relation_entropy);
}

// ---------------------------------------------------------------------------
// LayerNormRows.

TEST(LayerNormTest, NormalizesRowsToZeroMeanUnitVar) {
  Tensor a = TestTensor({4, 16}, 1, false);
  Tensor gamma = Tensor::Full({16}, 1.0f);
  Tensor beta = Tensor::Zeros({16});
  Tensor out = tensor::LayerNormRows(a, gamma, beta);
  for (int64_t i = 0; i < 4; ++i) {
    double mean = 0.0, var = 0.0;
    for (int64_t j = 0; j < 16; ++j) mean += out.At(i, j);
    mean /= 16;
    for (int64_t j = 0; j < 16; ++j) {
      const double d = out.At(i, j) - mean;
      var += d * d;
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, GammaBetaAffineApplied) {
  Tensor a = TestTensor({2, 8}, 2, false);
  Tensor gamma = Tensor::Full({8}, 2.0f);
  Tensor beta = Tensor::Full({8}, -1.0f);
  Tensor plain = tensor::LayerNormRows(a, Tensor::Full({8}, 1.0f),
                                       Tensor::Zeros({8}));
  Tensor affine = tensor::LayerNormRows(a, gamma, beta);
  for (int64_t i = 0; i < affine.NumElements(); ++i) {
    EXPECT_NEAR(affine.Data()[i], 2.0f * plain.Data()[i] - 1.0f, 1e-4f);
  }
}

TEST(LayerNormTest, GradientChecks) {
  Tensor a = TestTensor({3, 6}, 3);
  Tensor gamma = TestTensor({6}, 4);
  Tensor beta = TestTensor({6}, 5);
  Tensor w = TestTensor({3, 6}, 6, false);
  CheckGradients(
      [&] {
        return tensor::Sum(
            tensor::Mul(tensor::LayerNormRows(a, gamma, beta), w));
      },
      {a, gamma, beta}, /*eps=*/1e-2f, /*tolerance=*/5e-2f);
}

TEST(LayerNormTest, ShiftInvariance) {
  // LayerNorm output is invariant to adding a constant to a row.
  Tensor a = TestTensor({1, 8}, 7, false);
  Tensor shifted = tensor::Scale(a, 1.0f);
  for (int64_t j = 0; j < 8; ++j) shifted.Data()[j] += 5.0f;
  Tensor gamma = Tensor::Full({8}, 1.0f);
  Tensor beta = Tensor::Zeros({8});
  Tensor na = tensor::LayerNormRows(a, gamma, beta);
  Tensor nb = tensor::LayerNormRows(shifted, gamma, beta);
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(na.Data()[j], nb.Data()[j], 1e-4f);
  }
}

// ---------------------------------------------------------------------------
// Decoder with layer normalisation.

TEST(DecoderLayerNormTest, AddsParametersAndRuns) {
  util::Rng rng(8);
  core::ConvTransEDecoder plain(8, 4, 3, 0.0f, &rng);
  core::ConvTransEDecoder normed(8, 4, 3, 0.0f, &rng,
                                 /*with_layernorm=*/true);
  EXPECT_EQ(normed.Parameters().size(), plain.Parameters().size() + 2);
  normed.SetTraining(false);
  Tensor logits = normed.Forward(TestTensor({3, 8}, 9, false),
                                 TestTensor({3, 8}, 10, false),
                                 TestTensor({5, 8}, 11, false), &rng);
  EXPECT_EQ(logits.Dim(0), 3);
  EXPECT_EQ(logits.Dim(1), 5);
  for (int64_t i = 0; i < logits.NumElements(); ++i) {
    EXPECT_TRUE(std::isfinite(logits.Data()[i]));
  }
}

TEST(DecoderLayerNormTest, GradientsReachNormParameters) {
  util::Rng rng(12);
  core::ConvTransEDecoder dec(8, 4, 3, 0.0f, &rng, /*with_layernorm=*/true);
  dec.SetTraining(false);
  Tensor a = TestTensor({2, 8}, 13, false);
  Tensor b = TestTensor({2, 8}, 14, false);
  Tensor cands = TestTensor({4, 8}, 15, false);
  tensor::Sum(dec.Forward(a, b, cands, &rng)).Backward();
  int with_grad = 0;
  for (const auto& [name, p] : dec.NamedParameters()) {
    if ((name == "ln_gamma" || name == "ln_beta") && p.HasGrad()) ++with_grad;
  }
  EXPECT_EQ(with_grad, 2);
}

}  // namespace
}  // namespace retia
