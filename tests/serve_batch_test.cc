// Tests for the batched serve path: engine SubmitBatch bit-identity with
// the per-query path (f32 and int8, across SIMD backends), per-slot error
// isolation in mixed-validity batches, Router::RouteBatch scatter/gather
// over local and socket channels, the submission-window coalescer under
// concurrent Route() callers, and the decode scratch arena's warm-path
// no-growth guarantee. Registered under the ctest label `serve` so the
// TSan matrix in scripts/check.sh covers the coalescer's leader handoff.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/result.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "obs/obs.h"
#include "serve/arena.h"
#include "serve/engine.h"
#include "serve/query.h"
#include "serve/replica.h"
#include "serve/router.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "simd/simd.h"
#include "stream/grow.h"
#include "tkg/synthetic.h"

namespace retia {
namespace {

using serve::LocalChannel;
using serve::Query;
using serve::QueryResult;
using serve::ReplicaChannel;
using serve::ReplicaServer;
using serve::Result;
using serve::Router;
using serve::RouterConfig;
using serve::ScratchArena;
using serve::ServeConfig;
using serve::ServeEngine;
using serve::SocketChannel;
using serve::StatusCode;

// ---- Fixtures ---------------------------------------------------------------

tkg::SyntheticConfig TinyDataConfig() {
  tkg::SyntheticConfig config;
  config.name = "batch-test";
  config.num_entities = 32;
  config.num_relations = 5;
  config.num_timestamps = 16;
  config.facts_per_timestamp = 12;
  config.num_schemas = 40;
  config.max_period = 4;
  config.seed = 17;
  return config;
}

// Above the RETIA_QUANT_MIN_ROWS=64 floor so quantized_decode=1 actually
// takes the int8 path.
tkg::SyntheticConfig QuantDataConfig() {
  tkg::SyntheticConfig config = TinyDataConfig();
  config.name = "batch-quant-test";
  config.num_entities = 80;
  config.facts_per_timestamp = 24;
  config.num_schemas = 60;
  return config;
}

core::RetiaConfig ModelConfigFor(const tkg::TkgDataset& dataset) {
  core::RetiaConfig config;
  config.num_entities = dataset.num_entities();
  config.num_relations = dataset.num_relations();
  config.dim = 10;
  config.history_len = 2;
  config.conv_kernels = 4;
  config.seed = 3;
  return config;
}

serve::EngineSnapshot SnapshotOf(const core::RetiaModel& model,
                                 const tkg::TkgDataset& dataset) {
  serve::EngineSnapshot snapshot;
  snapshot.model = stream::CloneModel(model);
  snapshot.dataset = std::make_unique<tkg::TkgDataset>(dataset);
  snapshot.graph_cache =
      std::make_unique<graph::GraphCache>(snapshot.dataset.get());
  return snapshot;
}

ServeConfig SmallServeConfig() {
  ServeConfig config;
  config.num_threads = 2;
  config.max_k = 5;
  return config;
}

// Mixed-timestamp, mixed-kind batch: exercises the per-timestamp grouping
// of the fused decode, not just one homogeneous group.
std::vector<Query> MixedBatch(const tkg::TkgDataset& dataset, int64_t count) {
  const std::vector<int64_t>& times = dataset.test_times();
  std::vector<Query> queries;
  for (int64_t i = 0; i < count; ++i) {
    const int64_t t = times[i % times.size()];
    const int64_t s = i % dataset.num_entities();
    const int64_t r = i % dataset.num_relations();
    queries.push_back(i % 3 == 2 ? Query::Relation(s, (s + 1) % 7, t, 5)
                                 : Query::Entity(s, r, t, 5));
  }
  return queries;
}

void ExpectBitIdentical(const Result<QueryResult>& batched,
                        const Result<QueryResult>& single, size_t slot) {
  ASSERT_EQ(batched.ok(), single.ok()) << "slot " << slot;
  if (!batched.ok()) {
    EXPECT_EQ(batched.code(), single.code()) << "slot " << slot;
    return;
  }
  const auto& got = batched.value().candidates;
  const auto& want = single.value().candidates;
  ASSERT_EQ(got.size(), want.size()) << "slot " << slot;
  // Scores are compared by memcmp over their bytes: bit-identical, not
  // merely compare-equal (compares struct fields, not struct memory —
  // ScoredCandidate has uninitialized padding).
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "slot " << slot << " rank " << i;
    EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(float)), 0)
        << "slot " << slot << " rank " << i << " score not bit-identical: "
        << got[i].score << " vs " << want[i].score;
  }
}

// ---- Engine-level batch bit-identity ----------------------------------------

void RunEngineBitIdentity(const tkg::TkgDataset& dataset,
                          int quantized_decode) {
  core::RetiaModel model(ModelConfigFor(dataset));
  const std::vector<Query> queries = MixedBatch(dataset, 24);

  for (simd::Backend backend :
       {simd::Backend::kScalar, simd::BestSupportedBackend()}) {
    simd::ScopedBackend scoped(backend);
    ServeConfig config = SmallServeConfig();
    config.quantized_decode = quantized_decode;
    config.enable_cache = false;  // force a real decode on both paths
    ServeEngine batched(SnapshotOf(model, dataset), config);
    ServeEngine singles(SnapshotOf(model, dataset), config);

    const std::vector<Result<QueryResult>> batch =
        batched.SubmitBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const Result<QueryResult> single = singles.Submit(queries[i]);
      ExpectBitIdentical(batch[i], single, i);
    }
  }
}

TEST(EngineBatchTest, BatchBitIdenticalToPerQueryF32AcrossBackends) {
  RunEngineBitIdentity(tkg::GenerateSynthetic(TinyDataConfig()),
                       /*quantized_decode=*/0);
}

TEST(EngineBatchTest, BatchBitIdenticalToPerQueryInt8AcrossBackends) {
  RunEngineBitIdentity(tkg::GenerateSynthetic(QuantDataConfig()),
                       /*quantized_decode=*/1);
}

TEST(EngineBatchTest, MixedValidityBatchDegradesOnlyBadSlots) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(ModelConfigFor(dataset));
  ServeEngine engine(SnapshotOf(model, dataset), SmallServeConfig());
  ServeEngine reference(SnapshotOf(model, dataset), SmallServeConfig());
  const int64_t t = dataset.test_times().front();

  const std::vector<Query> queries = {
      Query::Entity(0, 1, t, 5),
      Query::Entity(1 << 20, 0, t, 5),  // unknown entity
      Query::Entity(1, 2, t, 5),
      Query::Entity(2, 0, -1, 5),  // bad timestamp
      Query::Entity(3, 1, t, 0),   // bad k
      Query::Relation(4, 5, t, 5),
  };
  const std::vector<Result<QueryResult>> batch = engine.SubmitBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());

  ASSERT_FALSE(batch[1].ok());
  EXPECT_EQ(batch[1].code(), StatusCode::kUnknownEntity);
  ASSERT_FALSE(batch[3].ok());
  EXPECT_EQ(batch[3].code(), StatusCode::kBadTimestamp);
  ASSERT_FALSE(batch[4].ok());
  EXPECT_EQ(batch[4].code(), StatusCode::kInvalidArgument);
  for (const size_t good : {size_t{0}, size_t{2}, size_t{5}}) {
    ExpectBitIdentical(batch[good], reference.Submit(queries[good]), good);
  }
}

TEST(EngineBatchTest, EmptyBatchIsANoOp) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(ModelConfigFor(dataset));
  ServeEngine engine(SnapshotOf(model, dataset), SmallServeConfig());
  EXPECT_TRUE(engine.SubmitBatch({}).empty());
}

// ---- Router batch path ------------------------------------------------------

TEST(RouterBatchTest, RouteBatchMatchesPerQueryRouteAndStampsShards) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(ModelConfigFor(dataset));

  auto build = [&] {
    std::vector<std::unique_ptr<ReplicaChannel>> replicas;
    std::vector<std::unique_ptr<ServeEngine>> engines;
    for (int i = 0; i < 3; ++i) {
      engines.push_back(std::make_unique<ServeEngine>(
          SnapshotOf(model, dataset), SmallServeConfig()));
      replicas.push_back(std::make_unique<LocalChannel>(engines.back().get()));
    }
    return std::make_pair(std::move(replicas), std::move(engines));
  };
  auto [replicas_a, engines_a] = build();
  auto [replicas_b, engines_b] = build();
  RouterConfig config;
  Router batched(std::move(replicas_a), config);
  Router singles(std::move(replicas_b), config);

  std::vector<Query> queries = MixedBatch(dataset, 40);
  queries.push_back(Query::Entity(1 << 20, 0, dataset.test_times().front(),
                                  5));  // degrades only its own slot
  const std::vector<Result<QueryResult>> batch = batched.RouteBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Result<QueryResult> single = singles.Route(queries[i]);
    ExpectBitIdentical(batch[i], single, i);
    if (batch[i].ok()) {
      // The shard stamp must match what single-query routing computes.
      EXPECT_EQ(batch[i].value().shard, single.value().shard) << "slot " << i;
      EXPECT_GE(batch[i].value().shard, 0);
    }
  }
  EXPECT_TRUE(batched.RouteBatch({}).empty());
}

TEST(RouterBatchTest, SocketBatchBitIdenticalToPerQuerySubmit) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(ModelConfigFor(dataset));
  ServeEngine served(SnapshotOf(model, dataset), SmallServeConfig());
  ServeEngine reference(SnapshotOf(model, dataset), SmallServeConfig());
  const std::string path = testing::TempDir() + "/retia_batch_e2e.sock";
  ReplicaServer server(&served, nullptr, path);
  ASSERT_TRUE(server.Start().ok());

  RouterConfig config;
  config.timeout_ms = 10000;
  SocketChannel channel(path, config);

  std::vector<Query> queries = MixedBatch(dataset, 16);
  queries.push_back(
      Query::Entity(1 << 20, 0, dataset.test_times().front(), 5));
  const std::vector<Result<QueryResult>> batch = channel.SubmitBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectBitIdentical(batch[i], reference.Submit(queries[i]), i);
  }
  ASSERT_FALSE(batch.back().ok());
  EXPECT_EQ(batch.back().code(), StatusCode::kUnknownEntity);

  server.Stop();
  // A dead replica replicates kShardUnavailable into every slot.
  const std::vector<Result<QueryResult>> down =
      channel.SubmitBatch(MixedBatch(dataset, 4));
  ASSERT_EQ(down.size(), 4u);
  for (const Result<QueryResult>& result : down) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.code(), StatusCode::kShardUnavailable);
  }
}

TEST(RouterBatchTest, WindowCoalescerKeepsConcurrentRoutesCorrect) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(ModelConfigFor(dataset));
  ServeEngine engine(SnapshotOf(model, dataset), SmallServeConfig());
  ServeEngine reference(SnapshotOf(model, dataset), SmallServeConfig());

  std::vector<std::unique_ptr<ReplicaChannel>> replicas;
  replicas.push_back(std::make_unique<LocalChannel>(&engine));
  RouterConfig config;
  config.batch_window_us = 3000;
  config.max_wire_batch = 64;
  Router router(std::move(replicas), config);

  obs::Counter* frames =
      obs::MetricsRegistry::Get().GetCounter("serve.router.batch.frames");
  obs::Counter* coalesced =
      obs::MetricsRegistry::Get().GetCounter("serve.router.batch.queries");
  const int64_t frames_before = frames->Value();
  const int64_t queries_before = coalesced->Value();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  const std::vector<Query> pattern = MixedBatch(dataset, kPerThread);
  std::vector<Result<QueryResult>> expected;
  for (const Query& query : pattern) expected.push_back(reference.Submit(query));

  std::atomic<int> ready{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        const Result<QueryResult> got = router.Route(pattern[i]);
        const Result<QueryResult>& want = expected[i];
        const bool match =
            got.ok() == want.ok() &&
            (!got.ok() ||
             got.value().candidates == want.value().candidates);
        if (!match) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  const int64_t total = int64_t{kThreads} * kPerThread;
  EXPECT_EQ(coalesced->Value() - queries_before, total);
  // The leader always holds the window open (or fills the batch), and every
  // concurrent Route() blocked in that window joins its frame — so with 8
  // threads issuing queries back-to-back, strictly fewer frames than
  // queries must have shipped.
  EXPECT_LT(frames->Value() - frames_before, total);
  EXPECT_GT(frames->Value() - frames_before, 0);
}

// ---- Scratch arena ----------------------------------------------------------

TEST(ArenaTest, WarmArenaStopsGrowingAndReportsItsFootprint) {
  obs::Counter* growths =
      obs::MetricsRegistry::Get().GetCounter("serve.arena.growths");
  obs::Gauge* bytes =
      obs::MetricsRegistry::Get().GetGauge("serve.arena.bytes");

  ScratchArena arena;
  const int64_t before = growths->Value();
  // Cold pass: three allocations the initial (empty) arena cannot hold.
  arena.Alloc<int64_t>(100);
  arena.Alloc<float>(5000);
  arena.Alloc<double>(300);
  const int64_t cold_growths = growths->Value() - before;
  EXPECT_GT(cold_growths, 0);

  arena.Reset();  // consolidates to one block of total capacity
  const size_t warm_capacity = arena.capacity();
  EXPECT_EQ(bytes->Value(), static_cast<double>(warm_capacity));

  // Warm passes: the same allocation pattern must never grow again, and
  // pointers must be served from the consolidated block.
  for (int round = 0; round < 10; ++round) {
    int64_t* a = arena.Alloc<int64_t>(100);
    float* b = arena.Alloc<float>(5000);
    double* c = arena.Alloc<double>(300);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    a[99] = round;  // the memory is real and writable
    b[4999] = 1.0f;
    c[299] = 2.0;
    arena.Reset();
    EXPECT_EQ(arena.capacity(), warm_capacity) << "round " << round;
  }
  EXPECT_EQ(growths->Value() - before, cold_growths)
      << "warm path must be allocation-free";
  EXPECT_EQ(bytes->Value(), static_cast<double>(warm_capacity));
}

TEST(ArenaTest, AllocationsAreAlignedAndZeroSizedAllocIsSafe) {
  ScratchArena arena;
  EXPECT_EQ(arena.Alloc<int64_t>(0), arena.Alloc<int64_t>(0));
  for (int i = 0; i < 50; ++i) {
    double* p = arena.Alloc<double>(i + 1);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(double), 0u);
    int64_t* q = arena.Alloc<int64_t>(1);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(q) % alignof(int64_t), 0u);
  }
}

}  // namespace
}  // namespace retia
