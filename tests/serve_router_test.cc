// Tests for the sharded serving tier: consistent-hash shard map
// stability, wire-protocol round-trips and malformed-frame robustness
// (nothing a socket peer sends may crash a serving process), router
// bit-identity against a direct engine, shard-failure reporting, the
// unix-socket replica end-to-end path, and cross-replica snapshot-epoch
// consistency under concurrent SwapAll. Registered under the ctest label
// `serve` so the TSan matrix in scripts/check.sh covers the zero-drop
// swap guarantee on the multi-shard path.

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "ckpt/result.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "serve/engine.h"
#include "serve/query.h"
#include "serve/replica.h"
#include "serve/router.h"
#include "serve/shard_map.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "stream/grow.h"
#include "tkg/synthetic.h"

namespace retia {
namespace {

using serve::LocalChannel;
using serve::Query;
using serve::QueryResult;
using serve::ReplicaChannel;
using serve::ReplicaServer;
using serve::Result;
using serve::Router;
using serve::RouterConfig;
using serve::ScoredCandidate;
using serve::ServeConfig;
using serve::ServeEngine;
using serve::ShardMap;
using serve::SocketChannel;
using serve::StatusCode;
namespace wire = serve::wire;

// ---- Shard map --------------------------------------------------------------

std::vector<int64_t> Ids(int64_t n) {
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(i);
  return ids;
}

TEST(ShardMapTest, DeterministicAcrossInstances) {
  const ShardMap a(Ids(5), /*virtual_nodes=*/64);
  const ShardMap b(Ids(5), /*virtual_nodes=*/64);
  for (int64_t subject = 0; subject < 10000; ++subject) {
    ASSERT_EQ(a.ShardFor(subject), b.ShardFor(subject)) << subject;
  }
}

TEST(ShardMapTest, AddingReplicaRemapsOnlyOntoNewReplica) {
  const ShardMap before(Ids(3), /*virtual_nodes=*/64);
  const ShardMap after(Ids(4), /*virtual_nodes=*/64);
  int64_t moved = 0;
  for (int64_t subject = 0; subject < 20000; ++subject) {
    const int64_t old_shard = before.ShardFor(subject);
    const int64_t new_shard = after.ShardFor(subject);
    if (new_shard != old_shard) {
      // The consistent-hash contract: a key may only move TO the replica
      // that joined, never between surviving replicas.
      ASSERT_EQ(new_shard, 3) << "subject " << subject << " moved from shard "
                              << old_shard << " to " << new_shard;
      ++moved;
    }
  }
  // The new replica should own roughly a quarter of the keys.
  EXPECT_GT(moved, 20000 / 8);
  EXPECT_LT(moved, 20000 / 2);
}

TEST(ShardMapTest, RemovingReplicaRemapsOnlyItsKeys) {
  // Ring of {0, 1, 2, 3} vs the same ring with 3 removed: only keys that
  // lived on shard 3 may change owners.
  const ShardMap before(Ids(4), /*virtual_nodes=*/64);
  const ShardMap after(Ids(3), /*virtual_nodes=*/64);
  for (int64_t subject = 0; subject < 20000; ++subject) {
    const int64_t old_shard = before.ShardFor(subject);
    const int64_t new_shard = after.ShardFor(subject);
    if (new_shard != old_shard) {
      ASSERT_EQ(old_shard, 3) << "subject " << subject;
    }
  }
}

TEST(ShardMapTest, KeysSpreadAcrossReplicas) {
  const ShardMap map(Ids(4), /*virtual_nodes=*/64);
  std::map<int64_t, int64_t> counts;
  for (int64_t subject = 0; subject < 20000; ++subject) {
    ++counts[map.ShardFor(subject)];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [shard, count] : counts) {
    // No shard may be starved or dominant (ideal is 5000 each).
    EXPECT_GT(count, 2000) << "shard " << shard;
    EXPECT_LT(count, 10000) << "shard " << shard;
  }
}

// ---- Wire protocol ----------------------------------------------------------

TEST(WireTest, QueryRoundTrips) {
  const Query query = Query::Relation(123456789, -7, 42, 10);
  std::vector<uint8_t> frame;
  wire::AppendFrame(wire::MsgType::kQuery, wire::EncodeQuery(query), &frame);

  wire::Frame decoded;
  size_t consumed = 0;
  std::string detail;
  ASSERT_EQ(wire::DecodeFrame(frame.data(), frame.size(), &decoded, &consumed,
                              &detail),
            wire::DecodeStatus::kFrame)
      << detail;
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded.type, wire::MsgType::kQuery);
  const Result<Query> round = wire::DecodeQuery(decoded.body);
  ASSERT_TRUE(round.ok()) << round.ToString();
  EXPECT_EQ(round.value(), query);
}

TEST(WireTest, QueryReplyRoundTripsOkAndError) {
  QueryResult value;
  value.candidates = {{3, 1.5f}, {9, -0.25f}, {0, 0.0f}};
  value.cache_hit = true;
  value.epoch = 7;
  const Result<QueryResult> ok_round =
      wire::DecodeQueryReply(wire::EncodeQueryReply(Result<QueryResult>(value)));
  ASSERT_TRUE(ok_round.ok()) << ok_round.ToString();
  EXPECT_EQ(ok_round.value().candidates, value.candidates);
  EXPECT_TRUE(ok_round.value().cache_hit);
  EXPECT_EQ(ok_round.value().epoch, 7);

  const Result<QueryResult> error_round =
      wire::DecodeQueryReply(wire::EncodeQueryReply(Result<QueryResult>::Error(
          StatusCode::kUnknownEntity, "entity 99 out of range")));
  ASSERT_FALSE(error_round.ok());
  EXPECT_EQ(error_round.code(), StatusCode::kUnknownEntity);
  EXPECT_EQ(error_round.detail(), "entity 99 out of range");
}

TEST(WireTest, ControlBodiesRoundTrip) {
  const Result<std::string> swap = wire::DecodeSwap(wire::EncodeSwap("/tmp/x"));
  ASSERT_TRUE(swap.ok());
  EXPECT_EQ(swap.value(), "/tmp/x");

  const Result<int64_t> swap_ok = wire::DecodeSwapReply(
      wire::EncodeSwapReply(StatusCode::kOk, 12, ""));
  ASSERT_TRUE(swap_ok.ok());
  EXPECT_EQ(swap_ok.value(), 12);
  const Result<int64_t> swap_err = wire::DecodeSwapReply(
      wire::EncodeSwapReply(StatusCode::kInternal, -1, "load failed"));
  ASSERT_FALSE(swap_err.ok());
  EXPECT_EQ(swap_err.code(), StatusCode::kInternal);
  EXPECT_EQ(swap_err.detail(), "load failed");

  const Result<int64_t> pong = wire::DecodePong(wire::EncodePong(3));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value(), 3);

  const Result<std::string> stats =
      wire::DecodeString(wire::EncodeString("{\"qps\":1}"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value(), "{\"qps\":1}");
}

TEST(WireTest, TruncatedFramesAskForMoreBytes) {
  std::vector<uint8_t> frame;
  wire::AppendFrame(wire::MsgType::kPing, {}, &frame);
  wire::Frame decoded;
  size_t consumed = 0;
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_EQ(wire::DecodeFrame(frame.data(), len, &decoded, &consumed,
                                nullptr),
              wire::DecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireTest, MalformedFramesAndBodiesNeverCrash) {
  // Fuzz-ish sweep: random byte soup through the frame decoder and every
  // body decoder. The only acceptable outcomes are kNeedMore, kError, or a
  // decoded value — never a crash or CHECK failure.
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> length(0, 64);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> bytes(length(rng));
    for (auto& b : bytes) b = static_cast<uint8_t>(byte(rng));

    wire::Frame frame;
    size_t consumed = 0;
    std::string detail;
    (void)wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed,
                            &detail);
    (void)wire::DecodeQuery(bytes);
    (void)wire::DecodeQueryReply(bytes);
    (void)wire::DecodeSwap(bytes);
    (void)wire::DecodeSwapReply(bytes);
    (void)wire::DecodePong(bytes);
    (void)wire::DecodeString(bytes);
  }

  // Targeted malformations of a valid frame: bad version, bad type, and a
  // length that overruns the cap must all be kError with a reason.
  std::vector<uint8_t> good;
  wire::AppendFrame(wire::MsgType::kQuery,
                    wire::EncodeQuery(Query::Entity(1, 2, 3, 4)), &good);
  wire::Frame frame;
  size_t consumed = 0;
  std::string detail;

  std::vector<uint8_t> bad_version = good;
  bad_version[4] = 99;
  EXPECT_EQ(wire::DecodeFrame(bad_version.data(), bad_version.size(), &frame,
                              &consumed, &detail),
            wire::DecodeStatus::kError);
  EXPECT_FALSE(detail.empty());

  std::vector<uint8_t> bad_type = good;
  bad_type[5] = 0;
  EXPECT_EQ(wire::DecodeFrame(bad_type.data(), bad_type.size(), &frame,
                              &consumed, &detail),
            wire::DecodeStatus::kError);

  std::vector<uint8_t> huge = good;
  huge[0] = 0xff;
  huge[1] = 0xff;
  huge[2] = 0xff;
  huge[3] = 0x7f;
  EXPECT_EQ(wire::DecodeFrame(huge.data(), huge.size(), &frame, &consumed,
                              &detail),
            wire::DecodeStatus::kError);

  // A reply whose candidate count promises more bytes than the body holds
  // must be rejected, not over-read.
  QueryResult value;
  value.candidates = {{1, 1.0f}, {2, 0.5f}};
  std::vector<uint8_t> reply =
      wire::EncodeQueryReply(Result<QueryResult>(value));
  reply[10] = 0xff;  // count field low byte
  reply[11] = 0x00;
  EXPECT_FALSE(wire::DecodeQueryReply(reply).ok());
}

TEST(WireTest, QueryBatchRoundTrips) {
  std::vector<Query> queries;
  for (int64_t i = 0; i < 17; ++i) {
    queries.push_back(i % 2 == 0 ? Query::Entity(i, i % 5, 100 + i, 4)
                                 : Query::Relation(i, -i, 200 + i, 9));
  }
  std::vector<uint8_t> frame;
  wire::AppendFrame(wire::MsgType::kQueryBatch,
                    wire::EncodeQueryBatch(queries), &frame);

  wire::Frame decoded;
  size_t consumed = 0;
  std::string detail;
  ASSERT_EQ(wire::DecodeFrame(frame.data(), frame.size(), &decoded, &consumed,
                              &detail),
            wire::DecodeStatus::kFrame)
      << detail;
  EXPECT_EQ(decoded.type, wire::MsgType::kQueryBatch);
  const Result<std::vector<Query>> round =
      wire::DecodeQueryBatch(decoded.body);
  ASSERT_TRUE(round.ok()) << round.ToString();
  EXPECT_EQ(round.value(), queries);
}

TEST(WireTest, ResultBatchCarriesPerEntryStatus) {
  QueryResult value;
  value.candidates = {{4, 2.0f}, {1, 1.0f}};
  value.epoch = 3;
  std::vector<Result<QueryResult>> results;
  results.emplace_back(value);
  results.push_back(Result<QueryResult>::Error(StatusCode::kUnknownEntity,
                                               "entity 99 out of range"));
  results.emplace_back(QueryResult{});

  const Result<std::vector<Result<QueryResult>>> round =
      wire::DecodeResultBatch(wire::EncodeResultBatch(results));
  ASSERT_TRUE(round.ok()) << round.ToString();
  ASSERT_EQ(round.value().size(), 3u);
  ASSERT_TRUE(round.value()[0].ok());
  EXPECT_EQ(round.value()[0].value().candidates, value.candidates);
  EXPECT_EQ(round.value()[0].value().epoch, 3);
  ASSERT_FALSE(round.value()[1].ok());
  EXPECT_EQ(round.value()[1].code(), StatusCode::kUnknownEntity);
  EXPECT_EQ(round.value()[1].detail(), "entity 99 out of range");
  EXPECT_TRUE(round.value()[2].ok());
  EXPECT_TRUE(round.value()[2].value().candidates.empty());
}

TEST(WireTest, MalformedResultBatchEntryDegradesOnlyItself) {
  // Corrupt the SECOND entry's inner reply body (its candidate count) while
  // leaving the entry length prefix intact: the frame is still structurally
  // valid, so decode succeeds and only that entry becomes a protocol error.
  QueryResult value;
  value.candidates = {{7, 1.5f}};
  std::vector<Result<QueryResult>> results(3, Result<QueryResult>(value));
  std::vector<uint8_t> body = wire::EncodeResultBatch(results);
  const size_t entry_bytes =
      wire::EncodeQueryReply(Result<QueryResult>(value)).size();
  // Layout: u16 count, then per entry u32 len + body. The inner reply body
  // is [u8 ok][u8 cache_hit][i64 epoch][u16 count]... — blow up the count
  // of entry 1.
  const size_t count_off = 2 + (4 + entry_bytes) + 4 + 1 + 1 + 8;
  body[count_off] = 0xff;
  body[count_off + 1] = 0xff;

  const Result<std::vector<Result<QueryResult>>> round =
      wire::DecodeResultBatch(body);
  ASSERT_TRUE(round.ok()) << round.ToString();
  ASSERT_EQ(round.value().size(), 3u);
  EXPECT_TRUE(round.value()[0].ok());
  EXPECT_FALSE(round.value()[1].ok());
  EXPECT_EQ(round.value()[1].code(), StatusCode::kProtocolError);
  EXPECT_TRUE(round.value()[2].ok());
}

TEST(WireTest, BatchBodiesRejectStructuralDamage) {
  const std::vector<Query> queries = {Query::Entity(1, 2, 3, 4),
                                      Query::Relation(5, 6, 7, 8)};
  const std::vector<uint8_t> qbatch = wire::EncodeQueryBatch(queries);

  // Truncation sweep: every proper prefix must be rejected, never crash.
  for (size_t len = 0; len < qbatch.size(); ++len) {
    EXPECT_FALSE(wire::DecodeQueryBatch(
                     std::vector<uint8_t>(qbatch.begin(), qbatch.begin() + len))
                     .ok())
        << "query batch prefix " << len;
  }

  // Count mismatching the body size (both directions).
  std::vector<uint8_t> bad_count = qbatch;
  bad_count[0] = 1;
  EXPECT_FALSE(wire::DecodeQueryBatch(bad_count).ok());
  bad_count[0] = 3;
  EXPECT_FALSE(wire::DecodeQueryBatch(bad_count).ok());
  // Zero count and a count beyond kMaxWireBatch.
  std::vector<uint8_t> zero = qbatch;
  zero[0] = 0;
  zero[1] = 0;
  EXPECT_FALSE(wire::DecodeQueryBatch(zero).ok());
  std::vector<uint8_t> oversized = qbatch;
  oversized[0] = 0xff;
  oversized[1] = 0xff;
  EXPECT_FALSE(wire::DecodeQueryBatch(oversized).ok());
  // Trailing bytes after the last record.
  std::vector<uint8_t> trailing = qbatch;
  trailing.push_back(0);
  EXPECT_FALSE(wire::DecodeQueryBatch(trailing).ok());
  // Unknown query kind inside a record.
  std::vector<uint8_t> bad_kind = qbatch;
  bad_kind[2] = 99;  // first record's kind byte
  EXPECT_FALSE(wire::DecodeQueryBatch(bad_kind).ok());

  std::vector<Result<QueryResult>> results;
  results.emplace_back(QueryResult{});
  results.push_back(
      Result<QueryResult>::Error(StatusCode::kInternal, "boom"));
  const std::vector<uint8_t> rbatch = wire::EncodeResultBatch(results);
  for (size_t len = 0; len < rbatch.size(); ++len) {
    EXPECT_FALSE(
        wire::DecodeResultBatch(
            std::vector<uint8_t>(rbatch.begin(), rbatch.begin() + len))
            .ok())
        << "result batch prefix " << len;
  }
  // An entry length overrunning the body, trailing bytes, zero count.
  std::vector<uint8_t> overrun = rbatch;
  overrun[2 + 3] = 0x7f;  // first entry length, high byte
  EXPECT_FALSE(wire::DecodeResultBatch(overrun).ok());
  std::vector<uint8_t> rtrailing = rbatch;
  rtrailing.push_back(0);
  EXPECT_FALSE(wire::DecodeResultBatch(rtrailing).ok());
  std::vector<uint8_t> rzero = rbatch;
  rzero[0] = 0;
  rzero[1] = 0;
  EXPECT_FALSE(wire::DecodeResultBatch(rzero).ok());
}

TEST(WireTest, BatchDecodersSurviveByteSoup) {
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> length(0, 160);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> bytes(length(rng));
    for (auto& b : bytes) b = static_cast<uint8_t>(byte(rng));
    (void)wire::DecodeQueryBatch(bytes);
    (void)wire::DecodeResultBatch(bytes);
  }
}

// ---- Engine fixtures --------------------------------------------------------

tkg::SyntheticConfig TinyDataConfig() {
  tkg::SyntheticConfig config;
  config.name = "router-test";
  config.num_entities = 32;
  config.num_relations = 5;
  config.num_timestamps = 16;
  config.facts_per_timestamp = 12;
  config.num_schemas = 40;
  config.max_period = 4;
  config.seed = 17;
  return config;
}

core::RetiaConfig TinyModelConfig(const tkg::TkgDataset& dataset,
                                  int64_t seed = 3) {
  core::RetiaConfig config;
  config.num_entities = dataset.num_entities();
  config.num_relations = dataset.num_relations();
  config.dim = 10;
  config.history_len = 2;
  config.conv_kernels = 4;
  config.seed = seed;
  return config;
}

serve::EngineSnapshot SnapshotOf(const core::RetiaModel& model,
                                 const tkg::TkgDataset& dataset) {
  serve::EngineSnapshot snapshot;
  snapshot.model = stream::CloneModel(model);
  snapshot.dataset = std::make_unique<tkg::TkgDataset>(dataset);
  snapshot.graph_cache =
      std::make_unique<graph::GraphCache>(snapshot.dataset.get());
  return snapshot;
}

ServeConfig SmallServeConfig() {
  ServeConfig config;
  config.num_threads = 2;
  config.max_k = 5;
  return config;
}

// ---- Router over in-process channels ---------------------------------------

TEST(RouterTest, LocalChannelsAnswerBitIdenticalToDirectEngine) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  const int64_t t = dataset.test_times().front();

  // Reference engine plus two replica engines, all over the same frozen
  // snapshot: which replica answers must not change the answer.
  ServeEngine reference(SnapshotOf(model, dataset), SmallServeConfig());
  ServeEngine replica_a(SnapshotOf(model, dataset), SmallServeConfig());
  ServeEngine replica_b(SnapshotOf(model, dataset), SmallServeConfig());

  std::vector<std::unique_ptr<ReplicaChannel>> channels;
  channels.push_back(std::make_unique<LocalChannel>(&replica_a));
  channels.push_back(std::make_unique<LocalChannel>(&replica_b));
  Router router(std::move(channels), RouterConfig{});

  for (int64_t s = 0; s < dataset.num_entities(); ++s) {
    const Query query = Query::Entity(s, s % 10, t, 5);
    Result<QueryResult> direct = reference.Submit(query);
    Result<QueryResult> routed = router.Route(query);
    ASSERT_TRUE(direct.ok()) << direct.ToString();
    ASSERT_TRUE(routed.ok()) << routed.ToString();
    EXPECT_EQ(routed.value().candidates, direct.value().candidates)
        << "subject " << s;
    EXPECT_EQ(routed.value().shard, router.ShardFor(s));
  }
  EXPECT_NE(router.StatsJson().find("\"router\""), std::string::npos);
  EXPECT_NE(router.StatsJson().find("\"replicas\""), std::string::npos);
}

// A channel that always fails, standing in for a dead replica.
class DeadChannel : public ReplicaChannel {
 public:
  Result<QueryResult> Submit(const Query&) override {
    return Result<QueryResult>::Error(StatusCode::kShardUnavailable,
                                      "replica down");
  }
  std::vector<Result<QueryResult>> SubmitBatch(
      const std::vector<Query>& queries) override {
    std::vector<Result<QueryResult>> out;
    for (size_t i = 0; i < queries.size(); ++i) {
      out.push_back(Result<QueryResult>::Error(StatusCode::kShardUnavailable,
                                               "replica down"));
    }
    return out;
  }
  Result<int64_t> Swap(const std::string&) override {
    return Result<int64_t>::Error(StatusCode::kShardUnavailable,
                                  "replica down");
  }
  Result<std::string> StatsJson() override {
    return Result<std::string>::Error(StatusCode::kShardUnavailable,
                                      "replica down");
  }
  Result<int64_t> Ping() override {
    return Result<int64_t>::Error(StatusCode::kShardUnavailable,
                                  "replica down");
  }
};

TEST(RouterTest, DeadReplicaDegradesOnlyItsArcToShardUnavailable) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  const int64_t t = dataset.test_times().front();

  ServeEngine live(SnapshotOf(model, dataset), SmallServeConfig());
  std::vector<std::unique_ptr<ReplicaChannel>> channels;
  channels.push_back(std::make_unique<LocalChannel>(&live));
  channels.push_back(std::make_unique<DeadChannel>());
  Router router(std::move(channels), RouterConfig{});

  int64_t ok_count = 0, dead_count = 0;
  for (int64_t s = 0; s < dataset.num_entities(); ++s) {
    Result<QueryResult> result = router.Route(Query::Entity(s, 0, t, 3));
    if (router.ShardFor(s) == 1) {
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.code(), StatusCode::kShardUnavailable);
      ++dead_count;
    } else {
      ASSERT_TRUE(result.ok()) << result.ToString();
      ++ok_count;
    }
  }
  EXPECT_GT(ok_count, 0);
  EXPECT_GT(dead_count, 0);

  // SwapAll must refuse to report success when a shard cannot install.
  const std::vector<Result<int64_t>> pings = router.PingAll();
  EXPECT_TRUE(pings[0].ok());
  EXPECT_FALSE(pings[1].ok());
  Result<int64_t> swap = router.SwapAll("/nonexistent");
  EXPECT_FALSE(swap.ok());
}

// ---- Socket end-to-end ------------------------------------------------------

TEST(ReplicaServerTest, SocketChannelEndToEndMatchesInProcess) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  const int64_t t = dataset.test_times().front();

  ServeEngine reference(SnapshotOf(model, dataset), SmallServeConfig());
  ServeEngine served(SnapshotOf(model, dataset), SmallServeConfig());
  const std::string path = testing::TempDir() + "/retia_replica_e2e.sock";
  ReplicaServer server(&served, nullptr, path);
  Result<bool> started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  RouterConfig config;
  config.timeout_ms = 10000;
  SocketChannel channel(path, config);
  // Queries over the socket must be bit-identical to in-process answers,
  // and engine-level errors must keep their taxonomy across the wire.
  for (int64_t s = 0; s < 8; ++s) {
    const Query query = Query::Entity(s, s % 10, t, 5);
    Result<QueryResult> direct = reference.Submit(query);
    Result<QueryResult> remote = channel.Submit(query);
    ASSERT_TRUE(direct.ok()) << direct.ToString();
    ASSERT_TRUE(remote.ok()) << remote.ToString();
    EXPECT_EQ(remote.value().candidates, direct.value().candidates);
  }
  Result<QueryResult> bad_entity =
      channel.Submit(Query::Entity(1 << 20, 0, t, 3));
  ASSERT_FALSE(bad_entity.ok());
  EXPECT_EQ(bad_entity.code(), StatusCode::kUnknownEntity);
  Result<QueryResult> bad_time = channel.Submit(Query::Entity(0, 0, -1, 3));
  ASSERT_FALSE(bad_time.ok());
  EXPECT_EQ(bad_time.code(), StatusCode::kBadTimestamp);
  Result<QueryResult> bad_k = channel.Submit(Query::Entity(0, 0, t, 0));
  ASSERT_FALSE(bad_k.ok());
  EXPECT_EQ(bad_k.code(), StatusCode::kInvalidArgument);

  Result<int64_t> ping = channel.Ping();
  ASSERT_TRUE(ping.ok()) << ping.ToString();
  EXPECT_EQ(ping.value(), 0);
  Result<std::string> stats = channel.StatsJson();
  ASSERT_TRUE(stats.ok()) << stats.ToString();
  EXPECT_NE(stats.value().find("\"completed\""), std::string::npos);
  // Swap without a loader is reported, not fatal.
  Result<int64_t> swap = channel.Swap("/nonexistent");
  ASSERT_FALSE(swap.ok());
  EXPECT_EQ(swap.code(), StatusCode::kInternal);

  server.Stop();
  // After Stop, the channel reports the shard as unavailable.
  Result<QueryResult> down = channel.Submit(Query::Entity(0, 0, t, 3));
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.code(), StatusCode::kShardUnavailable);
}

TEST(ReplicaServerTest, MalformedBytesOnSocketAreReportedNotFatal) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  ServeEngine served(SnapshotOf(model, dataset), SmallServeConfig());
  const std::string path = testing::TempDir() + "/retia_replica_fuzz.sock";
  ReplicaServer server(&served, nullptr, path);
  ASSERT_TRUE(server.Start().ok());

  RouterConfig config;
  config.timeout_ms = 10000;

  // Raw unix-socket connections pushing byte soup, oversized lengths,
  // bad versions, and well-framed-but-truncated query bodies at the
  // server. Every connection must end with a typed protocol-error reply
  // or a clean close — never a server crash — and the replica must keep
  // serving well-formed queries afterwards.
  auto attack = [&path](const std::vector<uint8_t>& bytes) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    (void)::write(fd, bytes.data(), bytes.size());
    ::shutdown(fd, SHUT_WR);
    // Drain whatever the server answers (error reply or EOF) so the
    // server-side write cannot block, then close.
    char sink[256];
    while (::read(fd, sink, sizeof(sink)) > 0) {
    }
    ::close(fd);
  };

  std::mt19937 rng(7);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> garbage(64);
    for (auto& b : garbage) b = static_cast<uint8_t>(byte(rng));
    attack(garbage);
  }
  {
    // Oversized declared length.
    attack({0xff, 0xff, 0xff, 0x7f, 1, 1});
    // Wrong version.
    attack({2, 0, 0, 0, 99, 1});
    // Valid frame header, truncated query body.
    std::vector<uint8_t> frame;
    wire::AppendFrame(wire::MsgType::kQuery, {1, 2, 3}, &frame);
    attack(frame);
    // Reply type sent at the server.
    frame.clear();
    wire::AppendFrame(wire::MsgType::kPong, wire::EncodePong(1), &frame);
    attack(frame);
    // Valid frame header, truncated query-batch body.
    frame.clear();
    wire::AppendFrame(wire::MsgType::kQueryBatch, {2, 0, 1, 1, 1}, &frame);
    attack(frame);
    // Query batch whose count mismatches its body.
    std::vector<uint8_t> batch =
        wire::EncodeQueryBatch({Query::Entity(0, 0, 0, 1)});
    batch[0] = 7;
    frame.clear();
    wire::AppendFrame(wire::MsgType::kQueryBatch, batch, &frame);
    attack(frame);
    // A result batch (a reply type) sent at the server.
    frame.clear();
    wire::AppendFrame(
        wire::MsgType::kResultBatch,
        wire::EncodeResultBatch({Result<QueryResult>(QueryResult{})}), &frame);
    attack(frame);
  }
  const int64_t t = dataset.test_times().front();
  SocketChannel channel(path, config);
  Result<QueryResult> alive = channel.Submit(Query::Entity(0, 0, t, 3));
  ASSERT_TRUE(alive.ok()) << alive.ToString();
  server.Stop();
}

// ---- Coordinated hot-swap across replicas -----------------------------------

TEST(RouterSwapTest, ConcurrentSwapAllNeverDropsOrTearsResponses) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model_a(TinyModelConfig(dataset, /*seed=*/3));
  core::RetiaModel model_b(TinyModelConfig(dataset, /*seed=*/99));
  const int64_t t = dataset.test_times().front();
  const int64_t k = 4;

  // Reference answers under each snapshot.
  std::vector<std::vector<ScoredCandidate>> ref_a, ref_b;
  {
    ServeEngine engine_a(SnapshotOf(model_a, dataset), SmallServeConfig());
    ServeEngine engine_b(SnapshotOf(model_b, dataset), SmallServeConfig());
    for (int64_t s = 0; s < dataset.num_entities(); ++s) {
      Result<QueryResult> a = engine_a.Submit(Query::Entity(s, 1, t, k));
      Result<QueryResult> b = engine_b.Submit(Query::Entity(s, 1, t, k));
      ASSERT_TRUE(a.ok() && b.ok());
      ref_a.push_back(a.take().candidates);
      ref_b.push_back(b.take().candidates);
    }
    ASSERT_NE(ref_a[0], ref_b[0]) << "models must genuinely differ";
  }

  // Two replicas starting on snapshot A; the loader alternates per prefix.
  ServeEngine replica_a(SnapshotOf(model_a, dataset), SmallServeConfig());
  ServeEngine replica_b(SnapshotOf(model_a, dataset), SmallServeConfig());
  serve::SnapshotLoader loader =
      [&](const std::string& prefix) -> Result<serve::EngineSnapshot> {
    return SnapshotOf(prefix == "b" ? model_b : model_a, dataset);
  };
  std::vector<std::unique_ptr<ReplicaChannel>> channels;
  channels.push_back(std::make_unique<LocalChannel>(&replica_a, loader));
  channels.push_back(std::make_unique<LocalChannel>(&replica_b, loader));
  Router router(std::move(channels), RouterConfig{});

  constexpr int kClients = 4;
  constexpr int kRoundsPerClient = 50;
  std::vector<std::thread> clients;
  std::vector<int64_t> dropped(kClients, 0), torn(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRoundsPerClient; ++round) {
        const int64_t s =
            (static_cast<int64_t>(c) * 31 + round) % dataset.num_entities();
        Result<QueryResult> result = router.Route(Query::Entity(s, 1, t, k));
        if (!result.ok()) {
          ++dropped[c];
          continue;
        }
        // Old-or-new, never torn: every response must equal one of the two
        // snapshots' reference answers in full.
        const auto& got = result.value().candidates;
        if (got != ref_a[s] && got != ref_b[s]) ++torn[c];
      }
    });
  }
  // Two swap waves (a -> b -> a) while clients hammer the router.
  Result<int64_t> swap_b = router.SwapAll("b");
  ASSERT_TRUE(swap_b.ok()) << swap_b.ToString();
  EXPECT_EQ(swap_b.value(), 1);
  Result<int64_t> swap_a = router.SwapAll("a");
  ASSERT_TRUE(swap_a.ok()) << swap_a.ToString();
  EXPECT_EQ(swap_a.value(), 2);
  for (std::thread& client : clients) client.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(dropped[c], 0) << "client " << c;
    EXPECT_EQ(torn[c], 0) << "client " << c;
  }
  // After the dust settles every replica sits on the same epoch.
  for (const Result<int64_t>& epoch : router.PingAll()) {
    ASSERT_TRUE(epoch.ok());
    EXPECT_EQ(epoch.value(), 2);
  }
  // And post-swap answers carry that epoch.
  Result<QueryResult> settled = router.Route(Query::Entity(0, 1, t, k));
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(settled.value().epoch, 2);
  EXPECT_EQ(settled.value().candidates, ref_a[0]);
}

TEST(RouterSwapTest, SocketReplicaSwapRoundTrip) {
  // One socket replica, real snapshot files: save model A and B, serve A,
  // swap to B over the wire, verify answers flip to B's reference.
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model_a(TinyModelConfig(dataset, /*seed=*/3));
  core::RetiaModel model_b(TinyModelConfig(dataset, /*seed=*/99));
  const int64_t t = dataset.test_times().front();

  const std::string prefix_b = testing::TempDir() + "/router_swap_b";
  ASSERT_TRUE(serve::SaveModelSnapshot(model_b, prefix_b, dataset.name()).ok());

  std::vector<ScoredCandidate> ref_b;
  {
    ServeEngine engine_b(SnapshotOf(model_b, dataset), SmallServeConfig());
    Result<QueryResult> b = engine_b.Submit(Query::Entity(2, 1, t, 4));
    ASSERT_TRUE(b.ok());
    ref_b = b.take().candidates;
  }

  ServeEngine served(SnapshotOf(model_a, dataset), SmallServeConfig());
  serve::SnapshotLoader loader =
      [&](const std::string& prefix) -> Result<serve::EngineSnapshot> {
    std::unique_ptr<core::RetiaModel> loaded;
    const ckpt::Result r = serve::LoadModelSnapshot(prefix, &loaded);
    if (!r.ok()) {
      return Result<serve::EngineSnapshot>::Error(StatusCode::kInternal,
                                                  r.ToString());
    }
    serve::EngineSnapshot snapshot;
    snapshot.dataset = std::make_unique<tkg::TkgDataset>(dataset);
    snapshot.graph_cache =
        std::make_unique<graph::GraphCache>(snapshot.dataset.get());
    snapshot.model = std::move(loaded);
    return snapshot;
  };
  const std::string path = testing::TempDir() + "/retia_replica_swap.sock";
  ReplicaServer server(&served, loader, path);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::unique_ptr<ReplicaChannel>> channels;
  RouterConfig config;
  config.timeout_ms = 10000;
  channels.push_back(std::make_unique<SocketChannel>(path, config));
  Router router(std::move(channels), config);

  Result<int64_t> swapped = router.SwapAll(prefix_b);
  ASSERT_TRUE(swapped.ok()) << swapped.ToString();
  EXPECT_EQ(swapped.value(), 1);
  Result<QueryResult> after = router.Route(Query::Entity(2, 1, t, 4));
  ASSERT_TRUE(after.ok()) << after.ToString();
  EXPECT_EQ(after.value().candidates, ref_b);
  EXPECT_EQ(after.value().epoch, 1);
  server.Stop();
}

}  // namespace
}  // namespace retia
