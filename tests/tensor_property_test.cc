// Property-style parameterized sweeps over the tensor kernels that carry
// the RGCN message passing and the ConvTransE decoders.

#include <cstring>

#include <gtest/gtest.h>

#include "grad_check.h"
#include "par/thread_pool.h"
#include "simd/simd.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace retia::tensor {
namespace {

using ::retia::testing::CheckGradients;
using ::retia::testing::TestTensor;

// ---------------------------------------------------------------------------
// Conv1d across (channels, kernel size, padding) combinations: output
// length arithmetic and gradient correctness.

struct Conv1dCase {
  int64_t batch, cin, cout, length, ksize, pad;
};

class Conv1dSweep : public ::testing::TestWithParam<Conv1dCase> {};

TEST_P(Conv1dSweep, OutputLengthAndGradients) {
  const Conv1dCase c = GetParam();
  Tensor x = TestTensor({c.batch, c.cin, c.length}, 11);
  Tensor w = TestTensor({c.cout, c.cin, c.ksize}, 12);
  Tensor bias = TestTensor({c.cout}, 13);
  Tensor out = Conv1d(x, w, bias, c.pad);
  EXPECT_EQ(out.Dim(0), c.batch);
  EXPECT_EQ(out.Dim(1), c.cout);
  EXPECT_EQ(out.Dim(2), c.length + 2 * c.pad - c.ksize + 1);
  Tensor mask = TestTensor({out.NumElements()}, 14, false);
  CheckGradients(
      [&] {
        Tensor o = Conv1d(x, w, bias, c.pad);
        return Sum(Mul(Reshape(o, {1, o.NumElements()}),
                       Reshape(mask, {1, mask.NumElements()})));
      },
      {x, w, bias});
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Conv1dSweep,
    ::testing::Values(Conv1dCase{1, 1, 1, 4, 1, 0},
                      Conv1dCase{2, 2, 3, 6, 3, 1},
                      Conv1dCase{1, 3, 2, 5, 5, 2},
                      Conv1dCase{3, 2, 2, 8, 3, 0}));

// ---------------------------------------------------------------------------
// Gather/Scatter adjointness: <Gather(A, idx), B> == <A, Scatter(B, idx)>.
// This is the identity that makes the message-passing backward pass
// correct, checked over random index patterns.

class GatherScatterAdjoint : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GatherScatterAdjoint, InnerProductsMatch) {
  util::Rng rng(GetParam());
  const int64_t rows = 1 + rng.UniformInt(0, 9);
  const int64_t cols = 1 + rng.UniformInt(0, 5);
  const int64_t k = 1 + rng.UniformInt(0, 14);
  std::vector<int64_t> idx(k);
  for (auto& i : idx) i = rng.UniformInt(0, rows - 1);
  Tensor a = TestTensor({rows, cols}, GetParam() * 3 + 1, false);
  Tensor b = TestTensor({k, cols}, GetParam() * 3 + 2, false);
  const float lhs = Sum(Mul(GatherRows(a, idx), b)).Item();
  const float rhs = Sum(Mul(a, ScatterAddRows(b, idx, rows))).Item();
  EXPECT_NEAR(lhs, rhs, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherScatterAdjoint,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Scatter-then-gather of distinct indices is the identity.

TEST(GatherScatterProperty, ScatterOfDistinctIndicesRoundTrips) {
  std::vector<int64_t> idx = {3, 0, 2};
  Tensor b = TestTensor({3, 4}, 31, false);
  Tensor scattered = ScatterAddRows(b, idx, 5);
  Tensor back = GatherRows(scattered, idx);
  for (int64_t i = 0; i < b.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(back.Data()[i], b.Data()[i]);
  }
}

// ---------------------------------------------------------------------------
// Softmax + NllFromProbs equals CrossEntropyLogits (the two loss paths the
// models use must agree).

class LossEquivalence : public ::testing::TestWithParam<int64_t> {};

TEST_P(LossEquivalence, SoftmaxNllMatchesLogitCrossEntropy) {
  const int64_t cols = GetParam();
  Tensor logits = TestTensor({4, cols}, 41 + cols, false);
  std::vector<int64_t> targets;
  for (int64_t i = 0; i < 4; ++i) targets.push_back(i % cols);
  const float a = NllFromProbs(Softmax(logits), targets).Item();
  const float b = CrossEntropyLogits(logits, targets).Item();
  EXPECT_NEAR(a, b, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LossEquivalence,
                         ::testing::Values(2, 3, 17, 101));

// ---------------------------------------------------------------------------
// MatMul associativity-with-transpose: (A B^T)^T == B A^T elementwise.

TEST(MatMulProperty, TransposeIdentity) {
  Tensor a = TestTensor({3, 5}, 51, false);
  Tensor b = TestTensor({4, 5}, 52, false);
  Tensor ab = MatMulTransposeB(a, b);   // [3,4]
  Tensor ba = MatMulTransposeB(b, a);   // [4,3]
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(ab.At(i, j), ba.At(j, i), 1e-4f);
    }
  }
}

// Linearity: (A+B) C == A C + B C.
TEST(MatMulProperty, Linearity) {
  Tensor a = TestTensor({3, 4}, 53, false);
  Tensor b = TestTensor({3, 4}, 54, false);
  Tensor c = TestTensor({4, 2}, 55, false);
  Tensor lhs = MatMul(Add(a, b), c);
  Tensor rhs = Add(MatMul(a, c), MatMul(b, c));
  for (int64_t i = 0; i < lhs.NumElements(); ++i) {
    EXPECT_NEAR(lhs.Data()[i], rhs.Data()[i], 1e-4f);
  }
}

// ---------------------------------------------------------------------------
// Parallel == serial, exactly: the randomized counterpart of the par_test
// end-to-end check. 50 random (shape, seed) draws; the parallel matmul and
// softmax-cross-entropy kernels must match a 1-thread pool byte for byte.

class ParallelSerialEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelSerialEquivalence, MatMulAndSoftmaxMatchSerialExactly) {
  util::Rng rng(GetParam() * 7919 + 1);
  const int64_t m = 1 + rng.UniformInt(0, 90);
  const int64_t k = 1 + rng.UniformInt(0, 60);
  const int64_t n = 1 + rng.UniformInt(0, 90);
  Tensor a = TestTensor({m, k}, GetParam() * 5 + 1);
  Tensor b = TestTensor({n, k}, GetParam() * 5 + 2);
  std::vector<int64_t> targets;
  for (int64_t i = 0; i < m; ++i) targets.push_back(i % n);

  struct Capture {
    std::vector<float> logits, soft, loss, ga, gb;
  };
  auto run = [&](int threads) {
    par::ThreadPool pool(threads);
    par::ScopedDefaultPool guard(&pool);
    Tensor logits = MatMulTransposeB(a, b);
    Tensor loss = CrossEntropyLogits(logits, targets);
    a.ZeroGrad();
    b.ZeroGrad();
    loss.Backward();
    Capture c;
    c.logits = logits.impl().data;
    c.soft = Softmax(logits).impl().data;
    c.loss = loss.impl().data;
    c.ga = a.impl().grad;
    c.gb = b.impl().grad;
    return c;
  };
  const Capture serial = run(1);
  const Capture parallel = run(8);
  auto expect_bytes = [](const std::vector<float>& got,
                         const std::vector<float>& want, const char* what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    EXPECT_EQ(
        std::memcmp(got.data(), want.data(), got.size() * sizeof(float)), 0)
        << what;
  };
  expect_bytes(parallel.logits, serial.logits, "logits");
  expect_bytes(parallel.soft, serial.soft, "softmax");
  expect_bytes(parallel.loss, serial.loss, "loss");
  expect_bytes(parallel.ga, serial.ga, "grad a");
  expect_bytes(parallel.gb, serial.gb, "grad b");
}

INSTANTIATE_TEST_SUITE_P(FiftyRandomShapes, ParallelSerialEquivalence,
                         ::testing::Range<uint64_t>(0, 50));

// ---------------------------------------------------------------------------
// SIMD-vs-scalar equivalence over the same 50-shape property set: for
// every supported backend, the full matmul + softmax-cross-entropy
// forward/backward pipeline must (a) stay within the documented tolerance
// of the scalar reference, and (b) be bit-identical between 1-thread and
// 8-thread pools under that backend.

class BackendEquivalenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendEquivalenceSweep, PipelineNearScalarAndThreadInvariant) {
  util::Rng rng(GetParam() * 7919 + 1);
  const int64_t m = 1 + rng.UniformInt(0, 90);
  const int64_t k = 1 + rng.UniformInt(0, 60);
  const int64_t n = 1 + rng.UniformInt(0, 90);
  Tensor a = TestTensor({m, k}, GetParam() * 5 + 1);
  Tensor b = TestTensor({n, k}, GetParam() * 5 + 2);
  std::vector<int64_t> targets;
  for (int64_t i = 0; i < m; ++i) targets.push_back(i % n);

  struct Capture {
    std::vector<float> logits, soft, loss, ga, gb;
  };
  auto run = [&](simd::Backend backend, int threads) {
    simd::ScopedBackend backend_guard(backend);
    par::ThreadPool pool(threads);
    par::ScopedDefaultPool guard(&pool);
    Tensor logits = MatMulTransposeB(a, b);
    Tensor loss = CrossEntropyLogits(logits, targets);
    a.ZeroGrad();
    b.ZeroGrad();
    loss.Backward();
    Capture c;
    c.logits = logits.impl().data;
    c.soft = Softmax(logits).impl().data;
    c.loss = loss.impl().data;
    c.ga = a.impl().grad;
    c.gb = b.impl().grad;
    return c;
  };
  const Capture reference = run(simd::Backend::kScalar, 1);
  auto expect_near = [&](const std::vector<float>& got,
                         const std::vector<float>& want, const char* what,
                         simd::Backend backend) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-4f * (std::abs(want[i]) + 1.0f))
          << what << "[" << i << "] on " << simd::BackendName(backend)
          << " m=" << m << " k=" << k << " n=" << n;
    }
  };
  auto expect_bytes = [](const std::vector<float>& got,
                         const std::vector<float>& want, const char* what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    EXPECT_EQ(
        std::memcmp(got.data(), want.data(), got.size() * sizeof(float)), 0)
        << what;
  };
  for (simd::Backend backend :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kNeon,
        simd::Backend::kAvx2}) {
    if (!simd::BackendSupported(backend)) continue;
    const Capture serial = run(backend, 1);
    expect_near(serial.logits, reference.logits, "logits", backend);
    expect_near(serial.soft, reference.soft, "softmax", backend);
    expect_near(serial.loss, reference.loss, "loss", backend);
    expect_near(serial.ga, reference.ga, "grad a", backend);
    expect_near(serial.gb, reference.gb, "grad b", backend);

    const Capture parallel = run(backend, 8);
    expect_bytes(parallel.logits, serial.logits, "logits across threads");
    expect_bytes(parallel.soft, serial.soft, "softmax across threads");
    expect_bytes(parallel.loss, serial.loss, "loss across threads");
    expect_bytes(parallel.ga, serial.ga, "grad a across threads");
    expect_bytes(parallel.gb, serial.gb, "grad b across threads");
  }
}

INSTANTIATE_TEST_SUITE_P(FiftyRandomShapes, BackendEquivalenceSweep,
                         ::testing::Range<uint64_t>(0, 50));

// ---------------------------------------------------------------------------
// Privatized vs owner-computes scatter-add over 50 random shapes. The two
// algorithms fold duplicates in different orders, so they agree only to a
// tolerance (a documented numerics difference, DESIGN.md §12) — but each
// algorithm individually must be bit-identical across thread counts (its
// shard geometry and merge tree are functions of the shape alone), and
// kAuto must resolve to exactly one of the two, never a third behaviour.

class ScatterAlgoEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScatterAlgoEquivalence, PrivatizedMatchesOwnerComputesAcrossThreads) {
  util::Rng rng(GetParam() * 104729 + 7);
  // Shapes spanning both sides of the privatized-path heuristics: small
  // and large destination tables, duplicate-heavy and duplicate-free
  // index vectors.
  const int64_t rows = 1 + rng.UniformInt(0, 600);
  const int64_t cols = 1 + rng.UniformInt(0, 48);
  const int64_t k = 1 + rng.UniformInt(0, 8000);
  std::vector<int64_t> idx(k);
  for (auto& i : idx) i = rng.UniformInt(0, rows - 1);
  Tensor src = TestTensor({k, cols}, GetParam() * 11 + 3, false);

  auto run = [&](ScatterAlgo algo, int threads) {
    par::ThreadPool pool(threads);
    par::ScopedDefaultPool guard(&pool);
    return ScatterAddRowsWith(algo, src, idx, rows).impl().data;
  };

  const std::vector<float> owner = run(ScatterAlgo::kOwnerComputes, 1);
  const std::vector<float> privatized = run(ScatterAlgo::kPrivatized, 1);
  auto expect_bytes = [](const std::vector<float>& got,
                         const std::vector<float>& want, const char* what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    EXPECT_EQ(
        std::memcmp(got.data(), want.data(), got.size() * sizeof(float)), 0)
        << what;
  };

  // Each algorithm: bit-identical at every thread count.
  for (int threads : {2, 4, 8}) {
    expect_bytes(run(ScatterAlgo::kOwnerComputes, threads), owner,
                 "owner-computes across threads");
    expect_bytes(run(ScatterAlgo::kPrivatized, threads), privatized,
                 "privatized across threads");
  }

  // Cross-algorithm: same sums up to FP association. The error scales
  // with how many duplicates fold into one destination row.
  ASSERT_EQ(privatized.size(), owner.size());
  const float tol =
      1e-5f * (1.0f + static_cast<float>(k) / static_cast<float>(rows));
  for (size_t i = 0; i < owner.size(); ++i) {
    ASSERT_NEAR(privatized[i], owner[i],
                tol * (std::abs(owner[i]) + 1.0f))
        << "element " << i << " rows=" << rows << " cols=" << cols
        << " k=" << k;
  }

  // kAuto picks one of the two reference results bit-exactly.
  for (int threads : {1, 4}) {
    const std::vector<float> chosen = run(ScatterAlgo::kAuto, threads);
    ASSERT_EQ(chosen.size(), owner.size());
    const bool matches_owner =
        std::memcmp(chosen.data(), owner.data(),
                    chosen.size() * sizeof(float)) == 0;
    const bool matches_privatized =
        std::memcmp(chosen.data(), privatized.data(),
                    chosen.size() * sizeof(float)) == 0;
    EXPECT_TRUE(matches_owner || matches_privatized)
        << "kAuto produced a result matching neither algorithm at threads="
        << threads << " rows=" << rows << " cols=" << cols << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(FiftyRandomShapes, ScatterAlgoEquivalence,
                         ::testing::Range<uint64_t>(0, 50));

// ---------------------------------------------------------------------------
// Conv2d padding edge cases: kernel as large as the padded input, pad
// bigger than the kernel overhang, and 1x1 kernels. Gradient-checked.

struct Conv2dCase {
  int64_t batch, cin, cout, h, w, ksize, pad;
};

class Conv2dPaddingSweep : public ::testing::TestWithParam<Conv2dCase> {};

TEST_P(Conv2dPaddingSweep, OutputShapeAndGradients) {
  const Conv2dCase c = GetParam();
  Tensor x = TestTensor({c.batch, c.cin, c.h, c.w}, 61);
  Tensor w = TestTensor({c.cout, c.cin, c.ksize, c.ksize}, 62);
  Tensor bias = TestTensor({c.cout}, 63);
  Tensor out = Conv2d(x, w, bias, c.pad);
  EXPECT_EQ(out.Dim(0), c.batch);
  EXPECT_EQ(out.Dim(1), c.cout);
  EXPECT_EQ(out.Dim(2), c.h + 2 * c.pad - c.ksize + 1);
  EXPECT_EQ(out.Dim(3), c.w + 2 * c.pad - c.ksize + 1);
  Tensor mask = TestTensor({out.NumElements()}, 64, false);
  CheckGradients(
      [&] {
        Tensor o = Conv2d(x, w, bias, c.pad);
        return Sum(Mul(Reshape(o, {1, o.NumElements()}),
                       Reshape(mask, {1, mask.NumElements()})));
      },
      {x, w, bias});
}

INSTANTIATE_TEST_SUITE_P(
    PaddingEdges, Conv2dPaddingSweep,
    ::testing::Values(Conv2dCase{1, 1, 1, 2, 2, 2, 0},   // kernel == input
                      Conv2dCase{1, 2, 2, 3, 3, 3, 2},   // pad > overhang
                      Conv2dCase{2, 1, 2, 3, 2, 1, 0},   // 1x1, no pad
                      Conv2dCase{1, 1, 1, 2, 3, 2, 1})); // rectangular input

// ---------------------------------------------------------------------------
// LayerNormRows: gradient-checked through the full normalisation (mean,
// variance, affine), including a constant row where the centered input is
// exactly zero.

TEST(LayerNormProperty, GradientsThroughNormalisation) {
  Tensor x = TestTensor({3, 5}, 71);
  Tensor gamma = TestTensor({5}, 72);
  Tensor beta = TestTensor({5}, 73);
  Tensor mask = TestTensor({15}, 74, false);
  CheckGradients(
      [&] {
        Tensor o = LayerNormRows(x, gamma, beta);
        return Sum(Mul(Reshape(o, {1, 15}), Reshape(mask, {1, 15})));
      },
      {x, gamma, beta});
}

TEST(LayerNormProperty, ConstantRowNormalisesToBeta) {
  Tensor x = Tensor::Full({2, 4}, 3.25f);
  Tensor gamma = TestTensor({4}, 75, false);
  Tensor beta = TestTensor({4}, 76, false);
  Tensor out = LayerNormRows(x, gamma, beta);
  // Centered input is exactly zero, so the output is beta exactly.
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(out.At(i, j), beta.Data()[j]);
    }
  }
}

// ---------------------------------------------------------------------------
// Duplicate-index ScatterAddRows: the adjoint of a duplicate-index gather,
// gradient-checked so the owner-computes parallel kernel proves it routes
// every duplicate's gradient.

TEST(GatherScatterProperty, DuplicateIndexScatterGradients) {
  const std::vector<int64_t> idx = {2, 0, 2, 2, 1, 0};  // heavy duplicates
  Tensor src = TestTensor({6, 3}, 81);
  Tensor mask = TestTensor({12}, 82, false);
  CheckGradients(
      [&] {
        Tensor o = ScatterAddRows(src, idx, 4);  // row 3 stays empty
        return Sum(Mul(Reshape(o, {1, 12}), Reshape(mask, {1, 12})));
      },
      {src});
}

TEST(GatherScatterProperty, DuplicateIndexGatherGradients) {
  const std::vector<int64_t> idx = {1, 1, 0, 1};
  Tensor table = TestTensor({3, 4}, 83);
  Tensor mask = TestTensor({16}, 84, false);
  CheckGradients(
      [&] {
        Tensor o = GatherRows(table, idx);
        return Sum(Mul(Reshape(o, {1, 16}), Reshape(mask, {1, 16})));
      },
      {table});
}

}  // namespace
}  // namespace retia::tensor
