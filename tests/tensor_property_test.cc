// Property-style parameterized sweeps over the tensor kernels that carry
// the RGCN message passing and the ConvTransE decoders.

#include <gtest/gtest.h>

#include "grad_check.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace retia::tensor {
namespace {

using ::retia::testing::CheckGradients;
using ::retia::testing::TestTensor;

// ---------------------------------------------------------------------------
// Conv1d across (channels, kernel size, padding) combinations: output
// length arithmetic and gradient correctness.

struct Conv1dCase {
  int64_t batch, cin, cout, length, ksize, pad;
};

class Conv1dSweep : public ::testing::TestWithParam<Conv1dCase> {};

TEST_P(Conv1dSweep, OutputLengthAndGradients) {
  const Conv1dCase c = GetParam();
  Tensor x = TestTensor({c.batch, c.cin, c.length}, 11);
  Tensor w = TestTensor({c.cout, c.cin, c.ksize}, 12);
  Tensor bias = TestTensor({c.cout}, 13);
  Tensor out = Conv1d(x, w, bias, c.pad);
  EXPECT_EQ(out.Dim(0), c.batch);
  EXPECT_EQ(out.Dim(1), c.cout);
  EXPECT_EQ(out.Dim(2), c.length + 2 * c.pad - c.ksize + 1);
  Tensor mask = TestTensor({out.NumElements()}, 14, false);
  CheckGradients(
      [&] {
        Tensor o = Conv1d(x, w, bias, c.pad);
        return Sum(Mul(Reshape(o, {1, o.NumElements()}),
                       Reshape(mask, {1, mask.NumElements()})));
      },
      {x, w, bias});
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Conv1dSweep,
    ::testing::Values(Conv1dCase{1, 1, 1, 4, 1, 0},
                      Conv1dCase{2, 2, 3, 6, 3, 1},
                      Conv1dCase{1, 3, 2, 5, 5, 2},
                      Conv1dCase{3, 2, 2, 8, 3, 0}));

// ---------------------------------------------------------------------------
// Gather/Scatter adjointness: <Gather(A, idx), B> == <A, Scatter(B, idx)>.
// This is the identity that makes the message-passing backward pass
// correct, checked over random index patterns.

class GatherScatterAdjoint : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GatherScatterAdjoint, InnerProductsMatch) {
  util::Rng rng(GetParam());
  const int64_t rows = 1 + rng.UniformInt(0, 9);
  const int64_t cols = 1 + rng.UniformInt(0, 5);
  const int64_t k = 1 + rng.UniformInt(0, 14);
  std::vector<int64_t> idx(k);
  for (auto& i : idx) i = rng.UniformInt(0, rows - 1);
  Tensor a = TestTensor({rows, cols}, GetParam() * 3 + 1, false);
  Tensor b = TestTensor({k, cols}, GetParam() * 3 + 2, false);
  const float lhs = Sum(Mul(GatherRows(a, idx), b)).Item();
  const float rhs = Sum(Mul(a, ScatterAddRows(b, idx, rows))).Item();
  EXPECT_NEAR(lhs, rhs, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherScatterAdjoint,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Scatter-then-gather of distinct indices is the identity.

TEST(GatherScatterProperty, ScatterOfDistinctIndicesRoundTrips) {
  std::vector<int64_t> idx = {3, 0, 2};
  Tensor b = TestTensor({3, 4}, 31, false);
  Tensor scattered = ScatterAddRows(b, idx, 5);
  Tensor back = GatherRows(scattered, idx);
  for (int64_t i = 0; i < b.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(back.Data()[i], b.Data()[i]);
  }
}

// ---------------------------------------------------------------------------
// Softmax + NllFromProbs equals CrossEntropyLogits (the two loss paths the
// models use must agree).

class LossEquivalence : public ::testing::TestWithParam<int64_t> {};

TEST_P(LossEquivalence, SoftmaxNllMatchesLogitCrossEntropy) {
  const int64_t cols = GetParam();
  Tensor logits = TestTensor({4, cols}, 41 + cols, false);
  std::vector<int64_t> targets;
  for (int64_t i = 0; i < 4; ++i) targets.push_back(i % cols);
  const float a = NllFromProbs(Softmax(logits), targets).Item();
  const float b = CrossEntropyLogits(logits, targets).Item();
  EXPECT_NEAR(a, b, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LossEquivalence,
                         ::testing::Values(2, 3, 17, 101));

// ---------------------------------------------------------------------------
// MatMul associativity-with-transpose: (A B^T)^T == B A^T elementwise.

TEST(MatMulProperty, TransposeIdentity) {
  Tensor a = TestTensor({3, 5}, 51, false);
  Tensor b = TestTensor({4, 5}, 52, false);
  Tensor ab = MatMulTransposeB(a, b);   // [3,4]
  Tensor ba = MatMulTransposeB(b, a);   // [4,3]
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(ab.At(i, j), ba.At(j, i), 1e-4f);
    }
  }
}

// Linearity: (A+B) C == A C + B C.
TEST(MatMulProperty, Linearity) {
  Tensor a = TestTensor({3, 4}, 53, false);
  Tensor b = TestTensor({3, 4}, 54, false);
  Tensor c = TestTensor({4, 2}, 55, false);
  Tensor lhs = MatMul(Add(a, b), c);
  Tensor rhs = Add(MatMul(a, c), MatMul(b, c));
  for (int64_t i = 0; i < lhs.NumElements(); ++i) {
    EXPECT_NEAR(lhs.Data()[i], rhs.Data()[i], 1e-4f);
  }
}

}  // namespace
}  // namespace retia::tensor
